//! N-level aggregation-tree topologies.
//!
//! The seed hard-wired the in-process runtime to a two-level tree (leaves +
//! one top) described by a pair of numbers. [`Topology`] generalises that to
//! an arbitrary-depth balanced tree with a per-level fan-in, with the
//! two-level shape as a special case ([`Topology::two_level`]). It is the
//! configuration vocabulary shared by the hierarchy planner, the simulated
//! platform and the in-process `Session` runtime in `lifl-core`, and the
//! single owner of the "does this batch of updates fill the tree?"
//! validation that used to be copy-pasted per entry point.

use crate::error::{LiflError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a balanced N-level aggregation tree, described bottom-up by
/// the fan-in of each level.
///
/// * `fan_in(0)` is the number of client updates each **leaf** aggregates
///   (its aggregation goal).
/// * `fan_in(l)` for `l > 0` is the number of level-`l-1` intermediates each
///   level-`l` aggregator consumes.
///
/// The widths follow: the last level always has exactly one aggregator (the
/// top), and level `l` has `fan_in(l+1) × fan_in(l+2) × …` aggregators. A
/// [`Topology::two_level`] tree with `leaves` leaves of goal `k` is therefore
/// `fan-ins [k, leaves]`, and a single flat aggregator consuming `n` updates
/// is `fan-ins [n]`.
///
/// ```
/// use lifl_types::Topology;
///
/// // A 3-level tree: leaves fold 2 client updates, 3 leaves feed each
/// // middle, 4 middles feed the top — 24 updates per round.
/// let tree = Topology::new(vec![2, 3, 4]).unwrap();
/// assert_eq!(tree.levels(), 3);
/// assert_eq!(tree.leaves(), 12);
/// assert_eq!(tree.total_updates(), 24);
///
/// // The top level's fan-in doubles as the machine count of a
/// // cluster-federated round: each node runs one [2, 3] subtree.
/// let (subtree, nodes) = tree.split_top().unwrap();
/// assert_eq!(subtree, Topology::new(vec![2, 3]).unwrap());
/// assert_eq!(nodes, 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Topology {
    fan_in: Vec<usize>,
}

impl Default for Topology {
    /// The seed's default two-level tree: 4 leaves aggregating 2 updates each.
    fn default() -> Self {
        Topology::two_level(4, 2)
    }
}

impl Topology {
    /// Builds a topology from bottom-up per-level fan-ins.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidConfig`] if `fan_in` is empty, any level's
    /// fan-in is zero, or the implied update count overflows.
    pub fn new(fan_in: Vec<usize>) -> Result<Self> {
        if fan_in.is_empty() {
            return Err(LiflError::InvalidConfig(
                "topology needs at least one level".to_string(),
            ));
        }
        if fan_in.contains(&0) {
            return Err(LiflError::InvalidConfig(format!(
                "every level's fan-in must be at least 1, got {fan_in:?}"
            )));
        }
        let mut total = 1usize;
        for f in &fan_in {
            total = total.checked_mul(*f).ok_or_else(|| {
                LiflError::InvalidConfig(format!("topology {fan_in:?} overflows update count"))
            })?;
        }
        Ok(Topology { fan_in })
    }

    /// The classic two-level tree: `leaves` leaf aggregators each consuming
    /// `updates_per_leaf` client updates, feeding one top aggregator.
    ///
    /// Zero values are clamped to 1 (a degenerate but valid tree), matching
    /// the planner's historical clamping of the leaf fan-in.
    pub fn two_level(leaves: usize, updates_per_leaf: usize) -> Self {
        Topology {
            fan_in: vec![updates_per_leaf.max(1), leaves.max(1)],
        }
    }

    /// A single flat aggregator consuming `updates` client updates itself
    /// (the "no hierarchy" shape).
    pub fn flat(updates: usize) -> Self {
        Topology {
            fan_in: vec![updates.max(1)],
        }
    }

    /// A uniform tree of `levels` levels with the same `fan_in` everywhere.
    pub fn uniform(levels: usize, fan_in: usize) -> Self {
        Topology {
            fan_in: vec![fan_in.max(1); levels.max(1)],
        }
    }

    /// The two-level tree the hierarchy planner sizes to a load of
    /// `pending_updates` client updates with `leaf_fan_in` updates per leaf
    /// (§5.2): `ceil(pending / fan_in)` leaves, degenerating to one flat
    /// aggregator when a single leaf suffices.
    ///
    /// Note the planned tree covers *at least* `pending_updates`; the last
    /// leaf may run under-filled when the load does not divide evenly.
    pub fn for_load(pending_updates: usize, leaf_fan_in: usize) -> Self {
        let fan_in = leaf_fan_in.max(1);
        let leaves = pending_updates.max(1).div_ceil(fan_in);
        if leaves == 1 {
            Topology::flat(fan_in)
        } else {
            Topology::two_level(leaves, fan_in)
        }
    }

    /// [`Topology::for_load`] with a cap on every interior fan-in: when the
    /// planned leaf count exceeds `max_interior_fan_in`, additional middle
    /// levels are inserted until the tree converges to a single top, so no
    /// aggregator ever consumes more than the cap.
    ///
    /// A cap of 0 (or anything at least the planned leaf count) degenerates to
    /// [`Topology::for_load`], keeping the classic two-level plan bit-exact.
    /// Like [`Topology::for_load`], the planned tree covers *at least*
    /// `pending_updates`; trailing aggregators may run under-filled when the
    /// widths do not divide evenly.
    ///
    /// ```
    /// use lifl_types::Topology;
    ///
    /// // 32 pending updates at leaf fan-in 2 is 16 leaves; capping interior
    /// // fan-in at 4 inserts a middle level: 16 leaves / 4 middles / 1 top.
    /// let deep = Topology::for_load_capped(32, 2, 4);
    /// assert_eq!(deep.fan_ins(), &[2, 4, 4]);
    /// assert_eq!(Topology::for_load_capped(32, 2, 0), Topology::for_load(32, 2));
    /// ```
    pub fn for_load_capped(
        pending_updates: usize,
        leaf_fan_in: usize,
        max_interior_fan_in: usize,
    ) -> Self {
        let leaf_fan_in = leaf_fan_in.max(1);
        let leaves = pending_updates.max(1).div_ceil(leaf_fan_in);
        if max_interior_fan_in == 0 || leaves <= max_interior_fan_in {
            return Topology::for_load(pending_updates, leaf_fan_in);
        }
        // A cap of 1 would never converge to a single top; 2 is the smallest
        // branching interior level.
        let cap = max_interior_fan_in.max(2);
        let mut fan_in = vec![leaf_fan_in];
        let mut width = leaves;
        while width > 1 {
            let f = width.min(cap);
            fan_in.push(f);
            width = width.div_ceil(f);
        }
        Topology { fan_in }
    }

    /// Splits off the top level: the per-node subtree (every level below the
    /// top) and the top fan-in, i.e. the number of such subtrees the top
    /// consumes. This is how a cluster-federated deployment carves a global
    /// tree into one in-process session per machine plus a global top.
    ///
    /// Returns `None` for a single-level (flat) topology, which has no level
    /// to split off.
    pub fn split_top(&self) -> Option<(Topology, usize)> {
        if self.fan_in.len() < 2 {
            return None;
        }
        let (top, rest) = self.fan_in.split_last()?;
        Some((
            Topology {
                fan_in: rest.to_vec(),
            },
            *top,
        ))
    }

    /// Number of levels in the tree (≥ 1; the last level is the top).
    pub fn levels(&self) -> usize {
        self.fan_in.len()
    }

    /// The fan-in of `level` (level 0 consumes client updates).
    ///
    /// # Panics
    /// Panics if `level >= self.levels()`.
    pub fn fan_in(&self, level: usize) -> usize {
        self.fan_in[level]
    }

    /// The bottom-up fan-in vector.
    pub fn fan_ins(&self) -> &[usize] {
        &self.fan_in
    }

    /// Number of aggregators at `level` (the product of the fan-ins above
    /// it; the last level always has width 1).
    ///
    /// # Panics
    /// Panics if `level >= self.levels()`.
    pub fn width(&self, level: usize) -> usize {
        assert!(level < self.fan_in.len(), "level {level} out of range");
        self.fan_in[level + 1..].iter().product()
    }

    /// Number of leaf aggregators.
    pub fn leaves(&self) -> usize {
        self.width(0)
    }

    /// Total aggregators across all levels.
    pub fn aggregators(&self) -> usize {
        (0..self.levels()).map(|l| self.width(l)).sum()
    }

    /// Client updates one full round of this topology aggregates (the product
    /// of every level's fan-in).
    pub fn total_updates(&self) -> usize {
        self.fan_in.iter().product()
    }

    /// Checks that `provided` client updates exactly fill the tree — the one
    /// validation `Session::drive` and `Cluster::drive` perform before
    /// running a round.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidConfig`] when the counts differ.
    pub fn validate(&self, provided: usize) -> Result<()> {
        let expected = self.total_updates();
        if provided != expected {
            return Err(LiflError::InvalidConfig(format!(
                "expected {} updates ({} leaves x {}), got {}",
                expected,
                self.leaves(),
                self.fan_in[0],
                provided
            )));
        }
        Ok(())
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths: Vec<String> = (0..self.levels())
            .rev()
            .map(|l| self.width(l).to_string())
            .collect();
        write!(f, "{}-level tree ({})", self.levels(), widths.join("/"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_level_matches_seed_shape() {
        let t = Topology::two_level(4, 2);
        assert_eq!(t.levels(), 2);
        assert_eq!(t.leaves(), 4);
        assert_eq!(t.fan_in(0), 2);
        assert_eq!(t.fan_in(1), 4);
        assert_eq!(t.width(1), 1);
        assert_eq!(t.total_updates(), 8);
        assert_eq!(t.aggregators(), 5);
        assert_eq!(t, Topology::default());
    }

    #[test]
    fn deep_tree_widths_multiply() {
        let t = Topology::new(vec![2, 4, 3]).unwrap();
        assert_eq!(t.levels(), 3);
        assert_eq!(t.leaves(), 12);
        assert_eq!(t.width(1), 3);
        assert_eq!(t.width(2), 1);
        assert_eq!(t.total_updates(), 24);
        assert_eq!(t.aggregators(), 16);
        assert_eq!(t.to_string(), "3-level tree (1/3/12)");
    }

    #[test]
    fn flat_and_uniform_shapes() {
        let flat = Topology::flat(5);
        assert_eq!(flat.levels(), 1);
        assert_eq!(flat.leaves(), 1);
        assert_eq!(flat.total_updates(), 5);
        assert_eq!(flat.aggregators(), 1);

        let u = Topology::uniform(3, 2);
        assert_eq!(u.levels(), 3);
        assert_eq!(u.total_updates(), 8);
        assert_eq!(u.leaves(), 4);
    }

    #[test]
    fn for_load_reproduces_planner_math() {
        // 20 pending at fan-in 2 → 10 leaves + a middle level.
        let t = Topology::for_load(20, 2);
        assert_eq!(t.leaves(), 10);
        assert_eq!(t.levels(), 2);
        // A single leaf's worth of load needs no second level.
        let small = Topology::for_load(2, 2);
        assert_eq!(small.levels(), 1);
        // Zero fan-in is clamped like the planner's.
        assert_eq!(Topology::for_load(5, 0).leaves(), 5);
    }

    #[test]
    fn for_load_capped_bounds_every_interior_fan_in() {
        // 20 leaves at cap 4: 4-wide middles, then 4, then the 2-wide top.
        let t = Topology::for_load_capped(40, 2, 4);
        assert_eq!(t.fan_ins(), &[2, 4, 4, 2]);
        assert!(t.fan_ins()[1..].iter().all(|f| *f <= 4));
        // The capped tree covers at least the planned load.
        assert!(t.total_updates() >= 40);
        // Caps that never bind reproduce the two-level plan exactly.
        assert_eq!(
            Topology::for_load_capped(20, 2, 10),
            Topology::for_load(20, 2)
        );
        assert_eq!(
            Topology::for_load_capped(20, 2, 0),
            Topology::for_load(20, 2)
        );
        // A degenerate cap of 1 is clamped to the smallest branching fan-in.
        let clamped = Topology::for_load_capped(8, 2, 1);
        assert!(clamped.fan_ins()[1..].iter().all(|f| *f == 2));
        // Single-leaf loads stay flat regardless of cap.
        assert_eq!(Topology::for_load_capped(2, 2, 2).levels(), 1);
    }

    #[test]
    fn split_top_carves_per_node_subtrees() {
        let t = Topology::new(vec![2, 3, 4]).unwrap();
        let (subtree, nodes) = t.split_top().unwrap();
        assert_eq!(subtree.fan_ins(), &[2, 3]);
        assert_eq!(nodes, 4);
        // Subtree count x subtree load covers the global round.
        assert_eq!(subtree.total_updates() * nodes, t.total_updates());
        let (flat_sub, pair_nodes) = Topology::two_level(4, 2).split_top().unwrap();
        assert_eq!(flat_sub.levels(), 1);
        assert_eq!(pair_nodes, 4);
        assert!(Topology::flat(5).split_top().is_none());
    }

    #[test]
    fn validate_counts_exactly() {
        let t = Topology::two_level(4, 2);
        assert!(t.validate(8).is_ok());
        let err = t.validate(5).unwrap_err().to_string();
        assert!(
            err.contains("expected 8 updates (4 leaves x 2), got 5"),
            "{err}"
        );
        assert!(t.validate(9).is_err());
    }

    #[test]
    fn invalid_shapes_rejected() {
        assert!(Topology::new(vec![]).is_err());
        assert!(Topology::new(vec![2, 0, 3]).is_err());
        assert!(Topology::new(vec![usize::MAX, 2]).is_err());
        assert!(Topology::new(vec![3]).is_ok());
    }

    #[test]
    fn serde_roundtrip() {
        let t = Topology::new(vec![2, 3, 4]).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: Topology = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
