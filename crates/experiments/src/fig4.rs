//! Figure 4: the impact of data-plane performance on hierarchical aggregation
//! under kernel networking — a single aggregator without hierarchy (NH) versus
//! one top + four leaf aggregators (WH), both serverful, 8 trainers training
//! ResNet-152.

use crate::report::format_table;
use lifl_baselines::no_hierarchy_profile;
use lifl_core::platform::{LiflPlatform, PlatformProfile, RoundSpec};
use lifl_simcore::Gantt;
use lifl_types::{ClusterConfig, ModelKind, SimTime};
use serde::Serialize;

/// The Fig. 4 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Result {
    /// Per-round completion time without hierarchy (NH).
    pub nh_round_seconds: f64,
    /// Per-round completion time with hierarchy (WH) on the serverful data plane.
    pub wh_round_seconds: f64,
    /// NH task timeline.
    #[serde(skip)]
    pub nh_timeline: Gantt,
    /// WH task timeline.
    #[serde(skip)]
    pub wh_timeline: Gantt,
}

fn trainer_arrivals() -> Vec<SimTime> {
    // Eight trainers on remote nodes finish local training and upload their
    // ResNet-152 updates over a window of the round (§4.1).
    (0..8)
        .map(|i| SimTime::from_secs(20.0 + i as f64 * 2.5))
        .collect()
}

/// Runs the Fig. 4 experiment.
pub fn run() -> Fig4Result {
    let spec = RoundSpec::new(ModelKind::ResNet152, trainer_arrivals());

    let mut nh = LiflPlatform::with_profile(no_hierarchy_profile(ClusterConfig::default()));
    let nh_report = nh.run_round(&spec);

    let wh_cluster = ClusterConfig {
        aggregation_nodes: 1,
        ..ClusterConfig::default()
    };
    let wh_profile = PlatformProfile {
        // Hierarchical but on the serverful (kernel gRPC) data plane.
        ..PlatformProfile::serverful(wh_cluster)
    };
    let mut wh = LiflPlatform::with_profile(wh_profile);
    let wh_report = wh.run_round(&spec);

    Fig4Result {
        nh_round_seconds: nh_report.eval_finished.as_secs(),
        wh_round_seconds: wh_report.eval_finished.as_secs(),
        nh_timeline: nh_report.gantt,
        wh_timeline: wh_report.gantt,
    }
}

/// Formats the result.
pub fn format(result: &Fig4Result) -> String {
    let mut out =
        String::from("Fig. 4: hierarchical aggregation on a kernel-networking data plane\n");
    out.push_str(&format_table(
        &["setup", "round completion (s)"],
        &[
            vec![
                "NH (no hierarchy)".to_string(),
                format!("{:.1}", result.nh_round_seconds),
            ],
            vec![
                "WH (with hierarchy)".to_string(),
                format!("{:.1}", result.wh_round_seconds),
            ],
        ],
    ));
    out.push_str("\nNH timeline:\n");
    out.push_str(&result.nh_timeline.render_ascii(72));
    out.push_str("\nWH timeline:\n");
    out.push_str(&result.wh_timeline.render_ascii(72));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_alone_barely_helps_on_kernel_networking() {
        // The paper's point: WH ~57 s vs NH ~59.8 s — no significant win
        // without a better data plane.
        let result = run();
        assert!(result.wh_round_seconds <= result.nh_round_seconds * 1.05);
        let improvement = result.nh_round_seconds / result.wh_round_seconds;
        assert!(
            improvement < 1.6,
            "hierarchy alone should not give a large speedup: {improvement:.2}x"
        );
        assert!(result.nh_round_seconds > 30.0);
        let text = format(&result);
        assert!(text.contains("NH"));
        assert!(text.contains("WH"));
    }
}
