//! The selector service (§2.2, §5.1).
//!
//! The paper's selector plays two roles: it keeps the participating set of
//! clients diverse, and it acts as the gateway-facing load balancer that maps
//! selected clients to backend worker nodes. In LIFL that mapping *is* the
//! locality-aware load balancing of §5.1 — the client-to-node assignment
//! decides where model updates land in shared memory and therefore where the
//! hierarchy planner can place aggregators. This module composes the pieces:
//! over-provisioned client selection (a strategy from `lifl-fl::selector`)
//! followed by bin-packing of the selected clients onto the fleet's gateways,
//! producing the per-node pending counts the hierarchy planner consumes.

use crate::fleet::NodeFleet;
use crate::heartbeat::over_provisioned_selection;
use crate::placement::PlacementEngine;
use lifl_fl::client::Client;
use lifl_fl::selector::{select_clients, SelectionStrategy};
use lifl_simcore::SimRng;
use lifl_types::{ClientId, LiflError, ModelKind, NodeId, PlacementPolicy, Result};

/// Configuration of the selector service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectorConfig {
    /// The aggregation goal n: updates needed to commit a new global model.
    pub aggregation_goal: u64,
    /// Expected fraction of selected clients that drop out before reporting.
    pub expected_dropout: f64,
    /// Client-selection strategy (diversity role).
    pub strategy: SelectionStrategy,
    /// Placement policy used to map clients to worker-node gateways.
    pub placement: PlacementPolicy,
    /// Workload model (used by speed-aware strategies).
    pub model: ModelKind,
}

impl Default for SelectorConfig {
    fn default() -> Self {
        SelectorConfig {
            aggregation_goal: 120,
            expected_dropout: 0.1,
            strategy: SelectionStrategy::UniformRandom,
            placement: PlacementPolicy::BestFit,
            model: ModelKind::ResNet18,
        }
    }
}

impl SelectorConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidAggregationGoal`] when the goal is zero and
    /// [`LiflError::InvalidConfig`] for an out-of-range drop-out rate.
    pub fn validate(&self) -> Result<()> {
        if self.aggregation_goal == 0 {
            return Err(LiflError::InvalidAggregationGoal(0));
        }
        if !(0.0..1.0).contains(&self.expected_dropout) {
            return Err(LiflError::InvalidConfig(format!(
                "expected dropout must be in [0,1), got {}",
                self.expected_dropout
            )));
        }
        Ok(())
    }
}

/// The client-to-node mapping produced for one round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundAssignment {
    /// Selected clients and the worker node whose gateway each reports to.
    pub assignments: Vec<(ClientId, NodeId)>,
    /// Per-node pending-update counts (the hierarchy planner's input).
    pub pending_per_node: Vec<(NodeId, u32)>,
    /// Clients selected beyond the aggregation goal (over-provisioning, §3).
    pub over_provisioned: u64,
    /// Selected clients that could not be mapped because the cluster's total
    /// service capacity was exceeded (they wait for the next re-plan).
    pub unassigned: u64,
}

impl RoundAssignment {
    /// Number of selected clients.
    pub fn selected(&self) -> usize {
        self.assignments.len() + self.unassigned as usize
    }

    /// The node a given client reports to, if it was assigned.
    pub fn node_of(&self, client: ClientId) -> Option<NodeId> {
        self.assignments
            .iter()
            .find(|(c, _)| *c == client)
            .map(|(_, n)| *n)
    }
}

/// The selector service.
#[derive(Debug, Clone)]
pub struct SelectorService {
    config: SelectorConfig,
}

impl SelectorService {
    /// Creates a selector from a validated configuration.
    ///
    /// # Errors
    /// Propagates [`SelectorConfig::validate`] errors.
    pub fn new(config: SelectorConfig) -> Result<Self> {
        config.validate()?;
        Ok(SelectorService { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &SelectorConfig {
        &self.config
    }

    /// Selects this round's clients from `pool` and maps them onto the
    /// fleet's worker-node gateways.
    pub fn assign_round(
        &self,
        pool: &[Client],
        fleet: &NodeFleet,
        rng: &mut SimRng,
    ) -> RoundAssignment {
        // Diversity role: pick an over-provisioned set of participants. The
        // dropout rate was validated into [0,1) at construction, so the
        // selection rule cannot fail here.
        let target =
            over_provisioned_selection(self.config.aggregation_goal, self.config.expected_dropout)
                .unwrap_or(self.config.aggregation_goal);
        let selected = select_clients(
            self.config.strategy,
            pool,
            target as usize,
            self.config.model,
            rng,
        );
        let over_provisioned = (selected.len() as u64).saturating_sub(self.config.aggregation_goal);

        // Gateway role: map participants to worker nodes by bin-packing over
        // residual service capacity (§5.1).
        let engine = PlacementEngine::new(self.config.placement);
        let mut capacities = fleet.capacities();
        let mut assignments = Vec::with_capacity(selected.len());
        let mut unassigned = 0u64;
        for client in &selected {
            match engine.place_one(&mut capacities) {
                Ok(node) => assignments.push((client.id, node)),
                Err(_) => unassigned += 1,
            }
        }
        let pending_per_node: Vec<(NodeId, u32)> = capacities
            .iter()
            .filter(|c| c.assigned > 0)
            .map(|c| (c.node, c.assigned))
            .collect();
        RoundAssignment {
            assignments,
            pending_per_node,
            over_provisioned,
            unassigned,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::HierarchyPlan;
    use lifl_fl::client::ClientAvailability;
    use lifl_types::{ClusterConfig, NodeConfig};

    fn pool(n: usize) -> Vec<Client> {
        (0..n)
            .map(|i| Client {
                id: ClientId::new(i as u64),
                compute_speed: 1.0 + (i % 3) as f64 * 0.5,
                local_samples: 20 + (i as u64 % 5) * 10,
                availability: ClientAvailability::AlwaysOn,
            })
            .collect()
    }

    #[test]
    fn over_provisions_and_packs_onto_few_nodes() {
        let selector = SelectorService::new(SelectorConfig {
            aggregation_goal: 20,
            expected_dropout: 0.2,
            ..SelectorConfig::default()
        })
        .unwrap();
        let fleet = NodeFleet::homogeneous(&ClusterConfig::default());
        let mut rng = SimRng::from_seed(3);
        let assignment = selector.assign_round(&pool(200), &fleet, &mut rng);
        // 20 / (1 - 0.2) = 25 clients selected.
        assert_eq!(assignment.selected(), 25);
        assert_eq!(assignment.over_provisioned, 5);
        assert_eq!(assignment.unassigned, 0);
        // BestFit packs 25 updates onto ceil(25 / 20) = 2 nodes.
        assert_eq!(assignment.pending_per_node.len(), 2);
        let total: u32 = assignment.pending_per_node.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 25);
        // Every assigned client resolves to a node.
        let (first_client, first_node) = assignment.assignments[0];
        assert_eq!(assignment.node_of(first_client), Some(first_node));
        assert_eq!(assignment.node_of(ClientId::new(9999)), None);
    }

    #[test]
    fn assignment_feeds_the_hierarchy_planner() {
        let selector = SelectorService::new(SelectorConfig {
            aggregation_goal: 40,
            expected_dropout: 0.0,
            ..SelectorConfig::default()
        })
        .unwrap();
        let fleet = NodeFleet::homogeneous(&ClusterConfig::default());
        let mut rng = SimRng::from_seed(8);
        let assignment = selector.assign_round(&pool(300), &fleet, &mut rng);
        let plan = HierarchyPlan::plan(&assignment.pending_per_node, 2);
        assert_eq!(plan.total_updates(), 40);
        assert!(plan.top_node.is_some());
    }

    #[test]
    fn demand_beyond_cluster_capacity_is_reported_not_dropped_silently() {
        let selector = SelectorService::new(SelectorConfig {
            aggregation_goal: 50,
            expected_dropout: 0.0,
            ..SelectorConfig::default()
        })
        .unwrap();
        // A tiny fleet: one node with MC_i = 10.
        let fleet = NodeFleet::heterogeneous(vec![NodeConfig {
            max_service_capacity: 10,
            ..NodeConfig::default()
        }])
        .unwrap();
        let mut rng = SimRng::from_seed(1);
        let assignment = selector.assign_round(&pool(100), &fleet, &mut rng);
        assert_eq!(assignment.assignments.len(), 10);
        assert_eq!(assignment.unassigned, 40);
        assert_eq!(assignment.selected(), 50);
    }

    #[test]
    fn small_pools_cap_the_selection() {
        let selector = SelectorService::new(SelectorConfig {
            aggregation_goal: 120,
            expected_dropout: 0.1,
            ..SelectorConfig::default()
        })
        .unwrap();
        let fleet = NodeFleet::homogeneous(&ClusterConfig::default());
        let mut rng = SimRng::from_seed(5);
        let assignment = selector.assign_round(&pool(30), &fleet, &mut rng);
        assert_eq!(assignment.selected(), 30);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(SelectorService::new(SelectorConfig {
            aggregation_goal: 0,
            ..SelectorConfig::default()
        })
        .is_err());
        assert!(SelectorService::new(SelectorConfig {
            expected_dropout: 1.0,
            ..SelectorConfig::default()
        })
        .is_err());
    }
}
