//! Multi-node session federation over [`Update::RemoteBytes`]: N in-process
//! [`Session`]s composed gateway-to-gateway into one cluster-spanning
//! aggregation tree.
//!
//! The unified session API (see [`crate::session`]) drives an N-level tree
//! inside one process. LIFL's headline claim, however, is hierarchical
//! aggregation that spans *machines*: each node runs its own subtree over its
//! own shared-memory store, and only the node's merged intermediate crosses
//! the network — in its codec-tagged wire form, never re-expanded to dense
//! parameters. [`Cluster`] is that deployment in process form:
//!
//! * [`ClusterBuilder`] splits a configured global [`Topology`] at its top
//!   level: the top fan-in is the machine count, and every node runs the
//!   remaining levels as its own [`Session`] (placed into the global tree via
//!   [`SessionBuilder::tree_position`], so per-position codec streams match a
//!   single session over the whole tree bit-for-bit).
//! * [`Cluster::ingest`] routes each leaf ingest to the owning node with the
//!   same round-robin rule a single session uses, applying per-client
//!   error-feedback encoding once at the cluster ingress.
//! * [`Cluster::drive`] drives every node subtree, exports each merged
//!   update as wire bytes ([`Session::drive_to_wire`] — zero-copy, no
//!   intermediate `DenseModel`), ships it to the parent session's gateway as
//!   [`Update::RemoteBytes`] (header-only parsing on arrival) and prices the
//!   hop through the `lifl-dataplane` transport cost models.
//!
//! A cluster round is **bit-exact** with the equivalent single-session
//! [`Session::drive`] for every codec (enforced by the `tests/it/cluster.rs`
//! tier), so federating over machines changes where bytes live and what the
//! hops cost — never the aggregate.
//!
//! **Live top placement.** The node hosting the global top is not a static
//! wiring decision: under the default [`TopPlacement::MostLoaded`] policy the
//! cluster keeps a per-node [`EwmaEstimator`] of observed load (each round's
//! per-node ingest counts, plus any external queue-depth observations fed in
//! via [`Cluster::observe_node_load`]) and re-places the top on the
//! most-loaded node at every round boundary — the paper's §5.2 rule, so the
//! largest intermediate never crosses machines. A move is a cheap warm-state
//! handoff (the codec streams are tree-position-derived, so results are
//! unchanged — enforced by the re-placement test in `tests/it/driver.rs`)
//! priced like every other hop through [`CostModel::hop_transfer`].

use crate::hierarchy::EwmaEstimator;
use crate::session::{Session, SessionBuilder, Update, WireExport};
use lifl_dataplane::{CostModel, DataPlaneKind, TransferCost};
use lifl_fl::aggregate::ModelUpdate;
use lifl_fl::codec::{ErrorFeedback, UpdateCodec};
use lifl_shmem::{BufferPool, StoreStats};
use lifl_types::{ClientId, CodecKind, LiflError, NodeId, Result, SimDuration, Topology};

/// How a [`Cluster`] chooses the node hosting the global top aggregator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopPlacement {
    /// Pin the top to a fixed node for the cluster's whole life (the
    /// pre-live-placement behaviour; useful as an experimental control).
    Pinned(usize),
    /// Live placement (§5.2): host the top on the node with the highest
    /// EWMA-smoothed load estimate, re-evaluated at every round boundary.
    /// Ties keep the incumbent, so a uniformly loaded cluster never churns.
    MostLoaded {
        /// EWMA smoothing coefficient α (the paper uses 0.7).
        alpha: f64,
    },
}

impl Default for TopPlacement {
    fn default() -> Self {
        TopPlacement::MostLoaded { alpha: 0.7 }
    }
}

/// A top re-placement performed at a round boundary: the warm top state (the
/// current global intermediate) handed off from the old host to the new,
/// most-loaded one.
#[derive(Debug, Clone)]
pub struct TopMove {
    /// The node that hosted the top until this round.
    pub from: NodeId,
    /// The node hosting the top from this round on.
    pub to: NodeId,
    /// Bytes of warm top state shipped (zero before any round has produced
    /// a global intermediate).
    pub state_bytes: u64,
    /// The modelled transport cost of the handoff (always a cross-machine
    /// transfer).
    pub cost: TransferCost,
}

/// Builds a [`Cluster`]: the global tree, codec, shard count, seed, hop cost
/// model and the top-placement policy, with working defaults.
///
/// ```
/// use lifl_core::cluster::ClusterBuilder;
/// use lifl_types::{CodecKind, Topology};
///
/// // A 3-level global tree whose top fan-in is the machine count: 4 nodes
/// // each drive a [2, 2] subtree, and live placement picks the top host.
/// let cluster = ClusterBuilder::new()
///     .topology(Topology::new(vec![2, 2, 4]).unwrap())
///     .codec(CodecKind::Uniform8)
///     .build()
///     .unwrap();
/// assert_eq!(cluster.nodes(), 4);
/// assert_eq!(cluster.subtree().levels(), 2);
/// assert_eq!(cluster.topology().total_updates(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    topology: Topology,
    codec: CodecKind,
    shards: usize,
    seed: u64,
    placement: TopPlacement,
    cost: CostModel,
    dataplane: DataPlaneKind,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ClusterBuilder {
    /// A builder with the session defaults: the classic 4×2 two-level tree
    /// split into 4 single-leaf nodes, [`CodecKind::Identity`], one shard,
    /// the paper-calibrated hop cost model, LIFL's shared-memory data plane
    /// for same-node hops, and live [`TopPlacement::MostLoaded`] placement
    /// of the global top (which starts on node 0 until load signals differ).
    pub fn new() -> Self {
        ClusterBuilder {
            topology: Topology::default(),
            codec: CodecKind::Identity,
            shards: 1,
            seed: 0x5EED,
            placement: TopPlacement::default(),
            cost: CostModel::paper_calibrated(),
            dataplane: DataPlaneKind::LiflSharedMemory,
        }
    }

    /// Sets the global aggregation-tree shape. The top level's fan-in is the
    /// machine count; every node drives the remaining levels in process.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Convenience mirroring the hierarchy planner's sizing rule (§5.2):
    /// plans each node's subtree with [`Topology::for_load_capped`] for an
    /// even share of `total_updates` across `nodes` machines, then appends
    /// the cross-machine top level.
    ///
    /// Like the planner, the built tree covers *at least* `total_updates`:
    /// when the load does not divide evenly, per-node shares round up, and a
    /// round must still fill the tree exactly —
    /// [`Cluster::drive`] aggregates `cluster.topology().total_updates()`
    /// updates, which may exceed the `total_updates` planned for (pad with
    /// real ingests, as the planner's under-filled leaves do).
    pub fn for_load(
        mut self,
        total_updates: usize,
        leaf_fan_in: usize,
        max_interior_fan_in: usize,
        nodes: usize,
    ) -> Self {
        let nodes = nodes.max(1);
        let per_node = total_updates.max(1).div_ceil(nodes);
        let subtree = Topology::for_load_capped(per_node, leaf_fan_in, max_interior_fan_in);
        let mut fan_in = subtree.fan_ins().to_vec();
        fan_in.push(nodes);
        self.topology = Topology::new(fan_in).expect("per-node subtree fans are nonzero");
        self
    }

    /// Sets the wire codec every update — and every inter-node hop — travels
    /// with.
    pub fn codec(mut self, codec: CodecKind) -> Self {
        self.codec = codec;
        self
    }

    /// Sets the per-aggregator shard count on every node (see
    /// [`SessionBuilder::shards`]).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Seeds the cluster-ingress error-feedback encoder (per-aggregator
    /// codec streams derive from tree positions, exactly as in a single
    /// session with the same seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Picks the policy deciding which node hosts the global top aggregator.
    /// The paper places it on the most loaded node so the largest
    /// intermediate never crosses machines — that live policy
    /// ([`TopPlacement::MostLoaded`]) is the default; pin with
    /// [`TopPlacement::Pinned`] to reproduce the old static wiring. The
    /// hosting node's hop is priced as an intra-node shared-memory transfer
    /// instead of a network transfer.
    pub fn placement(mut self, placement: TopPlacement) -> Self {
        self.placement = placement;
        self
    }

    /// Injects the transport cost model every hop is priced through.
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the data plane same-node hops cross (remote hops always price as
    /// network transfers).
    pub fn dataplane(mut self, dataplane: DataPlaneKind) -> Self {
        self.dataplane = dataplane;
        self
    }

    /// Builds the cluster: one child session per node (each with its own
    /// gateway and shared-memory store, all recycling scratch through one
    /// shared [`BufferPool`]) plus the parent session hosting the global
    /// top.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidConfig`] if the global topology is flat
    /// (a cluster needs a top level to split off), a pinned top node lies
    /// outside the machine count, or the codec configuration is invalid.
    pub fn build(self) -> Result<Cluster> {
        let Some((subtree, nodes)) = self.topology.split_top() else {
            return Err(LiflError::InvalidConfig(format!(
                "cluster federation needs at least two levels to split \
                 gateway-to-gateway, got {}",
                self.topology
            )));
        };
        let (top_node, alpha) = match self.placement {
            TopPlacement::Pinned(node) => {
                if node >= nodes {
                    return Err(LiflError::InvalidConfig(format!(
                        "pinned top node {node} outside the cluster's {nodes} nodes"
                    )));
                }
                (node, 0.7)
            }
            TopPlacement::MostLoaded { alpha } => (0, alpha),
        };
        let pool = BufferPool::new();
        let children = (0..nodes)
            .map(|k| {
                SessionBuilder::new()
                    .topology(subtree.clone())
                    .codec(self.codec)
                    .shards(self.shards)
                    .seed(self.seed)
                    .node(NodeId::new(k as u64))
                    .tree_position(0, k)
                    .pool(pool.clone())
                    .build()
            })
            .collect::<Result<Vec<Session>>>()?;
        let parent = SessionBuilder::new()
            .topology(Topology::flat(nodes))
            .codec(self.codec)
            .shards(self.shards)
            .seed(self.seed)
            .node(NodeId::new(top_node as u64))
            .tree_position(subtree.levels(), 0)
            .pool(pool.clone())
            .build()?;
        let feedback = ErrorFeedback::new(
            UpdateCodec::with_seed(self.codec, self.seed).with_pool(pool.clone()),
        );
        Ok(Cluster {
            topology: self.topology,
            subtree,
            codec: self.codec,
            placement: self.placement,
            top_node,
            estimators: vec![EwmaEstimator::new(alpha); nodes],
            node_pending: vec![0; nodes],
            handoff_bytes: 0,
            cost: self.cost,
            dataplane: self.dataplane,
            children,
            parent,
            feedback,
            pool,
            ingested: 0,
            lifetime_ingested: 0,
        })
    }
}

/// One priced gateway-to-gateway hop of a driven cluster round.
#[derive(Debug, Clone)]
pub struct ClusterHop {
    /// The node whose merged intermediate crossed to the top.
    pub node: NodeId,
    /// Payload bytes the hop put on the data plane (codec-encoded form; the
    /// 16-byte descriptor rides the control channel).
    pub wire_bytes: u64,
    /// Whether the hop stayed on the top-hosting node (shared memory) or
    /// crossed the network.
    pub same_node: bool,
    /// The modelled transport cost of the hop.
    pub cost: TransferCost,
}

/// What one node's subtree contributed to a driven cluster round.
#[derive(Debug, Clone)]
pub struct NodeRoundReport {
    /// The node.
    pub node: NodeId,
    /// The node store's statistics at the end of the round.
    pub store_stats: StoreStats,
    /// Data-plane payload bytes the node's leaf ingests occupied.
    pub ingress_wire_bytes: u64,
    /// Client updates the node's subtree aggregated.
    pub updates_ingested: u64,
}

/// Everything a driven cluster round produced.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// The aggregated global model (decoded once, at the global top).
    pub update: ModelUpdate,
    /// The global tree the round ran over.
    pub topology: Topology,
    /// Per-node subtree accounting, in node order.
    pub nodes: Vec<NodeRoundReport>,
    /// Every gateway-to-gateway hop, in node order, priced through the
    /// cluster's transport cost model.
    pub hops: Vec<ClusterHop>,
    /// The node that hosted the global top for this round (after any
    /// round-boundary re-placement).
    pub top_node: NodeId,
    /// The top re-placement performed at this round's boundary, if the
    /// placement policy moved the top to a newly most-loaded node.
    pub replacement: Option<TopMove>,
    /// The top-hosting node store's statistics at the end of the round.
    pub top_store_stats: StoreStats,
}

impl ClusterReport {
    /// Total client updates the round aggregated.
    pub fn updates_ingested(&self) -> u64 {
        self.nodes.iter().map(|n| n.updates_ingested).sum()
    }

    /// Payload bytes that actually crossed machines (same-node hops stay in
    /// shared memory and are excluded).
    pub fn inter_node_wire_bytes(&self) -> u64 {
        self.hops
            .iter()
            .filter(|h| !h.same_node)
            .map(|h| h.wire_bytes)
            .sum()
    }

    /// Modelled wall-clock cost of the round's *remote* hops when the top
    /// node's gateway serialises arrivals one update at a time (§4.2),
    /// exactly the contention rule the simulated platform applies at its top
    /// stage — the top-hosting node's own intermediate arrives over shared
    /// memory concurrently and is excluded.
    pub fn serialized_hop_latency(&self) -> SimDuration {
        self.hops
            .iter()
            .filter(|h| !h.same_node)
            .map(|h| h.cost.latency)
            .fold(SimDuration::ZERO, |acc, l| acc + l)
    }
}

/// N in-process sessions composed gateway-to-gateway over
/// [`Update::RemoteBytes`] into one cluster-spanning aggregation tree: the
/// multi-node deployment of the unified session API.
///
/// A cluster is reusable across rounds exactly like a [`Session`]: after
/// [`Cluster::drive`] returns (or fails, discarding the round on every
/// node), the next round's ingests begin immediately, and per-client
/// error-feedback residuals persist at the cluster ingress.
///
/// ```
/// use lifl_core::cluster::ClusterBuilder;
/// use lifl_core::session::Update;
/// use lifl_fl::DenseModel;
/// use lifl_types::{ClientId, Topology};
///
/// // Two nodes, each driving a [2, 2] subtree of the global [2, 2, 2] tree.
/// let mut cluster = ClusterBuilder::new()
///     .topology(Topology::new(vec![2, 2, 2]).unwrap())
///     .build()
///     .unwrap();
/// for i in 0..8u64 {
///     let model = DenseModel::from_vec(vec![i as f32; 16]);
///     cluster
///         .ingest(Update::dense(ClientId::new(i), model, i + 1))
///         .unwrap();
/// }
/// let report = cluster.drive().unwrap();
/// assert_eq!(report.update.samples, (1..=8).sum::<u64>());
/// assert_eq!(report.hops.len(), 2);
/// // Node 0 hosts the top: only node 1's intermediate crossed machines.
/// assert!(report.hops[0].same_node && !report.hops[1].same_node);
/// assert_eq!(report.inter_node_wire_bytes(), 16 * 4);
/// ```
#[derive(Debug)]
pub struct Cluster {
    topology: Topology,
    subtree: Topology,
    codec: CodecKind,
    placement: TopPlacement,
    top_node: usize,
    estimators: Vec<EwmaEstimator>,
    node_pending: Vec<u64>,
    handoff_bytes: u64,
    cost: CostModel,
    dataplane: DataPlaneKind,
    children: Vec<Session>,
    parent: Session,
    feedback: ErrorFeedback,
    pool: BufferPool,
    ingested: u64,
    lifetime_ingested: u64,
}

impl Cluster {
    /// The global tree this cluster aggregates over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The per-node subtree every child session drives.
    pub fn subtree(&self) -> &Topology {
        &self.subtree
    }

    /// The wire codec in use.
    pub fn codec(&self) -> CodecKind {
        self.codec
    }

    /// Number of nodes (child sessions) in the cluster.
    pub fn nodes(&self) -> usize {
        self.children.len()
    }

    /// The per-node child sessions, in node order (read-only observability;
    /// ingests must go through [`Cluster::ingest`] so routing and
    /// error-feedback state stay consistent).
    pub fn node_sessions(&self) -> &[Session] {
        &self.children
    }

    /// The scratch-buffer pool shared by every session's codecs.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// The placement policy deciding which node hosts the global top.
    pub fn placement(&self) -> TopPlacement {
        self.placement
    }

    /// The node currently hosting the global top aggregator.
    pub fn top_node(&self) -> NodeId {
        NodeId::new(self.top_node as u64)
    }

    /// Feeds an external load observation (e.g. a node's reported pending
    /// queue depth, as the coordinator's metric reports do) into the node's
    /// EWMA load estimator. Ingest routing already feeds each round's
    /// per-node update counts automatically; this adds out-of-band signals
    /// so placement can react to load the cluster ingress does not see.
    pub fn observe_node_load(&mut self, node: NodeId, pending: f64) {
        let index = node.index() as usize;
        if index < self.estimators.len() {
            self.estimators[index].observe(pending);
        }
    }

    /// The smoothed per-node load estimates live placement decides over, in
    /// node order (zero until a node has been observed).
    pub fn load_estimates(&self) -> Vec<(NodeId, f64)> {
        self.estimators
            .iter()
            .enumerate()
            .map(|(k, e)| (NodeId::new(k as u64), e.estimate().unwrap_or(0.0)))
            .collect()
    }

    /// Updates ingested into the current (not yet driven) round.
    pub fn pending_updates(&self) -> u64 {
        self.ingested
    }

    /// The cluster-wide ingress: routes the update to the node owning the
    /// next leaf, with the exact round-robin rule a single session over the
    /// global tree applies (update *k* of a round feeds global leaf
    /// `k % leaves`, and each node owns a contiguous block of leaves).
    ///
    /// Under a lossy codec, dense ingests are encoded once here — with
    /// per-client error feedback seeded like a single session's ingress — so
    /// child sessions store the compressed form as-is and the cluster stays
    /// bit-exact with its single-session equivalent.
    ///
    /// # Errors
    /// Same conditions as [`Session::ingest`]. A failed ingest counts
    /// nothing toward the round.
    pub fn ingest(&mut self, update: Update) -> Result<()> {
        if self.ingested as usize >= self.topology.total_updates() {
            return Err(LiflError::InvalidConfig(format!(
                "cluster round is full: topology aggregates {} updates",
                self.topology.total_updates()
            )));
        }
        let leaf = (self.ingested as usize) % self.topology.leaves();
        let node = leaf / self.subtree.leaves();
        // One attribution rule for every representation and node: anonymous
        // updates take the *cluster*-lifetime arrival index, so residual
        // slots and fallback ids match the single-session equivalent.
        let fallback = ClientId::new(self.lifetime_ingested);
        let update = match update {
            Update::Dense(mut dense) => {
                dense.client.get_or_insert(fallback);
                if self.codec.is_lossless() {
                    Update::Dense(dense)
                } else {
                    let client = dense.client.expect("attributed above");
                    let samples = dense.samples;
                    self.feedback.encode_update(client, dense.model, samples)
                }
            }
            Update::Encoded {
                client,
                update,
                samples,
            } => Update::Encoded {
                client: Some(client.unwrap_or(fallback)),
                update,
                samples,
            },
            other => other,
        };
        let outcome = self.children[node].ingest(update);
        if outcome.is_ok() {
            self.ingested += 1;
            self.lifetime_ingested += 1;
            self.node_pending[node] += 1;
        }
        outcome
    }

    /// Ingests a batch of updates in order (see [`Cluster::ingest`]).
    ///
    /// # Errors
    /// Same conditions as [`Cluster::ingest`]; updates before the failing
    /// one stay ingested.
    pub fn ingest_all(&mut self, updates: impl IntoIterator<Item = Update>) -> Result<()> {
        for update in updates {
            self.ingest(update)?;
        }
        Ok(())
    }

    /// Drives the round across every node: each child session drives its
    /// subtree and exports the merged update as codec-tagged wire bytes
    /// ([`Session::drive_to_wire`] — no intermediate `DenseModel`); the
    /// parent gateway ingests each export via [`Update::RemoteBytes`]
    /// (header-only parsing, the arriving buffer is stored as-is) and the
    /// global top folds them in node order, so results are deterministic —
    /// and bit-exact with a single session over the global tree.
    ///
    /// Every hop is priced through the cluster's [`CostModel`]: a network
    /// transfer for remote nodes, a shared-memory transfer for the node
    /// hosting the top.
    ///
    /// At the round boundary (after the round's load is known, before any
    /// hop is priced) the placement policy re-evaluates which node should
    /// host the top: under [`TopPlacement::MostLoaded`] the round's per-node
    /// ingest counts (plus any [`Cluster::observe_node_load`] signals) feed
    /// the per-node EWMAs, and a now-more-loaded node takes the top over —
    /// a warm-state handoff priced in [`ClusterReport::replacement`]. The
    /// aggregate is placement-invariant: only hop pricing moves.
    ///
    /// # Errors
    /// Fails if the ingested updates do not exactly fill the global tree
    /// (the round is kept and can be topped up), or on any store, codec or
    /// aggregation error — in which case the round is discarded on every
    /// node and the cluster is reset to an empty round.
    pub fn drive(&mut self) -> Result<ClusterReport> {
        self.topology.validate(self.ingested as usize)?;
        let replacement = self.place_top();
        match self.drive_hops() {
            Ok(mut report) => {
                report.replacement = replacement;
                self.ingested = 0;
                self.node_pending.fill(0);
                // Next move's handoff ships the warm global intermediate.
                self.handoff_bytes = report.update.model.dim() as u64 * 4;
                Ok(report)
            }
            Err(error) => {
                self.abort_round();
                Err(error)
            }
        }
    }

    /// Re-evaluates top placement at a round boundary: feeds the round's
    /// per-node ingest counts into the EWMAs, then (under live placement)
    /// moves the top to the most-loaded node unless the incumbent already
    /// ties it. Returns the priced handoff when a move happened.
    fn place_top(&mut self) -> Option<TopMove> {
        for (estimator, pending) in self.estimators.iter_mut().zip(&self.node_pending) {
            estimator.observe(*pending as f64);
        }
        if !matches!(self.placement, TopPlacement::MostLoaded { .. }) {
            return None;
        }
        let estimates: Vec<f64> = self
            .estimators
            .iter()
            .map(|e| e.estimate().unwrap_or(0.0))
            .collect();
        let best = estimates.iter().copied().fold(f64::MIN, f64::max);
        // Incumbent-wins tie-breaking: equal load never churns the top.
        if estimates[self.top_node] >= best {
            return None;
        }
        let to = estimates
            .iter()
            .position(|&e| e == best)
            .expect("max of a nonempty list is in it");
        let from = NodeId::new(self.top_node as u64);
        self.top_node = to;
        Some(TopMove {
            from,
            to: NodeId::new(to as u64),
            state_bytes: self.handoff_bytes,
            cost: self
                .cost
                .hop_transfer(false, self.dataplane, self.handoff_bytes),
        })
    }

    /// Runs the export → hop → parent-fold pipeline over every node.
    fn drive_hops(&mut self) -> Result<ClusterReport> {
        let mut hops = Vec::with_capacity(self.children.len());
        let mut nodes = Vec::with_capacity(self.children.len());
        for (k, child) in self.children.iter_mut().enumerate() {
            let node = NodeId::new(k as u64);
            let export: WireExport = child.drive_to_wire()?;
            let wire_bytes = export.wire_bytes();
            let same_node = k == self.top_node;
            let cost = self
                .cost
                .hop_transfer(same_node, self.dataplane, wire_bytes);
            nodes.push(NodeRoundReport {
                node,
                store_stats: export.store_stats,
                ingress_wire_bytes: export.ingress_wire_bytes,
                updates_ingested: export.updates_ingested,
            });
            self.parent.ingest(export.update)?;
            hops.push(ClusterHop {
                node,
                wire_bytes,
                same_node,
                cost,
            });
        }
        let report = self.parent.drive()?;
        Ok(ClusterReport {
            update: report.update,
            topology: self.topology.clone(),
            nodes,
            hops,
            top_node: NodeId::new(self.top_node as u64),
            replacement: None,
            top_store_stats: report.store_stats,
        })
    }

    /// Discards the current (not yet driven) round on every node, returning
    /// the cluster to an empty round. Per-client error-feedback residuals
    /// and the load estimators persist.
    pub fn discard_round(&mut self) {
        self.abort_round();
    }

    /// Discards the round on every node (failed drives already reset the
    /// failing session; this sweeps the survivors and the parent).
    fn abort_round(&mut self) {
        for child in &mut self.children {
            child.discard_round();
        }
        self.parent.discard_round();
        self.ingested = 0;
        self.node_pending.fill(0);
    }
}

/// A cluster is an [`Ingest`](lifl_fl::Ingest) backend: the federated,
/// multi-node target the multi-round training driver
/// ([`crate::training::TrainingDriver`]) runs over — bit-exact with the
/// same driver over a single [`Session`] of the global tree (enforced by
/// the `tests/it/driver.rs` tier).
impl lifl_fl::Ingest for Cluster {
    fn ingest_update(&mut self, update: Update) -> Result<()> {
        self.ingest(update)
    }

    fn round_capacity(&self) -> usize {
        self.topology.total_updates()
    }

    fn ingress_codec(&self) -> CodecKind {
        self.codec
    }

    fn aggregate_round(&mut self) -> Result<lifl_fl::RoundAggregate> {
        let report = self.drive()?;
        Ok(lifl_fl::RoundAggregate {
            ingress_wire_bytes: report.nodes.iter().map(|n| n.ingress_wire_bytes).sum(),
            updates_ingested: report.updates_ingested(),
            update: report.update,
        })
    }

    fn discard_round(&mut self) {
        Cluster::discard_round(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifl_fl::aggregate::fedavg;
    use lifl_fl::DenseModel;

    fn updates(n: usize, dim: usize) -> Vec<ModelUpdate> {
        (0..n)
            .map(|i| {
                let values: Vec<f32> = (0..dim)
                    .map(|d| ((i * dim + d * 5) % 97) as f32 * 0.04 - 1.9)
                    .collect();
                ModelUpdate::from_client(
                    ClientId::new(i as u64),
                    DenseModel::from_vec(values),
                    (i + 1) as u64,
                )
            })
            .collect()
    }

    #[test]
    fn flat_topology_cannot_federate() {
        assert!(ClusterBuilder::new()
            .topology(Topology::flat(4))
            .build()
            .is_err());
        assert!(ClusterBuilder::new()
            .placement(TopPlacement::Pinned(9))
            .build()
            .is_err());
    }

    #[test]
    fn live_placement_moves_top_to_most_loaded_node() {
        let mut cluster = ClusterBuilder::new()
            .topology(Topology::new(vec![2, 2, 2]).unwrap())
            .build()
            .unwrap();
        assert_eq!(cluster.top_node(), NodeId::new(0));
        // A cluster round always fills the tree evenly, so ingest counts
        // alone never move the top: uniform load keeps the incumbent.
        let batch = updates(8, 16);
        cluster
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .unwrap();
        let report = cluster.drive().unwrap();
        assert!(report.replacement.is_none());
        assert_eq!(report.top_node, NodeId::new(0));
        // An out-of-band signal (a deep pending queue reported for node 1)
        // tips the EWMA and the next round's boundary moves the top.
        cluster.observe_node_load(NodeId::new(1), 64.0);
        let estimates = cluster.load_estimates();
        assert!(estimates[1].1 > estimates[0].1);
        cluster
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .unwrap();
        let report = cluster.drive().unwrap();
        let moved = report.replacement.as_ref().expect("top must move");
        assert_eq!(moved.from, NodeId::new(0));
        assert_eq!(moved.to, NodeId::new(1));
        // The handoff ships the previous round's warm global intermediate.
        assert_eq!(moved.state_bytes, 16 * 4);
        assert!(moved.cost.latency > SimDuration::ZERO);
        assert_eq!(report.top_node, NodeId::new(1));
        assert_eq!(cluster.top_node(), NodeId::new(1));
        // Hop pricing follows the move: node 1's hop is now the local one.
        assert!(!report.hops[0].same_node);
        assert!(report.hops[1].same_node);
        // With no fresh signal the EWMA decays slowly: the top stays put
        // rather than churning back on the next round.
        cluster
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .unwrap();
        let report = cluster.drive().unwrap();
        assert!(report.replacement.is_none());
        assert_eq!(report.top_node, NodeId::new(1));
    }

    #[test]
    fn pinned_placement_never_moves() {
        let mut cluster = ClusterBuilder::new()
            .topology(Topology::new(vec![2, 2, 2]).unwrap())
            .placement(TopPlacement::Pinned(1))
            .build()
            .unwrap();
        cluster.observe_node_load(NodeId::new(0), 1000.0);
        let batch = updates(8, 16);
        cluster
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .unwrap();
        let report = cluster.drive().unwrap();
        assert!(report.replacement.is_none());
        assert_eq!(report.top_node, NodeId::new(1));
        assert!(!report.hops[0].same_node);
        assert!(report.hops[1].same_node);
    }

    #[test]
    fn identity_cluster_matches_flat_fedavg() {
        let topology = Topology::new(vec![2, 2, 2]).unwrap();
        let batch = updates(topology.total_updates(), 24);
        let mut cluster = ClusterBuilder::new()
            .topology(topology.clone())
            .build()
            .unwrap();
        assert_eq!(cluster.nodes(), 2);
        cluster
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .unwrap();
        let report = cluster.drive().unwrap();
        let flat = fedavg(&batch).unwrap();
        assert_eq!(report.update.samples, flat.samples);
        assert_eq!(report.updates_ingested(), 8);
        for (a, b) in report
            .update
            .model
            .as_slice()
            .iter()
            .zip(flat.model.as_slice())
        {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        // Every node contributed half the round through its own store.
        assert_eq!(report.nodes.len(), 2);
        for node in &report.nodes {
            assert_eq!(node.updates_ingested, 4);
        }
        // One hop stayed on the top node, one crossed the network.
        assert_eq!(report.hops.len(), 2);
        assert!(report.hops[0].same_node);
        assert!(!report.hops[1].same_node);
        assert!(report.hops[1].cost.latency > report.hops[0].cost.latency);
        assert_eq!(report.inter_node_wire_bytes(), 24 * 4);
        assert!(report.serialized_hop_latency() > SimDuration::ZERO);
    }

    #[test]
    fn quantized_hops_cross_fewer_bytes() {
        let topology = Topology::new(vec![2, 2, 3]).unwrap();
        let batch = updates(topology.total_updates(), 256);
        let run = |codec: CodecKind| {
            let mut cluster = ClusterBuilder::new()
                .topology(topology.clone())
                .codec(codec)
                .build()
                .unwrap();
            cluster
                .ingest_all(batch.iter().cloned().map(Update::Dense))
                .unwrap();
            cluster.drive().unwrap()
        };
        let dense = run(CodecKind::Identity);
        let quantized = run(CodecKind::Uniform8);
        assert!(quantized.inter_node_wire_bytes() * 3 < dense.inter_node_wire_bytes());
        assert!(quantized.serialized_hop_latency() < dense.serialized_hop_latency());
        // The compressed form is what the top node's store received.
        assert!(quantized.top_store_stats.encoded_puts > 0);
        assert_eq!(dense.top_store_stats.encoded_puts, 0);
    }

    #[test]
    fn clusters_are_reusable_and_stores_stay_bounded() {
        let mut cluster = ClusterBuilder::new()
            .topology(Topology::new(vec![2, 2, 2]).unwrap())
            .codec(CodecKind::Uniform4)
            .build()
            .unwrap();
        let batch = updates(8, 64);
        for _ in 0..3 {
            cluster
                .ingest_all(batch.iter().cloned().map(Update::Dense))
                .unwrap();
            let report = cluster.drive().unwrap();
            assert_eq!(report.updates_ingested(), 8);
            assert_eq!(cluster.pending_updates(), 0);
        }
        for session in cluster.node_sessions() {
            assert_eq!(
                session.store().stats().live_objects,
                0,
                "node rounds must not leak store objects"
            );
        }
        assert!(cluster.pool().stats().hits > 0, "codec scratch was pooled");
    }

    #[test]
    fn failed_round_is_discarded_on_every_node() {
        let mut cluster = ClusterBuilder::new()
            .topology(Topology::new(vec![2, 1, 2]).unwrap())
            .build()
            .unwrap();
        let batch = updates(4, 16);
        for update in batch.iter().take(3) {
            cluster.ingest(Update::Dense(update.clone())).unwrap();
        }
        // Wrong dimension on the last leaf: node 1's subtree fails mid-drive.
        cluster
            .ingest(Update::remote_bytes(vec![0u8; 8], 1, false))
            .unwrap();
        assert!(cluster.drive().is_err());
        assert_eq!(cluster.pending_updates(), 0);
        for session in cluster.node_sessions() {
            assert_eq!(session.store().stats().live_objects, 0);
        }
        // A fresh, fully valid round drives cleanly.
        cluster
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .unwrap();
        assert!(cluster.drive().is_ok());
    }

    #[test]
    fn for_load_builds_the_planner_shape() {
        let cluster = ClusterBuilder::new().for_load(40, 2, 0, 4).build().unwrap();
        // 10 updates per node at fan-in 2: a [2, 5] subtree per node.
        assert_eq!(cluster.nodes(), 4);
        assert_eq!(cluster.subtree(), &Topology::two_level(5, 2));
        // A capped interior fan-in grows deeper per-node subtrees.
        let deep = ClusterBuilder::new().for_load(64, 2, 4, 2).build().unwrap();
        assert!(deep.subtree().levels() > 2);
    }
}
