//! Global-model checkpointing to an external persistent store (Appendix B).
//!
//! The LIFL agent asynchronously checkpoints the global model after an
//! aggregator finishes a configured number of aggregations, so checkpointing
//! latency never appears on the aggregation critical path. This module
//! emulates the external storage service as a versioned in-memory map and
//! records how many bytes were written so experiments can account for it.

use lifl_types::{RoundId, SimTime};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A single stored checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Round (global model version) this checkpoint captures.
    pub round: RoundId,
    /// Serialized model bytes.
    pub data: Vec<u8>,
    /// Simulated time at which the write completed.
    pub written_at: SimTime,
}

#[derive(Debug, Default)]
struct Inner {
    checkpoints: BTreeMap<u64, Checkpoint>,
    bytes_written: u64,
}

/// The external persistent storage service used for model checkpoints.
#[derive(Debug, Clone, Default)]
pub struct CheckpointStore {
    inner: Arc<Mutex<Inner>>,
}

impl CheckpointStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes a checkpoint for `round`.
    pub fn save(&self, round: RoundId, data: Vec<u8>, written_at: SimTime) {
        let mut inner = self.inner.lock();
        inner.bytes_written += data.len() as u64;
        inner.checkpoints.insert(
            round.index(),
            Checkpoint {
                round,
                data,
                written_at,
            },
        );
    }

    /// Returns the checkpoint for `round`, if present.
    pub fn load(&self, round: RoundId) -> Option<Checkpoint> {
        self.inner.lock().checkpoints.get(&round.index()).cloned()
    }

    /// Returns the most recent checkpoint, if any. Used for recovery after an
    /// aggregator failure: aggregators are stateless, so a new instance starts
    /// from the latest global model.
    pub fn latest(&self) -> Option<Checkpoint> {
        self.inner.lock().checkpoints.values().next_back().cloned()
    }

    /// Number of checkpoints stored.
    pub fn len(&self) -> usize {
        self.inner.lock().checkpoints.len()
    }

    /// Whether any checkpoint has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().checkpoints.is_empty()
    }

    /// Total bytes written over the store's lifetime.
    pub fn bytes_written(&self) -> u64 {
        self.inner.lock().bytes_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_and_load() {
        let store = CheckpointStore::new();
        assert!(store.is_empty());
        store.save(RoundId::new(1), vec![1, 2, 3], SimTime::from_secs(5.0));
        store.save(RoundId::new(2), vec![4, 5], SimTime::from_secs(9.0));
        assert_eq!(store.len(), 2);
        assert_eq!(store.load(RoundId::new(1)).unwrap().data, vec![1, 2, 3]);
        assert!(store.load(RoundId::new(7)).is_none());
        assert_eq!(store.bytes_written(), 5);
    }

    #[test]
    fn latest_returns_highest_round() {
        let store = CheckpointStore::new();
        store.save(RoundId::new(3), vec![3], SimTime::ZERO);
        store.save(RoundId::new(10), vec![10], SimTime::ZERO);
        store.save(RoundId::new(7), vec![7], SimTime::ZERO);
        assert_eq!(store.latest().unwrap().round, RoundId::new(10));
    }

    #[test]
    fn overwrite_same_round() {
        let store = CheckpointStore::new();
        store.save(RoundId::new(1), vec![0; 10], SimTime::ZERO);
        store.save(RoundId::new(1), vec![1; 20], SimTime::ZERO);
        assert_eq!(store.len(), 1);
        assert_eq!(store.load(RoundId::new(1)).unwrap().data.len(), 20);
        assert_eq!(store.bytes_written(), 30);
    }
}
