//! The in-process threaded runtime produces exactly the FedAvg result,
//! driven through the unified `Session` API.

use lifl_core::session::{SessionBuilder, Update};
use lifl_fl::aggregate::{fedavg, ModelUpdate};
use lifl_fl::DenseModel;
use lifl_types::{ClientId, Topology};

fn updates(n: usize, dim: usize, seed: f32) -> Vec<ModelUpdate> {
    (0..n)
        .map(|i| {
            let values: Vec<f32> = (0..dim)
                .map(|d| seed + (i * dim + d) as f32 * 0.001)
                .collect();
            ModelUpdate::from_client(
                ClientId::new(i as u64),
                DenseModel::from_vec(values),
                (2 * i + 1) as u64,
            )
        })
        .collect()
}

fn drive(topology: Topology, updates: &[ModelUpdate]) -> ModelUpdate {
    let mut session = SessionBuilder::new()
        .topology(topology)
        .build()
        .expect("session");
    session
        .ingest_all(updates.iter().cloned().map(Update::Dense))
        .expect("ingest");
    session.drive().expect("drive").update
}

#[test]
fn hierarchy_of_threads_matches_flat_fedavg() {
    for (leaves, per_leaf) in [(2usize, 2usize), (4, 2), (3, 3), (8, 2)] {
        let updates = updates(leaves * per_leaf, 32, 0.5);
        let hierarchical = drive(Topology::two_level(leaves, per_leaf), &updates);
        let flat = fedavg(&updates).expect("fedavg");
        assert_eq!(hierarchical.samples, flat.samples);
        for (a, b) in hierarchical
            .model
            .as_slice()
            .iter()
            .zip(flat.model.as_slice())
        {
            assert!((a - b).abs() < 1e-4, "{leaves}x{per_leaf}: {a} vs {b}");
        }
    }
}

#[test]
fn deep_hierarchies_match_flat_fedavg() {
    // 3 and 4 levels: the shapes the pre-session API could not express.
    for fan_ins in [vec![2usize, 2, 2], vec![2, 2, 2, 2], vec![3, 2, 3]] {
        let topology = Topology::new(fan_ins.clone()).expect("topology");
        let updates = updates(topology.total_updates(), 32, -0.25);
        let hierarchical = drive(topology, &updates);
        let flat = fedavg(&updates).expect("fedavg");
        assert_eq!(hierarchical.samples, flat.samples, "{fan_ins:?}");
        for (a, b) in hierarchical
            .model
            .as_slice()
            .iter()
            .zip(flat.model.as_slice())
        {
            assert!((a - b).abs() < 1e-4, "{fan_ins:?}: {a} vs {b}");
        }
    }
}

#[test]
fn larger_payloads_still_aggregate_correctly() {
    let updates = updates(4, 4096, -1.0);
    let result = drive(Topology::two_level(2, 2), &updates);
    assert_eq!(result.model.dim(), 4096);
    assert!(result.model.l2_norm() > 0.0);
}
