//! R7: the justfile's `ci` recipe and `.github/workflows/ci.yml` must run the
//! same command list, so a local `just ci` keeps mirroring what CI gates on.
//!
//! This ports the old `ci/check_ci_sync.sh` awk pipeline: collect the body
//! lines of every recipe the justfile's `ci:` recipe depends on, collect
//! every `run:` command from the workflow (single-line values plus the
//! content lines of `run: |` blocks), drop the `rustup` toolchain bootstrap
//! lines (CI-only by design), and diff the two sets — drift in either
//! direction is a finding anchored at the line that has the extra command.

use crate::{Finding, Rule};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

const JUSTFILE: &str = "justfile";
const WORKFLOW: &str = ".github/workflows/ci.yml";

/// Checks justfile ↔ ci.yml command sync. Returns the findings and, when the
/// two agree, the number of commands they agree on (reported by the CLI the
/// way the old shell guard did).
pub fn ci_sync(root: &Path) -> (Vec<Finding>, Option<usize>) {
    let mut out = Vec::new();
    let justfile = match fs::read_to_string(root.join(JUSTFILE)) {
        Ok(t) => t,
        Err(_) => {
            out.push(missing(
                JUSTFILE,
                "justfile not found at the workspace root",
            ));
            return (out, None);
        }
    };
    let workflow = match fs::read_to_string(root.join(WORKFLOW)) {
        Ok(t) => t,
        Err(_) => {
            out.push(missing(WORKFLOW, "CI workflow not found"));
            return (out, None);
        }
    };
    let just_cmds = match justfile_ci_commands(&justfile) {
        Ok(cmds) => cmds,
        Err(msg) => {
            out.push(missing(JUSTFILE, &msg));
            return (out, None);
        }
    };
    let yml_cmds = workflow_commands(&workflow);

    for (cmd, &line) in &yml_cmds {
        if !just_cmds.contains_key(cmd) {
            out.push(Finding {
                file: WORKFLOW.to_string(),
                line,
                rule: Rule::CiSync,
                message: format!(
                    "CI runs `{cmd}` but no recipe reachable from the justfile's \
                     `ci:` recipe does; add it so local `just ci` mirrors CI"
                ),
            });
        }
    }
    for (cmd, &line) in &just_cmds {
        if !yml_cmds.contains_key(cmd) {
            out.push(Finding {
                file: JUSTFILE.to_string(),
                line,
                rule: Rule::CiSync,
                message: format!(
                    "`just ci` runs `{cmd}` but no ci.yml step does; add a named \
                     step so CI gates on it"
                ),
            });
        }
    }
    if out.is_empty() {
        (out, Some(just_cmds.len()))
    } else {
        (out, None)
    }
}

fn missing(file: &str, msg: &str) -> Finding {
    Finding {
        file: file.to_string(),
        line: 1,
        rule: Rule::CiSync,
        message: msg.to_string(),
    }
}

/// Non-`rustup` command → 1-based line, for every body line of every recipe
/// the `ci:` recipe depends on.
fn justfile_ci_commands(text: &str) -> Result<BTreeMap<String, u32>, String> {
    let deps: Vec<&str> = text
        .lines()
        .find_map(|l| l.strip_prefix("ci: "))
        .map(|rest| rest.split_whitespace().collect())
        .ok_or_else(|| "no `ci:` recipe found in justfile".to_string())?;
    let mut cmds = BTreeMap::new();
    for recipe in deps {
        let header = format!("{recipe}:");
        let mut in_body = false;
        for (i, line) in text.lines().enumerate() {
            if line == header || line.starts_with(&format!("{header} ")) {
                in_body = true;
                continue;
            }
            if in_body {
                if !line.starts_with(' ') && !line.starts_with('\t') {
                    in_body = false;
                    continue;
                }
                let cmd = line.trim();
                if cmd.is_empty() || cmd.starts_with('#') || cmd.starts_with("rustup") {
                    continue;
                }
                cmds.entry(cmd.to_string()).or_insert(i as u32 + 1);
            }
        }
    }
    Ok(cmds)
}

/// Non-`rustup` command → 1-based line for every `run:` step in the workflow:
/// single-line `run: <cmd>` values plus each content line of `run: |` blocks
/// (lines indented deeper than the `run:` line itself).
fn workflow_commands(text: &str) -> BTreeMap<String, u32> {
    let mut cmds = BTreeMap::new();
    let mut block_indent: Option<usize> = None;
    for (i, line) in text.lines().enumerate() {
        let indent = line.len() - line.trim_start().len();
        let trimmed = line.trim();
        if let Some(run_indent) = block_indent {
            if !trimmed.is_empty() && indent > run_indent {
                if !trimmed.starts_with("rustup") {
                    cmds.entry(trimmed.to_string()).or_insert(i as u32 + 1);
                }
                continue;
            }
            block_indent = None;
        }
        if let Some(rest) = trimmed.strip_prefix("run:") {
            let rest = rest.trim();
            if rest == "|" {
                block_indent = Some(indent);
            } else if !rest.is_empty() && !rest.starts_with("rustup") {
                cmds.entry(rest.to_string()).or_insert(i as u32 + 1);
            }
        }
    }
    cmds
}

#[cfg(test)]
mod tests {
    use super::*;

    const JUST: &str = "\
default: ci

ci: build test

build:
    cargo build --release

test:
    cargo test -q
    LIFL_FORCE_SCALAR=1 cargo test -q

unrelated:
    cargo bench
";

    const YML: &str = "\
jobs:
  main:
    steps:
      - name: toolchain
        run: rustup toolchain install stable
      - name: build
        run: cargo build --release
      - name: test
        run: |
          cargo test -q
          LIFL_FORCE_SCALAR=1 cargo test -q
";

    #[test]
    fn recipes_reachable_from_ci_only() {
        let cmds = justfile_ci_commands(JUST).unwrap();
        assert_eq!(cmds.len(), 3);
        assert!(cmds.contains_key("cargo build --release"));
        assert!(cmds.contains_key("LIFL_FORCE_SCALAR=1 cargo test -q"));
        assert!(!cmds.contains_key("cargo bench"));
    }

    #[test]
    fn workflow_run_lines_and_blocks() {
        let cmds = workflow_commands(YML);
        assert_eq!(cmds.len(), 3, "{cmds:?}");
        assert!(!cmds.keys().any(|c| c.starts_with("rustup")));
        assert_eq!(cmds["cargo test -q"], 10);
    }

    #[test]
    fn in_sync_sets_match() {
        let just = justfile_ci_commands(JUST).unwrap();
        let yml = workflow_commands(YML);
        let j: Vec<_> = just.keys().collect();
        let y: Vec<_> = yml.keys().collect();
        assert_eq!(j, y);
    }
}
