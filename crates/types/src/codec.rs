//! Model-update codec configuration.
//!
//! Every `ModelUpdate` in the seed travelled the data plane as full-precision
//! parameters, so payload bytes — not hand-off mechanics — dominated the
//! simulated transport costs at scale. [`CodecKind`] names the lossy (and one
//! lossless) representations the platform can put on the wire instead; the
//! actual encoder/decoder lives in `lifl-fl::codec`, while this enum is the
//! *configuration* vocabulary shared by the cost models (`lifl-dataplane`),
//! the platform (`lifl-core`) and the experiment sweeps.
//!
//! The byte-size math here is the single source of truth for how many bytes a
//! codec puts on the wire for a given dense payload, so the simulator and the
//! real in-process runtime account identically.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Bytes of the self-describing `EncodedUpdate` storage header: a 1-byte
/// codec tag, 3 reserved bytes, a `u32` element count, an `f32` per-tensor
/// scale and a `u32` kept-element count (used by `TopK`).
///
/// The header travels the *control* path — exactly like the 16-byte object
/// keys and sample weights the SKMSG queue already moves out of band — so it
/// is part of what sits in shared memory but **not** of the data-plane byte
/// accounting ([`CodecKind::encoded_bytes`] counts payload only).
pub const WIRE_HEADER_BYTES: u64 = 16;

/// How a model update is represented on the wire and in shared memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum CodecKind {
    /// Full-precision little-endian `f32` parameters (bit-exact, the seed
    /// behaviour).
    #[default]
    Identity,
    /// Stochastic uniform quantization to signed 8-bit levels with one `f32`
    /// scale per tensor (~4x smaller than `Identity`).
    Uniform8,
    /// Stochastic uniform quantization to signed 4-bit levels, two values per
    /// byte (~8x smaller than `Identity`).
    Uniform4,
    /// Magnitude top-k sparsification: only the `permille`/1000 largest-magnitude
    /// coordinates travel, as `(u32 index, f32 value)` pairs.
    TopK {
        /// Kept coordinates per thousand (1..=1000).
        permille: u16,
    },
}

impl CodecKind {
    /// A short stable label for tables and Gantt rows.
    pub fn label(self) -> String {
        match self {
            CodecKind::Identity => "identity".to_string(),
            CodecKind::Uniform8 => "uniform8".to_string(),
            CodecKind::Uniform4 => "uniform4".to_string(),
            CodecKind::TopK { permille } => format!("topk{permille}"),
        }
    }

    /// The codecs swept by the `fig_codec` ablation, in decreasing wire size.
    pub fn ablation_set() -> [CodecKind; 4] {
        [
            CodecKind::Identity,
            CodecKind::Uniform8,
            CodecKind::Uniform4,
            CodecKind::TopK { permille: 50 },
        ]
    }

    /// Number of `f32` parameters a dense payload of `dense_bytes` holds.
    fn params(dense_bytes: u64) -> u64 {
        dense_bytes / 4
    }

    /// Payload bytes this codec puts on the data plane for a dense `f32`
    /// payload of `dense_bytes` (the `Identity` representation). The 16-byte
    /// descriptor header rides the SKMSG control channel with the object key
    /// and weight, so it does not appear here; with `Identity` the accounting
    /// is bit-identical to the seed.
    pub fn encoded_bytes(self, dense_bytes: u64) -> u64 {
        let params = Self::params(dense_bytes);
        match self {
            CodecKind::Identity => dense_bytes,
            CodecKind::Uniform8 => params,
            CodecKind::Uniform4 => params.div_ceil(2),
            CodecKind::TopK { permille } => 8 * Self::top_k_kept(params, permille),
        }
    }

    /// How many coordinates `TopK { permille }` keeps out of `params`.
    pub fn top_k_kept(params: u64, permille: u16) -> u64 {
        if params == 0 {
            return 0;
        }
        (params * u64::from(permille.clamp(1, 1000)) / 1000).max(1)
    }

    /// Ratio of dense to encoded bytes (>= 1 for every non-`Identity` codec on
    /// non-trivial payloads).
    pub fn compression_ratio(self, dense_bytes: u64) -> f64 {
        let encoded = self.encoded_bytes(dense_bytes);
        if encoded == 0 {
            return 1.0;
        }
        dense_bytes as f64 / encoded as f64
    }

    /// Whether encode→decode reproduces the input exactly.
    pub fn is_lossless(self) -> bool {
        matches!(self, CodecKind::Identity)
    }
}

impl fmt::Display for CodecKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_free_of_overhead() {
        assert_eq!(CodecKind::Identity.encoded_bytes(1024), 1024);
        assert!(CodecKind::Identity.is_lossless());
        assert_eq!(CodecKind::Identity.compression_ratio(1 << 20), 1.0);
    }

    #[test]
    fn uniform8_is_at_least_4x_smaller_at_scale() {
        let dense = 44 * 1024 * 1024;
        let ratio = CodecKind::Uniform8.compression_ratio(dense);
        assert!(ratio >= 4.0, "uniform8 ratio {ratio}");
        let ratio4 = CodecKind::Uniform4.compression_ratio(dense);
        assert!(ratio4 >= 8.0, "uniform4 ratio {ratio4}");
        assert!(ratio4 > ratio);
    }

    #[test]
    fn sizes_shrink_monotonically_across_ablation_set() {
        let dense = 232 * 1024 * 1024;
        let sizes: Vec<u64> = CodecKind::ablation_set()
            .iter()
            .map(|c| c.encoded_bytes(dense))
            .collect();
        for pair in sizes.windows(2) {
            assert!(pair[0] > pair[1], "{sizes:?} not strictly decreasing");
        }
    }

    #[test]
    fn top_k_keeps_at_least_one_coordinate() {
        assert_eq!(CodecKind::top_k_kept(10, 1), 1);
        assert_eq!(CodecKind::top_k_kept(1000, 250), 250);
        assert_eq!(CodecKind::top_k_kept(0, 500), 0);
        // permille is clamped into 1..=1000.
        assert_eq!(CodecKind::top_k_kept(1000, 0), 1);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(CodecKind::Uniform8.to_string(), "uniform8");
        assert_eq!(CodecKind::TopK { permille: 50 }.to_string(), "topk50");
    }

    #[test]
    fn serde_roundtrip() {
        for codec in CodecKind::ablation_set() {
            let json = serde_json::to_string(&codec).unwrap();
            let back: CodecKind = serde_json::from_str(&json).unwrap();
            assert_eq!(codec, back);
        }
    }
}
