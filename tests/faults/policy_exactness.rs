//! The explicit [`FoldPolicy::FedAvg`] path must be bit-exact with the
//! default (pre-policy) fold for every `CodecKind` × shard count, over both
//! the single-process session and the federated cluster: opting into the
//! policy enum is free until a robust policy is actually selected.

use crate::util::{assert_bit_exact, updates};
use lifl_core::cluster::ClusterBuilder;
use lifl_core::session::{SessionBuilder, Update};
use lifl_types::{CodecKind, FoldPolicy, Topology};

const DIM: usize = 48;

fn topology() -> Topology {
    Topology::new(vec![2, 2, 2]).expect("topology")
}

/// Acceptance: for every codec in the ablation set and both shard counts,
/// a session built with an explicit `FoldPolicy::FedAvg` produces the same
/// model bits, sample count and wire accounting as a default-built session.
#[test]
fn explicit_fedavg_session_is_bit_exact_with_default() {
    let batch = updates(topology().total_updates(), DIM);
    for codec in CodecKind::ablation_set() {
        for shards in [1usize, 4] {
            let mut default_session = SessionBuilder::new()
                .topology(topology())
                .codec(codec)
                .shards(shards)
                .build()
                .unwrap();
            let mut explicit = SessionBuilder::new()
                .topology(topology())
                .codec(codec)
                .shards(shards)
                .fold_policy(FoldPolicy::FedAvg)
                .build()
                .unwrap();
            for update in &batch {
                default_session
                    .ingest(Update::Dense(update.clone()))
                    .unwrap();
                explicit.ingest(Update::Dense(update.clone())).unwrap();
            }
            let want = default_session.drive().unwrap();
            let got = explicit.drive().unwrap();
            assert_eq!(got.update.samples, want.update.samples);
            assert_eq!(
                got.ingress_wire_bytes, want.ingress_wire_bytes,
                "{codec}/{shards}"
            );
            assert_bit_exact(
                &got.update.model,
                &want.update.model,
                &format!("session {codec}/{shards}"),
            );
        }
    }
}

/// Acceptance: the same equivalence holds across the federated cluster — the
/// policy is threaded through every child session and the top session, and
/// the FedAvg arm changes nothing about the hop or fold pipeline.
#[test]
fn explicit_fedavg_cluster_is_bit_exact_with_default() {
    let batch = updates(topology().total_updates(), DIM);
    for codec in CodecKind::ablation_set() {
        for shards in [1usize, 4] {
            let mut default_cluster = ClusterBuilder::new()
                .topology(topology())
                .codec(codec)
                .shards(shards)
                .build()
                .unwrap();
            let mut explicit = ClusterBuilder::new()
                .topology(topology())
                .codec(codec)
                .shards(shards)
                .fold_policy(FoldPolicy::FedAvg)
                .build()
                .unwrap();
            default_cluster
                .ingest_all(batch.iter().cloned().map(Update::Dense))
                .unwrap();
            explicit
                .ingest_all(batch.iter().cloned().map(Update::Dense))
                .unwrap();
            let want = default_cluster.drive().unwrap();
            let got = explicit.drive().unwrap();
            assert_eq!(got.update.samples, want.update.samples);
            assert_eq!(
                got.inter_node_wire_bytes(),
                want.inter_node_wire_bytes(),
                "{codec}/{shards}"
            );
            assert_bit_exact(
                &got.update.model,
                &want.update.model,
                &format!("cluster {codec}/{shards}"),
            );
        }
    }
}
