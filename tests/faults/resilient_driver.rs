//! The multi-round training driver over a fault-tolerant cluster: a child
//! kill mid-round costs only re-sends of cached updates (bit-exact with a
//! failure-free driver), and a top-host kill restores the driver's global
//! model bit-exactly from the latest checkpoint.

use crate::util::assert_bit_exact;
use lifl_core::cluster::{Cluster, ClusterBuilder, FaultToleranceConfig};
use lifl_core::recovery::model_from_bytes;
use lifl_core::training::{TrainingConfig, TrainingDriver};
use lifl_fl::client::ClientAvailability;
use lifl_fl::dataset::{DatasetConfig, FederatedDataset};
use lifl_fl::population::{Population, PopulationConfig};
use lifl_fl::trainer::TrainerConfig;
use lifl_simcore::SimRng;
use lifl_types::{LiflError, NodeId, Topology};

/// 8 updates per round, split by the cluster into 2 nodes of [2, 2]
/// subtrees.
fn topology() -> Topology {
    Topology::new(vec![2, 2, 2]).expect("topology")
}

fn fixtures(seed: u64) -> (FederatedDataset, Population, SimRng) {
    let mut rng = SimRng::from_seed(seed);
    let dataset = FederatedDataset::generate(
        DatasetConfig {
            num_clients: 24,
            num_features: 12,
            num_classes: 6,
            mean_samples_per_client: 40,
            dirichlet_alpha: 0.5,
            test_samples: 300,
            noise_std: 0.4,
        },
        &mut rng,
    );
    let population = Population::generate(
        PopulationConfig {
            total_clients: 24,
            active_per_round: 8,
            availability: ClientAvailability::AlwaysOn,
            mean_samples: 40,
            speed_spread: 0.3,
        },
        &mut rng,
    );
    (dataset, population, rng)
}

fn driver(cluster: Cluster, seed: u64) -> (TrainingDriver<Cluster>, SimRng) {
    let (dataset, population, rng) = fixtures(seed);
    let driver = TrainingDriver::new(
        cluster,
        dataset,
        population,
        TrainingConfig {
            trainer: TrainerConfig {
                batch_size: 16,
                learning_rate: 0.05,
                local_epochs: 2,
            },
            rounds: 3,
            eval_every: 1,
            ..TrainingConfig::default()
        },
    );
    (driver, rng)
}

fn fault_cluster(checkpoint_every: u64) -> Cluster {
    ClusterBuilder::new()
        .topology(topology())
        .fault_tolerance(FaultToleranceConfig {
            checkpoint_every,
            ..FaultToleranceConfig::default()
        })
        .build()
        .expect("cluster")
}

/// Acceptance: a child session killed mid-round costs the driver one retry
/// over cached updates — no re-training — and the recovered round is
/// bit-exact with an undisturbed driver on the same seed.
#[test]
fn child_kill_mid_round_recovers_bit_exact_from_cached_updates() {
    let seed = 42;
    let plain = ClusterBuilder::new().topology(topology()).build().unwrap();
    let (mut clean, mut clean_rng) = driver(plain, seed);
    clean.run_round(&mut clean_rng).unwrap();

    let (mut resilient, mut rng) = driver(fault_cluster(1), seed);
    // Node 1 dies after node 0's intermediate already reached the top: the
    // retry must dedup the surviving hop and re-send only node 1's clients.
    resilient
        .backend_mut()
        .schedule_node_failure(NodeId::new(1), 1)
        .unwrap();
    let round = resilient.run_round_resilient(&mut rng).unwrap();
    assert_eq!(round.updates, 8);
    assert_eq!(round.dropped, 0);
    let stats = resilient.backend().fault_stats().unwrap();
    assert_eq!(stats.node_restarts, 1);
    assert_eq!(stats.deduped_hops, 1);
    assert_eq!(stats.lost_updates, 4);
    assert_bit_exact(
        resilient.global_model(),
        clean.global_model(),
        "driver after child kill",
    );
    let clean_round = &clean.history()[0];
    assert_eq!(round.train_loss, clean_round.train_loss);
    assert_eq!(round.accuracy, clean_round.accuracy);
    // The next round needs no retries and runs clean.
    let next = resilient.run_round_resilient(&mut rng).unwrap();
    assert_eq!(next.updates, 8);
    assert_eq!(
        resilient.backend().fault_stats().unwrap().node_restarts,
        1,
        "no further restarts"
    );
}

/// Acceptance: a top-host kill loses the in-flight round but the driver
/// adopts the latest checkpoint — bit-exact with both the checkpointed bytes
/// and the previous committed round — and keeps training from it.
#[test]
fn top_kill_restores_the_drivers_global_model_from_the_checkpoint() {
    let (mut driver, mut rng) = driver(fault_cluster(1), 7);
    // Round 1 commits and checkpoints.
    driver.run_round_resilient(&mut rng).unwrap();
    let committed = driver.global_model().clone();
    // Round 2 dies at the top before any hop lands.
    let top = driver.backend().top_node();
    driver.backend_mut().schedule_node_failure(top, 0).unwrap();
    match driver.run_round_resilient(&mut rng) {
        Err(LiflError::AggregatorFailure { .. }) => {}
        other => panic!("expected an aggregator failure, got {other:?}"),
    }
    assert_eq!(driver.history().len(), 1, "the lost round is not recorded");
    // The driver's global model was rolled back to the checkpoint, which is
    // the committed round-1 model bit-for-bit.
    assert_bit_exact(driver.global_model(), &committed, "restored checkpoint");
    let latest = driver
        .backend()
        .checkpoint_store()
        .unwrap()
        .latest()
        .expect("round 1 was checkpointed");
    assert_bit_exact(
        &model_from_bytes(&latest.data).unwrap(),
        &committed,
        "checkpointed bytes",
    );
    assert_eq!(driver.backend().fault_stats().unwrap().top_recoveries, 1);
    // Re-running the round against the restored model succeeds.
    let rerun = driver.run_round_resilient(&mut rng).unwrap();
    assert_eq!(rerun.updates, 8);
    assert_eq!(driver.history().len(), 2);
}
