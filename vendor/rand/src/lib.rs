//! Minimal offline stand-in for the `rand` crate (0.8-style API).
//!
//! Provides [`RngCore`], [`SeedableRng`], and [`Rng`] with `gen_range` over
//! half-open and inclusive ranges of the integer and float types this
//! workspace samples, plus `gen_bool`. The generators in [`rngs`] are
//! deterministic xorshift64* streams seeded through SplitMix64 — statistically
//! fine for simulations and tests, not cryptographic.

/// Low-level generator interface.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p.clamp(0.0, 1.0)
    }

    /// Samples a uniform value of type `T` (floats in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Converts 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws a uniform sample from `self`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let unit = unit_f64(rng.next_u64()) as $t;
                start + (end - start) * unit
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Types with a standard uniform distribution (floats in `[0, 1)`).
pub trait Standard: Sized {
    /// Draws a standard-distributed sample.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: used to expand seeds into generator state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    macro_rules! define_rng {
        ($(#[$doc:meta])* $name:ident) => {
            $(#[$doc])*
            #[derive(Debug, Clone)]
            pub struct $name {
                state: u64,
            }

            impl SeedableRng for $name {
                fn seed_from_u64(seed: u64) -> Self {
                    let mut expander = seed;
                    let mut state = splitmix64(&mut expander);
                    if state == 0 {
                        state = 0x9E37_79B9_7F4A_7C15;
                    }
                    $name { state }
                }
            }

            impl RngCore for $name {
                fn next_u32(&mut self) -> u32 {
                    (self.next_u64() >> 32) as u32
                }

                fn next_u64(&mut self) -> u64 {
                    // xorshift64*.
                    let mut x = self.state;
                    x ^= x >> 12;
                    x ^= x << 25;
                    x ^= x >> 27;
                    self.state = x;
                    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
                }

                fn fill_bytes(&mut self, dest: &mut [u8]) {
                    for chunk in dest.chunks_mut(8) {
                        let bytes = self.next_u64().to_le_bytes();
                        chunk.copy_from_slice(&bytes[..chunk.len()]);
                    }
                }
            }
        };
    }

    define_rng!(
        /// Small, fast generator (stand-in for rand's `SmallRng`).
        SmallRng
    );
    define_rng!(
        /// Default generator (stand-in for rand's `StdRng`).
        StdRng
    );
}
