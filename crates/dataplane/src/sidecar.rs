//! Container-based sidecar model (§2.3): an always-on proxy container that
//! intercepts and forwards every message to/from a serverless function.

use lifl_types::{CpuCycles, SimDuration};

/// Cost model of a container sidecar on the datapath.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContainerSidecarModel {
    /// Added latency per mebibyte for interception + forwarding, seconds.
    pub latency_per_mib: f64,
    /// Fixed added latency per message, seconds.
    pub latency_fixed: f64,
    /// CPU cycles per mebibyte for the extra network processing.
    pub cycles_per_mib: f64,
    /// Idle (always-on) CPU share of one sidecar container, in cores.
    pub idle_cores: f64,
    /// Resident memory of one sidecar container, bytes.
    pub resident_memory_bytes: u64,
}

impl Default for ContainerSidecarModel {
    fn default() -> Self {
        ContainerSidecarModel {
            // One interception (RX proxy + TX proxy) roughly doubles the
            // kernel-path work; calibrated so SL ends up ~6x LIFL (Fig. 7(a)).
            latency_per_mib: 0.0058,
            latency_fixed: 0.003,
            cycles_per_mib: 22.0e6,
            idle_cores: 0.05,
            resident_memory_bytes: 64 * 1024 * 1024,
        }
    }
}

impl ContainerSidecarModel {
    /// Added latency for one message of `bytes` through the sidecar.
    pub fn latency(&self, bytes: u64) -> SimDuration {
        let mib = bytes as f64 / (1024.0 * 1024.0);
        SimDuration::from_secs(self.latency_fixed + self.latency_per_mib * mib)
    }

    /// Added CPU for one message of `bytes`.
    pub fn cpu(&self, bytes: u64) -> CpuCycles {
        let mib = bytes as f64 / (1024.0 * 1024.0);
        CpuCycles(self.cycles_per_mib * mib)
    }

    /// Bytes the sidecar buffers for one in-flight message.
    pub fn buffered_bytes(&self, bytes: u64) -> u64 {
        bytes
    }

    /// CPU-seconds of idle cost over a wall-clock interval, per sidecar.
    pub fn idle_cpu_time(&self, wall: SimDuration) -> SimDuration {
        wall.scaled(self.idle_cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_cost_is_load_independent() {
        let sc = ContainerSidecarModel::default();
        let idle = sc.idle_cpu_time(SimDuration::from_secs(100.0));
        assert!((idle.as_secs() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn message_costs_scale() {
        let sc = ContainerSidecarModel::default();
        assert!(sc.latency(200 * 1024 * 1024) > sc.latency(1024));
        assert!(sc.cpu(200 * 1024 * 1024).0 > sc.cpu(1024).0);
        assert_eq!(sc.buffered_bytes(7), 7);
    }
}
