//! Server-optimizer step cost (FedAvg vs the adaptive family) at ResNet-scale
//! parameter counts — the per-round control-plane cost of swapping the server
//! update rule on top of LIFL's aggregation hierarchy.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lifl_fl::server_opt::{ServerOptConfig, ServerOptKind, ServerOptimizer};
use lifl_fl::DenseModel;

fn bench(c: &mut Criterion) {
    // ResNet-18 has ~11.7M parameters; use 1M so each sample stays fast while
    // the relative cost ordering (FedAvg < Adagrad < Adam/Yogi) is preserved.
    let dim = 1_000_000;
    let aggregate = DenseModel::from_vec((0..dim).map(|i| (i % 97) as f32 * 1e-4).collect());
    let mut group = c.benchmark_group("server_optimizers");
    group.sample_size(10);
    for kind in ServerOptKind::all() {
        group.bench_with_input(
            BenchmarkId::new("step_1M_params", kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut optimizer = ServerOptimizer::new(ServerOptConfig::for_kind(kind))
                        .expect("valid config");
                    let mut global = DenseModel::zeros(dim);
                    optimizer
                        .step(&mut global, &aggregate)
                        .expect("dimensions match");
                    global
                })
            },
        );
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
