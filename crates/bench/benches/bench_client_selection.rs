//! Client-selection overhead: uniform random vs Oort-style guided selection
//! over populations up to the paper's 2,800 clients (§6.2, related work).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lifl_fl::client::ClientAvailability;
use lifl_fl::oort::{OortConfig, OortSelector};
use lifl_fl::population::{Population, PopulationConfig};
use lifl_fl::selector::{select_clients, SelectionStrategy};
use lifl_simcore::SimRng;
use lifl_types::ModelKind;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("client_selection");
    group.sample_size(20);
    for total in [500usize, 2800] {
        let mut rng = SimRng::from_seed(7);
        let population = Population::generate(
            PopulationConfig {
                total_clients: total,
                active_per_round: 120,
                availability: ClientAvailability::Hibernating { max_secs: 60.0 },
                mean_samples: 120,
                speed_spread: 0.6,
            },
            &mut rng,
        );
        let pool = population.clients().to_vec();
        let mut oort = OortSelector::new(OortConfig::default()).expect("valid config");
        for client in pool.iter().take(total / 2) {
            oort.record_feedback(client.id, 1.0 + (client.id.index() % 5) as f64);
        }
        group.bench_with_input(BenchmarkId::new("uniform_random", total), &total, |b, _| {
            let mut rng = SimRng::from_seed(9);
            b.iter(|| {
                let picked = select_clients(
                    SelectionStrategy::UniformRandom,
                    &pool,
                    120,
                    ModelKind::ResNet18,
                    &mut rng,
                );
                assert_eq!(picked.len(), 120);
            })
        });
        group.bench_with_input(BenchmarkId::new("oort_guided", total), &total, |b, _| {
            let mut rng = SimRng::from_seed(9);
            b.iter(|| {
                let picked = oort.select(&pool, 120, &mut rng);
                assert_eq!(picked.len(), 120);
            })
        });
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
