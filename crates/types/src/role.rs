//! Aggregator roles and system identities.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Role of an aggregator inside the aggregation hierarchy (§2.2, §5.2).
///
/// LIFL's runtimes are homogeneous, so a single instance may change role over
/// its lifetime (opportunistic reuse, §5.3): a leaf is promoted to middle, and
/// a middle to top.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AggregatorRole {
    /// Aggregates raw client updates.
    Leaf,
    /// Aggregates intermediate updates from leaves on the same node.
    Middle,
    /// Produces the new global model version.
    Top,
}

impl AggregatorRole {
    /// The role an instance is promoted to under opportunistic reuse (§5.3),
    /// or `None` if it is already the top aggregator.
    pub fn promoted(self) -> Option<AggregatorRole> {
        match self {
            AggregatorRole::Leaf => Some(AggregatorRole::Middle),
            AggregatorRole::Middle => Some(AggregatorRole::Top),
            AggregatorRole::Top => None,
        }
    }

    /// Hierarchy level with leaves at 0.
    pub fn level(self) -> u8 {
        match self {
            AggregatorRole::Leaf => 0,
            AggregatorRole::Middle => 1,
            AggregatorRole::Top => 2,
        }
    }
}

impl fmt::Display for AggregatorRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggregatorRole::Leaf => "leaf",
            AggregatorRole::Middle => "middle",
            AggregatorRole::Top => "top",
        };
        f.write_str(s)
    }
}

/// The systems compared in the evaluation (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// LIFL with its full data plane and orchestration.
    Lifl,
    /// Serverful system following Google's FL stack / PAPAYA (Fig. 2(a)), gRPC channels.
    Serverful,
    /// Serverless system following FedKeeper/AdaFed on Knative (Fig. 2(b)).
    Serverless,
    /// Serverless control plane with hierarchical aggregation and LIFL's data plane
    /// but Knative "least connection" load balancing and lazy aggregation (Fig. 8 baseline).
    SlHierarchical,
    /// Monolithic serverful message-queuing setup (Fig. 5, Appendix F).
    SfMono,
    /// Microservice-based serverful setup with a message broker (Fig. 5, Appendix F).
    SfMicro,
    /// Basic serverless setup with broker + sidecar (Fig. 5, Appendix F).
    SlBasic,
}

impl SystemKind {
    /// Short label used in experiment tables (matches the paper's legends).
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Lifl => "LIFL",
            SystemKind::Serverful => "SF",
            SystemKind::Serverless => "SL",
            SystemKind::SlHierarchical => "SL-H",
            SystemKind::SfMono => "SF-mono",
            SystemKind::SfMicro => "SF-micro",
            SystemKind::SlBasic => "SL-B",
        }
    }
}

impl fmt::Display for SystemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotion_chain_terminates_at_top() {
        assert_eq!(
            AggregatorRole::Leaf.promoted(),
            Some(AggregatorRole::Middle)
        );
        assert_eq!(AggregatorRole::Middle.promoted(), Some(AggregatorRole::Top));
        assert_eq!(AggregatorRole::Top.promoted(), None);
    }

    #[test]
    fn levels_are_ordered() {
        assert!(AggregatorRole::Leaf.level() < AggregatorRole::Middle.level());
        assert!(AggregatorRole::Middle.level() < AggregatorRole::Top.level());
        assert!(AggregatorRole::Leaf < AggregatorRole::Top);
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(SystemKind::Lifl.label(), "LIFL");
        assert_eq!(SystemKind::Serverful.label(), "SF");
        assert_eq!(SystemKind::Serverless.label(), "SL");
        assert_eq!(SystemKind::SlHierarchical.label(), "SL-H");
    }

    #[test]
    fn role_display() {
        assert_eq!(AggregatorRole::Middle.to_string(), "middle");
    }
}
