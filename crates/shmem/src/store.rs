//! The shared-memory object store managed by the LIFL agent (§4.1).

use crate::object::{ArcObject, SharedObject};
use lifl_types::{LiflError, ObjectKey, Result};
use parking_lot::Mutex;
use rand::RngCore;
use std::collections::HashMap;
use std::sync::Arc;

/// Counters describing the state of an [`ObjectStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Bytes currently allocated to live objects.
    pub allocated_bytes: u64,
    /// High-water mark of allocated bytes.
    pub peak_bytes: u64,
    /// Number of live objects.
    pub live_objects: usize,
    /// Total objects ever put.
    pub total_puts: u64,
    /// Total objects recycled.
    pub total_recycled: u64,
    /// Capacity in bytes (0 = unbounded).
    pub capacity_bytes: u64,
    /// Objects put in compressed (encoded) form.
    pub encoded_puts: u64,
    /// Actual bytes of every encoded payload ever put.
    pub encoded_bytes: u64,
    /// Bytes the encoded payloads would have occupied dense.
    pub dense_equivalent_bytes: u64,
}

impl StoreStats {
    /// Bytes the update codec kept out of shared memory over the store's
    /// lifetime (dense equivalent minus actual encoded bytes).
    pub fn bytes_saved(&self) -> u64 {
        self.dense_equivalent_bytes
            .saturating_sub(self.encoded_bytes)
    }
}

struct Inner {
    objects: HashMap<ObjectKey, ArcObject>,
    stats: StoreStats,
    rng: rand::rngs::StdRng,
}

/// A per-node shared-memory object store.
///
/// The store only holds **immutable** objects, mirroring the paper's design
/// choice that "LIFL only allows immutable (read-only) objects to guarantee
/// the safe sharing of model updates, eliminating the need for locks" (§4.1).
/// The store itself is internally synchronised so gateways and aggregators on
/// different threads can use it concurrently.
#[derive(Clone)]
pub struct ObjectStore {
    inner: Arc<Mutex<Inner>>,
}

impl Default for ObjectStore {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ObjectStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ObjectStore")
            .field("live_objects", &stats.live_objects)
            .field("allocated_bytes", &stats.allocated_bytes)
            .field("capacity_bytes", &stats.capacity_bytes)
            .finish()
    }
}

impl ObjectStore {
    /// Creates an unbounded store.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates a store with a capacity limit in bytes (0 means unbounded).
    pub fn with_capacity(capacity_bytes: u64) -> Self {
        use rand::SeedableRng;
        ObjectStore {
            inner: Arc::new(Mutex::new(Inner {
                objects: HashMap::new(),
                stats: StoreStats {
                    capacity_bytes,
                    ..StoreStats::default()
                },
                rng: rand::rngs::StdRng::seed_from_u64(0x11F1),
            })),
        }
    }

    /// Stores `data` under a freshly generated 16-byte key and returns the key.
    ///
    /// # Errors
    /// Returns [`LiflError::OutOfSharedMemory`] if the store has a capacity
    /// limit and the allocation would exceed it.
    pub fn put(&self, data: impl Into<bytes::Bytes>) -> Result<ObjectKey> {
        self.put_object(data.into(), None)
    }

    /// Stores a compressed model-update wire payload under a fresh key,
    /// accounting the real (encoded) byte footprint against capacity while
    /// remembering the `dense_bytes` the update would have occupied
    /// uncompressed.
    ///
    /// # Errors
    /// Same as [`ObjectStore::put`].
    pub fn put_encoded(
        &self,
        data: impl Into<bytes::Bytes>,
        dense_bytes: u64,
    ) -> Result<ObjectKey> {
        self.put_object(data.into(), Some(dense_bytes))
    }

    fn put_object(&self, data: bytes::Bytes, dense_bytes: Option<u64>) -> Result<ObjectKey> {
        let mut inner = self.inner.lock();
        let size = data.len() as u64;
        if inner.stats.capacity_bytes > 0
            && inner.stats.allocated_bytes + size > inner.stats.capacity_bytes
        {
            return Err(LiflError::OutOfSharedMemory {
                requested: size,
                available: inner.stats.capacity_bytes - inner.stats.allocated_bytes,
            });
        }
        let key = loop {
            let mut bytes = [0u8; 16];
            inner.rng.fill_bytes(&mut bytes);
            let key = ObjectKey::from_bytes(bytes);
            if !inner.objects.contains_key(&key) {
                break key;
            }
        };
        let object = match dense_bytes {
            Some(dense) => SharedObject::new_encoded(key, data, dense),
            None => SharedObject::new(key, data),
        };
        inner.objects.insert(key, Arc::new(object));
        inner.stats.allocated_bytes += size;
        inner.stats.peak_bytes = inner.stats.peak_bytes.max(inner.stats.allocated_bytes);
        inner.stats.live_objects = inner.objects.len();
        inner.stats.total_puts += 1;
        if let Some(dense) = dense_bytes {
            inner.stats.encoded_puts += 1;
            inner.stats.encoded_bytes += size;
            inner.stats.dense_equivalent_bytes += dense;
        }
        Ok(key)
    }

    /// Stores a model-parameter vector, encoding it as little-endian `f32`.
    ///
    /// # Errors
    /// Same as [`ObjectStore::put`].
    pub fn put_f32(&self, values: &[f32]) -> Result<ObjectKey> {
        self.put(SharedObject::encode_f32(values))
    }

    /// Fetches the object stored under `key` (a zero-copy handle).
    ///
    /// # Errors
    /// Returns [`LiflError::ObjectNotFound`] if the key is unknown.
    pub fn get(&self, key: &ObjectKey) -> Result<SharedObject> {
        let inner = self.inner.lock();
        inner
            .objects
            .get(key)
            .map(|o| (**o).clone())
            .ok_or(LiflError::ObjectNotFound(*key))
    }

    /// Whether an object with `key` exists.
    pub fn contains(&self, key: &ObjectKey) -> bool {
        self.inner.lock().objects.contains_key(key)
    }

    /// Recycles (frees) the object under `key`.
    ///
    /// # Errors
    /// Returns [`LiflError::ObjectNotFound`] if the key is unknown.
    pub fn recycle(&self, key: &ObjectKey) -> Result<()> {
        let mut inner = self.inner.lock();
        match inner.objects.remove(key) {
            Some(obj) => {
                inner.stats.allocated_bytes =
                    inner.stats.allocated_bytes.saturating_sub(obj.len() as u64);
                inner.stats.live_objects = inner.objects.len();
                inner.stats.total_recycled += 1;
                Ok(())
            }
            None => Err(LiflError::ObjectNotFound(*key)),
        }
    }

    /// Removes every object, as when an aggregation round completes.
    pub fn recycle_all(&self) {
        let mut inner = self.inner.lock();
        let count = inner.objects.len() as u64;
        inner.objects.clear();
        inner.stats.allocated_bytes = 0;
        inner.stats.live_objects = 0;
        inner.stats.total_recycled += count;
    }

    /// Current store statistics.
    pub fn stats(&self) -> StoreStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let store = ObjectStore::new();
        let key = store.put(vec![7u8; 100]).unwrap();
        let obj = store.get(&key).unwrap();
        assert_eq!(obj.len(), 100);
        assert!(store.contains(&key));
        assert_eq!(store.stats().live_objects, 1);
        assert_eq!(store.stats().allocated_bytes, 100);
    }

    #[test]
    fn missing_key_is_an_error() {
        let store = ObjectStore::new();
        let key = ObjectKey::from_words(1, 2);
        assert_eq!(store.get(&key).unwrap_err(), LiflError::ObjectNotFound(key));
        assert_eq!(store.recycle(&key), Err(LiflError::ObjectNotFound(key)));
    }

    #[test]
    fn capacity_is_enforced() {
        let store = ObjectStore::with_capacity(150);
        store.put(vec![0u8; 100]).unwrap();
        let err = store.put(vec![0u8; 100]).unwrap_err();
        match err {
            LiflError::OutOfSharedMemory {
                requested,
                available,
            } => {
                assert_eq!(requested, 100);
                assert_eq!(available, 50);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn recycle_frees_capacity() {
        let store = ObjectStore::with_capacity(100);
        let key = store.put(vec![0u8; 80]).unwrap();
        store.recycle(&key).unwrap();
        assert!(!store.contains(&key));
        store.put(vec![0u8; 80]).unwrap();
        let stats = store.stats();
        assert_eq!(stats.total_puts, 2);
        assert_eq!(stats.total_recycled, 1);
        assert_eq!(stats.peak_bytes, 80);
    }

    #[test]
    fn recycle_all_clears() {
        let store = ObjectStore::new();
        for _ in 0..10 {
            store.put(vec![1u8; 10]).unwrap();
        }
        store.recycle_all();
        let stats = store.stats();
        assert_eq!(stats.live_objects, 0);
        assert_eq!(stats.allocated_bytes, 0);
        assert_eq!(stats.total_recycled, 10);
    }

    #[test]
    fn encoded_puts_account_real_and_dense_bytes() {
        let store = ObjectStore::new();
        store.put(vec![0u8; 40]).unwrap();
        let key = store.put_encoded(vec![0u8; 26], 80).unwrap();
        let stats = store.stats();
        // Capacity accounting uses the *real* (compressed) footprint.
        assert_eq!(stats.allocated_bytes, 66);
        assert_eq!(stats.encoded_puts, 1);
        assert_eq!(stats.encoded_bytes, 26);
        assert_eq!(stats.dense_equivalent_bytes, 80);
        assert_eq!(stats.bytes_saved(), 54);
        let obj = store.get(&key).unwrap();
        assert_eq!(obj.dense_len(), 80);
        assert_eq!(obj.len(), 26);
    }

    #[test]
    fn encoded_put_respects_capacity_by_real_size() {
        // A 30-byte encoded payload fits a 32-byte store even though its
        // dense equivalent would not.
        let store = ObjectStore::with_capacity(32);
        store.put_encoded(vec![0u8; 30], 120).unwrap();
        assert!(store.put_encoded(vec![0u8; 30], 120).is_err());
    }

    #[test]
    fn f32_put_roundtrip() {
        let store = ObjectStore::new();
        let key = store.put_f32(&[0.5, 1.5]).unwrap();
        assert_eq!(store.get(&key).unwrap().as_f32_vec(), vec![0.5, 1.5]);
    }

    #[test]
    fn keys_are_unique() {
        let store = ObjectStore::new();
        let mut keys = std::collections::HashSet::new();
        for _ in 0..500 {
            assert!(keys.insert(store.put(vec![0u8; 1]).unwrap()));
        }
    }

    #[test]
    fn store_is_clone_shared() {
        let store = ObjectStore::new();
        let alias = store.clone();
        let key = store.put(vec![3u8; 3]).unwrap();
        assert!(alias.contains(&key));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn keys_are_unique_and_contents_preserved(payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..40)) {
            let store = ObjectStore::new();
            let mut keys = Vec::new();
            for p in &payloads {
                keys.push(store.put(p.clone()).unwrap());
            }
            let unique: std::collections::HashSet<_> = keys.iter().collect();
            prop_assert_eq!(unique.len(), keys.len());
            for (key, payload) in keys.iter().zip(&payloads) {
                let object = store.get(key).unwrap();
                prop_assert_eq!(object.as_slice(), payload.as_slice());
            }
        }

        #[test]
        fn allocation_accounting_is_conserved(sizes in proptest::collection::vec(1usize..256, 1..30)) {
            let store = ObjectStore::new();
            let mut keys = Vec::new();
            for s in &sizes {
                keys.push(store.put(vec![0u8; *s]).unwrap());
            }
            let total: u64 = sizes.iter().map(|s| *s as u64).sum();
            prop_assert_eq!(store.stats().allocated_bytes, total);
            for key in &keys {
                store.recycle(key).unwrap();
            }
            prop_assert_eq!(store.stats().allocated_bytes, 0);
            prop_assert_eq!(store.stats().live_objects, 0);
        }
    }
}
