//! The unified-session tier: the builder-driven `Session` API is the one
//! hierarchical entry point — deterministic and shard-invariant for every
//! codec, generalising to N-level trees, and accepting every update
//! representation through its one polymorphic ingress.

use lifl_core::session::{SessionBuilder, SessionReport, Update};
use lifl_fl::aggregate::{fedavg, ModelUpdate};
use lifl_fl::codec::UpdateCodec;
use lifl_fl::DenseModel;
use lifl_types::{ClientId, CodecKind, Topology};

fn updates(n: usize, dim: usize) -> Vec<ModelUpdate> {
    (0..n)
        .map(|i| {
            let values: Vec<f32> = (0..dim)
                .map(|d| ((i * dim + d * 3) % 113) as f32 * 0.017 - 0.9)
                .collect();
            ModelUpdate::from_client(
                ClientId::new(i as u64),
                DenseModel::from_vec(values),
                (i % 7 + 1) as u64,
            )
        })
        .collect()
}

fn drive(
    topology: Topology,
    codec: CodecKind,
    shards: usize,
    batch: &[ModelUpdate],
) -> SessionReport {
    let mut session = SessionBuilder::new()
        .topology(topology)
        .codec(codec)
        .shards(shards)
        .build()
        .expect("session");
    session
        .ingest_all(batch.iter().cloned().map(Update::Dense))
        .expect("ingest");
    session.drive().expect("drive")
}

/// Acceptance: a 2-level `Topology` through the builder is fully
/// deterministic and shard-invariant for every codec — two identically
/// configured sessions agree bit-for-bit, and the sharded (4) fold agrees
/// bit-for-bit with the sequential (1) fold, with identical ingress wire
/// accounting throughout.
#[test]
fn two_level_topology_is_deterministic_and_shard_invariant_for_all_codecs() {
    let batch = updates(8, 640);
    for codec in CodecKind::ablation_set() {
        let reference = drive(Topology::two_level(4, 2), codec, 1, &batch);
        for shards in [1usize, 4] {
            let run = drive(Topology::two_level(4, 2), codec, shards, &batch);
            assert_eq!(
                run.update.samples, reference.update.samples,
                "{codec}/{shards}"
            );
            assert_eq!(
                run.ingress_wire_bytes, reference.ingress_wire_bytes,
                "{codec}/{shards}"
            );
            for (a, b) in run
                .update
                .model
                .as_slice()
                .iter()
                .zip(reference.update.model.as_slice())
            {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{codec}/{shards} shards: {a} vs {b}"
                );
            }
        }
    }
}

/// Acceptance: a ≥3-level topology round-trips correctly under every codec —
/// the aggregate stays within the codec's quantization error of flat FedAvg
/// (bit-exact for Identity against the 2-level tree, which shares its fold
/// order at the leaves).
#[test]
fn three_level_topology_roundtrips_under_every_codec() {
    let topology = Topology::new(vec![2, 3, 2]).expect("topology"); // 12 updates
    let batch = updates(topology.total_updates(), 96);
    let exact = fedavg(&batch).expect("flat fedavg");
    let max_abs = batch
        .iter()
        .flat_map(|u| u.model.as_slice())
        .fold(0.0f32, |a, v| a.max(v.abs()));
    for codec in CodecKind::ablation_set() {
        let report = drive(topology.clone(), codec, 1, &batch);
        assert_eq!(report.update.samples, exact.samples, "{codec}");
        assert_eq!(report.topology.levels(), 3);
        let tolerance = match codec {
            CodecKind::Identity => 1e-5,
            // One quantization step per aggregation stage (client, leaf,
            // middle), conservatively bounded.
            CodecKind::Uniform8 => 4.0 * max_abs / 127.0,
            CodecKind::Uniform4 => 4.0 * max_abs / 7.0,
            CodecKind::TopK { .. } => max_abs,
        };
        for (a, b) in report
            .update
            .model
            .as_slice()
            .iter()
            .zip(exact.model.as_slice())
        {
            assert!(
                (a - b).abs() <= tolerance,
                "{codec}: |{a} - {b}| > {tolerance}"
            );
        }
        if codec != CodecKind::Identity {
            assert!(report.store_stats.encoded_puts > 0, "{codec}");
        }
    }
}

/// A 4-level tree drives end to end with the sharded fold and shrinks
/// shared memory under quantization.
#[test]
fn four_level_quantized_sharded_session() {
    let topology = Topology::uniform(4, 2);
    assert_eq!(topology.total_updates(), 16);
    let batch = updates(16, 2048);
    let report = drive(topology, CodecKind::Uniform8, 4, &batch);
    let exact = fedavg(&batch).expect("flat fedavg");
    assert_eq!(report.update.samples, exact.samples);
    assert!(report.store_stats.bytes_saved() > 0);
    let max_abs = batch
        .iter()
        .flat_map(|u| u.model.as_slice())
        .fold(0.0f32, |a, v| a.max(v.abs()));
    // Four quantization stages bound the drift.
    let tolerance = 5.0 * max_abs / 127.0;
    for (a, b) in report
        .update
        .model
        .as_slice()
        .iter()
        .zip(exact.model.as_slice())
    {
        assert!((a - b).abs() <= tolerance, "|{a} - {b}| > {tolerance}");
    }
}

/// The single polymorphic ingress: dense, pre-encoded and remote-bytes
/// updates mix freely within one round, under Identity bit-exactly.
#[test]
fn mixed_representations_are_bit_exact_under_identity() {
    let batch = updates(8, 64);
    let all_dense = drive(Topology::two_level(4, 2), CodecKind::Identity, 1, &batch);

    let mut session = SessionBuilder::new()
        .topology(Topology::two_level(4, 2))
        .build()
        .expect("session");
    let mut codec = UpdateCodec::new(CodecKind::Identity);
    for (i, update) in batch.iter().enumerate() {
        let ingest = match i % 3 {
            // Dense, as-is.
            0 => Update::Dense(update.clone()),
            // Pre-encoded identity wire form.
            1 => Update::encoded(
                ClientId::new(i as u64),
                codec.encode(&update.model),
                update.samples,
            ),
            // Raw dense little-endian bytes, as a remote gateway ships them.
            _ => {
                let raw: Vec<u8> = update
                    .model
                    .as_slice()
                    .iter()
                    .flat_map(|v| v.to_le_bytes())
                    .collect();
                Update::remote_bytes(raw, update.samples, false)
            }
        };
        session.ingest(ingest).expect("ingest");
    }
    let mixed = session.drive().expect("drive");
    assert_eq!(mixed.update.samples, all_dense.update.samples);
    for (a, b) in mixed
        .update
        .model
        .as_slice()
        .iter()
        .zip(all_dense.update.model.as_slice())
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "mixed-representation round diverged: {a} vs {b}"
        );
    }
}

/// Store and pool injection: two sessions can share one node's store, and
/// the codec scratch pool the builder receives is the one the session
/// recycles through.
#[test]
fn injected_store_and_pool_are_shared() {
    use lifl_shmem::{BufferPool, ObjectStore};

    let store = ObjectStore::new();
    let pool = BufferPool::new();
    let batch = updates(4, 256);
    for round in 0..2 {
        let mut session = SessionBuilder::new()
            .topology(Topology::two_level(2, 2))
            .codec(CodecKind::Uniform8)
            .store(store.clone())
            .pool(pool.clone())
            .build()
            .expect("session");
        session
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .expect("ingest");
        session.drive().expect("drive");
        if round == 1 {
            assert!(pool.stats().hits > 0, "second session reused the slab");
        }
    }
    assert!(
        store.stats().encoded_puts > 0,
        "shared store saw the payloads"
    );
}
