//! Workspace smoke test: guards the headline API flow shown in the
//! `lifl_core` crate-level doc example with a named test, so the example
//! contract holds even when doctests are skipped.

use lifl_core::platform::{LiflPlatform, RoundSpec};
use lifl_types::{ClusterConfig, LiflConfig, ModelKind, SimTime};

#[test]
fn doc_example_round_aggregates_all_twenty_arrivals() {
    let mut platform = LiflPlatform::new(ClusterConfig::default(), LiflConfig::default());
    let arrivals: Vec<SimTime> = (0..20).map(|i| SimTime::from_secs(i as f64)).collect();
    let report = platform.run_round(&RoundSpec::new(ModelKind::ResNet152, arrivals));

    assert_eq!(
        report.metrics.updates_aggregated, 20,
        "every arrival must be aggregated exactly once"
    );
    assert!(
        report.eval_finished > SimTime::from_secs(0.0),
        "the round must take simulated time"
    );
    assert!(
        platform.rounds_run() == 1,
        "exactly one round was driven through the platform"
    );
}
