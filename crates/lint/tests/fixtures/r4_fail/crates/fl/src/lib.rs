pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn config(raw: &str) -> u32 {
    raw.parse().expect("caller validates")
}

pub fn reserved() {
    todo!()
}

// lifl-lint: allow(panic)
pub fn unjustified(v: &[u32]) -> u32 {
    *v.last().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_only_unwraps_are_fine() {
        let v = [1u32];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
