//! Hierarchical aggregation deep dive: shows the TAG, direct routing and the
//! step-based aggregator runtime working together on one node, compares the
//! three data planes of Fig. 7 for a single transfer, and runs a real
//! 4-level aggregation tree through the unified `Session` API.
//!
//! Run with: `cargo run -p lifl-examples --example hierarchical_aggregation`

use lifl_core::session::{SessionBuilder, Update};
use lifl_core::tag::{Role, TopologyAbstractionGraph};
use lifl_core::RoutingTable;
use lifl_dataplane::{CostModel, DataPlaneKind};
use lifl_examples::demo_updates;
use lifl_types::{AggregatorId, AggregatorRole, CodecKind, ModelKind, NodeId, Topology};

fn main() {
    // Build the TAG for 4 leaves + 1 middle on node 0 and the top on node 1.
    let mut tag = TopologyAbstractionGraph::new();
    for i in 0..4 {
        tag.add_role(Role {
            aggregator: AggregatorId::new(i),
            role: AggregatorRole::Leaf,
            node: NodeId::new(0),
            group: "node-0".to_string(),
        });
    }
    tag.add_role(Role {
        aggregator: AggregatorId::new(10),
        role: AggregatorRole::Middle,
        node: NodeId::new(0),
        group: "node-0".to_string(),
    });
    tag.add_role(Role {
        aggregator: AggregatorId::new(100),
        role: AggregatorRole::Top,
        node: NodeId::new(1),
        group: "node-1".to_string(),
    });
    for i in 0..4 {
        tag.connect(AggregatorId::new(i), AggregatorId::new(10));
    }
    tag.connect(AggregatorId::new(10), AggregatorId::new(100));
    println!(
        "TAG: {} roles, {} channels, {} inter-node",
        tag.roles().count(),
        tag.channels().len(),
        tag.inter_node_channels()
    );

    let mut routes = RoutingTable::new(NodeId::new(0));
    routes.apply_tag(&tag);
    println!(
        "node-0 routing: {} sockmap entries, {} inter-node routes",
        routes.local_routes(),
        routes.inter_node_routes()
    );

    // A deep tree the two-level API could not express: 16 client updates
    // through 8 leaves, 4 middles, 2 upper middles and the top, all updates
    // travelling 8-bit quantized.
    let topology = Topology::uniform(4, 2);
    let mut session = SessionBuilder::new()
        .topology(topology)
        .codec(CodecKind::Uniform8)
        .build()
        .expect("session");
    session
        .ingest_all(demo_updates(16, 128).into_iter().map(Update::Dense))
        .expect("ingest");
    let report = session.drive().expect("drive");
    println!(
        "session over a {}: {} updates, {} shmem bytes saved, ||w|| = {:.4}",
        report.topology,
        report.updates_ingested,
        report.store_stats.bytes_saved(),
        report.update.model.l2_norm()
    );

    let cost = CostModel::paper_calibrated();
    for model in ModelKind::paper_models() {
        let bytes = model.update_bytes();
        println!("--- {model} ({:.0} MiB) ---", model.update_mib());
        for (label, plane) in [
            ("LIFL shm", DataPlaneKind::LiflSharedMemory),
            ("SF gRPC", DataPlaneKind::ServerfulGrpc),
            ("SL broker+sidecar", DataPlaneKind::ServerlessBrokerSidecar),
        ] {
            let c = cost.intra_node_transfer(plane, bytes);
            println!(
                "  {label:<18} latency {:.2}s  cpu {:.2} Gcycles",
                c.latency.as_secs(),
                c.cpu.as_giga()
            );
        }
    }
}
