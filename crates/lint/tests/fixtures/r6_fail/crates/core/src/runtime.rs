pub fn run_hierarchical() {}
