#![forbid(unsafe_code)]
//! The legacy runtime (run_hierarchical) stays deleted; prose and strings
//! may mention it.

pub fn note() -> &'static str {
    "the legacy runtime:: path is gone"
}
