//! The FL workload driver: combines the algorithm-level FedAvg training loop
//! (`lifl-fl`) with a simulated aggregation system (`lifl-core` /
//! `lifl-baselines`) to produce the system-level curves of Fig. 9 and Fig. 10:
//! accuracy versus wall-clock time, accuracy versus cumulative CPU time,
//! update arrival rate, active aggregators and per-round CPU cost.

use lifl_core::platform::RoundSpec;
use lifl_core::AggregationSystem;
use lifl_fl::dataset::DatasetConfig;
use lifl_fl::{FederatedDataset, FlDriver, FlDriverConfig, Population, PopulationConfig};
use lifl_simcore::{SimRng, TimeSeries};
use lifl_types::{ModelKind, SimDuration, SimTime};

/// Configuration of one end-to-end FL workload (§6.2).
#[derive(Debug, Clone)]
pub struct WorkloadSetup {
    /// The model whose update size drives system costs.
    pub model: ModelKind,
    /// Client population configuration.
    pub population: PopulationConfig,
    /// Synthetic dataset configuration.
    pub dataset: DatasetConfig,
    /// Algorithm-level driver configuration (rounds, trainer hyper-parameters).
    pub fl: FlDriverConfig,
    /// Random seed.
    pub seed: u64,
}

impl WorkloadSetup {
    /// The ResNet-18 workload of §6.2 scaled down to simulation-friendly sizes
    /// (population and activity match the paper; the training substrate is the
    /// synthetic task described in DESIGN.md).
    pub fn resnet18(rounds: usize) -> Self {
        WorkloadSetup {
            model: ModelKind::ResNet18,
            population: PopulationConfig {
                total_clients: 400,
                active_per_round: 120,
                ..PopulationConfig::resnet18_paper()
            },
            dataset: DatasetConfig {
                num_clients: 400,
                num_features: 24,
                num_classes: 20,
                mean_samples_per_client: 40,
                dirichlet_alpha: 0.4,
                test_samples: 1500,
                noise_std: 0.5,
            },
            fl: FlDriverConfig {
                rounds,
                ..FlDriverConfig::default()
            },
            seed: 42,
        }
    }

    /// Returns the setup with every client update travelling `codec`
    /// (algorithm-level error-feedback encoding; pair it with a platform
    /// profile carrying the same codec so system costs match).
    pub fn with_codec(mut self, codec: lifl_types::CodecKind) -> Self {
        self.fl.codec = codec;
        self
    }

    /// The ResNet-152 workload of §6.2 (15 always-on server clients).
    pub fn resnet152(rounds: usize) -> Self {
        WorkloadSetup {
            model: ModelKind::ResNet152,
            population: PopulationConfig {
                total_clients: 200,
                active_per_round: 15,
                ..PopulationConfig::resnet152_paper()
            },
            dataset: DatasetConfig {
                num_clients: 200,
                num_features: 24,
                num_classes: 20,
                mean_samples_per_client: 40,
                dirichlet_alpha: 0.4,
                test_samples: 1500,
                noise_std: 0.5,
            },
            fl: FlDriverConfig {
                rounds,
                ..FlDriverConfig::default()
            },
            seed: 42,
        }
    }
}

/// The curves produced by running one workload on one system.
#[derive(Debug, Clone)]
pub struct WorkloadOutcome {
    /// System label ("LIFL", "SF", "SL").
    pub system: String,
    /// Accuracy (%) versus wall-clock hours (Fig. 9(a)/(c)).
    pub accuracy_vs_time: TimeSeries,
    /// Accuracy (%) versus cumulative CPU hours (Fig. 9(b)/(d)).
    pub accuracy_vs_cpu: TimeSeries,
    /// Update arrival rate per minute versus wall-clock hours (Fig. 10(a)/(d)).
    pub arrival_rate: TimeSeries,
    /// Active aggregators versus wall-clock hours (Fig. 10(b)/(e)).
    pub active_aggregators: TimeSeries,
    /// Cumulative CPU seconds per round (Fig. 10(c)/(f)).
    pub cpu_per_round: TimeSeries,
    /// Final accuracy reached.
    pub final_accuracy: f64,
    /// Total wall-clock time simulated.
    pub total_wall: SimDuration,
    /// Total CPU time consumed by the aggregation service.
    pub total_cpu: SimDuration,
}

impl WorkloadOutcome {
    /// Wall-clock hours to reach `accuracy_percent`, if reached (Fig. 9 headline).
    pub fn time_to_accuracy_hours(&self, accuracy_percent: f64) -> Option<f64> {
        self.accuracy_vs_time.first_crossing(accuracy_percent)
    }

    /// CPU hours to reach `accuracy_percent`, if reached.
    pub fn cpu_to_accuracy_hours(&self, accuracy_percent: f64) -> Option<f64> {
        self.accuracy_vs_cpu.first_crossing(accuracy_percent)
    }
}

/// Drives one workload against one aggregation system.
#[derive(Debug)]
pub struct WorkloadDriver {
    setup: WorkloadSetup,
}

impl WorkloadDriver {
    /// Creates a driver for the setup.
    pub fn new(setup: WorkloadSetup) -> Self {
        WorkloadDriver { setup }
    }

    /// Runs the workload on `system` and returns the curves.
    pub fn run<S: AggregationSystem>(&self, system: &mut S) -> WorkloadOutcome {
        let mut rng = SimRng::from_seed(self.setup.seed);
        let dataset = FederatedDataset::generate(self.setup.dataset, &mut rng);
        let population = Population::generate(self.setup.population, &mut rng);
        let mut fl = FlDriver::new(dataset, population.clone(), self.setup.fl);

        let label = system.label().to_string();
        let mut accuracy_vs_time = TimeSeries::new(label.clone());
        let mut accuracy_vs_cpu = TimeSeries::new(label.clone());
        let mut arrival_rate = TimeSeries::new(label.clone());
        let mut active_aggregators = TimeSeries::new(label.clone());
        let mut cpu_per_round = TimeSeries::new(label.clone());

        let mut wall = SimTime::ZERO;
        let mut cpu = SimDuration::ZERO;
        // Upload time of one update from client to cluster ingress.
        let upload = SimDuration::from_secs(self.setup.model.update_mib() * 0.008);

        for _ in 0..self.setup.fl.rounds {
            // 1. Algorithm level: who participates and what accuracy results.
            let outcome = fl.run_round(&mut rng);
            let participants = population.select_round(&mut rng);

            // 2. System level: when does each participant's update arrive.
            let arrivals: Vec<SimTime> = participants
                .iter()
                .take(outcome.updates)
                .map(|c| c.update_arrival(wall, self.setup.model, upload, &mut rng))
                .collect();
            let spec = RoundSpec::new(self.setup.model, arrivals.clone());
            let report = system.run_round(&spec);

            // 3. Bookkeeping for the Fig. 9 / Fig. 10 curves.
            if let (Some(first), Some(last)) = (arrivals.iter().min(), arrivals.iter().max()) {
                let window_min = (last.duration_since(*first).as_secs() / 60.0).max(1e-3);
                arrival_rate.push_xy(wall.as_secs() / 3600.0, arrivals.len() as f64 / window_min);
                let _ = first;
            }
            cpu += report.metrics.cpu_time;
            cpu_per_round.push_xy(outcome.round as f64, report.metrics.cpu_time.as_secs());
            active_aggregators.push_xy(wall.as_secs() / 3600.0, system.active_aggregators() as f64);
            wall = report.eval_finished;
            if let Some(acc) = outcome.accuracy {
                accuracy_vs_time.push_xy(wall.as_secs() / 3600.0, acc);
                accuracy_vs_cpu.push_xy(cpu.as_hours(), acc);
            }
        }

        WorkloadOutcome {
            system: label,
            final_accuracy: fl.evaluate(),
            total_wall: wall.duration_since(SimTime::ZERO),
            total_cpu: cpu,
            accuracy_vs_time,
            accuracy_vs_cpu,
            arrival_rate,
            active_aggregators,
            cpu_per_round,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems;
    use lifl_core::platform::LiflPlatform;
    use lifl_types::{ClusterConfig, LiflConfig};

    fn tiny_setup() -> WorkloadSetup {
        let mut setup = WorkloadSetup::resnet18(5);
        setup.population.total_clients = 60;
        setup.population.active_per_round = 20;
        setup.dataset.num_clients = 60;
        setup.dataset.test_samples = 200;
        setup
    }

    #[test]
    fn workload_produces_all_series() {
        let driver = WorkloadDriver::new(tiny_setup());
        let mut lifl = LiflPlatform::new(ClusterConfig::default(), LiflConfig::default());
        let outcome = driver.run(&mut lifl);
        assert_eq!(outcome.system, "LIFL");
        assert_eq!(outcome.accuracy_vs_time.len(), 5);
        assert_eq!(outcome.cpu_per_round.len(), 5);
        assert!(outcome.total_wall.as_secs() > 0.0);
        assert!(outcome.total_cpu.as_secs() > 0.0);
        assert!(outcome.final_accuracy > 0.0);
    }

    #[test]
    fn lifl_cheaper_and_faster_than_serverless() {
        let setup = tiny_setup();
        let driver = WorkloadDriver::new(setup);
        let mut lifl = LiflPlatform::new(ClusterConfig::default(), LiflConfig::default());
        let mut sl = systems::serverless(ClusterConfig::default());
        let lifl_out = driver.run(&mut lifl);
        let sl_out = driver.run(&mut sl);
        assert!(lifl_out.total_cpu < sl_out.total_cpu);
        assert!(lifl_out.total_wall < sl_out.total_wall);
    }
}
