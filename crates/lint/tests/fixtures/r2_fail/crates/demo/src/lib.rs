pub unsafe fn raw_read(p: *const u8) -> u8 {
    *p
}

pub fn wrapper(p: *const u8) -> u8 {
    unsafe { raw_read(p) }
}
