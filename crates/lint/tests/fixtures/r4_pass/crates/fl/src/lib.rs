pub fn first(v: &[u32]) -> Option<u32> {
    v.first().copied()
}

pub fn pinned(v: &[u32]) -> u32 {
    // lifl-lint: allow(panic) — the caller pins `v` non-empty by construction.
    *v.first().expect("non-empty by construction")
}

/// Doc prose may say unwrap() or panic! freely.
pub fn documented() {}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v = [1u32];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
