//! The serverful deployment model (Fig. 2(a), §6.2): a fixed pool of
//! always-on aggregators with maximal resource allocation, kept warm for the
//! whole experiment.

use lifl_types::{NodeId, SimDuration};

/// A fixed, always-on aggregation deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerfulDeployment {
    /// Nodes hosting leaf/middle aggregators.
    pub aggregation_nodes: Vec<NodeId>,
    /// The node dedicated to the top aggregator.
    pub top_node: NodeId,
    /// Always-on aggregator processes per aggregation node.
    pub aggregators_per_node: u32,
    /// CPU cores pinned to each aggregator.
    pub cores_per_aggregator: f64,
}

impl ServerfulDeployment {
    /// The paper's §6.2 deployment: 4 leaf/middle nodes, 1 top node,
    /// aggregators always on with maximal allocation.
    pub fn paper_default() -> Self {
        ServerfulDeployment {
            aggregation_nodes: (0..4).map(NodeId::new).collect(),
            top_node: NodeId::new(4),
            aggregators_per_node: 4,
            cores_per_aggregator: 2.0,
        }
    }

    /// Total always-on aggregator processes (including the top aggregator).
    pub fn total_aggregators(&self) -> u32 {
        self.aggregation_nodes.len() as u32 * self.aggregators_per_node + 1
    }

    /// Always-on CPU consumed over a wall-clock interval by the whole deployment.
    pub fn always_on_cpu(&self, wall: SimDuration) -> SimDuration {
        wall.scaled(self.total_aggregators() as f64 * self.cores_per_aggregator)
    }

    /// All nodes used by the deployment.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut nodes = self.aggregation_nodes.clone();
        nodes.push(self.top_node);
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_deployment_shape() {
        let d = ServerfulDeployment::paper_default();
        assert_eq!(d.nodes().len(), 5);
        assert_eq!(d.total_aggregators(), 17);
        assert!(d.always_on_cpu(SimDuration::from_secs(10.0)).as_secs() > 100.0);
    }

    #[test]
    fn always_on_cost_scales_with_time() {
        let d = ServerfulDeployment::paper_default();
        let short = d.always_on_cpu(SimDuration::from_secs(1.0));
        let long = d.always_on_cpu(SimDuration::from_secs(100.0));
        assert!(long.as_secs() > short.as_secs() * 50.0);
    }
}
