//! Micro-benchmark: update-codec encode / decode / decode-fold-encode
//! throughput for every codec on a 100k-parameter update.
use criterion::{criterion_group, criterion_main, Criterion};
use lifl_fl::aggregate::CumulativeFedAvg;
use lifl_fl::aggregate::ModelUpdate;
use lifl_fl::codec::UpdateCodec;
use lifl_fl::DenseModel;
use lifl_types::{ClientId, CodecKind};

const DIM: usize = 100_000;

fn update_model(dim: usize) -> DenseModel {
    DenseModel::from_vec(
        (0..dim)
            .map(|i| ((i % 251) as f32 - 125.0) * 0.013)
            .collect(),
    )
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    group.sample_size(20);
    let model = update_model(DIM);
    for kind in CodecKind::ablation_set() {
        let mut codec = UpdateCodec::new(kind);
        group.bench_function(format!("encode_{kind}_100k"), |b| {
            b.iter(|| codec.encode(std::hint::black_box(&model)))
        });
        let encoded = UpdateCodec::new(kind).encode(&model);
        group.bench_function(format!("decode_{kind}_100k"), |b| {
            b.iter(|| std::hint::black_box(&encoded).decode())
        });
        // The interior-aggregator hot path: decode, fold, re-encode.
        let mut interior = UpdateCodec::new(kind);
        group.bench_function(format!("decode_fold_encode_{kind}_100k"), |b| {
            b.iter(|| {
                let mut acc = CumulativeFedAvg::new(DIM);
                for client in 0..4u64 {
                    let decoded = std::hint::black_box(&encoded).decode();
                    acc.fold(&ModelUpdate::from_client(
                        ClientId::new(client),
                        decoded,
                        client + 1,
                    ))
                    .unwrap();
                }
                let folded = acc.finalize().unwrap();
                interior.encode(&folded.model)
            })
        });
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
