//! Runs a small synchronous FedAvg workload end to end: synthetic non-IID
//! dataset, client population with hibernation, real local SGD training, and
//! the LIFL cluster simulation providing per-round wall-clock and CPU costs.
//!
//! Run with: `cargo run -p lifl-examples --example federated_round`

use lifl_baselines::{serverless, WorkloadDriver, WorkloadSetup};
use lifl_core::platform::LiflPlatform;
use lifl_types::{ClusterConfig, LiflConfig};

fn main() {
    let mut setup = WorkloadSetup::resnet18(8);
    setup.population.total_clients = 120;
    setup.population.active_per_round = 40;
    setup.dataset.num_clients = 120;
    let driver = WorkloadDriver::new(setup);

    let mut lifl = LiflPlatform::new(ClusterConfig::default(), LiflConfig::default());
    let lifl_out = driver.run(&mut lifl);
    let mut sl = serverless(ClusterConfig::default());
    let sl_out = driver.run(&mut sl);

    for out in [&lifl_out, &sl_out] {
        println!(
            "{:<5} final accuracy {:.1}%  wall {:.2} h  aggregation CPU {:.2} h",
            out.system,
            out.final_accuracy,
            out.total_wall.as_hours(),
            out.total_cpu.as_hours()
        );
    }
    println!(
        "LIFL speedup over SL: {:.2}x wall, {:.2}x CPU",
        sl_out.total_wall.as_secs() / lifl_out.total_wall.as_secs().max(1e-9),
        sl_out.total_cpu.as_secs() / lifl_out.total_cpu.as_secs().max(1e-9)
    );
}
