//! Regenerates Fig. 8 (orchestration ablation).
fn main() {
    let result = lifl_experiments::fig8::run();
    println!("{}", lifl_experiments::fig8::format(&result));
    println!("{}", lifl_experiments::report::to_json(&result));
}
