//! Load-balancing policies used by the baselines (§5.1, §6.1): Knative's
//! "least connection" policy and a round-robin fallback.

use lifl_types::NodeId;

/// A policy mapping each incoming model update to a worker node.
pub trait LoadBalancer {
    /// Chooses a node for the next update given per-node queue lengths.
    fn choose(&mut self, queue_lengths: &[(NodeId, f64)]) -> Option<NodeId>;
    /// Policy name for reports.
    fn name(&self) -> &'static str;
}

/// Assigns each update to the node with the smallest current queue, spreading
/// load across all nodes (the behaviour of SL-H in Fig. 8(d)).
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastConnection;

impl LoadBalancer for LeastConnection {
    fn choose(&mut self, queue_lengths: &[(NodeId, f64)]) -> Option<NodeId> {
        queue_lengths
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(node, _)| *node)
    }

    fn name(&self) -> &'static str {
        "least-connection"
    }
}

/// Cycles through nodes regardless of load.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    next: usize,
}

impl LoadBalancer for RoundRobin {
    fn choose(&mut self, queue_lengths: &[(NodeId, f64)]) -> Option<NodeId> {
        if queue_lengths.is_empty() {
            return None;
        }
        let node = queue_lengths[self.next % queue_lengths.len()].0;
        self.next = (self.next + 1) % queue_lengths.len();
        Some(node)
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(loads: &[f64]) -> Vec<(NodeId, f64)> {
        loads
            .iter()
            .enumerate()
            .map(|(i, l)| (NodeId::new(i as u64), *l))
            .collect()
    }

    #[test]
    fn least_connection_picks_min() {
        let mut lb = LeastConnection;
        assert_eq!(lb.choose(&nodes(&[3.0, 1.0, 2.0])), Some(NodeId::new(1)));
        assert_eq!(lb.choose(&[]), None);
        assert_eq!(lb.name(), "least-connection");
    }

    #[test]
    fn least_connection_spreads_load() {
        // Feeding back the assignment, least-connection uses every node.
        let mut lb = LeastConnection;
        let mut loads = vec![0.0; 5];
        for _ in 0..10 {
            let n = lb.choose(&nodes(&loads)).unwrap();
            loads[n.index() as usize] += 1.0;
        }
        assert!(loads.iter().all(|l| *l >= 2.0));
    }

    #[test]
    fn round_robin_cycles() {
        let mut lb = RoundRobin::default();
        let picks: Vec<u64> = (0..6)
            .map(|_| lb.choose(&nodes(&[0.0, 0.0, 0.0])).unwrap().index())
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(lb.name(), "round-robin");
        assert_eq!(RoundRobin::default().choose(&[]), None);
    }
}
