//! §6.1: orchestration overhead — placement up to 10K clients and EWMA cost.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lifl_core::hierarchy::EwmaEstimator;
use lifl_core::placement::{NodeCapacity, PlacementEngine};
use lifl_types::{NodeId, PlacementPolicy};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("orchestration_overhead");
    group.sample_size(20);
    for clients in [100u64, 1_000, 10_000] {
        group.bench_with_input(BenchmarkId::new("placement", clients), &clients, |b, &n| {
            b.iter(|| {
                let engine = PlacementEngine::new(PlacementPolicy::BestFit);
                let nodes = (n / 20 + 1).max(5);
                let mut caps: Vec<NodeCapacity> = (0..nodes)
                    .map(|i| NodeCapacity::new(NodeId::new(i), 20))
                    .collect();
                engine.place_batch(n, &mut caps)
            })
        });
    }
    group.bench_function("ewma_estimate", |b| {
        b.iter(|| {
            let mut e = EwmaEstimator::new(0.7);
            for i in 0..100 {
                e.observe(std::hint::black_box(i as f64));
            }
            e.estimate()
        })
    });
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
