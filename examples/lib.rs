//! Shared helpers for the LIFL examples.

use lifl_fl::aggregate::ModelUpdate;
use lifl_fl::DenseModel;
use lifl_types::ClientId;

/// Builds `n` deterministic client updates of dimension `dim` for the examples.
pub fn demo_updates(n: usize, dim: usize) -> Vec<ModelUpdate> {
    (0..n)
        .map(|i| {
            let values: Vec<f32> = (0..dim)
                .map(|d| ((i + 1) * (d + 1)) as f32 * 0.01)
                .collect();
            ModelUpdate::from_client(
                ClientId::new(i as u64),
                DenseModel::from_vec(values),
                (i + 1) as u64,
            )
        })
        .collect()
}
