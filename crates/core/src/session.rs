//! The unified session API: one builder-driven, codec-transparent entry point
//! for N-level hierarchical aggregation.
//!
//! Before this module, the in-process runtime had forked into parallel
//! codec-blind and codec-aware free functions (plus four `Gateway::ingest_*`
//! variants) and the tree shape was hard-wired to two levels. A [`Session`]
//! owns the whole stack — gateway, shared-memory store, scratch pool,
//! error-feedback encoder and the aggregator tree described by a
//! [`Topology`] — behind exactly two operations:
//!
//! * [`Session::ingest`] — the single polymorphic ingress. Every
//!   representation an update can arrive in ([`Update::Dense`],
//!   [`Update::Encoded`], [`Update::RemoteBytes`]) goes through the same
//!   call; under a lossy codec, dense updates are transparently encoded with
//!   per-client error feedback before they enter shared memory.
//! * [`Session::drive`] — runs the configured tree to completion (leaves on
//!   their own threads, every interior level folding child intermediates in
//!   deterministic child order) and returns a [`SessionReport`].
//!
//! With [`CodecKind::Identity`] and a two-level topology the session is
//! bit-exact with the seed two-level fold semantics (enforced by the
//! proptests below and the `tests/it` tiers); the legacy free functions that
//! used to shim over this type were deleted in PR 6 — see `MIGRATION.md`.

#![deny(missing_docs)]

use crate::admission::AdmissionQueues;
use crate::aggregator::AggregatorRuntime;
use crate::gateway::Gateway;
use lifl_fl::aggregate::ModelUpdate;
use lifl_fl::codec::{EncodedView, ErrorFeedback, UpdateCodec};
use lifl_fl::DenseModel;
use lifl_shmem::queue::QueuedUpdate;
use lifl_shmem::{BufferPool, InPlaceQueue, ObjectStore, StoreStats};
use lifl_types::{
    AdmissionConfig, AdmissionOutcome, ClientId, CodecKind, FoldPolicy, LiflError, NodeId, Result,
    RoundClose, SimDuration, Topology, WIRE_HEADER_BYTES,
};

pub use lifl_fl::update::Update;

/// Default seed of the session's client-side error-feedback encoder (the
/// value the pre-redesign codec path used).
const DEFAULT_SEED: u64 = 0x5EED;

/// Builds a [`Session`]: topology, codec, shard count, RNG seed and
/// store/pool injection, with working defaults for all of them.
///
/// ```
/// use lifl_core::session::SessionBuilder;
/// use lifl_types::{CodecKind, Topology};
///
/// let session = SessionBuilder::new()
///     .topology(Topology::new(vec![2, 2, 2]).unwrap()) // 3-level tree
///     .codec(CodecKind::Uniform8)
///     .shards(4)
///     .build()
///     .unwrap();
/// assert_eq!(session.topology().levels(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    topology: Topology,
    codec: CodecKind,
    shards: usize,
    policy: FoldPolicy,
    seed: u64,
    node: NodeId,
    level_offset: usize,
    branch: usize,
    store: Option<ObjectStore>,
    pool: Option<BufferPool>,
    admission: Option<AdmissionConfig>,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionBuilder {
    /// A builder with the seed defaults: the classic 4×2 two-level tree,
    /// [`CodecKind::Identity`], one shard (sequential fold), a fresh
    /// shared-memory store and scratch pool.
    pub fn new() -> Self {
        SessionBuilder {
            topology: Topology::default(),
            codec: CodecKind::Identity,
            shards: 1,
            policy: FoldPolicy::FedAvg,
            seed: DEFAULT_SEED,
            node: NodeId::new(0),
            level_offset: 0,
            branch: 0,
            store: None,
            pool: None,
            admission: None,
        }
    }

    /// Sets the aggregation-tree shape (any [`Topology`]; see
    /// [`Topology::two_level`] for the seed shape).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Convenience for the classic two-level tree: `leaves` leaf aggregators
    /// each consuming `updates_per_leaf` client updates.
    pub fn two_level(self, leaves: usize, updates_per_leaf: usize) -> Self {
        self.topology(Topology::two_level(leaves, updates_per_leaf))
    }

    /// Sets the wire codec every update travels with. Lossy codecs encode
    /// dense ingests with per-client error feedback and re-encode every
    /// interior intermediate; `Identity` is bit-exact with the dense path.
    pub fn codec(mut self, codec: CodecKind) -> Self {
        self.codec = codec;
        self
    }

    /// Sets the number of parameter-vector shards every aggregator folds
    /// batches across (`LiflConfig.aggregation_shards`; clamped to ≥ 1,
    /// where 1 is the sequential eager fold).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the fold policy every aggregator in the tree combines updates
    /// with (`LiflConfig.fold_policy`). The default [`FoldPolicy::FedAvg`] is
    /// bit-exact with the pre-policy path; robust policies compute a
    /// coordinate-wise statistic per aggregator (each level's statistic runs
    /// over that level's inputs — raw client updates at the leaves, child
    /// intermediates above).
    pub fn fold_policy(mut self, policy: FoldPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Seeds the client-side error-feedback encoder's stochastic-rounding
    /// stream (per-aggregator codec streams derive deterministically from the
    /// tree position, so whole runs are reproducible).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the node identity of the session's gateway.
    pub fn node(mut self, node: NodeId) -> Self {
        self.node = node;
        self
    }

    /// Places this session's tree at a position inside a larger,
    /// cluster-spanning tree: the session drives `branch`-th subtree of the
    /// level-`level_offset` layer, so every aggregator identity — and with
    /// it the deterministic per-position codec stream — matches what a
    /// single session over the whole tree would use at the same position.
    /// This is what makes a multi-node round composed over
    /// [`Update::RemoteBytes`] bit-exact with its single-session equivalent
    /// (see [`crate::cluster::ClusterBuilder`], which wires this up).
    ///
    /// The default `(0, 0)` places the session at the origin of its own
    /// tree — the ordinary standalone case.
    ///
    /// ```
    /// use lifl_core::session::SessionBuilder;
    /// use lifl_types::{NodeId, Topology};
    ///
    /// // Node 1 of a cluster drives the second [2, 2] subtree of a global
    /// // [2, 2, 4] tree; a parent session at level 2 folds the node exports.
    /// let child = SessionBuilder::new()
    ///     .topology(Topology::new(vec![2, 2]).unwrap())
    ///     .node(NodeId::new(1))
    ///     .tree_position(0, 1)
    ///     .build()
    ///     .unwrap();
    /// let parent = SessionBuilder::new()
    ///     .topology(Topology::flat(4))
    ///     .tree_position(2, 0)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(child.topology().total_updates(), 4);
    /// assert_eq!(parent.topology().total_updates(), 4);
    /// ```
    pub fn tree_position(mut self, level_offset: usize, branch: usize) -> Self {
        self.level_offset = level_offset;
        self.branch = branch;
        self
    }

    /// Injects a shared-memory object store (e.g. one shared with other
    /// components on the node) instead of creating a fresh one.
    pub fn store(mut self, store: ObjectStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Injects the scratch-buffer pool the codecs draw encode bodies and
    /// compensation buffers from, instead of creating a fresh one.
    pub fn pool(mut self, pool: BufferPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Enables the bounded streaming-admission path: when a round is full,
    /// [`Session::try_ingest`] parks overflow in per-leaf queues capped by
    /// `config` (instead of erroring), queued clients win admission into the
    /// next round by Oort utility, and the round-close policy in `config`
    /// decides whether [`Session::drive`] demands an exact fill or accepts a
    /// quorum. Without this, `try_ingest` rejects overflow outright and
    /// every legacy exact-fill behaviour is unchanged.
    pub fn admission(mut self, config: AdmissionConfig) -> Self {
        self.admission = Some(config);
        self
    }

    /// Builds the session: registers one gateway inbox per leaf aggregator
    /// and wires the error-feedback encoder to the scratch pool.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidConfig`] for an invalid codec or fold
    /// policy configuration (e.g. `TopK` with a permille outside `1..=1000`,
    /// or a trimmed mean that trims everything).
    pub fn build(self) -> Result<Session> {
        if let CodecKind::TopK { permille } = self.codec {
            if permille == 0 || permille > 1000 {
                return Err(LiflError::InvalidConfig(format!(
                    "TopK permille must be in 1..=1000, got {permille}"
                )));
            }
        }
        self.policy.validate().map_err(LiflError::InvalidConfig)?;
        if let Some(config) = &self.admission {
            config.validate()?;
        }
        let store = self.store.unwrap_or_default();
        let pool = self.pool.unwrap_or_default();
        let mut gateway = Gateway::new(self.node, store.clone());
        let leaves = self.topology.leaves();
        let leaf_inboxes: Vec<InPlaceQueue> = (0..leaves)
            .map(|j| {
                gateway.register_aggregator(crate::aggregator::position_id(
                    self.level_offset,
                    self.branch * leaves + j,
                ))
            })
            .collect();
        let feedback = ErrorFeedback::new(
            UpdateCodec::with_seed(self.codec, self.seed).with_pool(pool.clone()),
        );
        let admission = self
            .admission
            .map(|config| AdmissionQueues::new(config, leaves, pool.clone()));
        Ok(Session {
            topology: self.topology,
            codec: self.codec,
            shards: self.shards,
            policy: self.policy,
            level_offset: self.level_offset,
            branch: self.branch,
            store,
            pool,
            gateway,
            leaf_inboxes,
            feedback,
            admission,
            ingested: 0,
            lifetime_ingested: 0,
            ingress_wire_bytes: 0,
            round_keys: Vec::new(),
            round_entries: Vec::new(),
            route_cursor: 0,
            vacancies: Vec::new(),
        })
    }
}

/// What one driven round produced, beyond the global model: the
/// shared-memory accounting proving what representation actually flowed
/// through the store.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// The aggregated global model (decoded to dense parameters).
    pub update: ModelUpdate,
    /// Object-store statistics at the end of the round (encoded puts, real
    /// and dense-equivalent bytes).
    pub store_stats: StoreStats,
    /// Total data-plane payload bytes the ingested updates occupied in their
    /// wire form.
    pub ingress_wire_bytes: u64,
    /// Updates ingested into this round.
    pub updates_ingested: u64,
    /// The tree the round ran over.
    pub topology: Topology,
}

/// One driven round exported in wire form for a cluster hop: what a node's
/// gateway ships to the parent gateway instead of a decoded model.
#[derive(Debug, Clone)]
pub struct WireExport {
    /// The merged subtree update as [`Update::RemoteBytes`]: a zero-copy
    /// handle onto the session store's top intermediate — the
    /// self-describing encoded form under a lossy codec, headerless
    /// little-endian `f32` otherwise — ready for the parent session's
    /// [`Session::ingest`].
    pub update: Update,
    /// Object-store statistics at the end of the round.
    pub store_stats: StoreStats,
    /// Total data-plane payload bytes the round's ingests occupied in wire
    /// form.
    pub ingress_wire_bytes: u64,
    /// Updates ingested into the round.
    pub updates_ingested: u64,
}

impl WireExport {
    /// Payload bytes this export puts on the inter-node wire (the 16-byte
    /// descriptor of an encoded export rides the control channel and is
    /// excluded, consistent with [`Update::wire_bytes`]).
    pub fn wire_bytes(&self) -> u64 {
        self.update.wire_bytes()
    }
}

/// One in-process aggregation session: the gateway, the shared-memory store,
/// the codec state and an N-level aggregator tree behind a single ingress
/// ([`Session::ingest`]) and a single driver ([`Session::drive`]).
///
/// A session is reusable: after [`Session::drive`] returns — successfully or
/// with an aggregation error (which discards the failed round) — the next
/// round's updates can be ingested immediately, and per-client
/// error-feedback residuals persist across rounds, exactly as a long-lived
/// deployment would keep them.
///
/// ```
/// use lifl_core::session::{SessionBuilder, Update};
/// use lifl_fl::DenseModel;
/// use lifl_types::ClientId;
///
/// // 2 leaves × 2 updates each, identity codec (the defaults, shrunk).
/// let mut session = SessionBuilder::new().two_level(2, 2).build().unwrap();
/// for i in 0..4u64 {
///     let model = DenseModel::from_vec(vec![i as f32; 8]);
///     session
///         .ingest(Update::dense(ClientId::new(i), model, i + 1))
///         .unwrap();
/// }
/// let report = session.drive().unwrap();
/// assert_eq!(report.update.samples, 1 + 2 + 3 + 4);
/// assert_eq!(report.update.model.dim(), 8);
/// ```
#[derive(Debug)]
pub struct Session {
    topology: Topology,
    codec: CodecKind,
    shards: usize,
    policy: FoldPolicy,
    /// The session's position inside a larger cluster-spanning tree (see
    /// [`SessionBuilder::tree_position`]); `(0, 0)` for standalone sessions.
    level_offset: usize,
    branch: usize,
    store: ObjectStore,
    pool: BufferPool,
    gateway: Gateway,
    leaf_inboxes: Vec<InPlaceQueue>,
    feedback: ErrorFeedback,
    /// Bounded admission queues, when the streaming path is configured (see
    /// [`SessionBuilder::admission`]).
    admission: Option<AdmissionQueues>,
    ingested: u64,
    /// Successful ingests over the session's whole life (never reset):
    /// the fallback client-id attribution for anonymous updates.
    lifetime_ingested: u64,
    ingress_wire_bytes: u64,
    /// Every object key the current round has put into the store (client
    /// payloads at ingest, intermediates per level): recycled when the round
    /// ends so a long-lived session does not grow the store round over round.
    round_keys: Vec<lifl_types::ObjectKey>,
    /// Per-ingest bookkeeping for the current round (producer, payload key,
    /// wire bytes, target leaf): what mid-round churn needs to reclaim a
    /// departed client's slot.
    round_entries: Vec<RoundEntry>,
    /// Round-robin position of the next non-vacancy ingest. Equal to
    /// `ingested` until churn opens a vacancy, so legacy routing is
    /// bit-exact.
    route_cursor: u64,
    /// Leaves vacated by departed clients, refilled before the round-robin
    /// cursor advances (so a replacement lands on the departed client's leaf
    /// and survivors keep their assignment).
    vacancies: Vec<usize>,
}

/// Per-ingest bookkeeping: enough to reclaim one client's slot mid-round.
#[derive(Debug, Clone, Copy)]
struct RoundEntry {
    client: Option<ClientId>,
    key: lifl_types::ObjectKey,
    wire_bytes: u64,
    leaf: usize,
}

impl Session {
    /// The aggregator identity at local position (`level`, `index`) of this
    /// session's tree, mapped into the enclosing cluster-spanning tree via
    /// the configured [`SessionBuilder::tree_position`] (identity for
    /// standalone sessions; the packing is shared with
    /// [`AggregatorRuntime::for_level`]).
    fn aggregator_id(&self, level: usize, index: usize) -> lifl_types::AggregatorId {
        crate::aggregator::position_id(
            level + self.level_offset,
            self.branch * self.topology.width(level) + index,
        )
    }

    /// The tree this session aggregates over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The wire codec in use.
    pub fn codec(&self) -> CodecKind {
        self.codec
    }

    /// The fold policy every aggregator in the tree combines updates with.
    pub fn fold_policy(&self) -> FoldPolicy {
        self.policy
    }

    /// The shared-memory store backing the session.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// The scratch-buffer pool the session's codecs recycle through.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Updates ingested into the current (not yet driven) round.
    pub fn pending_updates(&self) -> u64 {
        self.ingested
    }

    /// The single polymorphic ingress: accepts an update in whatever
    /// representation it arrived and routes it to the next leaf aggregator
    /// round-robin (update *k* of a round feeds leaf `k % leaves`, exactly
    /// the distribution of the seed two-level runtime).
    ///
    /// Under a lossy codec, a [`Update::Dense`] ingest is transparently
    /// encoded with the producing client's error-feedback residual before it
    /// enters shared memory; [`Update::Encoded`] and [`Update::RemoteBytes`]
    /// are stored in their arriving form (one-time payload processing). A
    /// dense or encoded update missing a client id is attributed to its
    /// session-lifetime arrival index (the same rule on every codec path).
    ///
    /// # Errors
    /// Fails if the shared-memory store cannot hold the payload, on a codec
    /// dimension mismatch, or if the round already holds a full tree's worth
    /// of updates. A failed ingest counts nothing toward the round; note
    /// that if the store rejects a lossy-encoded dense update, the client's
    /// error-feedback residual already reflects the attempted encoding (the
    /// standard feedback construction re-absorbs the loss only if the
    /// client keeps sending).
    pub fn ingest(&mut self, update: Update) -> Result<()> {
        if self.ingested as usize >= self.topology.total_updates() {
            if self.admission.is_some() {
                // Streaming path configured: overflow routes through the
                // bounded backpressure queues instead of erroring outright.
                return match self.queue_offer(update)? {
                    AdmissionOutcome::Rejected { .. } => Err(LiflError::InvalidConfig(
                        "session round is full and the admission queue budget is exhausted"
                            .to_string(),
                    )),
                    _ => Ok(()),
                };
            }
            return Err(LiflError::InvalidConfig(format!(
                "session round is full: topology aggregates {} updates",
                self.topology.total_updates()
            )));
        }
        // Vacated leaves (mid-round churn) refill before the round-robin
        // cursor advances, so survivors keep their leaf assignment.
        let vacancy = self.vacancies.pop();
        let leaf = vacancy.unwrap_or((self.route_cursor as usize) % self.topology.leaves());
        let target = self.aggregator_id(0, leaf);
        // One attribution rule for every representation: anonymous updates
        // take the session-lifetime arrival index, so residual slots never
        // alias across rounds and the codec choice cannot change attribution.
        let fallback = ClientId::new(self.lifetime_ingested);
        let update = match update {
            Update::Dense(mut dense) => {
                let client = *dense.client.get_or_insert(fallback);
                if self.codec.is_lossless() {
                    Update::Dense(dense)
                } else {
                    // Lossy codec: the dense payload is encoded (with
                    // per-client error feedback) before it enters shared
                    // memory, so the compressed representation is what flows.
                    let samples = dense.samples;
                    self.feedback.encode_update(client, dense.model, samples)
                }
            }
            Update::Encoded {
                client,
                update,
                samples,
            } => Update::Encoded {
                client: Some(client.unwrap_or(fallback)),
                update,
                samples,
            },
            other => other,
        };
        let outcome = self.gateway.ingest(target, &update);
        match &outcome {
            Ok(queued) => {
                // Account (and count) only what actually entered the round.
                self.ingress_wire_bytes += update.wire_bytes();
                self.ingested += 1;
                self.lifetime_ingested += 1;
                self.round_keys.push(queued.key);
                self.round_entries.push(RoundEntry {
                    client: queued.producer,
                    key: queued.key,
                    wire_bytes: update.wire_bytes(),
                    leaf,
                });
                if vacancy.is_none() {
                    self.route_cursor += 1;
                }
            }
            Err(_) => {
                if let Some(v) = vacancy {
                    self.vacancies.push(v);
                }
            }
        }
        self.feedback.recycle_update(update);
        outcome.map(|_| ())
    }

    /// Ingests a batch of updates in order (see [`Session::ingest`]).
    ///
    /// # Errors
    /// Same conditions as [`Session::ingest`]; updates before the failing one
    /// stay ingested.
    pub fn ingest_all(&mut self, updates: impl IntoIterator<Item = Update>) -> Result<()> {
        for update in updates {
            self.ingest(update)?;
        }
        Ok(())
    }

    /// The streaming ingress: offers one update and answers with typed
    /// backpressure. While the round has room the update is admitted exactly
    /// as [`Session::ingest`] would; once the round is full the update is
    /// parked in a bounded per-leaf queue (`Queued{depth}`) or, when the
    /// queue's slot/byte budget is exhausted, turned away
    /// (`Rejected{retry_after}`). Queued clients win admission into the next
    /// round in Oort-utility order (see
    /// [`Session::record_client_utility`]). Without an
    /// [`SessionBuilder::admission`] configuration there is no backlog and
    /// overflow is rejected with a zero retry hint.
    ///
    /// # Errors
    /// Fails only on store/codec errors; a full round is an outcome, not an
    /// error.
    pub fn try_ingest(&mut self, update: Update) -> Result<AdmissionOutcome> {
        if (self.ingested as usize) < self.topology.total_updates() {
            self.ingest(update)?;
            return Ok(AdmissionOutcome::Admitted);
        }
        if self.admission.is_none() {
            return Ok(AdmissionOutcome::Rejected {
                retry_after: SimDuration::ZERO,
            });
        }
        self.queue_offer(update)
    }

    /// Normalises an overflow update to wire form and parks it in the
    /// admission queues (the round is full).
    fn queue_offer(&mut self, update: Update) -> Result<AdmissionOutcome> {
        // Same attribution and lossy-encode rules as the admitted path, so a
        // queued-then-drained update flows exactly as a direct ingest would.
        let fallback = ClientId::new(self.lifetime_ingested);
        let update = match update {
            Update::Dense(mut dense) => {
                let client = *dense.client.get_or_insert(fallback);
                if self.codec.is_lossless() {
                    Update::Dense(dense)
                } else {
                    let samples = dense.samples;
                    self.feedback.encode_update(client, dense.model, samples)
                }
            }
            other => other,
        };
        let outcome = match &update {
            Update::Dense(dense) => {
                let mut wire = self.pool.checkout_bytes(dense.model.dim() * 4);
                for v in dense.model.as_slice() {
                    wire.extend_from_slice(&v.to_le_bytes());
                }
                let outcome = match self.admission.as_mut() {
                    Some(queues) => queues.offer(dense.client, &wire, dense.samples, false),
                    None => AdmissionOutcome::Rejected {
                        retry_after: SimDuration::ZERO,
                    },
                };
                self.pool.checkin_bytes(wire);
                outcome
            }
            Update::Encoded {
                client,
                update: encoded,
                samples,
            } => {
                let wire = encoded.to_bytes();
                match self.admission.as_mut() {
                    Some(queues) => queues.offer(*client, &wire, *samples, true),
                    None => AdmissionOutcome::Rejected {
                        retry_after: SimDuration::ZERO,
                    },
                }
            }
            Update::RemoteBytes {
                wire,
                weight,
                encoded,
            } => {
                if *encoded {
                    // Malformed encoded payloads are refused up front, just
                    // as the direct ingress refuses them.
                    EncodedView::parse(wire)?;
                }
                match self.admission.as_mut() {
                    Some(queues) => queues.offer(None, wire, *weight, *encoded),
                    None => AdmissionOutcome::Rejected {
                        retry_after: SimDuration::ZERO,
                    },
                }
            }
        };
        self.feedback.recycle_update(update);
        Ok(outcome)
    }

    /// Drains queued offers into the open round — globally best first
    /// (utility desc, arrival asc) — until the round is full or the backlog
    /// is empty. Called automatically when a driven round opens the next
    /// one.
    fn drain_backlog(&mut self) {
        while (self.ingested as usize) < self.topology.total_updates() {
            let Some(offer) = self.admission.as_mut().and_then(AdmissionQueues::take_best) else {
                break;
            };
            if self
                .ingest_prepared(offer.client, offer.payload, offer.weight, offer.encoded)
                .is_err()
            {
                break;
            }
        }
    }

    /// Ingests a payload that is already in wire form, preserving its client
    /// attribution (the drain half of the admission path; also the cluster's
    /// re-offer path). Routing follows the same vacancy-then-round-robin
    /// rule as [`Session::ingest`].
    pub(crate) fn ingest_prepared(
        &mut self,
        client: Option<ClientId>,
        payload: Vec<u8>,
        weight: u64,
        encoded: bool,
    ) -> Result<()> {
        if self.ingested as usize >= self.topology.total_updates() {
            return Err(LiflError::InvalidConfig(format!(
                "session round is full: topology aggregates {} updates",
                self.topology.total_updates()
            )));
        }
        let vacancy = self.vacancies.pop();
        let leaf = vacancy.unwrap_or((self.route_cursor as usize) % self.topology.leaves());
        let target = self.aggregator_id(0, leaf);
        let wire_bytes = if encoded {
            (payload.len() as u64).saturating_sub(WIRE_HEADER_BYTES)
        } else {
            payload.len() as u64
        };
        match self
            .gateway
            .ingest_prepared(target, client, payload, weight, encoded)
        {
            Ok(queued) => {
                self.ingress_wire_bytes += wire_bytes;
                self.ingested += 1;
                self.lifetime_ingested += 1;
                self.round_keys.push(queued.key);
                self.round_entries.push(RoundEntry {
                    client: queued.producer,
                    key: queued.key,
                    wire_bytes,
                    leaf,
                });
                if vacancy.is_none() {
                    self.route_cursor += 1;
                }
                Ok(())
            }
            Err(e) => {
                if let Some(v) = vacancy {
                    self.vacancies.push(v);
                }
                Err(e)
            }
        }
    }

    /// Mid-round churn: removes a departed client's update from the current
    /// round (reclaiming its slot and store object) and drops any offers it
    /// has parked in the admission queues. The vacated leaf is refilled from
    /// the backlog when possible — the replacement lands on the departed
    /// client's leaf *behind* the survivors, so every survivor keeps its
    /// position and the surviving fold stays bit-exact. Returns `true` if
    /// anything (slot or queued offer) was reclaimed.
    pub fn depart_client(&mut self, client: ClientId) -> bool {
        let mut departed = false;
        if let Some(queues) = self.admission.as_mut() {
            departed = queues.remove_client(client) > 0;
        }
        while let Some(pos) = self
            .round_entries
            .iter()
            .position(|e| e.client == Some(client))
        {
            let entry = self.round_entries.remove(pos);
            let removed = self
                .leaf_inboxes
                .get(entry.leaf)
                .and_then(|inbox| inbox.remove_first(|q| q.key == entry.key));
            if removed.is_none() {
                continue;
            }
            let _ = self.store.recycle(&entry.key);
            if let Some(kpos) = self.round_keys.iter().position(|k| *k == entry.key) {
                self.round_keys.remove(kpos);
            }
            self.ingested = self.ingested.saturating_sub(1);
            self.ingress_wire_bytes = self.ingress_wire_bytes.saturating_sub(entry.wire_bytes);
            self.vacancies.push(entry.leaf);
            departed = true;
        }
        // Refill vacated slots from the backlog (highest utility first).
        self.drain_backlog();
        departed
    }

    /// Records a client's Oort utility score for admission priority (no-op
    /// without an admission configuration).
    pub fn record_client_utility(&mut self, client: ClientId, utility: f64) {
        if let Some(queues) = self.admission.as_mut() {
            queues.record_utility(client, utility);
        }
    }

    /// The producing clients of the current round's updates, in arrival
    /// order (`None` for anonymous remote forwards).
    pub fn round_clients(&self) -> Vec<Option<ClientId>> {
        self.round_entries.iter().map(|e| e.client).collect()
    }

    /// The admission configuration, when the streaming path is enabled.
    pub fn admission_config(&self) -> Option<&AdmissionConfig> {
        self.admission.as_ref().map(AdmissionQueues::config)
    }

    /// Occupancy of every per-leaf admission queue (empty without an
    /// admission configuration).
    pub fn queue_depths(&self) -> Vec<usize> {
        self.admission
            .as_ref()
            .map_or_else(Vec::new, |q| q.depths())
    }

    /// Total updates parked in the admission queues.
    pub fn queued_updates(&self) -> usize {
        self.admission
            .as_ref()
            .map_or(0, AdmissionQueues::total_queued)
    }

    /// Lifetime admission counters (zero-default without an admission
    /// configuration).
    pub fn admission_stats(&self) -> crate::admission::AdmissionStats {
        self.admission
            .as_ref()
            .map(AdmissionQueues::stats)
            .unwrap_or_default()
    }

    /// Drives the configured tree to completion over the ingested updates and
    /// returns the aggregated global model with the round's accounting.
    ///
    /// Every aggregator of a level runs on its own thread; intermediates are
    /// handed to the next level in child-index order (not completion order),
    /// so results are bit-identical run-to-run regardless of thread
    /// scheduling — and, for `Identity`, bit-identical to the seed two-level
    /// path.
    ///
    /// # Errors
    /// Fails if the ingested updates do not exactly fill the tree
    /// ([`Topology::validate`] — the round is kept and can be topped up) or
    /// on any store/codec/aggregation error — in which case the partially
    /// folded round cannot be resumed, so its remaining updates are
    /// discarded and the session is reset to an empty round.
    pub fn drive(&mut self) -> Result<SessionReport> {
        self.validate_round()?;
        let outcome = self.drive_and_decode();
        let report = outcome.map(|(model, weight)| SessionReport {
            update: ModelUpdate::intermediate(model, weight),
            store_stats: self.store.stats(),
            ingress_wire_bytes: self.ingress_wire_bytes,
            updates_ingested: self.ingested,
            topology: self.topology.clone(),
        });
        // Success or aggregation failure, the round is over: free its store
        // objects and counters so the session stays bounded over its life.
        self.reset_round();
        // The next round opens immediately: queued clients win admission in
        // utility order.
        self.drain_backlog();
        report
    }

    /// Checks the round may close: an exact fill under the legacy policy, or
    /// the configured quorum under partial participation.
    fn validate_round(&self) -> Result<()> {
        let close = self
            .admission
            .as_ref()
            .map_or(RoundClose::Exact, |q| q.config().round_close);
        match close {
            RoundClose::Exact => self.topology.validate(self.ingested as usize),
            RoundClose::Quorum { .. } => {
                let required = close.required_updates(self.topology.total_updates());
                if (self.ingested as usize) < required {
                    return Err(LiflError::InvalidConfig(format!(
                        "quorum not met: round has {} of {} required updates",
                        self.ingested, required
                    )));
                }
                Ok(())
            }
        }
    }

    /// Drives the configured tree to completion like [`Session::drive`], but
    /// exports the merged update as codec-tagged wire bytes instead of
    /// decoding it — the transmit half of a cluster hop. No intermediate
    /// [`DenseModel`] is materialised: the returned [`Update::RemoteBytes`]
    /// shares the store's top-intermediate buffer (the store's objects are
    /// immutable, so the handle stays valid after the round's objects are
    /// recycled), and the parent gateway ingests it with header-only
    /// parsing.
    ///
    /// # Errors
    /// Same conditions as [`Session::drive`].
    pub fn drive_to_wire(&mut self) -> Result<WireExport> {
        self.validate_round()?;
        let outcome = self.drive_tree().and_then(|result| {
            let object = self.store.get(&result.key)?;
            Ok(WireExport {
                update: Update::remote_bytes(object.bytes(), result.weight, result.encoded),
                store_stats: self.store.stats(),
                ingress_wire_bytes: self.ingress_wire_bytes,
                updates_ingested: self.ingested,
            })
        });
        self.reset_round();
        self.drain_backlog();
        outcome
    }

    /// Runs the tree to completion and decodes the top's intermediate.
    fn drive_and_decode(&mut self) -> Result<(DenseModel, u64)> {
        let result = self.drive_tree()?;
        let object = self.store.get(&result.key)?;
        let model = if result.encoded {
            // The one remaining full-decode site: parse the header in place
            // and dequantize straight into the output buffer (no body copy).
            let view = EncodedView::parse(object.as_slice())?;
            let mut out = vec![0.0f32; view.dim()];
            view.decode_into(&mut out)?;
            DenseModel::from_vec(out)
        } else {
            DenseModel::from_vec(object.as_f32_vec())
        };
        Ok((model, result.weight))
    }

    /// Runs the tree level by level, returning the top's intermediate.
    ///
    /// A full round runs every position; a partial (quorum) round skips
    /// positions whose inboxes are empty — each station aggregates exactly
    /// what arrived, and parents fold only the children that produced
    /// output, in child order. On a full round the two paths are
    /// identical position for position, so exact-fill results stay
    /// bit-exact.
    fn drive_tree(&mut self) -> Result<QueuedUpdate> {
        let levels = self.topology.levels();
        let full = self.ingested as usize == self.topology.total_updates();
        let mut stations: Vec<(usize, InPlaceQueue)> = self
            .leaf_inboxes
            .iter()
            .cloned()
            .enumerate()
            .filter(|(_, inbox)| full || !inbox.is_empty())
            .collect();
        let mut outputs: Vec<(usize, QueuedUpdate)> = Vec::new();
        for level in 0..levels {
            // Record every successful sibling's intermediate key before
            // surfacing a failure, so a failed level's survivors are still
            // recycled by reset_round instead of leaking in the store.
            let mut first_error = None;
            let results = self.run_level(level, &stations, full);
            outputs = Vec::with_capacity(stations.len());
            for ((index, _), result) in stations.iter().zip(results) {
                match result {
                    Ok(output) => {
                        self.round_keys.push(output.key);
                        outputs.push((*index, output));
                    }
                    Err(error) if first_error.is_none() => first_error = Some(error),
                    Err(_) => {}
                }
            }
            if let Some(error) = first_error {
                return Err(error);
            }
            if level + 1 < levels {
                // Group this level's outputs onto the next level's inboxes in
                // child order: parent j consumes children j·f .. (j+1)·f
                // (the children that exist, in a partial round).
                let fan_in = self.topology.fan_in(level + 1);
                let mut next: Vec<(usize, InPlaceQueue)> = Vec::new();
                for (pos, output) in &outputs {
                    let parent = pos / fan_in;
                    if next.last().map(|(p, _)| *p) != Some(parent) {
                        next.push((parent, InPlaceQueue::new()));
                    }
                    if let Some((_, inbox)) = next.last() {
                        inbox.enqueue(*output);
                    }
                }
                stations = next;
            }
        }
        outputs
            .pop()
            .map(|(_, output)| output)
            .ok_or_else(|| LiflError::Simulation("top level produced no output".to_string()))
    }

    /// Discards the current (not yet driven) round: every ingested update is
    /// dropped, its store objects are recycled and the counters are zeroed,
    /// leaving the session ready for a fresh round. Per-client
    /// error-feedback residuals are kept — the discarded round's loss is
    /// re-absorbed if the clients keep sending, exactly as after a failed
    /// [`Session::drive`]. Used by a cluster coordinator to abort sibling
    /// nodes' rounds when one node's drive fails.
    pub fn discard_round(&mut self) {
        self.reset_round();
    }

    /// Returns the session to an empty round: drains whatever a failed (or
    /// finished) round left in the leaf inboxes, recycles every store object
    /// the round created (only this round's keys — an injected shared store's
    /// other objects are untouched) and zeroes the counters.
    fn reset_round(&mut self) {
        for inbox in &self.leaf_inboxes {
            while inbox.dequeue().is_some() {}
        }
        for key in self.round_keys.drain(..) {
            let _ = self.store.recycle(&key);
        }
        self.ingested = 0;
        self.ingress_wire_bytes = 0;
        self.round_entries.clear();
        self.route_cursor = 0;
        self.vacancies.clear();
    }

    /// Runs every listed station (position, inbox) of one level on its own
    /// thread, returning each position's outcome in station order (no
    /// short-circuiting: the caller needs every survivor's key even when a
    /// sibling fails). A full round uses the topology's fan-in as every
    /// station's goal; a partial round aggregates exactly what each inbox
    /// holds.
    fn run_level(
        &self,
        level: usize,
        stations: &[(usize, InPlaceQueue)],
        full: bool,
    ) -> Vec<Result<QueuedUpdate>> {
        let codec = self.codec;
        let shards = self.shards;
        let policy = self.policy;
        let topology = &self.topology;
        std::thread::scope(|scope| {
            let handles: Vec<_> = stations
                .iter()
                .map(|(index, inbox)| {
                    let index = *index;
                    let store = self.store.clone();
                    let inbox = inbox.clone();
                    // Deterministic, position-unique codec stream (the same
                    // (level, index) packing as the aggregator identity,
                    // mapped into the enclosing cluster tree): leaves of a
                    // standalone session draw from seed = index, exactly the
                    // streams of the pre-redesign codec path.
                    let seed = self.aggregator_id(level, index).index();
                    let agg_codec =
                        UpdateCodec::with_seed(codec, seed).with_pool(self.pool.clone());
                    let goal = if full { 0 } else { inbox.len() as u64 };
                    scope.spawn(move || -> Result<QueuedUpdate> {
                        let mut aggregator = if goal == 0 {
                            AggregatorRuntime::for_level(
                                topology, level, index, store, inbox, agg_codec,
                            )?
                        } else {
                            let role = if level + 1 == topology.levels() {
                                lifl_types::AggregatorRole::Top
                            } else if level == 0 {
                                lifl_types::AggregatorRole::Leaf
                            } else {
                                lifl_types::AggregatorRole::Middle
                            };
                            AggregatorRuntime::with_codec(
                                crate::aggregator::position_id(level, index),
                                role,
                                goal,
                                store,
                                inbox,
                                agg_codec,
                            )?
                        };
                        aggregator.set_shards(shards);
                        aggregator.set_policy(policy)?;
                        aggregator.run_to_completion()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| {
                    handle.join().unwrap_or_else(|_| {
                        Err(LiflError::Simulation(
                            "aggregator thread panicked".to_string(),
                        ))
                    })
                })
                .collect()
        })
    }
}

/// A session is an [`Ingest`](lifl_fl::Ingest) backend: the single-node
/// target the multi-round training driver
/// ([`crate::training::TrainingDriver`]) runs over — the reference a
/// federated [`crate::cluster::Cluster`] must (and does) match bit-for-bit.
impl lifl_fl::Ingest for Session {
    fn ingest_update(&mut self, update: Update) -> Result<()> {
        self.ingest(update)
    }

    fn try_ingest(&mut self, update: Update) -> Result<lifl_types::AdmissionOutcome> {
        Session::try_ingest(self, update)
    }

    fn round_capacity(&self) -> usize {
        self.topology.total_updates()
    }

    fn ingress_codec(&self) -> CodecKind {
        self.codec
    }

    fn aggregate_round(&mut self) -> Result<lifl_fl::RoundAggregate> {
        let report = self.drive()?;
        Ok(lifl_fl::RoundAggregate {
            update: report.update,
            ingress_wire_bytes: report.ingress_wire_bytes,
            updates_ingested: report.updates_ingested,
        })
    }

    fn discard_round(&mut self) {
        Session::discard_round(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifl_fl::aggregate::fedavg;

    fn updates(n: usize, dim: usize) -> Vec<ModelUpdate> {
        (0..n)
            .map(|i| {
                let values: Vec<f32> = (0..dim)
                    .map(|d| ((i * dim + d) % 89) as f32 * 0.05 - 2.0)
                    .collect();
                ModelUpdate::from_client(
                    ClientId::new(i as u64),
                    DenseModel::from_vec(values),
                    (i + 1) as u64,
                )
            })
            .collect()
    }

    fn drive(topology: Topology, codec: CodecKind, updates: &[ModelUpdate]) -> SessionReport {
        let mut session = SessionBuilder::new()
            .topology(topology)
            .codec(codec)
            .build()
            .unwrap();
        session
            .ingest_all(updates.iter().cloned().map(Update::Dense))
            .unwrap();
        session.drive().unwrap()
    }

    #[test]
    fn two_level_identity_matches_flat_fedavg() {
        let updates = updates(8, 16);
        let report = drive(Topology::two_level(4, 2), CodecKind::Identity, &updates);
        let flat = fedavg(&updates).unwrap();
        assert_eq!(report.update.samples, flat.samples);
        for (a, b) in report
            .update
            .model
            .as_slice()
            .iter()
            .zip(flat.model.as_slice())
        {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        assert_eq!(report.store_stats.encoded_puts, 0);
        assert_eq!(report.updates_ingested, 8);
        assert_eq!(report.ingress_wire_bytes, 8 * 16 * 4);
    }

    #[test]
    fn three_level_tree_matches_flat_fedavg() {
        // 2 updates per leaf, 4 leaves feeding 2 middles, 1 top: 8 updates.
        let updates = updates(8, 16);
        let topology = Topology::new(vec![2, 2, 2]).unwrap();
        let report = drive(topology.clone(), CodecKind::Identity, &updates);
        assert_eq!(report.topology, topology);
        let flat = fedavg(&updates).unwrap();
        assert_eq!(report.update.samples, flat.samples);
        for (a, b) in report
            .update
            .model
            .as_slice()
            .iter()
            .zip(flat.model.as_slice())
        {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn flat_topology_runs_one_aggregator() {
        let updates = updates(3, 8);
        let report = drive(Topology::flat(3), CodecKind::Identity, &updates);
        let flat = fedavg(&updates).unwrap();
        for (a, b) in report
            .update
            .model
            .as_slice()
            .iter()
            .zip(flat.model.as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits(), "flat session is the flat fold");
        }
    }

    #[test]
    fn wrong_update_count_is_rejected_and_over_ingest_refused() {
        let mut session = SessionBuilder::new().two_level(2, 2).build().unwrap();
        session
            .ingest_all(updates(3, 4).into_iter().map(Update::Dense))
            .unwrap();
        let err = session.drive().unwrap_err().to_string();
        assert!(
            err.contains("expected 4 updates (2 leaves x 2), got 3"),
            "{err}"
        );
        // The round survives the failed drive; topping it up works.
        session
            .ingest(Update::Dense(updates(4, 4).pop().unwrap()))
            .unwrap();
        assert!(session.drive().is_ok());
        // A full round refuses a fifth ingest.
        session
            .ingest_all(updates(4, 4).into_iter().map(Update::Dense))
            .unwrap();
        assert!(session
            .ingest(Update::Dense(updates(1, 4).pop().unwrap()))
            .is_err());
    }

    #[test]
    fn encoded_and_remote_ingests_share_the_round() {
        let dim = 64;
        let batch = updates(4, dim);
        // Two dense, one pre-encoded, one forwarded as remote wire bytes.
        let mut client_codec = UpdateCodec::with_seed(CodecKind::Uniform8, 7);
        let encoded = client_codec.encode(&batch[2].model);
        let remote_wire = client_codec.encode(&batch[3].model).to_bytes();

        let mut session = SessionBuilder::new()
            .two_level(2, 2)
            .codec(CodecKind::Uniform8)
            .build()
            .unwrap();
        session.ingest(Update::Dense(batch[0].clone())).unwrap();
        session.ingest(Update::Dense(batch[1].clone())).unwrap();
        session
            .ingest(Update::encoded(ClientId::new(2), encoded, batch[2].samples))
            .unwrap();
        session
            .ingest(Update::remote_bytes(remote_wire, batch[3].samples, true))
            .unwrap();
        let report = session.drive().unwrap();

        let flat = fedavg(&batch).unwrap();
        assert_eq!(report.update.samples, flat.samples);
        let max_abs = batch
            .iter()
            .flat_map(|u| u.model.as_slice())
            .fold(0.0f32, |a, v| a.max(v.abs()));
        let tolerance = 3.0 * max_abs / 127.0;
        for (a, b) in report
            .update
            .model
            .as_slice()
            .iter()
            .zip(flat.model.as_slice())
        {
            assert!((a - b).abs() <= tolerance, "{a} vs {b}");
        }
        assert!(report.store_stats.encoded_puts > 0);
    }

    #[test]
    fn sessions_are_reusable_across_rounds() {
        let mut session = SessionBuilder::new()
            .two_level(2, 2)
            .codec(CodecKind::Uniform4)
            .build()
            .unwrap();
        let batch = updates(4, 32);
        for _ in 0..3 {
            session
                .ingest_all(batch.iter().cloned().map(Update::Dense))
                .unwrap();
            let report = session.drive().unwrap();
            assert_eq!(report.updates_ingested, 4);
            assert_eq!(session.pending_updates(), 0);
        }
        // Long-lived sessions stay bounded: every round's store objects are
        // recycled when the round ends.
        assert_eq!(
            session.store().stats().live_objects,
            0,
            "rounds must not leak store objects"
        );
        // Error feedback accumulated residuals for the lossy codec.
        assert_eq!(session.codec(), CodecKind::Uniform4);
        assert!(session.store().stats().encoded_puts > 0);
        assert!(session.pool().stats().hits > 0, "codec scratch was pooled");
    }

    #[test]
    fn failed_round_is_discarded_and_the_session_recovers() {
        let mut session = SessionBuilder::new().two_level(2, 2).build().unwrap();
        let batch = updates(4, 16);
        // Three valid updates plus raw remote bytes of the wrong dimension:
        // the fold fails mid-drive.
        for update in batch.iter().take(3) {
            session.ingest(Update::Dense(update.clone())).unwrap();
        }
        session
            .ingest(Update::remote_bytes(vec![0u8; 8], 1, false))
            .unwrap();
        assert!(session.drive().is_err(), "mismatched dimension must fail");
        // The corrupt round is gone: counters are zero, nothing leaked in
        // the store (surviving siblings' intermediates included), and a
        // fresh, fully valid round drives cleanly.
        assert_eq!(session.pending_updates(), 0);
        assert_eq!(
            session.store().stats().live_objects,
            0,
            "failed rounds must not leak store objects"
        );
        session
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .unwrap();
        let report = session.drive().unwrap();
        assert_eq!(report.updates_ingested, 4);
        // A malformed *encoded* ingest is rejected up front and counts
        // nothing toward the round or its wire accounting.
        assert!(session
            .ingest(Update::remote_bytes(vec![1u8, 2, 3], 1, true))
            .is_err());
        assert_eq!(session.pending_updates(), 0);
    }

    #[test]
    fn invalid_topk_is_rejected_at_build() {
        assert!(SessionBuilder::new()
            .codec(CodecKind::TopK { permille: 0 })
            .build()
            .is_err());
    }

    #[test]
    fn invalid_fold_policy_is_rejected_at_build() {
        assert!(SessionBuilder::new()
            .fold_policy(FoldPolicy::TrimmedMean { trim_permille: 500 })
            .build()
            .is_err());
    }

    #[test]
    fn robust_session_bounds_an_adversarially_scaled_client() {
        // 3 leaves × 3 updates; one client scales its update by 1e6.
        let mut batch = updates(9, 8);
        for v in batch[4].model.as_mut_slice() {
            *v *= 1e6;
        }
        let honest: Vec<ModelUpdate> = batch
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 4)
            .map(|(_, u)| u.clone())
            .collect();
        let honest_mean = fedavg(&honest).unwrap();
        let bound = honest
            .iter()
            .flat_map(|u| u.model.as_slice())
            .fold(0.0f32, |a, v| a.max(v.abs()));

        let drive_with = |policy: FoldPolicy| {
            let mut session = SessionBuilder::new()
                .two_level(3, 3)
                .fold_policy(policy)
                .build()
                .unwrap();
            assert_eq!(session.fold_policy(), policy);
            session
                .ingest_all(batch.iter().cloned().map(Update::Dense))
                .unwrap();
            session.drive().unwrap()
        };
        // FedAvg is dragged far outside the honest envelope...
        let fedavg_report = drive_with(FoldPolicy::FedAvg);
        assert!(fedavg_report
            .update
            .model
            .as_slice()
            .iter()
            .any(|v| v.abs() > 100.0 * bound));
        // ...the median stays inside it, close to the honest mean.
        let median_report = drive_with(FoldPolicy::Median);
        for (v, h) in median_report
            .update
            .model
            .as_slice()
            .iter()
            .zip(honest_mean.model.as_slice())
        {
            assert!(v.abs() <= bound, "median escaped the honest envelope: {v}");
            assert!((v - h).abs() <= 2.0 * bound, "{v} vs honest mean {h}");
        }
    }

    #[test]
    fn try_ingest_queues_overflow_and_drains_next_round() {
        let batch = updates(6, 8);
        let mut session = SessionBuilder::new()
            .two_level(2, 2)
            .admission(AdmissionConfig::bounded(8, 1 << 20))
            .build()
            .unwrap();
        for u in &batch[..4] {
            assert!(session
                .try_ingest(Update::Dense(u.clone()))
                .unwrap()
                .is_admitted());
        }
        // The round is full: the next two offers park in the per-leaf queues.
        assert_eq!(
            session.try_ingest(Update::Dense(batch[4].clone())).unwrap(),
            AdmissionOutcome::Queued { depth: 1 }
        );
        assert_eq!(
            session.try_ingest(Update::Dense(batch[5].clone())).unwrap(),
            AdmissionOutcome::Queued { depth: 1 }
        );
        assert_eq!(session.queued_updates(), 2);
        assert_eq!(session.queue_depths(), vec![1, 1]);
        session.drive().unwrap();
        // Driving opened the next round and drained the backlog into it.
        assert_eq!(session.pending_updates(), 2);
        assert_eq!(session.queued_updates(), 0);
        let stats = session.admission_stats();
        assert_eq!(stats.queued, 2);
        assert_eq!(stats.drained, 2);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn admission_rejects_past_queue_budget_with_retry_hint() {
        let batch = updates(7, 8);
        let mut session = SessionBuilder::new()
            .two_level(2, 2)
            .admission(
                AdmissionConfig::bounded(1, 1 << 20)
                    .with_retry_after(SimDuration::from_millis(250.0)),
            )
            .build()
            .unwrap();
        for u in &batch[..4] {
            session.ingest(Update::Dense(u.clone())).unwrap();
        }
        // Two offers fit the slot budget; the third is turned away.
        assert!(session
            .try_ingest(Update::Dense(batch[4].clone()))
            .unwrap()
            .is_queued());
        assert!(session
            .try_ingest(Update::Dense(batch[5].clone()))
            .unwrap()
            .is_queued());
        assert_eq!(
            session.try_ingest(Update::Dense(batch[6].clone())).unwrap(),
            AdmissionOutcome::Rejected {
                retry_after: SimDuration::from_millis(250.0)
            }
        );
        // The legacy strict ingress reports budget exhaustion as an error.
        let err = session
            .ingest(Update::Dense(batch[6].clone()))
            .unwrap_err()
            .to_string();
        assert!(err.contains("admission queue budget is exhausted"), "{err}");
        assert_eq!(session.admission_stats().rejected, 2);
    }

    #[test]
    fn queued_clients_drain_in_utility_order() {
        let batch = updates(8, 8);
        let mut session = SessionBuilder::new()
            .two_level(2, 2)
            .admission(AdmissionConfig::bounded(8, 1 << 20))
            .build()
            .unwrap();
        for u in &batch[..4] {
            session.ingest(Update::Dense(u.clone())).unwrap();
        }
        // Clients 4..8 park; 6 is hot, 5 is cold, 4 and 7 are unexplored.
        for u in &batch[4..8] {
            assert!(session
                .try_ingest(Update::Dense(u.clone()))
                .unwrap()
                .is_queued());
        }
        session.record_client_utility(ClientId::new(6), 3.0);
        session.record_client_utility(ClientId::new(5), 0.1);
        session.drive().unwrap();
        // Highest utility first, unexplored (1.0) next in arrival order,
        // lowest last — all four fit the fresh round.
        let drained: Vec<Option<ClientId>> = session.round_clients().to_vec();
        assert_eq!(
            drained,
            vec![
                Some(ClientId::new(6)),
                Some(ClientId::new(4)),
                Some(ClientId::new(7)),
                Some(ClientId::new(5)),
            ]
        );
    }

    #[test]
    fn quorum_round_closes_partial_and_matches_flat_fedavg() {
        let batch = updates(3, 16);
        let mut session = SessionBuilder::new()
            .two_level(2, 2)
            .admission(AdmissionConfig::bounded(8, 1 << 20).with_quorum(3))
            .build()
            .unwrap();
        session
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .unwrap();
        let report = session.drive().unwrap();
        assert_eq!(report.updates_ingested, 3);
        let flat = fedavg(&batch).unwrap();
        assert_eq!(report.update.samples, flat.samples);
        for (a, b) in report
            .update
            .model
            .as_slice()
            .iter()
            .zip(flat.model.as_slice())
        {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn quorum_below_minimum_still_refuses_to_close() {
        let batch = updates(2, 8);
        let mut session = SessionBuilder::new()
            .two_level(2, 2)
            .admission(AdmissionConfig::bounded(8, 1 << 20).with_quorum(3))
            .build()
            .unwrap();
        session
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .unwrap();
        let err = session.drive().unwrap_err().to_string();
        assert!(err.contains("quorum not met"), "{err}");
        // Topping up to the quorum closes the round.
        session
            .ingest(Update::Dense(updates(3, 8).pop().unwrap()))
            .unwrap();
        assert!(session.drive().is_ok());
    }

    #[test]
    fn departed_client_refills_from_backlog_without_perturbing_survivors() {
        let batch = updates(4, 16);
        let replacement =
            ModelUpdate::from_client(ClientId::new(9), DenseModel::from_vec(vec![0.25; 16]), 5);

        let mut churned = SessionBuilder::new()
            .two_level(2, 2)
            .admission(AdmissionConfig::bounded(8, 1 << 20))
            .build()
            .unwrap();
        churned
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .unwrap();
        assert!(churned
            .try_ingest(Update::Dense(replacement.clone()))
            .unwrap()
            .is_queued());
        // Client 1 (leaf 1) departs mid-round; its slot refills from the
        // backlog without disturbing the surviving assignments.
        assert!(churned.depart_client(ClientId::new(1)));
        assert_eq!(churned.pending_updates(), 4);
        assert_eq!(churned.queued_updates(), 0);
        let report = churned.drive().unwrap();

        // Reference: a plain session whose arrival order lands the same
        // updates on the same leaves, the replacement last on leaf 1.
        let mut reference = SessionBuilder::new().two_level(2, 2).build().unwrap();
        reference
            .ingest_all(
                [
                    batch[0].clone(),
                    batch[3].clone(),
                    batch[2].clone(),
                    replacement,
                ]
                .into_iter()
                .map(Update::Dense),
            )
            .unwrap();
        let expected = reference.drive().unwrap();
        assert_eq!(report.update.samples, expected.update.samples);
        for (a, b) in report
            .update
            .model
            .as_slice()
            .iter()
            .zip(expected.update.model.as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits(), "survivor fold diverged");
        }
    }

    #[test]
    fn departing_the_last_quorum_member_reopens_the_round() {
        let batch = updates(3, 8);
        let mut session = SessionBuilder::new()
            .two_level(2, 2)
            .admission(AdmissionConfig::bounded(8, 1 << 20).with_quorum(3))
            .build()
            .unwrap();
        session
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .unwrap();
        assert!(session.depart_client(ClientId::new(2)));
        assert_eq!(session.pending_updates(), 2);
        assert!(session.drive().unwrap_err().to_string().contains("quorum"));
        // A departure that never happened reclaims nothing.
        assert!(!session.depart_client(ClientId::new(77)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use lifl_fl::aggregate::CumulativeFedAvg;
    use proptest::prelude::*;

    /// The seed two-level fold semantics, restated from first principles:
    /// update k feeds leaf k % leaves; each leaf folds its share in arrival
    /// order and finalizes; the top folds leaf intermediates in leaf order.
    fn seed_reference(leaves: usize, per_leaf: usize, updates: &[ModelUpdate]) -> ModelUpdate {
        let dim = updates[0].model.dim();
        let mut top = CumulativeFedAvg::new(dim);
        for leaf in 0..leaves {
            let mut acc = CumulativeFedAvg::new(dim);
            for update in updates
                .iter()
                .enumerate()
                .filter(|(k, _)| k % leaves == leaf)
                .map(|(_, u)| u)
            {
                acc.fold(update).unwrap();
            }
            assert_eq!(acc.updates_folded(), per_leaf as u64);
            top.fold(&acc.finalize().unwrap()).unwrap();
        }
        top.finalize().unwrap()
    }

    proptest! {
        /// Acceptance: a `Session` with `Identity` is bit-exact with the seed
        /// two-level fold semantics for arbitrary two-level shapes.
        #[test]
        fn identity_session_bit_exact_with_seed_semantics(
            leaves in 1usize..6,
            per_leaf in 1usize..5,
            dim in 1usize..24,
            values in proptest::collection::vec(-50.0f32..50.0, 30 * 24),
            samples in proptest::collection::vec(1u64..40, 30),
        ) {
            let n = leaves * per_leaf;
            let updates: Vec<ModelUpdate> = (0..n)
                .map(|i| {
                    let params: Vec<f32> =
                        (0..dim).map(|d| values[(i * dim + d) % values.len()]).collect();
                    ModelUpdate::from_client(
                        ClientId::new(i as u64),
                        DenseModel::from_vec(params),
                        samples[i % samples.len()],
                    )
                })
                .collect();
            let mut session = SessionBuilder::new()
                .two_level(leaves, per_leaf)
                .build()
                .unwrap();
            session
                .ingest_all(updates.iter().cloned().map(Update::Dense))
                .unwrap();
            let report = session.drive().unwrap();
            let reference = seed_reference(leaves, per_leaf, &updates);
            prop_assert_eq!(report.update.samples, reference.samples);
            for (a, b) in report
                .update
                .model
                .as_slice()
                .iter()
                .zip(reference.model.as_slice())
            {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "session diverged: {} vs {}", a, b);
            }
        }

        /// Deep trees are deterministic run-to-run for every codec: two
        /// sessions over the same ingests produce bit-identical models.
        #[test]
        fn deep_sessions_are_deterministic(
            fan0 in 1usize..4,
            fan1 in 1usize..4,
            fan2 in 1usize..4,
            seed in 0u64..500,
        ) {
            let topology = Topology::new(vec![fan0, fan1, fan2]).unwrap();
            let n = topology.total_updates();
            let updates: Vec<ModelUpdate> = (0..n)
                .map(|i| {
                    let params: Vec<f32> = (0..16)
                        .map(|d| ((i * 31 + d * 7 + seed as usize) % 101) as f32 * 0.07 - 3.0)
                        .collect();
                    ModelUpdate::from_client(
                        ClientId::new(i as u64),
                        DenseModel::from_vec(params),
                        (i + 1) as u64,
                    )
                })
                .collect();
            for codec in [CodecKind::Uniform8, CodecKind::TopK { permille: 400 }] {
                let run = || {
                    let mut session = SessionBuilder::new()
                        .topology(topology.clone())
                        .codec(codec)
                        .seed(seed)
                        .build()
                        .unwrap();
                    session
                        .ingest_all(updates.iter().cloned().map(Update::Dense))
                        .unwrap();
                    session.drive().unwrap()
                };
                let first = run();
                let second = run();
                prop_assert_eq!(first.update.samples, second.update.samples);
                for (a, b) in first
                    .update
                    .model
                    .as_slice()
                    .iter()
                    .zip(second.update.model.as_slice())
                {
                    prop_assert_eq!(a.to_bits(), b.to_bits(), "{} not deterministic", codec);
                }
            }
        }
    }
}
