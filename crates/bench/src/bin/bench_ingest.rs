//! Baseline runner for the streaming ingress path: measures bounded-admission
//! throughput (updates/s and payload bytes/s) at 1/4/16 leaf queues and
//! persists `BENCH_ingest.json` so every ingress PR has a committed
//! before/after record.
//!
//! ```text
//! bench_ingest [--quick] [--out PATH] [--check PATH]
//!   --quick       bounded iterations (CI smoke mode)
//!   --out PATH    where to write the report (default BENCH_ingest.json)
//!   --check PATH  instead of measuring, validate an existing report's
//!                 schema and completeness (exit 1 on failure)
//! ```

use lifl_bench::ingest;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quick = false;
    let mut out = String::from("BENCH_ingest.json");
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(path) => out = path,
                None => return usage("--out needs a path"),
            },
            "--check" => match args.next() {
                Some(path) => check = Some(path),
                None => return usage("--check needs a path"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    if let Some(path) = check {
        let json = match std::fs::read_to_string(&path) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("error: ingest report {path:?} is missing or unreadable: {e}");
                eprintln!("hint: regenerate it with `just bench-ingest` and commit it");
                return ExitCode::FAILURE;
            }
        };
        return match ingest::check_report(&json) {
            Ok(report) => {
                eprintln!(
                    "{path}: schema {} ok, {} entries, {} derived ratios ({} mode)",
                    report.schema,
                    report.entries.len(),
                    report.derived.len(),
                    report.mode
                );
                ExitCode::SUCCESS
            }
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        };
    }

    let report = ingest::run(quick);
    for ratio in &report.derived {
        eprintln!("{:48} {:.2}x", ratio.name, ratio.ratio);
    }
    let json = match serde_json::to_string_pretty(&report) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("error: could not serialize report: {e:?}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&out, json + "\n") {
        eprintln!("error: could not write {out:?}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");
    ExitCode::SUCCESS
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("error: {problem}");
    eprintln!("usage: bench_ingest [--quick] [--out PATH] [--check PATH]");
    ExitCode::FAILURE
}
