//! The `lifl-lint` binary: runs the rule set over the workspace and prints
//! `file:line: rule-id: message` diagnostics, exiting nonzero on findings.
//!
//! ```text
//! lifl-lint [--root <dir>] [--rules <name,name,...>] [--list-rules]
//! ```

#![forbid(unsafe_code)]

use lifl_lint::{find_workspace_root, run, Rule};
use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut selected: Vec<Rule> = Rule::ALL.to_vec();
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory argument"),
            },
            "--rules" => match args.next() {
                Some(list) => {
                    let mut rules = Vec::new();
                    for raw in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                        match Rule::from_marker_name(raw) {
                            Some(r) => rules.push(r),
                            None => {
                                return usage(&format!(
                                    "unknown rule `{raw}` (known: {})",
                                    Rule::catalog()
                                ))
                            }
                        }
                    }
                    if rules.is_empty() {
                        return usage("--rules needs at least one rule name");
                    }
                    selected = rules;
                }
                None => return usage("--rules needs a comma-separated rule list"),
            },
            "--list-rules" => {
                for rule in Rule::ALL {
                    println!("{}\t{}", rule.id(), rule.name());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "lifl-lint: workspace static analysis for the LIFL repo\n\n\
                     usage: lifl-lint [--root <dir>] [--rules <name,...>] [--list-rules]\n\n\
                     rules: {}\n\n\
                     Diagnostics are `file:line: rule-id: message`; exit is nonzero on\n\
                     any finding. Opt out per site with\n\
                     `// lifl-lint: allow(<rule>) — <justification>` or per file with\n\
                     `// lifl-lint: allow-file(<rule>) — <justification>`.",
                    Rule::catalog()
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("lifl-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match run(&root, &selected) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lifl-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if report.findings.is_empty() {
        let sync = match report.ci_sync_commands {
            Some(n) => format!("; justfile and ci.yml agree on {n} commands"),
            None => String::new(),
        };
        println!(
            "lifl-lint: clean — {} files, {} rules{sync}",
            report.files_scanned,
            selected.len()
        );
        ExitCode::SUCCESS
    } else {
        for finding in &report.findings {
            println!("{finding}");
        }
        eprintln!(
            "lifl-lint: {} finding(s) across {} scanned files",
            report.findings.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!(
        "lifl-lint: {msg}\nusage: lifl-lint [--root <dir>] [--rules <name,...>] [--list-rules]"
    );
    ExitCode::from(2)
}
