//! Constructors for the baseline aggregation systems.

use lifl_core::platform::{LiflPlatform, PlatformProfile};
use lifl_dataplane::DataPlaneKind;
use lifl_types::{AggregationTiming, ClusterConfig, CodecKind, PlacementPolicy, SystemKind};

/// The serverful baseline (SF): always-on aggregators over gRPC (Fig. 2(a)).
pub fn serverful(cluster: ClusterConfig) -> LiflPlatform {
    serverful_with_codec(cluster, CodecKind::Identity)
}

/// [`serverful`] with every transfer priced off `codec`-encoded bytes (the
/// Fig. 9 codec × system sweep) — the one owner of the SF profile either way.
pub fn serverful_with_codec(cluster: ClusterConfig, codec: CodecKind) -> LiflPlatform {
    LiflPlatform::with_profile(PlatformProfile::serverful(cluster).with_codec(codec))
}

/// The serverless baseline (SL): Knative-style functions behind a broker with
/// container sidecars (Fig. 2(b)).
pub fn serverless(cluster: ClusterConfig) -> LiflPlatform {
    serverless_with_codec(cluster, CodecKind::Identity)
}

/// [`serverless`] with every transfer priced off `codec`-encoded bytes.
pub fn serverless_with_codec(cluster: ClusterConfig, codec: CodecKind) -> LiflPlatform {
    LiflPlatform::with_profile(PlatformProfile::serverless(cluster).with_codec(codec))
}

/// The SL-H baseline of Fig. 8: LIFL's data plane with a conventional
/// serverless control plane (least connection, reactive scaling, lazy).
pub fn sl_hierarchical(cluster: ClusterConfig) -> LiflPlatform {
    LiflPlatform::with_profile(PlatformProfile::sl_hierarchical(cluster))
}

/// The "no hierarchy" (NH) configuration of Fig. 4: a single aggregator on one
/// node consuming every update itself, on the serverful data plane.
pub fn no_hierarchy_profile(mut cluster: ClusterConfig) -> PlatformProfile {
    cluster.aggregation_nodes = 1;
    PlatformProfile {
        system: SystemKind::Serverful,
        placement: PlacementPolicy::FirstFit,
        timing: AggregationTiming::Eager,
        hierarchy_planning: true,
        reuse_runtimes: false,
        // A fan-in as large as the whole round means one leaf == one flat aggregator.
        leaf_fan_in: u32::MAX,
        always_on: true,
        dataplane: DataPlaneKind::ServerfulGrpc,
        warm_across_rounds: true,
        codec: lifl_types::CodecKind::Identity,
        aggregation_shards: 1,
        max_interior_fan_in: 0,
        cluster,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifl_core::platform::RoundSpec;
    use lifl_core::AggregationSystem;
    use lifl_types::{ModelKind, SimTime};

    #[test]
    fn baselines_have_expected_identities() {
        let cluster = ClusterConfig::default();
        assert_eq!(serverful(cluster.clone()).system(), SystemKind::Serverful);
        assert_eq!(serverless(cluster.clone()).system(), SystemKind::Serverless);
        assert_eq!(
            sl_hierarchical(cluster.clone()).system(),
            SystemKind::SlHierarchical
        );
        assert_eq!(serverful(cluster).label(), "SF");
    }

    #[test]
    fn nh_uses_single_node_and_flat_aggregation() {
        let profile = no_hierarchy_profile(ClusterConfig::default());
        let mut nh = LiflPlatform::with_profile(profile);
        let spec = RoundSpec::simultaneous(ModelKind::ResNet152, 8, SimTime::ZERO);
        let report = nh.run_round(&spec);
        assert_eq!(report.metrics.nodes_used, 1);
        // One flat aggregator => no middle rows in the timeline.
        assert!(!report.gantt.rows().iter().any(|r| r.contains("MID")));
    }

    #[test]
    fn serverless_round_is_slower_than_serverful() {
        let spec = RoundSpec::simultaneous(ModelKind::ResNet152, 8, SimTime::ZERO);
        let sf_act = serverful(ClusterConfig::default())
            .run_round(&spec)
            .metrics
            .aggregation_completion_time;
        let sl_act = serverless(ClusterConfig::default())
            .run_round(&spec)
            .metrics
            .aggregation_completion_time;
        assert!(sl_act > sf_act, "SL {sl_act} should exceed SF {sf_act}");
    }
}
