//! # lifl-core
//!
//! LIFL: a lightweight, event-driven serverless platform for federated
//! learning (MLSys 2024). This crate implements the paper's contribution:
//!
//! * the per-node **gateway** and **in-place message queuing** (§4.2),
//! * the step-based **aggregator runtime** (Recv → Agg → Send, Appendix G),
//! * **direct routing** over the emulated eBPF sockmap and an inter-node
//!   routing table (§4.4, Appendix A),
//! * the **control plane**: locality-aware placement via bin-packing (§5.1),
//!   hierarchy-aware autoscaling with EWMA load estimation (§5.2),
//!   opportunistic reuse of warm aggregator runtimes (§5.3) and eager
//!   aggregation (§5.4),
//! * the **TAG** (topology abstraction graph) used to describe aggregator
//!   connectivity and placement affinity (Appendix D),
//! * a cluster-scale **simulation engine** ([`platform`]) that reproduces the
//!   paper's evaluation, and the **unified session API** ([`session`]): a
//!   builder-driven, codec-transparent in-process runtime that actually
//!   aggregates real model parameters through shared memory over an N-level
//!   aggregation tree,
//! * **multi-node session federation** ([`cluster`]): N sessions composed
//!   gateway-to-gateway over `Update::RemoteBytes`, bit-exact with the
//!   single-session round, every hop priced through the `lifl-dataplane`
//!   cost models, its global top hosted by live EWMA-driven placement, and
//! * the backend-generic **multi-round training driver** ([`training`]):
//!   one FedAvg loop over any `Ingest` backend — session or cluster — with
//!   bit-exact results across backends.
//!
//! See `ARCHITECTURE.md` at the repository root for the life of one update
//! through these layers.
//!
//! ```
//! use lifl_core::platform::{LiflPlatform, RoundSpec};
//! use lifl_types::{LiflConfig, ClusterConfig, ModelKind, SimTime};
//!
//! let mut platform = LiflPlatform::new(ClusterConfig::default(), LiflConfig::default());
//! let arrivals: Vec<SimTime> = (0..20).map(|i| SimTime::from_secs(i as f64)).collect();
//! let report = platform.run_round(&RoundSpec::new(ModelKind::ResNet152, arrivals));
//! assert_eq!(report.metrics.updates_aggregated, 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod agent;
pub mod aggregator;
pub mod async_round;
pub mod cluster;
pub mod coordinator;
pub mod eager;
pub mod fleet;
pub mod gateway;
pub mod gateway_scaler;
pub mod heartbeat;
pub mod hierarchy;
pub mod metric_server;
pub mod placement;
pub mod platform;
pub mod recovery;
pub mod reuse;
pub mod routing;
pub mod selector;
pub mod session;
pub mod system;
pub mod tag;
pub mod training;

pub use admission::{AdmissionQueues, AdmissionStats, QueuedOffer};
pub use aggregator::{AggregatorRuntime, AggregatorStep};
pub use cluster::{
    Cluster, ClusterBuilder, ClusterHop, ClusterReport, FaultStats, FaultToleranceConfig, NodeKill,
    NodeRoundReport, TopMove, TopPlacement, TopRecovery,
};
pub use fleet::NodeFleet;
pub use gateway_scaler::{GatewayScaleDecision, GatewayScaler, GatewayScalerConfig};
pub use hierarchy::{EwmaEstimator, HierarchyPlan, NodeHierarchy};
pub use placement::{PlacementEngine, PlacementOutcome};
pub use platform::{LiflPlatform, PlatformProfile, RoundReport, RoundSpec};
pub use recovery::{RecoveryManager, RecoveryOutcome};
pub use routing::RoutingTable;
pub use selector::{RoundAssignment, SelectorConfig, SelectorService};
pub use session::{Session, SessionBuilder, SessionReport, Update, WireExport};
pub use system::AggregationSystem;
pub use tag::{Channel, ChannelKind, Role, TopologyAbstractionGraph};
pub use training::{TrainingConfig, TrainingDriver, TrainingRound};
