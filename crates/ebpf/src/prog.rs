//! eBPF program objects and the per-node program registry.
//!
//! A real LIFL deployment loads a small set of eBPF programs per node (the
//! SKMSG steering/metrics program on every aggregator socket, plus any
//! ancillary sock_ops programs) and operators inspect them with
//! `bpftool prog show`, which reports per-program run counts and cumulative
//! run time. This module reproduces that management surface: programs have a
//! type and an attach point, can be attached/detached, accumulate run
//! statistics when invoked, and are enumerable through a [`ProgramRegistry`].
//!
//! The run-time accounting is also what backs the paper's claim that the
//! eBPF-based sidecar is strictly event-driven (§4.3): a program that is never
//! invoked reports zero run time, unlike a container sidecar that burns CPU
//! while idle.

use lifl_types::{AggregatorId, SimDuration};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// The kinds of eBPF programs LIFL's data plane uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProgramType {
    /// A `sk_msg` program attached to a sockmap (message steering + metrics).
    SkMsg,
    /// A `sock_ops` program that registers sockets into the sockmap.
    SockOps,
    /// A tracing program (kprobe-style) used for debugging/accounting.
    Tracing,
}

impl fmt::Display for ProgramType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProgramType::SkMsg => "sk_msg",
            ProgramType::SockOps => "sock_ops",
            ProgramType::Tracing => "tracing",
        };
        f.write_str(s)
    }
}

/// Where a program is attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttachPoint {
    /// The socket interface of a specific aggregator.
    AggregatorSocket(AggregatorId),
    /// The node's gateway socket.
    GatewaySocket,
    /// Not currently attached.
    Detached,
}

/// Run statistics, as `bpftool prog show` reports them.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProgramStats {
    /// Number of times the program has run.
    pub run_count: u64,
    /// Cumulative time spent executing the program.
    pub run_time: SimDuration,
}

impl ProgramStats {
    /// Average run time per invocation; zero when the program never ran.
    pub fn avg_run_time(&self) -> SimDuration {
        if self.run_count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs(self.run_time.as_secs() / self.run_count as f64)
        }
    }
}

#[derive(Debug, Clone)]
struct ProgramState {
    name: String,
    prog_type: ProgramType,
    attach_point: AttachPoint,
    stats: ProgramStats,
}

/// Identifier of a loaded program within a registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProgramId(u64);

impl ProgramId {
    /// The raw identifier.
    pub fn index(self) -> u64 {
        self.0
    }
}

/// A summary row, one per loaded program (the `bpftool prog show` view).
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramInfo {
    /// The program's identifier.
    pub id: ProgramId,
    /// Human-readable name.
    pub name: String,
    /// Program type.
    pub prog_type: ProgramType,
    /// Current attach point.
    pub attach_point: AttachPoint,
    /// Run statistics.
    pub stats: ProgramStats,
}

/// The per-node registry of loaded eBPF programs.
#[derive(Debug, Clone, Default)]
pub struct ProgramRegistry {
    inner: Arc<RwLock<HashMap<ProgramId, ProgramState>>>,
    next_id: Arc<RwLock<u64>>,
}

impl ProgramRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads a program into the registry (initially detached).
    pub fn load(&self, name: impl Into<String>, prog_type: ProgramType) -> ProgramId {
        let mut next = self.next_id.write();
        let id = ProgramId(*next);
        *next += 1;
        self.inner.write().insert(
            id,
            ProgramState {
                name: name.into(),
                prog_type,
                attach_point: AttachPoint::Detached,
                stats: ProgramStats::default(),
            },
        );
        id
    }

    /// Attaches a loaded program to `point`. Returns `false` for unknown ids.
    pub fn attach(&self, id: ProgramId, point: AttachPoint) -> bool {
        match self.inner.write().get_mut(&id) {
            Some(state) => {
                state.attach_point = point;
                true
            }
            None => false,
        }
    }

    /// Detaches a program (it stays loaded and keeps its statistics).
    pub fn detach(&self, id: ProgramId) -> bool {
        self.attach(id, AttachPoint::Detached)
    }

    /// Unloads a program entirely. Returns `false` for unknown ids.
    pub fn unload(&self, id: ProgramId) -> bool {
        self.inner.write().remove(&id).is_some()
    }

    /// Records one invocation of `id` taking `run_time`. Detached programs
    /// cannot be invoked; the call is ignored (and returns `false`) for them.
    pub fn record_run(&self, id: ProgramId, run_time: SimDuration) -> bool {
        match self.inner.write().get_mut(&id) {
            Some(state) if state.attach_point != AttachPoint::Detached => {
                state.stats.run_count += 1;
                state.stats.run_time += run_time;
                true
            }
            _ => false,
        }
    }

    /// The current info for `id`, if loaded.
    pub fn info(&self, id: ProgramId) -> Option<ProgramInfo> {
        self.inner.read().get(&id).map(|state| ProgramInfo {
            id,
            name: state.name.clone(),
            prog_type: state.prog_type,
            attach_point: state.attach_point,
            stats: state.stats,
        })
    }

    /// All loaded programs, ordered by id (the `bpftool prog show` listing).
    pub fn list(&self) -> Vec<ProgramInfo> {
        let mut rows: Vec<ProgramInfo> = self
            .inner
            .read()
            .iter()
            .map(|(id, state)| ProgramInfo {
                id: *id,
                name: state.name.clone(),
                prog_type: state.prog_type,
                attach_point: state.attach_point,
                stats: state.stats,
            })
            .collect();
        rows.sort_by_key(|row| row.id);
        rows
    }

    /// Number of loaded programs.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether no programs are loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total run time across every loaded program — the node-wide CPU cost of
    /// the eBPF sidecar, which is zero while the node is idle.
    pub fn total_run_time(&self) -> SimDuration {
        self.inner
            .read()
            .values()
            .fold(SimDuration::ZERO, |acc, state| acc + state.stats.run_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_attach_run_detach_lifecycle() {
        let registry = ProgramRegistry::new();
        let id = registry.load("skmsg_metrics", ProgramType::SkMsg);
        assert_eq!(registry.len(), 1);
        let info = registry.info(id).unwrap();
        assert_eq!(info.attach_point, AttachPoint::Detached);
        assert_eq!(info.prog_type, ProgramType::SkMsg);

        // A detached program cannot run.
        assert!(!registry.record_run(id, SimDuration::from_millis(1.0)));

        assert!(registry.attach(id, AttachPoint::AggregatorSocket(AggregatorId::new(3))));
        assert!(registry.record_run(id, SimDuration::from_millis(2.0)));
        assert!(registry.record_run(id, SimDuration::from_millis(4.0)));
        let stats = registry.info(id).unwrap().stats;
        assert_eq!(stats.run_count, 2);
        assert!((stats.run_time.as_secs() - 0.006).abs() < 1e-9);
        assert!((stats.avg_run_time().as_secs() - 0.003).abs() < 1e-9);

        assert!(registry.detach(id));
        assert!(!registry.record_run(id, SimDuration::from_millis(1.0)));
        // Statistics survive detach.
        assert_eq!(registry.info(id).unwrap().stats.run_count, 2);
    }

    #[test]
    fn idle_programs_report_zero_run_time() {
        let registry = ProgramRegistry::new();
        let a = registry.load("skmsg_a", ProgramType::SkMsg);
        let b = registry.load("sockops", ProgramType::SockOps);
        registry.attach(a, AttachPoint::AggregatorSocket(AggregatorId::new(1)));
        registry.attach(b, AttachPoint::GatewaySocket);
        assert_eq!(registry.total_run_time(), SimDuration::ZERO);
        assert_eq!(
            registry.info(a).unwrap().stats.avg_run_time(),
            SimDuration::ZERO
        );
    }

    #[test]
    fn unload_removes_and_unknown_ids_are_rejected() {
        let registry = ProgramRegistry::new();
        let id = registry.load("tracer", ProgramType::Tracing);
        assert!(registry.unload(id));
        assert!(!registry.unload(id));
        assert!(registry.info(id).is_none());
        assert!(!registry.attach(id, AttachPoint::GatewaySocket));
        assert!(registry.is_empty());
    }

    #[test]
    fn listing_is_ordered_by_id_and_shows_names() {
        let registry = ProgramRegistry::new();
        let first = registry.load("one", ProgramType::SkMsg);
        let second = registry.load("two", ProgramType::SockOps);
        let listing = registry.list();
        assert_eq!(listing.len(), 2);
        assert_eq!(listing[0].id, first);
        assert_eq!(listing[1].id, second);
        assert_eq!(listing[0].name, "one");
        assert_eq!(ProgramType::SkMsg.to_string(), "sk_msg");
        assert!(first.index() < second.index());
    }
}
