//! §6.1 "Orchestration overhead of LIFL": the wall-clock cost of the
//! control-plane algorithms themselves — locality-aware placement with up to
//! 10,000 clients (< 17 ms in the paper) and one EWMA estimate (~0.2 ms).
//! Unlike every other experiment, these are *real* measurements of this
//! implementation, not simulated quantities.

use crate::report::format_table;
use lifl_core::hierarchy::EwmaEstimator;
use lifl_core::placement::{NodeCapacity, PlacementEngine};
use lifl_types::{NodeId, PlacementPolicy};
use serde::Serialize;
use std::time::Instant;

/// One measured row.
#[derive(Debug, Clone, Serialize)]
pub struct OverheadRow {
    /// Number of clients / updates placed.
    pub clients: usize,
    /// Time to compute the placement, in milliseconds.
    pub placement_ms: f64,
    /// Time for one EWMA estimate, in microseconds.
    pub ewma_us: f64,
}

/// The measured result.
#[derive(Debug, Clone, Serialize)]
pub struct OverheadResult {
    /// Rows for increasing client counts.
    pub rows: Vec<OverheadRow>,
}

/// Measures the orchestration overhead for 100 … 10,000 clients.
pub fn run() -> OverheadResult {
    let mut rows = Vec::new();
    for clients in [100usize, 1_000, 5_000, 10_000] {
        // Enough nodes/capacity to absorb the demand, as in a large cluster.
        let nodes = (clients / 20 + 1).max(5);
        let engine = PlacementEngine::new(PlacementPolicy::BestFit);
        let mut caps: Vec<NodeCapacity> = (0..nodes as u64)
            .map(|i| NodeCapacity::new(NodeId::new(i), 20))
            .collect();
        let start = Instant::now();
        let outcome = engine.place_batch(clients as u64, &mut caps);
        let placement_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(outcome.assignments.len(), clients);

        let mut ewma = EwmaEstimator::new(0.7);
        let start = Instant::now();
        for i in 0..1000 {
            ewma.observe(i as f64);
        }
        let ewma_us = start.elapsed().as_secs_f64() * 1e6 / 1000.0;
        rows.push(OverheadRow {
            clients,
            placement_ms,
            ewma_us,
        });
    }
    OverheadResult { rows }
}

/// Formats the measured overheads.
pub fn format(result: &OverheadResult) -> String {
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.clients.to_string(),
                format!("{:.3}", r.placement_ms),
                format!("{:.3}", r.ewma_us),
            ]
        })
        .collect();
    let mut out = String::from("Orchestration overhead (measured on this implementation)\n");
    out.push_str(&format_table(
        &["clients", "placement (ms)", "EWMA (us)"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_at_10k_clients_is_fast() {
        let result = run();
        let row = result.rows.iter().find(|r| r.clients == 10_000).unwrap();
        // Paper: < 17 ms even with 10K clients. Allow headroom for debug builds.
        assert!(
            row.placement_ms < 500.0,
            "placement took {} ms",
            row.placement_ms
        );
        // EWMA estimate: negligible (paper: 0.2 ms including orchestration glue).
        assert!(row.ewma_us < 1000.0);
        assert!(format(&result).contains("10000"));
    }
}
