//! Cross-crate integration of the algorithm-level extensions with the
//! aggregation substrate: server optimizers driving the synchronous round
//! loop, FedProx updates flowing through hierarchical FedAvg, staleness
//! weighting feeding the cumulative accumulator, and the algorithm-level async
//! driver agreeing with the platform-level async aggregator on semantics.

use lifl_core::async_round::AsyncAggregator;
use lifl_fl::aggregate::{fedavg, CumulativeFedAvg, ModelUpdate};
use lifl_fl::async_driver::{AsyncDriverConfig, AsyncFlDriver};
use lifl_fl::client::ClientAvailability;
use lifl_fl::dataset::{DatasetConfig, FederatedDataset};
use lifl_fl::fedprox::{FedProxConfig, FedProxTrainer};
use lifl_fl::metrics::accuracy_percent;
use lifl_fl::population::{Population, PopulationConfig};
use lifl_fl::server_opt::{ServerOptConfig, ServerOptKind, ServerOptimizer};
use lifl_fl::staleness::StalenessPolicy;
use lifl_fl::trainer::{LocalTrainer, TrainerConfig};
use lifl_fl::DenseModel;
use lifl_simcore::SimRng;
use lifl_types::{AggregationTiming, ClientId, CodecKind, ModelKind, SimTime};

fn small_dataset(rng: &mut SimRng) -> FederatedDataset {
    FederatedDataset::generate(
        DatasetConfig {
            num_clients: 30,
            num_features: 12,
            num_classes: 5,
            mean_samples_per_client: 40,
            dirichlet_alpha: 0.4,
            test_samples: 250,
            noise_std: 0.4,
        },
        rng,
    )
}

#[test]
fn adaptive_server_optimizers_learn_through_the_round_loop() {
    let mut rng = SimRng::from_seed(31);
    let dataset = small_dataset(&mut rng);
    let population = Population::generate(
        PopulationConfig {
            total_clients: 30,
            active_per_round: 10,
            availability: ClientAvailability::AlwaysOn,
            mean_samples: 40,
            speed_spread: 0.3,
        },
        &mut rng,
    );
    let trainer = LocalTrainer::new(
        dataset.num_features,
        dataset.num_classes,
        TrainerConfig {
            batch_size: 16,
            learning_rate: 0.05,
            local_epochs: 2,
        },
    );
    for kind in [ServerOptKind::FedAvg, ServerOptKind::FedAdam] {
        let mut rng = SimRng::from_seed(77);
        let mut optimizer = ServerOptimizer::new(ServerOptConfig::for_kind(kind)).unwrap();
        let mut global = dataset.initial_model();
        let initial = accuracy_percent(&trainer, &global, dataset.test_set());
        for _ in 0..10 {
            let participants = population.select_round(&mut rng);
            let updates: Vec<ModelUpdate> = participants
                .iter()
                .map(|c| {
                    let shard = dataset.shard(c.id);
                    let (local, _) = trainer.train(&global, shard, &mut rng);
                    ModelUpdate::from_client(c.id, local, shard.len().max(1) as u64)
                })
                .collect();
            let aggregate = fedavg(&updates).unwrap();
            optimizer.step(&mut global, &aggregate.model).unwrap();
        }
        let final_acc = accuracy_percent(&trainer, &global, dataset.test_set());
        assert!(
            final_acc > initial + 15.0,
            "{kind}: accuracy should improve materially ({initial:.1} -> {final_acc:.1})"
        );
    }
}

#[test]
fn fedprox_updates_flow_through_hierarchical_fedavg() {
    let mut rng = SimRng::from_seed(5);
    let dataset = small_dataset(&mut rng);
    let trainer = FedProxTrainer::new(
        dataset.num_features,
        dataset.num_classes,
        FedProxConfig {
            mu: 0.1,
            learning_rate: 0.05,
            local_epochs: 2,
            batch_size: 16,
        },
    )
    .unwrap();
    let global = dataset.initial_model();
    let updates: Vec<ModelUpdate> = (0..8u64)
        .map(|c| {
            let shard = dataset.shard(ClientId::new(c));
            let (local, _) = trainer.train(&global, shard, &mut rng);
            ModelUpdate::from_client(ClientId::new(c), local, shard.len().max(1) as u64)
        })
        .collect();
    // Hierarchical aggregation (two leaves + top) matches flat aggregation.
    let flat = fedavg(&updates).unwrap();
    let leaf_a = fedavg(&updates[..4]).unwrap();
    let leaf_b = fedavg(&updates[4..]).unwrap();
    let top = fedavg(&[leaf_a, leaf_b]).unwrap();
    assert_eq!(flat.samples, top.samples);
    for (x, y) in flat.model.as_slice().iter().zip(top.model.as_slice()) {
        assert!((x - y).abs() < 1e-3, "{x} vs {y}");
    }
}

#[test]
fn staleness_weighting_shifts_the_aggregate_toward_fresh_updates() {
    let fresh = ModelUpdate::from_client(ClientId::new(1), DenseModel::from_vec(vec![1.0]), 100);
    let stale = ModelUpdate::from_client(ClientId::new(2), DenseModel::from_vec(vec![-1.0]), 100);
    let policy = StalenessPolicy::Polynomial { exponent: 2.0 };
    // Unweighted: the two cancel out.
    let unweighted = fedavg(&[fresh.clone(), stale.clone()]).unwrap();
    assert!(unweighted.model.as_slice()[0].abs() < 1e-6);
    // Weighted: the stale update (tau = 5) is discounted, pulling the mean
    // toward the fresh update.
    let mut acc = CumulativeFedAvg::new(1);
    acc.fold(&policy.apply(&fresh, 0)).unwrap();
    acc.fold(&policy.apply(&stale, 5)).unwrap();
    let weighted = acc.finalize().unwrap();
    assert!(
        weighted.model.as_slice()[0] > 0.5,
        "weighted mean {} should lean toward the fresh update",
        weighted.model.as_slice()[0]
    );
}

#[test]
fn algorithm_level_async_driver_matches_platform_async_semantics() {
    // Platform-level: the AsyncAggregator commits every `goal` updates under
    // either timing. Algorithm-level: the AsyncFlDriver does the same across a
    // real training run. Both must agree on the version count for the same
    // number of accepted updates.
    let goal = 6u64;
    let updates: Vec<ModelUpdate> = (1..=18u64)
        .map(|i| {
            ModelUpdate::from_client(ClientId::new(i), DenseModel::from_vec(vec![i as f32]), i)
        })
        .collect();
    let mut platform_agg = AsyncAggregator::new(goal, AggregationTiming::Eager).unwrap();
    let mut committed = 0;
    for (k, u) in updates.iter().enumerate() {
        if platform_agg
            .submit(u.clone(), 0, SimTime::from_secs(k as f64))
            .unwrap()
            .is_some()
        {
            committed += 1;
        }
    }
    assert_eq!(committed, 3);

    let mut rng = SimRng::from_seed(13);
    let dataset = small_dataset(&mut rng);
    let population = Population::generate(
        PopulationConfig {
            total_clients: 30,
            active_per_round: 12,
            availability: ClientAvailability::AlwaysOn,
            mean_samples: 40,
            speed_spread: 0.4,
        },
        &mut rng,
    );
    let mut driver = AsyncFlDriver::new(
        dataset,
        population,
        AsyncDriverConfig {
            trainer: TrainerConfig {
                batch_size: 16,
                learning_rate: 0.05,
                local_epochs: 1,
            },
            buffer_goal: goal as usize,
            target_versions: 3,
            concurrency: 12,
            staleness: StalenessPolicy::Constant,
            model: ModelKind::ResNet18,
            eval_every: 1,
            codec: CodecKind::Identity,
        },
    )
    .unwrap();
    let versions = driver.run(&mut rng);
    assert_eq!(versions.len(), 3);
    assert_eq!(driver.staleness().count(), 18);
    for v in versions {
        assert_eq!(v.updates, goal as usize);
    }
}
