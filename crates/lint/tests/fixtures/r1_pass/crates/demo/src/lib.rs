#![forbid(unsafe_code)]
pub fn add(a: u32, b: u32) -> u32 {
    a.wrapping_add(b)
}
