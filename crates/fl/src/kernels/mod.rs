//! Runtime-dispatched SIMD kernels for the codec and aggregation hot paths.
//!
//! # Dispatch strategy
//!
//! Every kernel has exactly two arms: a scalar reference in `scalar.rs`
//! (the semantic ground truth) and an AVX2 implementation in `avx2.rs`
//! (x86-64 only). Which arm runs is decided **once per process** by
//! [`simd_active`]: the first call checks `is_x86_feature_detected!("avx2")`
//! and the `LIFL_FORCE_SCALAR` environment variable, then caches the answer
//! in a `OnceLock`, so steady-state dispatch is a single branch on a loaded
//! boolean. Setting `LIFL_FORCE_SCALAR` to any value other than empty or `0`
//! forces the scalar arm everywhere (CI runs the integration and fault tiers
//! both ways).
//!
//! # The scalar-reference rule
//!
//! The SIMD arm of every kernel must be **bit-exact** with its scalar
//! reference for all inputs — including NaN/infinity payloads and, for the
//! stochastic encoder, the random stream: the same [`StochasticRng`] seed
//! produces the same wire bytes on both arms. This is what lets the
//! session/cluster exactness tiers assert bit-identical aggregation results
//! regardless of which arm a given host picks. The proptests at the bottom
//! of this module run both arms in one process (the dispatch decision is
//! bypassed via an explicit flag) and compare outputs bitwise across odd
//! lengths, sub-lane remainders and non-finite inputs.
//!
//! Bit-exactness is achievable because every kernel restricts itself to
//! exactly-rounded elementwise IEEE-754 operations (multiply, add, subtract,
//! floor, compare, min/max) in the same order on both arms — in particular
//! FMA is never used, and divisions are hoisted into a single reciprocal
//! computed identically by both arms. See `avx2.rs` for the instruction-level
//! argument.
//!
//! # How to add a kernel
//!
//! 1. Write the scalar reference in `scalar.rs`, using only exactly-rounded
//!    elementwise operations if a vector arm is planned.
//! 2. Write the AVX2 arm in `avx2.rs` mirroring the scalar operation
//!    sequence, and delegate the sub-lane-width tail to the scalar function.
//! 3. Add a public wrapper here that validates slice lengths and calls a
//!    private `*_with(..., simd: bool)` dispatcher.
//! 4. Add a proptest below asserting bitwise equality of the two arms over
//!    odd lengths and non-finite inputs.

#[cfg(target_arch = "x86_64")]
mod avx2;
mod scalar;

use std::sync::OnceLock;

/// Number of elements whose random rounding words are drawn per block in the
/// stochastic encoders. Even, so the nibble pairing of `Uniform4` stays
/// aligned across block boundaries, and small enough for a stack buffer.
const RAND_BLOCK: usize = 4096;

static SIMD_ACTIVE: OnceLock<bool> = OnceLock::new();

/// True when `LIFL_FORCE_SCALAR` requests the scalar arm: set to anything
/// except the empty string or `0`.
fn scalar_forced(value: Option<&str>) -> bool {
    matches!(value, Some(v) if !v.is_empty() && v != "0")
}

/// Whether the SIMD arms are in use. Decided once per process: AVX2 must be
/// detected at runtime and `LIFL_FORCE_SCALAR` must not be set (to anything
/// except empty or `0`).
pub fn simd_active() -> bool {
    *SIMD_ACTIVE.get_or_init(|| {
        let force = std::env::var("LIFL_FORCE_SCALAR").ok();
        if scalar_forced(force.as_deref()) {
            return false;
        }
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// Human-readable name of the active arm, for logs and benchmark reports.
pub fn active_kernel_arm() -> &'static str {
    if simd_active() {
        "avx2"
    } else {
        "scalar"
    }
}

// ---------------------------------------------------------------------------
// Block RNG for the stochastic encoders.
// ---------------------------------------------------------------------------

/// Deterministic counter-style generator (splitmix64) that the stochastic
/// encoders draw rounding words from in blocks, rather than one expensive
/// high-level sample per element. One `u32` word is consumed per encoded
/// element; the 24 high bits of each word form the rounding threshold.
#[derive(Debug, Clone)]
pub struct StochasticRng {
    state: u64,
}

impl StochasticRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        StochasticRng { state: seed }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // splitmix64: a full-period mix of an additive counter. Cheap,
        // statistically solid for rounding thresholds, and trivially
        // deterministic across arms.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Fills `words` with random `u32`s, two per underlying `u64` draw
    /// (low half first). Filling in even-sized chunks produces the same
    /// stream as one contiguous fill, which keeps block-at-a-time encoding
    /// equivalent to a single pass.
    pub fn fill(&mut self, words: &mut [u32]) {
        let mut pairs = words.chunks_exact_mut(2);
        for pair in &mut pairs {
            let draw = self.next_u64();
            pair[0] = draw as u32;
            pair[1] = (draw >> 32) as u32;
        }
        if let [tail] = pairs.into_remainder() {
            *tail = self.next_u64() as u32;
        }
    }
}

// ---------------------------------------------------------------------------
// Fused dequantize-axpy folds.
// ---------------------------------------------------------------------------

/// Fused fold of a dense little-endian `f32` payload: `acc += weight * body`.
pub fn fold_dense_le(acc: &mut [f32], body: &[u8], weight: f32) {
    let n = acc.len().min(body.len() / 4);
    fold_dense_le_with(&mut acc[..n], &body[..4 * n], weight, simd_active());
}

fn fold_dense_le_with(acc: &mut [f32], body: &[u8], weight: f32, simd: bool) {
    #[cfg(target_arch = "x86_64")]
    if simd {
        // SAFETY: `simd` is only true after runtime AVX2 detection.
        unsafe { avx2::fold_dense_le(acc, body, weight) };
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = simd;
    scalar::fold_dense_le(acc, body, weight);
}

/// Decode of a dense little-endian `f32` payload into `out`.
pub fn decode_dense_le(out: &mut [f32], body: &[u8]) {
    let n = out.len().min(body.len() / 4);
    decode_dense_le_with(&mut out[..n], &body[..4 * n], simd_active());
}

fn decode_dense_le_with(out: &mut [f32], body: &[u8], simd: bool) {
    #[cfg(target_arch = "x86_64")]
    if simd {
        // SAFETY: `simd` is only true after runtime AVX2 detection.
        unsafe { avx2::decode_dense_le(out, body) };
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = simd;
    scalar::decode_dense_le(out, body);
}

/// Fused fold of `Uniform8` levels: `acc[i] += f32(levels[i] as i8) * k`,
/// where `k` is the pre-multiplied `weight * scale`.
pub fn fold_u8(acc: &mut [f32], levels: &[u8], k: f32) {
    let n = acc.len().min(levels.len());
    fold_u8_with(&mut acc[..n], &levels[..n], k, simd_active());
}

fn fold_u8_with(acc: &mut [f32], levels: &[u8], k: f32, simd: bool) {
    #[cfg(target_arch = "x86_64")]
    if simd {
        // SAFETY: `simd` is only true after runtime AVX2 detection.
        unsafe { avx2::fold_u8(acc, levels, k) };
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = simd;
    scalar::fold_u8(acc, levels, k);
}

/// Dequantize of `Uniform8` levels: `out[i] = f32(levels[i] as i8) * scale`.
pub fn decode_u8(out: &mut [f32], levels: &[u8], scale: f32) {
    let n = out.len().min(levels.len());
    decode_u8_with(&mut out[..n], &levels[..n], scale, simd_active());
}

fn decode_u8_with(out: &mut [f32], levels: &[u8], scale: f32, simd: bool) {
    #[cfg(target_arch = "x86_64")]
    if simd {
        // SAFETY: `simd` is only true after runtime AVX2 detection.
        unsafe { avx2::decode_u8(out, levels, scale) };
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = simd;
    scalar::decode_u8(out, levels, scale);
}

/// Fused fold of packed `Uniform4` nibbles starting at element offset
/// `start` within `body` (low nibble first within each byte): folds
/// `acc.len()` elements beginning at that offset. An odd `start` peels one
/// high nibble scalar-side, then both arms run even-aligned.
pub fn fold_u4(acc: &mut [f32], body: &[u8], start: usize, k: f32) {
    fold_u4_with(acc, body, start, k, simd_active());
}

fn fold_u4_with(acc: &mut [f32], body: &[u8], start: usize, k: f32, simd: bool) {
    if acc.is_empty() {
        return;
    }
    let (acc, start) = if start % 2 == 1 {
        acc[0] += scalar::NIBBLE_F32[(body[start / 2] >> 4) as usize] * k;
        (&mut acc[1..], start + 1)
    } else {
        (acc, start)
    };
    let nibbles = &body[start / 2..];
    let n = acc.len().min(nibbles.len().saturating_mul(2));
    let acc = &mut acc[..n];
    #[cfg(target_arch = "x86_64")]
    if simd {
        // SAFETY: `simd` is only true after runtime AVX2 detection.
        unsafe { avx2::fold_u4_aligned(acc, nibbles, k) };
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = simd;
    scalar::fold_u4_aligned(acc, nibbles, k);
}

/// Dequantize of packed `Uniform4` nibbles (even-aligned) into `out`.
pub fn decode_u4(out: &mut [f32], nibbles: &[u8], scale: f32) {
    let n = out.len().min(nibbles.len().saturating_mul(2));
    decode_u4_with(&mut out[..n], nibbles, scale, simd_active());
}

fn decode_u4_with(out: &mut [f32], nibbles: &[u8], scale: f32, simd: bool) {
    #[cfg(target_arch = "x86_64")]
    if simd {
        // SAFETY: `simd` is only true after runtime AVX2 detection.
        unsafe { avx2::decode_u4(out, nibbles, scale) };
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = simd;
    scalar::decode_u4(out, nibbles, scale);
}

/// Fold of `TopK` `(u32 index, f32 value)` pairs whose index falls in
/// `[start, end)` into `acc` (indexed relative to `start`). A sparse scatter
/// gains nothing from vectorization, so both dispatch arms share the scalar
/// routine; it lives here so every codec fold goes through one layer.
pub fn fold_topk(acc: &mut [f32], pairs: &[u8], start: usize, end: usize, weight: f32) {
    scalar::fold_topk(acc, pairs, start, end, weight);
}

/// Decode of `TopK` pairs into `out` (zero-filled first). Scalar on both
/// arms, like [`fold_topk`].
pub fn decode_topk(out: &mut [f32], pairs: &[u8]) {
    scalar::decode_topk(out, pairs);
}

// ---------------------------------------------------------------------------
// Dense axpy family (model accumulation, sharded batch folds).
// ---------------------------------------------------------------------------

/// `acc += w * src`, elementwise over the common prefix.
pub fn axpy(acc: &mut [f32], src: &[f32], w: f32) {
    let n = acc.len().min(src.len());
    axpy_with(&mut acc[..n], &src[..n], w, simd_active());
}

fn axpy_with(acc: &mut [f32], src: &[f32], w: f32, simd: bool) {
    #[cfg(target_arch = "x86_64")]
    if simd {
        // SAFETY: `simd` is only true after runtime AVX2 detection.
        unsafe { avx2::axpy(acc, src, w) };
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = simd;
    scalar::axpy(acc, src, w);
}

/// Four-source batched fold: one accumulator load/store per element, adds
/// chained in source order so the result is bit-identical to four sequential
/// [`axpy`] passes. Every source must be at least as long as `acc`.
pub fn axpy4(acc: &mut [f32], srcs: [&[f32]; 4], w: [f32; 4]) {
    assert!(srcs.iter().all(|s| s.len() >= acc.len()));
    axpy4_with(acc, srcs, w, simd_active());
}

fn axpy4_with(acc: &mut [f32], srcs: [&[f32]; 4], w: [f32; 4], simd: bool) {
    #[cfg(target_arch = "x86_64")]
    if simd {
        // SAFETY: `simd` is only true after runtime AVX2 detection; lengths
        // checked by the wrapper.
        unsafe { avx2::axpy4(acc, srcs, w) };
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = simd;
    scalar::axpy4(acc, srcs, w);
}

/// Eight-source variant of [`axpy4`] (same ordering guarantee).
pub fn axpy8(acc: &mut [f32], srcs: [&[f32]; 8], w: [f32; 8]) {
    assert!(srcs.iter().all(|s| s.len() >= acc.len()));
    axpy8_with(acc, srcs, w, simd_active());
}

fn axpy8_with(acc: &mut [f32], srcs: [&[f32]; 8], w: [f32; 8], simd: bool) {
    #[cfg(target_arch = "x86_64")]
    if simd {
        // SAFETY: `simd` is only true after runtime AVX2 detection; lengths
        // checked by the wrapper.
        unsafe { avx2::axpy8(acc, srcs, w) };
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = simd;
    scalar::axpy8(acc, srcs, w);
}

/// Largest finite `|x|` in `params`, or 0 when there is none (used to derive
/// quantization scales). Exact on both arms because `max` over non-negative
/// finite values is order-independent.
pub fn max_abs_finite(params: &[f32]) -> f32 {
    max_abs_finite_with(params, simd_active())
}

fn max_abs_finite_with(params: &[f32], simd: bool) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if simd {
        // SAFETY: `simd` is only true after runtime AVX2 detection.
        return unsafe { avx2::max_abs_finite(params) };
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = simd;
    scalar::max_abs_finite(params)
}

// ---------------------------------------------------------------------------
// Stochastic block encoders.
// ---------------------------------------------------------------------------

/// Quantizes `params` to `Uniform8` levels (one byte per element, two's
/// complement in `[-levels, levels]`) with stochastic rounding, writing the
/// wire body into `body` (cleared and resized). Random words are drawn from
/// `rng` in fixed-size blocks and 8 lanes quantize at a time on the
/// AVX2 arm; the same seed yields the same bytes on both arms. A
/// non-positive `scale` produces an all-zero body without consuming `rng`.
pub fn encode_u8(
    params: &[f32],
    scale: f32,
    levels: f32,
    rng: &mut StochasticRng,
    body: &mut Vec<u8>,
) {
    body.clear();
    body.resize(params.len(), 0);
    if scale <= 0.0 {
        return;
    }
    encode_u8_with(params, scale, levels, rng, body, simd_active());
}

fn encode_u8_with(
    params: &[f32],
    scale: f32,
    levels: f32,
    rng: &mut StochasticRng,
    body: &mut [u8],
    simd: bool,
) {
    let inv = 1.0 / scale;
    let mut rand = [0u32; RAND_BLOCK];
    #[cfg(not(target_arch = "x86_64"))]
    let _ = simd;
    for (p, o) in params.chunks(RAND_BLOCK).zip(body.chunks_mut(RAND_BLOCK)) {
        let words = &mut rand[..p.len()];
        rng.fill(words);
        #[cfg(target_arch = "x86_64")]
        if simd {
            // SAFETY: `simd` is only true after runtime AVX2 detection.
            unsafe { avx2::encode_u8(p, inv, levels, words, o) };
            continue;
        }
        scalar::encode_u8(p, inv, levels, words, o);
    }
}

/// Quantizes `params` to packed `Uniform4` sign-magnitude nibbles (low
/// nibble = even element) with stochastic rounding, writing into `body`
/// (cleared and resized to `params.len().div_ceil(2)`). Same blocked-RNG and
/// bit-exactness contract as [`encode_u8`].
pub fn encode_u4(
    params: &[f32],
    scale: f32,
    levels: f32,
    rng: &mut StochasticRng,
    body: &mut Vec<u8>,
) {
    body.clear();
    body.resize(params.len().div_ceil(2), 0);
    if scale <= 0.0 {
        return;
    }
    encode_u4_with(params, scale, levels, rng, body, simd_active());
}

fn encode_u4_with(
    params: &[f32],
    scale: f32,
    levels: f32,
    rng: &mut StochasticRng,
    body: &mut [u8],
    simd: bool,
) {
    let inv = 1.0 / scale;
    let mut rand = [0u32; RAND_BLOCK];
    #[cfg(not(target_arch = "x86_64"))]
    let _ = simd;
    // RAND_BLOCK is even, so each output chunk covers whole input pairs and
    // the nibble packing stays aligned across block boundaries.
    for (p, o) in params
        .chunks(RAND_BLOCK)
        .zip(body.chunks_mut(RAND_BLOCK / 2))
    {
        let words = &mut rand[..p.len()];
        rng.fill(words);
        #[cfg(target_arch = "x86_64")]
        if simd {
            // SAFETY: `simd` is only true after runtime AVX2 detection.
            unsafe { avx2::encode_u4(p, inv, levels, words, o) };
            continue;
        }
        scalar::encode_u4(p, inv, levels, words, o);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_force_parsing() {
        assert!(!scalar_forced(None));
        assert!(!scalar_forced(Some("")));
        assert!(!scalar_forced(Some("0")));
        assert!(scalar_forced(Some("1")));
        assert!(scalar_forced(Some("true")));
        assert!(scalar_forced(Some("yes")));
    }

    #[test]
    fn simd_active_is_cached_and_consistent() {
        let first = simd_active();
        assert_eq!(first, simd_active());
        let arm = active_kernel_arm();
        assert_eq!(arm == "avx2", first);
    }

    #[test]
    fn rng_is_deterministic_and_chunk_invariant() {
        let mut a = StochasticRng::from_seed(42);
        let mut b = StochasticRng::from_seed(42);
        let mut one_shot = vec![0u32; 5000];
        a.fill(&mut one_shot);
        let mut chunked = vec![0u32; 5000];
        let (head, tail) = chunked.split_at_mut(RAND_BLOCK);
        b.fill(head);
        b.fill(tail);
        assert_eq!(one_shot, chunked);
        let mut c = StochasticRng::from_seed(43);
        let mut other = vec![0u32; 5000];
        c.fill(&mut other);
        assert_ne!(one_shot, other);
    }

    #[test]
    fn nibble_roundtrip_matches_table() {
        for level in -7i32..=7 {
            let n = scalar::nibble(level);
            assert_eq!(
                scalar::NIBBLE_F32[n as usize].to_bits(),
                (level as f32).to_bits()
            );
        }
        // Nibble 8 ("negative zero") decodes to +0.0.
        assert_eq!(scalar::NIBBLE_F32[8].to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn encode_zero_scale_yields_zero_body_without_consuming_rng() {
        let params = [1.0f32, -2.0, 3.0];
        let mut rng = StochasticRng::from_seed(9);
        let mut body = Vec::new();
        encode_u8(&params, 0.0, 127.0, &mut rng, &mut body);
        assert_eq!(body, vec![0u8; 3]);
        encode_u4(&params, -1.0, 7.0, &mut rng, &mut body);
        assert_eq!(body, vec![0u8; 2]);
        let mut untouched = StochasticRng::from_seed(9);
        assert_eq!(rng.next_u64(), untouched.next_u64());
    }

    #[test]
    fn quantize_one_handles_non_finite_and_saturation() {
        for v in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            assert_eq!(scalar::quantize_one(v, 1.0, 127.0, 0), 0);
        }
        assert_eq!(scalar::quantize_one(1e30, 1.0, 127.0, 0), 127);
        assert_eq!(scalar::quantize_one(-1e30, 1.0, 127.0, 0), -127);
        // Threshold word 0 always rounds up any positive fraction.
        assert_eq!(scalar::quantize_one(0.5, 1.0, 127.0, 0), 1);
        // Threshold word u32::MAX never rounds up.
        assert_eq!(scalar::quantize_one(0.5, 1.0, 127.0, u32::MAX), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Whether the AVX2 arm can be exercised in this process; when it
    /// cannot, the equivalence properties hold trivially and the tests
    /// return early.
    fn avx2_testable() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// f32 vectors seasoned with NaN, infinities and signed zeros; lengths
    /// sweep 0..130 so every vector-width remainder (1..15) is covered.
    fn arbitrary_params() -> impl Strategy<Value = Vec<f32>> {
        proptest::collection::vec((0u8..16, -100.0f32..100.0), 0..130).prop_map(|items| {
            items
                .into_iter()
                .map(|(tag, v)| match tag {
                    0 => f32::NAN,
                    1 => f32::INFINITY,
                    2 => f32::NEG_INFINITY,
                    3 => -0.0,
                    4 => 0.0,
                    5 => v * 1e30,
                    6 => v * 1e-40,
                    _ => v,
                })
                .collect()
        })
    }

    fn arbitrary_bytes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(0u8..=255, 0..max_len)
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    proptest! {
        /// Dense fold and decode: AVX2 output is bit-identical to scalar.
        #[test]
        fn dense_kernels_match(acc in arbitrary_params(), body in arbitrary_bytes(520), w in -3.0f32..3.0) {
            if !avx2_testable() {
                return Ok(());
            }
            let n = acc.len().min(body.len() / 4);
            let mut a_scalar = acc.clone();
            let mut a_simd = acc.clone();
            fold_dense_le_with(&mut a_scalar[..n], &body[..4 * n], w, false);
            fold_dense_le_with(&mut a_simd[..n], &body[..4 * n], w, true);
            prop_assert_eq!(bits(&a_scalar), bits(&a_simd));
            let mut d_scalar = vec![0.0f32; n];
            let mut d_simd = vec![1.0f32; n];
            decode_dense_le_with(&mut d_scalar, &body[..4 * n], false);
            decode_dense_le_with(&mut d_simd, &body[..4 * n], true);
            prop_assert_eq!(bits(&d_scalar), bits(&d_simd));
        }

        /// Uniform8 fold and decode: AVX2 output is bit-identical to scalar.
        #[test]
        fn u8_kernels_match(acc in arbitrary_params(), levels in arbitrary_bytes(130), k in -3.0f32..3.0) {
            if !avx2_testable() {
                return Ok(());
            }
            let n = acc.len().min(levels.len());
            let mut a_scalar = acc.clone();
            let mut a_simd = acc.clone();
            fold_u8_with(&mut a_scalar[..n], &levels[..n], k, false);
            fold_u8_with(&mut a_simd[..n], &levels[..n], k, true);
            prop_assert_eq!(bits(&a_scalar), bits(&a_simd));
            let mut d_scalar = vec![0.0f32; n];
            let mut d_simd = vec![1.0f32; n];
            decode_u8_with(&mut d_scalar, &levels[..n], k, false);
            decode_u8_with(&mut d_simd, &levels[..n], k, true);
            prop_assert_eq!(bits(&d_scalar), bits(&d_simd));
        }

        /// Uniform4 fold (both start parities) and decode: bit-identical.
        #[test]
        fn u4_kernels_match(acc in arbitrary_params(), nibbles in arbitrary_bytes(70), start in 0usize..9, k in -3.0f32..3.0) {
            if !avx2_testable() {
                return Ok(());
            }
            let capacity = nibbles.len() * 2;
            let n = acc.len().min(capacity.saturating_sub(start));
            let mut a_scalar = acc[..n].to_vec();
            let mut a_simd = a_scalar.clone();
            if start < capacity {
                fold_u4_with(&mut a_scalar, &nibbles, start, k, false);
                fold_u4_with(&mut a_simd, &nibbles, start, k, true);
                prop_assert_eq!(bits(&a_scalar), bits(&a_simd));
            }
            let m = acc.len().min(capacity);
            let mut d_scalar = vec![0.0f32; m];
            let mut d_simd = vec![1.0f32; m];
            decode_u4_with(&mut d_scalar, &nibbles, k, false);
            decode_u4_with(&mut d_simd, &nibbles, k, true);
            prop_assert_eq!(bits(&d_scalar), bits(&d_simd));
        }

        /// axpy / axpy4 / axpy8: AVX2 matches scalar bitwise, and the batched
        /// variants match sequential single-source passes bitwise.
        #[test]
        fn axpy_kernels_match(data in arbitrary_params(), srcs_seed in 1u64..1000, w in -3.0f32..3.0) {
            if !avx2_testable() {
                return Ok(());
            }
            let n = data.len();
            let mut rng = StochasticRng::from_seed(srcs_seed);
            let mut words = vec![0u32; n * 8];
            rng.fill(&mut words);
            let srcs: Vec<Vec<f32>> = (0..8)
                .map(|s| {
                    words[s * n..(s + 1) * n]
                        .iter()
                        .map(|x| (*x >> 8) as f32 * (1.0 / 16_777_216.0) - 0.5)
                        .collect()
                })
                .collect();
            let weights: [f32; 8] = std::array::from_fn(|i| w + i as f32 * 0.125);

            let mut a_scalar = data.clone();
            let mut a_simd = data.clone();
            axpy_with(&mut a_scalar, &srcs[0], w, false);
            axpy_with(&mut a_simd, &srcs[0], w, true);
            prop_assert_eq!(bits(&a_scalar), bits(&a_simd));

            let quad: [&[f32]; 4] = std::array::from_fn(|i| srcs[i].as_slice());
            let quad_w: [f32; 4] = std::array::from_fn(|i| weights[i]);
            let mut q_scalar = data.clone();
            let mut q_simd = data.clone();
            let mut q_seq = data.clone();
            axpy4_with(&mut q_scalar, quad, quad_w, false);
            axpy4_with(&mut q_simd, quad, quad_w, true);
            for i in 0..4 {
                axpy_with(&mut q_seq, quad[i], quad_w[i], false);
            }
            prop_assert_eq!(bits(&q_scalar), bits(&q_simd));
            prop_assert_eq!(bits(&q_scalar), bits(&q_seq));

            let oct: [&[f32]; 8] = std::array::from_fn(|i| srcs[i].as_slice());
            let mut o_scalar = data.clone();
            let mut o_simd = data.clone();
            let mut o_seq = data.clone();
            axpy8_with(&mut o_scalar, oct, weights, false);
            axpy8_with(&mut o_simd, oct, weights, true);
            for i in 0..8 {
                axpy_with(&mut o_seq, oct[i], weights[i], false);
            }
            prop_assert_eq!(bits(&o_scalar), bits(&o_simd));
            prop_assert_eq!(bits(&o_scalar), bits(&o_seq));
        }

        /// Scale derivation: AVX2 max-abs-over-finite matches scalar exactly
        /// even with NaN/inf lanes.
        #[test]
        fn max_abs_finite_matches(params in arbitrary_params()) {
            if !avx2_testable() {
                return Ok(());
            }
            let s = max_abs_finite_with(&params, false);
            let v = max_abs_finite_with(&params, true);
            prop_assert_eq!(s.to_bits(), v.to_bits());
        }

        /// Stochastic encoders: same seed produces the same wire bytes on
        /// both arms (and twice on the same arm), for U8 and U4, across
        /// non-finite inputs, tiny/huge scales and odd lengths.
        #[test]
        fn encoders_match_bitwise(params in arbitrary_params(), seed in 0u64..10_000, scale_tag in 0u8..4) {
            if !avx2_testable() {
                return Ok(());
            }
            let scale = match scale_tag {
                0 => 1e-40f32, // subnormal: 1/scale overflows to infinity
                1 => 1e30,
                2 => 0.125,
                _ => 3.7,
            };
            for levels in [127.0f32, 7.0] {
                let run = |simd: bool| {
                    let mut rng = StochasticRng::from_seed(seed);
                    let mut body = vec![0u8; params.len()];
                    if levels > 7.0 {
                        encode_u8_with(&params, scale, levels, &mut rng, &mut body, simd);
                    } else {
                        body.truncate(params.len().div_ceil(2));
                        encode_u4_with(&params, scale, levels, &mut rng, &mut body, simd);
                    }
                    body
                };
                let scalar_bytes = run(false);
                let simd_bytes = run(true);
                let simd_again = run(true);
                prop_assert_eq!(&scalar_bytes, &simd_bytes);
                prop_assert_eq!(&simd_bytes, &simd_again);
            }
        }
    }
}
