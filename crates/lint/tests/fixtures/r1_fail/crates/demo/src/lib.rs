// Missing the crate-root unsafe_code gate, and uses unsafe outside the
// kernels directory: two R1 findings.
pub fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}
