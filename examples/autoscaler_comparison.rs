//! Application-agnostic autoscaling (Knative KPA, §2.3) versus LIFL's
//! hierarchy-aware planning (§5.2) on the same bursty FL arrival trace.
//!
//! The KPA control loop only sees a concurrency number, so it reacts to the
//! burst with panic-mode over-provisioning and pays cascading cold starts;
//! the hierarchy planner sizes the aggregation tree from the (EWMA-smoothed)
//! queue estimate and keeps runtimes warm across levels.
//!
//! Run with: `cargo run -p lifl-examples --example autoscaler_comparison`

use lifl_core::hierarchy::{EwmaEstimator, HierarchyPlan};
use lifl_dataplane::CostModel;
use lifl_serverless::chain::{ChainScaling, FunctionChain};
use lifl_serverless::kpa::{KpaAutoscaler, KpaConfig};
use lifl_types::{NodeId, SimTime, SystemKind};

fn main() {
    // A bursty arrival trace: quiet, a burst of 40 updates/min, quiet again.
    let arrival_per_min = [4.0, 4.0, 6.0, 40.0, 44.0, 38.0, 8.0, 4.0, 2.0, 0.0];

    // --- Knative KPA: concurrency-threshold scaling with panic mode. ---
    let mut kpa = KpaAutoscaler::new(KpaConfig::default());
    let mut ready = 1u32;
    println!("minute  arrivals/min  KPA desired  panic  planner leaves (+middle/top)");
    let mut ewma = EwmaEstimator::new(0.7);
    for (minute, &rate) in arrival_per_min.iter().enumerate() {
        // Feed per-second concurrency observations for this minute.
        for s in 0..60 {
            let t = SimTime::from_secs((minute * 60 + s) as f64);
            kpa.observe(t, rate / 10.0);
        }
        let now = SimTime::from_secs(((minute + 1) * 60) as f64);
        let decision = kpa.evaluate(now, ready);
        ready = decision.desired_replicas.max(1);

        // --- LIFL: hierarchy planned from the smoothed queue estimate. ---
        let estimate = ewma.observe(rate);
        let plan = HierarchyPlan::plan(&[(NodeId::new(0), estimate.round() as u32)], 2);
        let leaves = plan
            .on_node(NodeId::new(0))
            .map(|h| h.leaves())
            .unwrap_or(0);
        println!(
            "{:>6}  {:>12.0}  {:>11}  {:>5}  {:>6} (+{})",
            minute,
            rate,
            decision.desired_replicas,
            decision.panicking,
            leaves,
            plan.total_aggregators().saturating_sub(leaves)
        );
    }

    // Cascading cold starts: the reactive chain versus the pre-planned chain.
    let startup = CostModel::paper_calibrated().startup(SystemKind::Serverless);
    let mut reactive = FunctionChain::aggregation_chain(SystemKind::Serverless, 3, startup);
    let mut planned = FunctionChain::aggregation_chain(SystemKind::Serverless, 3, startup);
    let r = reactive.scale_for_traffic(SimTime::ZERO, ChainScaling::Reactive);
    let p = planned.scale_for_traffic(SimTime::ZERO, ChainScaling::PrePlanned);
    println!(
        "\n3-level chain readiness: reactive (cascading cold starts) = {:.1}s, pre-planned = {:.1}s",
        r.chain_ready_at.as_secs(),
        p.chain_ready_at.as_secs()
    );
}
