//! The cluster-scale simulation engine for LIFL and its baselines.
//!
//! [`LiflPlatform`] simulates one aggregation round at a time: client updates
//! arrive at the cluster ingress, are load-balanced to worker nodes
//! (locality-aware bin-packing or least-connection spreading, §5.1), flow
//! through each node's aggregation subtree (two-level by default, §5.2;
//! deeper when `max_interior_fan_in` caps the middle width) and finally reach
//! the top aggregator that updates the global model. All data-plane and start-up
//! costs come from the calibrated [`CostModel`]; the orchestration behaviour
//! (placement policy, hierarchy planning, runtime reuse, eager/lazy timing,
//! always-on provisioning) is captured by a [`PlatformProfile`] so the same
//! engine also powers every baseline system.

use crate::eager;
use crate::hierarchy::HierarchyPlan;
use crate::placement::{NodeCapacity, PlacementEngine};
use crate::system::AggregationSystem;
use lifl_dataplane::{update_wire_bytes, CostModel, DataPlaneKind};
use lifl_simcore::Gantt;
use lifl_types::{
    AggregationTiming, ClusterConfig, CodecKind, LiflConfig, ModelKind, NodeId, PlacementPolicy,
    RoundMetrics, SimDuration, SimTime, SystemKind,
};
use std::collections::HashMap;

/// One aggregation round to simulate: the model being trained and the times at
/// which each participating client's update reaches the cluster ingress.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundSpec {
    /// The model whose update size drives every data-plane cost.
    pub model: ModelKind,
    /// Arrival time of each model update at the cluster ingress.
    pub arrivals: Vec<SimTime>,
}

impl RoundSpec {
    /// Creates a round spec.
    pub fn new(model: ModelKind, arrivals: Vec<SimTime>) -> Self {
        RoundSpec { model, arrivals }
    }

    /// A round where all `n` updates arrive simultaneously at `at`
    /// (the Fig. 8 microbenchmark pattern).
    pub fn simultaneous(model: ModelKind, n: usize, at: SimTime) -> Self {
        RoundSpec {
            model,
            arrivals: vec![at; n],
        }
    }
}

/// Everything an aggregation round produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundReport {
    /// Round metrics (ACT, CPU time, aggregators created, nodes used, ...).
    pub metrics: RoundMetrics,
    /// Wall-clock time at which post-aggregation evaluation finished
    /// (the next round can start after this in synchronous FL).
    pub eval_finished: SimTime,
    /// The task timeline (Fig. 4 / Fig. 7(c) style).
    pub gantt: Gantt,
    /// The hierarchy plan the round executed.
    pub plan: HierarchyPlan,
}

/// The orchestration behaviour of a platform (LIFL or a baseline).
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformProfile {
    /// Which evaluated system this profile reproduces.
    pub system: SystemKind,
    /// Cluster resources.
    pub cluster: ClusterConfig,
    /// Load-balancing / bin-packing policy (§5.1).
    pub placement: PlacementPolicy,
    /// Eager or lazy aggregation (§5.4).
    pub timing: AggregationTiming,
    /// Whether hierarchies are planned ahead of arrivals (§5.2). When false,
    /// aggregator start-up is reactive and its delay sits on the critical path.
    pub hierarchy_planning: bool,
    /// Whether warm runtimes are reused across hierarchy levels (§5.3).
    pub reuse_runtimes: bool,
    /// Client updates per leaf aggregator (I, §5.2).
    pub leaf_fan_in: u32,
    /// Whether aggregators are always-on (serverful) rather than created on demand.
    pub always_on: bool,
    /// The aggregator-to-aggregator data plane.
    pub dataplane: DataPlaneKind,
    /// Whether warm instances survive between rounds (keep-alive long enough);
    /// serverless baselines lose their instances between FL rounds.
    pub warm_across_rounds: bool,
    /// The wire representation every model update travels with: all transfer
    /// costs are priced off the encoded bytes, and interior aggregators pay a
    /// fused decode-fold pass plus a re-encode pass per update.
    pub codec: CodecKind,
    /// Parameter-vector shards the fold is split across (1 = sequential).
    pub aggregation_shards: u32,
    /// Cap on every interior aggregator's fan-in when planning node subtrees
    /// (`LiflConfig::max_interior_fan_in`; 0 = uncapped two-level plans,
    /// the paper shape). With a cap, heavily loaded nodes run
    /// deeper-than-two-level subtrees and the simulated round pays an
    /// intra-node hand-off per extra level.
    pub max_interior_fan_in: u32,
}

impl PlatformProfile {
    /// LIFL with the given control-plane configuration.
    pub fn lifl(cluster: ClusterConfig, config: &LiflConfig) -> Self {
        PlatformProfile {
            system: SystemKind::Lifl,
            cluster,
            placement: config.placement,
            timing: config.timing,
            hierarchy_planning: config.hierarchy_planning,
            reuse_runtimes: config.reuse_runtimes,
            leaf_fan_in: config.leaf_fan_in,
            always_on: false,
            dataplane: DataPlaneKind::LiflSharedMemory,
            warm_across_rounds: true,
            codec: config.codec,
            aggregation_shards: config.aggregation_shards,
            max_interior_fan_in: config.max_interior_fan_in,
        }
    }

    /// The SL-H baseline of Fig. 8: LIFL's data plane, Knative least-connection
    /// load balancing, reactive scaling, no reuse, lazy aggregation.
    pub fn sl_hierarchical(cluster: ClusterConfig) -> Self {
        PlatformProfile {
            system: SystemKind::SlHierarchical,
            placement: PlacementPolicy::WorstFit,
            timing: AggregationTiming::Lazy,
            hierarchy_planning: false,
            reuse_runtimes: false,
            leaf_fan_in: 2,
            always_on: false,
            dataplane: DataPlaneKind::LiflSharedMemory,
            warm_across_rounds: false,
            codec: CodecKind::Identity,
            aggregation_shards: 1,
            max_interior_fan_in: 0,
            cluster,
        }
    }

    /// The serverless baseline (SL, §6): broker + sidecar data plane, reactive
    /// threshold scaling, least-connection spreading, lazy aggregation.
    pub fn serverless(cluster: ClusterConfig) -> Self {
        PlatformProfile {
            system: SystemKind::Serverless,
            placement: PlacementPolicy::WorstFit,
            timing: AggregationTiming::Lazy,
            hierarchy_planning: false,
            reuse_runtimes: false,
            leaf_fan_in: 2,
            always_on: false,
            dataplane: DataPlaneKind::ServerlessBrokerSidecar,
            warm_across_rounds: false,
            codec: CodecKind::Identity,
            aggregation_shards: 1,
            max_interior_fan_in: 0,
            cluster,
        }
    }

    /// The serverful baseline (SF, §6): always-on aggregators with gRPC channels.
    pub fn serverful(cluster: ClusterConfig) -> Self {
        PlatformProfile {
            system: SystemKind::Serverful,
            placement: PlacementPolicy::WorstFit,
            timing: AggregationTiming::Eager,
            hierarchy_planning: true,
            reuse_runtimes: false,
            leaf_fan_in: 2,
            always_on: true,
            dataplane: DataPlaneKind::ServerfulGrpc,
            warm_across_rounds: true,
            codec: CodecKind::Identity,
            aggregation_shards: 1,
            max_interior_fan_in: 0,
            cluster,
        }
    }

    /// Returns the profile with a different update codec (used by the
    /// `fig_codec` codec × transport sweep).
    pub fn with_codec(mut self, codec: CodecKind) -> Self {
        self.codec = codec;
        self
    }
}

/// The simulated aggregation platform.
#[derive(Debug, Clone)]
pub struct LiflPlatform {
    profile: PlatformProfile,
    cost: CostModel,
    /// Warm aggregator instances left on each node by previous rounds.
    warm: HashMap<NodeId, u32>,
    rounds_run: u64,
    active_aggregators: u32,
    cumulative_cpu: SimDuration,
}

impl LiflPlatform {
    /// Creates a LIFL platform with the default paper-calibrated cost model.
    pub fn new(cluster: ClusterConfig, config: LiflConfig) -> Self {
        Self::with_profile(PlatformProfile::lifl(cluster, &config))
    }

    /// Creates a platform (LIFL or baseline) from an explicit profile.
    pub fn with_profile(profile: PlatformProfile) -> Self {
        LiflPlatform {
            profile,
            cost: CostModel::paper_calibrated(),
            warm: HashMap::new(),
            rounds_run: 0,
            active_aggregators: 0,
            cumulative_cpu: SimDuration::ZERO,
        }
    }

    /// The profile this platform runs with.
    pub fn profile(&self) -> &PlatformProfile {
        &self.profile
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Cumulative busy CPU time over all rounds run so far.
    pub fn cumulative_cpu(&self) -> SimDuration {
        self.cumulative_cpu
    }

    /// Number of rounds simulated.
    pub fn rounds_run(&self) -> u64 {
        self.rounds_run
    }

    fn take_warm(&mut self, node: NodeId) -> bool {
        if self.profile.always_on {
            return true;
        }
        match self.warm.get_mut(&node) {
            Some(count) if *count > 0 => {
                *count -= 1;
                true
            }
            _ => false,
        }
    }

    /// Simulates one aggregation round.
    pub fn run_round(&mut self, spec: &RoundSpec) -> RoundReport {
        // Every transfer below is priced off the *encoded* update size; with
        // the default `Identity` codec this is byte-identical to the seed.
        let bytes = update_wire_bytes(spec.model, self.profile.codec);
        let n = spec.arrivals.len() as u64;
        let round_index = self.rounds_run + 1;
        let mut arrivals = spec.arrivals.clone();
        arrivals.sort();
        let round_start = arrivals.first().copied().unwrap_or(SimTime::ZERO);
        let mut metrics = RoundMetrics::new(round_index, round_start);
        metrics.updates_aggregated = n;
        let mut gantt = Gantt::new();
        if !self.profile.warm_across_rounds {
            self.warm.clear();
        }

        // --- 1. Load balancing: map each update to a worker node (§5.1). ---
        let engine = PlacementEngine::new(self.profile.placement);
        let mut caps: Vec<NodeCapacity> = (0..self.profile.cluster.aggregation_nodes as u64)
            .map(|i| {
                NodeCapacity::new(
                    NodeId::new(i),
                    self.profile.cluster.node.max_service_capacity,
                )
            })
            .collect();
        let placement = engine.place_batch(n, &mut caps);
        let mut per_node: HashMap<NodeId, Vec<SimTime>> = HashMap::new();
        for (arrival, node) in arrivals.iter().zip(&placement.assignments) {
            per_node.entry(*node).or_default().push(*arrival);
        }

        // --- 2. Hierarchy plan (§5.2). ---
        let mut pending: Vec<(NodeId, u32)> = per_node
            .iter()
            .map(|(node, list)| (*node, list.len() as u32))
            .collect();
        pending.sort_by_key(|(node, _)| *node);
        let plan = HierarchyPlan::plan_capped(
            &pending,
            self.profile.leaf_fan_in,
            self.profile.max_interior_fan_in,
        );
        let top_node = plan.top_node.unwrap_or(NodeId::new(0));

        let startup = self.cost.startup(self.profile.system);
        // Each fold is a *fused* decode-fold pass (dequantize-and-axpy over
        // the wire payload — `fused_fold_compute` discounts the quantized
        // codecs' smaller memory traffic and is exactly the seed
        // `aggregation_compute` for `Identity`), split across the configured
        // shards; each interior hand-off still pays a re-encode pass.
        let shards = self
            .profile
            .aggregation_shards
            .clamp(1, self.profile.cluster.node.cores.max(1));
        let fused = self.cost.fused_fold_compute(spec.model, self.profile.codec);
        let agg_compute = fused.scaled(1.0 / sharded_fold_speedup(shards));
        let encode_pass = self.cost.codec_compute(spec.model, self.profile.codec);
        let ingest = self.cost.client_ingest(self.profile.system, bytes);
        let intra = self.cost.intra_node_transfer(self.profile.dataplane, bytes);
        let inter = self.cost.inter_node_transfer(bytes);
        let clock = self.profile.cluster.node.clock_ghz;

        let mut cpu = SimDuration::ZERO;
        let mut created = 0u64;
        let mut reused = 0u64;
        let mut inter_node_bytes = 0u64;
        let mut node_outputs: Vec<(NodeId, SimTime, u64)> = Vec::new();
        let mut aggregators_live = 0u32;

        // --- 3. Per-node subtree simulation. ---
        let mut node_ids: Vec<NodeId> = per_node.keys().copied().collect();
        node_ids.sort();
        for node in &node_ids {
            let node = *node;
            let node_arrivals = &per_node[&node];
            // lifl-lint: allow(panic) — per_node is keyed by the plan's own
            // placement, so every node iterated here is planned.
            let hierarchy = plan.on_node(node).expect("planned node");
            // The node's subtree shape as the shared Topology vocabulary:
            // leaf chunking and the middle level both derive from it.
            let subtree = hierarchy.topology();
            // Ingest every update through the gateway / queuing pipeline.
            let mut ready: Vec<SimTime> =
                node_arrivals.iter().map(|a| *a + ingest.latency).collect();
            ready.sort();
            cpu += ingest
                .cpu
                .to_duration(clock)
                .scaled(node_arrivals.len() as f64);
            inter_node_bytes += ingest.inter_node_bytes * node_arrivals.len() as u64;

            // Leaf aggregators: consecutive chunks of the subtree's leaf fan-in.
            let fan_in = subtree.fan_in(0);
            let mut leaf_outputs: Vec<SimTime> = Vec::new();
            let mut leaf_finish: Vec<SimTime> = Vec::new();
            for (leaf_idx, chunk) in ready.chunks(fan_in).enumerate() {
                let (Some(&first_arrival), Some(&last_arrival)) = (chunk.first(), chunk.last())
                else {
                    continue; // `chunks` never yields an empty chunk
                };
                let (instance_ready, was_created) = self.instance_ready(
                    node,
                    first_arrival,
                    round_start,
                    &startup,
                    &mut cpu,
                    clock,
                );
                if was_created {
                    created += 1;
                }
                aggregators_live += 1;
                let done =
                    eager::completion_time(self.profile.timing, instance_ready, chunk, agg_compute);
                cpu += eager::busy_time(chunk, agg_compute);
                let row = format!("{}-LF{}", node, leaf_idx + 1);
                gantt.add(row.clone(), "Network", first_arrival, last_arrival);
                gantt.add(row, "Agg.", first_arrival.max(instance_ready), done);
                // Hand the intermediate to the node's middle (or directly
                // onward): re-encode, then the shared-memory hop.
                let handoff = done + encode_pass + intra.latency;
                cpu += encode_pass + intra.cpu.to_duration(clock);
                leaf_outputs.push(handoff);
                leaf_finish.push(done);
            }

            // Interior levels of the node's subtree: §5.2 plans exactly one
            // middle; a capped plan may stack several middle levels, each
            // consuming the previous level's intermediates in chunks of its
            // fan-in, paying an intra-node hand-off (re-encode + transfer)
            // between consecutive interior levels.
            let node_done = if subtree.levels() > 1 {
                let mut inputs = leaf_outputs;
                let mut prev_finish = leaf_finish;
                let mut done_at = None;
                for level in 1..subtree.levels() {
                    let fan_in = subtree.fan_in(level);
                    let last_level = level + 1 == subtree.levels();
                    let mut outputs = Vec::new();
                    let mut finishes = Vec::new();
                    for (idx, (chunk, finish_chunk)) in inputs
                        .chunks(fan_in)
                        .zip(prev_finish.chunks(fan_in))
                        .enumerate()
                    {
                        let Some(&first_input) = chunk.iter().min() else {
                            continue; // `chunks` never yields an empty chunk
                        };
                        let (instance_ready, was_created, was_reused) =
                            if self.profile.reuse_runtimes {
                                // Reuse the earliest-finished child of this
                                // aggregator's chunk on this node (§5.3).
                                // lifl-lint: allow(panic) — inputs and
                                // prev_finish have equal length, so the
                                // zipped chunks are never empty.
                                let earliest = *finish_chunk.iter().min().expect("child finished");
                                (earliest, false, true)
                            } else {
                                let (ready_at, was_created) = self.instance_ready(
                                    node,
                                    first_input,
                                    round_start,
                                    &startup,
                                    &mut cpu,
                                    clock,
                                );
                                (ready_at, was_created, false)
                            };
                        if was_created {
                            created += 1;
                            aggregators_live += 1;
                        }
                        if was_reused {
                            reused += 1;
                        }
                        let done = eager::completion_time(
                            self.profile.timing,
                            instance_ready,
                            chunk,
                            agg_compute,
                        );
                        cpu += eager::busy_time(chunk, agg_compute);
                        // The seed's single middle keeps its "{node}-MID"
                        // row; deeper levels get indexed rows.
                        let row = if level == 1 && subtree.levels() == 2 {
                            format!("{node}-MID")
                        } else {
                            format!("{node}-MID{level}.{}", idx + 1)
                        };
                        gantt.add(row, "Agg.", first_input.max(instance_ready), done);
                        if last_level {
                            outputs.push(done);
                        } else {
                            // Hand the intermediate to the next interior
                            // level: re-encode, then the shared-memory hop.
                            outputs.push(done + encode_pass + intra.latency);
                            cpu += encode_pass + intra.cpu.to_duration(clock);
                        }
                        finishes.push(done);
                    }
                    if last_level {
                        done_at = outputs.into_iter().max();
                        break;
                    }
                    inputs = outputs;
                    prev_finish = finishes;
                }
                // lifl-lint: allow(panic) — the level loop always breaks on
                // last_level with `done_at` set.
                done_at.expect("subtree has a final level")
            } else {
                leaf_outputs[0]
            };
            node_outputs.push((node, node_done, node_arrivals.len() as u64));
        }

        // --- 4. Top aggregation on the designated node. ---
        // Intermediates produced on the top node reach the top aggregator over
        // shared memory; intermediates from other nodes cross the network and
        // serialise through the top node's gateway (the receiving gateway
        // performs the payload transform one update at a time, §4.2), which is
        // exactly the contention that makes spreading load expensive (Fig. 8).
        let mut top_inputs: Vec<SimTime> = Vec::new();
        let mut remote_outputs: Vec<SimTime> = Vec::new();
        for (node, done, _weight) in &node_outputs {
            if *node == top_node {
                top_inputs.push(*done + encode_pass + intra.latency);
                cpu += encode_pass + intra.cpu.to_duration(clock);
            } else {
                // The intermediate is re-encoded before it leaves the node.
                remote_outputs.push(*done + encode_pass);
                cpu += encode_pass;
            }
        }
        remote_outputs.sort();
        let mut gateway_free = SimTime::ZERO;
        for done in remote_outputs {
            let start = done.max(gateway_free);
            let arrive = start + inter.latency;
            gateway_free = arrive;
            top_inputs.push(arrive);
            cpu += inter.cpu.to_duration(clock);
            inter_node_bytes += inter.inter_node_bytes;
        }
        let top_done = if top_inputs.is_empty() {
            round_start
        } else {
            // lifl-lint: allow(panic) — guarded by the `top_inputs.is_empty()`
            // branch above.
            let first_input = *top_inputs.iter().min().expect("non-empty");
            let (instance_ready, was_created, was_reused) = if self.profile.reuse_runtimes
                && node_outputs.iter().any(|(n, _, _)| *n == top_node)
            {
                // The first middle/leaf to finish on the top node is promoted (§5.3).
                let own_done = node_outputs
                    .iter()
                    .find(|(n, _, _)| *n == top_node)
                    .map(|(_, d, _)| *d)
                    // lifl-lint: allow(panic) — the `any()` in this branch's
                    // condition guarantees a matching node output.
                    .expect("own node output");
                (own_done, false, true)
            } else {
                let (ready_at, was_created) = self.instance_ready(
                    top_node,
                    first_input,
                    round_start,
                    &startup,
                    &mut cpu,
                    clock,
                );
                (ready_at, was_created, false)
            };
            if was_created {
                created += 1;
                aggregators_live += 1;
            }
            if was_reused {
                reused += 1;
            }
            let done = eager::completion_time(
                self.profile.timing,
                instance_ready,
                &top_inputs,
                agg_compute,
            );
            cpu += eager::busy_time(&top_inputs, agg_compute);
            gantt.add("Top", "Agg.", first_input.max(instance_ready), done);
            done
        };

        // --- 5. Evaluation and always-on / stateful-tax accounting. ---
        let eval = self.cost.evaluation_compute(spec.model);
        let eval_finished = top_done + eval;
        cpu += eval;
        gantt.add("Top", "Eval.", top_done, eval_finished);

        let round_wall = eval_finished.duration_since(round_start);
        let nodes_used = placement.nodes_used.max(1) as u64;
        if self.profile.always_on {
            // The whole serverful deployment is billed for the full round.
            let deployment_aggs = self.profile.cluster.aggregation_nodes
                * self.profile.cluster.node.max_service_capacity
                / self.profile.leaf_fan_in.max(1)
                / 2;
            let always_on_cores = deployment_aggs.max(16) as f64;
            cpu += round_wall.scaled(always_on_cores * 0.25);
            self.active_aggregators = deployment_aggs.max(16);
        } else {
            // Per-node stateful tax (gateway or broker) plus per-aggregator sidecars.
            let node_tax = self.cost.idle_cores_per_node(self.profile.system);
            cpu += round_wall.scaled(node_tax * nodes_used as f64);
            let agg_tax = self.cost.idle_cores_per_aggregator(self.profile.system);
            cpu += round_wall.scaled(agg_tax * aggregators_live as f64);
            self.active_aggregators = aggregators_live;
        }

        // Warm instances persist for the next round (keep-alive / planner warm pool).
        for node in &node_ids {
            let live = plan.on_node(*node).map(|h| h.aggregators()).unwrap_or(0);
            let entry = self.warm.entry(*node).or_insert(0);
            *entry = (*entry).max(live);
        }
        let top_entry = self.warm.entry(top_node).or_insert(0);
        *top_entry = (*top_entry).max(1);

        metrics.aggregators_created = created;
        metrics.aggregators_reused = reused;
        metrics.nodes_used = nodes_used;
        metrics.cpu_time = cpu;
        metrics.inter_node_bytes = inter_node_bytes;
        metrics.complete(top_done);
        self.cumulative_cpu += cpu;
        self.rounds_run = round_index;

        RoundReport {
            metrics,
            eval_finished,
            gantt,
            plan,
        }
    }

    /// When a (new or warm) instance on `node` is ready to process work whose
    /// first input arrives at `first_arrival`. Returns `(ready_at, newly_created)`.
    fn instance_ready(
        &mut self,
        node: NodeId,
        first_arrival: SimTime,
        round_start: SimTime,
        startup: &lifl_dataplane::cost::StartupCost,
        cpu: &mut SimDuration,
        _clock: f64,
    ) -> (SimTime, bool) {
        if self.take_warm(node) {
            (first_arrival + startup.warm_start, false)
        } else if self.profile.hierarchy_planning {
            // Planned ahead: the runtime is created at round start, so its
            // start-up overlaps the update transfers (§5.2, §5.4).
            *cpu += startup.cold_start_cpu;
            let ready = round_start + startup.cold_start;
            (ready.max(first_arrival), true)
        } else {
            // Reactive scaling: the cold start begins when the work arrives.
            *cpu += startup.cold_start_cpu;
            (first_arrival + startup.cold_start, true)
        }
    }
}

/// Modelled speedup of folding across `shards` partitions: near-linear with
/// an Amdahl-style 85% parallel efficiency per extra shard (the real
/// `ShardedFedAvg` is memory-bandwidth-bound, so perfect scaling is not
/// assumed). Exactly 1.0 for one shard, keeping the seed timings bit-exact.
fn sharded_fold_speedup(shards: u32) -> f64 {
    1.0 + 0.85 * (f64::from(shards) - 1.0)
}

impl AggregationSystem for LiflPlatform {
    fn system(&self) -> SystemKind {
        self.profile.system
    }

    fn run_round(&mut self, spec: &RoundSpec) -> RoundReport {
        LiflPlatform::run_round(self, spec)
    }

    fn active_aggregators(&self) -> u32 {
        self.active_aggregators
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrivals_spread(n: usize, gap: f64) -> Vec<SimTime> {
        (0..n).map(|i| SimTime::from_secs(i as f64 * gap)).collect()
    }

    fn lifl() -> LiflPlatform {
        LiflPlatform::new(ClusterConfig::default(), LiflConfig::default())
    }

    fn slh() -> LiflPlatform {
        LiflPlatform::with_profile(PlatformProfile::sl_hierarchical(ClusterConfig::default()))
    }

    #[test]
    fn round_aggregates_all_updates() {
        let mut platform = lifl();
        let spec = RoundSpec::new(ModelKind::ResNet152, arrivals_spread(20, 1.0));
        let report = platform.run_round(&spec);
        assert_eq!(report.metrics.updates_aggregated, 20);
        assert!(report.metrics.aggregation_completion_time.as_secs() > 0.0);
        assert!(report.eval_finished > report.metrics.completed_at);
        assert!(report.metrics.cpu_time.as_secs() > 0.0);
        assert_eq!(platform.rounds_run(), 1);
        assert!(platform.cumulative_cpu().as_secs() > 0.0);
    }

    #[test]
    fn lifl_uses_fewer_nodes_than_slh() {
        // Fig. 8(d): 20 updates → LIFL packs onto 1 node, SL-H spreads over 5.
        let spec = RoundSpec::simultaneous(ModelKind::ResNet152, 20, SimTime::ZERO);
        let lifl_report = lifl().run_round(&spec);
        let slh_report = slh().run_round(&spec);
        assert_eq!(lifl_report.metrics.nodes_used, 1);
        assert_eq!(slh_report.metrics.nodes_used, 5);
        assert!(lifl_report.metrics.inter_node_bytes < slh_report.metrics.inter_node_bytes);
    }

    #[test]
    fn lifl_act_beats_slh() {
        // Fig. 8(a): the full LIFL orchestration completes aggregation faster than SL-H.
        for n in [20usize, 60] {
            let spec = RoundSpec::simultaneous(ModelKind::ResNet152, n, SimTime::ZERO);
            let act_lifl = lifl().run_round(&spec).metrics.aggregation_completion_time;
            let act_slh = slh().run_round(&spec).metrics.aggregation_completion_time;
            assert!(
                act_lifl < act_slh,
                "n={n}: LIFL {:.1}s vs SL-H {:.1}s",
                act_lifl.as_secs(),
                act_slh.as_secs()
            );
        }
    }

    #[test]
    fn lifl_cpu_beats_serverless() {
        let spec = RoundSpec::new(ModelKind::ResNet18, arrivals_spread(60, 0.5));
        let mut sl =
            LiflPlatform::with_profile(PlatformProfile::serverless(ClusterConfig::default()));
        let lifl_cpu = lifl().run_round(&spec).metrics.cpu_time;
        let sl_cpu = sl.run_round(&spec).metrics.cpu_time;
        assert!(
            lifl_cpu.as_secs() * 1.5 < sl_cpu.as_secs(),
            "LIFL {:.1}s vs SL {:.1}s",
            lifl_cpu.as_secs(),
            sl_cpu.as_secs()
        );
    }

    #[test]
    fn warm_instances_survive_rounds_for_lifl_only() {
        let spec = RoundSpec::simultaneous(ModelKind::ResNet152, 20, SimTime::ZERO);
        let mut platform = lifl();
        let first = platform.run_round(&spec);
        let second = platform.run_round(&spec);
        assert!(first.metrics.aggregators_created > 0);
        assert_eq!(
            second.metrics.aggregators_created, 0,
            "second round reuses warm runtimes"
        );

        let mut slh = slh();
        let first = slh.run_round(&spec);
        let second = slh.run_round(&spec);
        assert!(first.metrics.aggregators_created > 0);
        assert!(
            second.metrics.aggregators_created > 0,
            "SL-H cold starts every round"
        );
    }

    #[test]
    fn eager_reduces_act_for_spread_arrivals() {
        let cluster = ClusterConfig::default();
        let eager_cfg = LiflConfig {
            timing: AggregationTiming::Eager,
            ..LiflConfig::default()
        };
        let lazy_cfg = LiflConfig {
            timing: AggregationTiming::Lazy,
            ..LiflConfig::default()
        };
        let spec = RoundSpec::new(ModelKind::ResNet152, arrivals_spread(20, 2.0));
        let act_eager = LiflPlatform::new(cluster.clone(), eager_cfg)
            .run_round(&spec)
            .metrics
            .aggregation_completion_time;
        let act_lazy = LiflPlatform::new(cluster, lazy_cfg)
            .run_round(&spec)
            .metrics
            .aggregation_completion_time;
        assert!(act_eager < act_lazy, "eager {act_eager} < lazy {act_lazy}");
    }

    #[test]
    fn serverful_creates_no_instances_but_burns_idle_cpu() {
        let spec = RoundSpec::simultaneous(ModelKind::ResNet18, 8, SimTime::ZERO);
        let mut sf =
            LiflPlatform::with_profile(PlatformProfile::serverful(ClusterConfig::default()));
        let report = sf.run_round(&spec);
        assert_eq!(report.metrics.aggregators_created, 0);
        assert!(sf.active_aggregators() >= 16);
        // Always-on cost should dominate a small round.
        let mut lifl = lifl();
        let lifl_report = lifl.run_round(&spec);
        assert!(report.metrics.cpu_time > lifl_report.metrics.cpu_time);
    }

    #[test]
    fn gantt_has_leaf_and_top_rows() {
        let spec = RoundSpec::simultaneous(ModelKind::ResNet152, 8, SimTime::ZERO);
        let report = lifl().run_round(&spec);
        let rows = report.gantt.rows();
        assert!(rows.iter().any(|r| r.contains("LF")));
        assert!(rows.iter().any(|r| r == "Top"));
        assert!(report.gantt.makespan() > 0.0);
    }

    #[test]
    fn quantized_codec_shrinks_wire_bytes_and_act() {
        let spec = RoundSpec::simultaneous(ModelKind::ResNet152, 60, SimTime::ZERO);
        let mut reports = Vec::new();
        for codec in [
            CodecKind::Identity,
            CodecKind::Uniform8,
            CodecKind::Uniform4,
        ] {
            let config = LiflConfig {
                codec,
                ..LiflConfig::default()
            };
            let mut platform = LiflPlatform::new(ClusterConfig::default(), config);
            reports.push(platform.run_round(&spec));
        }
        for pair in reports.windows(2) {
            assert!(
                pair[0].metrics.inter_node_bytes > pair[1].metrics.inter_node_bytes,
                "stronger codec must cross fewer bytes"
            );
            assert!(
                pair[0].metrics.aggregation_completion_time
                    >= pair[1].metrics.aggregation_completion_time,
                "stronger codec must not slow the round"
            );
        }
        let ratio =
            reports[0].metrics.inter_node_bytes as f64 / reports[1].metrics.inter_node_bytes as f64;
        assert!(ratio >= 3.99, "uniform8 wire reduction only {ratio:.2}x");
    }

    #[test]
    fn sharded_fold_shortens_the_round() {
        let spec = RoundSpec::simultaneous(ModelKind::ResNet152, 20, SimTime::ZERO);
        let act = |shards: u32| {
            let config = LiflConfig {
                aggregation_shards: shards,
                ..LiflConfig::default()
            };
            LiflPlatform::new(ClusterConfig::default(), config)
                .run_round(&spec)
                .metrics
                .aggregation_completion_time
        };
        let sequential = act(1);
        let sharded4 = act(4);
        let sharded16 = act(16);
        assert!(sharded4 < sequential, "{sharded4} !< {sequential}");
        assert!(sharded16 < sharded4, "{sharded16} !< {sharded4}");
    }

    #[test]
    fn capped_interior_fan_in_runs_deep_cross_machine_rounds() {
        // 60 simultaneous updates spread by SL-H-style placement would be
        // wide; with BestFit they pack to 3 nodes of 20 updates = 10 leaves
        // each. Capping interior fan-in at 4 stacks middle levels: each
        // node's subtree is 3 levels, plus the cross-machine top = 4 levels
        // end to end.
        let spec = RoundSpec::simultaneous(ModelKind::ResNet152, 60, SimTime::ZERO);
        let config = LiflConfig {
            max_interior_fan_in: 4,
            ..LiflConfig::default()
        };
        let mut platform = LiflPlatform::new(ClusterConfig::default(), config);
        let report = platform.run_round(&spec);
        assert_eq!(report.metrics.updates_aggregated, 60);
        let deep = report
            .plan
            .nodes
            .iter()
            .find(|n| n.subtree.levels() > 2)
            .expect("a capped heavy node plans a deep subtree");
        assert!(deep.subtree.fan_ins()[1..].iter().all(|f| *f <= 4));
        // The deep rounds pay for their extra levels but still complete,
        // and the gantt shows stacked middle rows.
        assert!(report.metrics.aggregation_completion_time.as_secs() > 0.0);
        assert!(
            report.gantt.rows().iter().any(|r| r.contains("-MID2.")),
            "{:?}",
            report.gantt.rows()
        );

        // Uncapped profiles are untouched: bit-identical to the seed plan.
        let uncapped =
            LiflPlatform::new(ClusterConfig::default(), LiflConfig::default()).run_round(&spec);
        let baseline = lifl().run_round(&spec);
        assert_eq!(uncapped.metrics, baseline.metrics);
    }

    #[test]
    fn identity_codec_is_cost_identical_to_seed_profile() {
        // The codec field must not perturb the calibrated baseline numbers.
        let spec = RoundSpec::new(ModelKind::ResNet34, arrivals_spread(20, 1.0));
        let with_default = lifl().run_round(&spec);
        let explicit_identity = LiflPlatform::new(
            ClusterConfig::default(),
            LiflConfig {
                codec: CodecKind::Identity,
                ..LiflConfig::default()
            },
        )
        .run_round(&spec);
        assert_eq!(with_default.metrics, explicit_identity.metrics);
    }

    #[test]
    fn empty_round_is_harmless() {
        let mut platform = lifl();
        let report = platform.run_round(&RoundSpec::new(ModelKind::ResNet18, vec![]));
        assert_eq!(report.metrics.updates_aggregated, 0);
        assert_eq!(report.metrics.aggregators_created, 0);
    }
}
