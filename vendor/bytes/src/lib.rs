//! Minimal offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, cheaply clonable byte buffer backed by
//! `Arc<[u8]>`. Cloning bumps a reference count; the payload is never copied,
//! which preserves the zero-copy semantics the real crate offers for the
//! usage patterns in this workspace.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a static slice into a buffer.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The contents as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data: data.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(data: [u8; N]) -> Self {
        Bytes {
            data: data.as_slice().into(),
        }
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.data.len())
    }
}
