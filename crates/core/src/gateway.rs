//! The per-node gateway (§4.2, Appendix C): the only stateful data-plane
//! component in LIFL. It ingests model updates from remote clients or peer
//! gateways, performs the one-time payload processing, writes the payload into
//! the local shared-memory store and enqueues the object key to the consuming
//! aggregator's in-place queue. On the transmit side it reads a local object
//! and ships it to a remote node's gateway.

use lifl_fl::codec::{EncodedUpdate, EncodedView};
use lifl_fl::update::Update;
use lifl_shmem::queue::QueuedUpdate;
use lifl_shmem::{InPlaceQueue, ObjectStore};
use lifl_types::{AggregatorId, ClientId, NodeId, Result};
use std::collections::BTreeMap;

/// The per-node gateway.
#[derive(Debug)]
pub struct Gateway {
    node: NodeId,
    store: ObjectStore,
    inboxes: BTreeMap<AggregatorId, InPlaceQueue>,
    ingested_updates: u64,
    ingested_bytes: u64,
    forwarded_bytes: u64,
}

impl Gateway {
    /// Creates a gateway over the node's shared-memory store.
    pub fn new(node: NodeId, store: ObjectStore) -> Self {
        Gateway {
            node,
            store,
            inboxes: BTreeMap::new(),
            ingested_updates: 0,
            ingested_bytes: 0,
            forwarded_bytes: 0,
        }
    }

    /// The node this gateway serves.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Registers (or returns) the in-place queue feeding `aggregator`.
    pub fn register_aggregator(&mut self, aggregator: AggregatorId) -> InPlaceQueue {
        self.inboxes.entry(aggregator).or_default().clone()
    }

    /// The single polymorphic ingress: accepts a model update in whatever
    /// representation it arrived ([`Update`]) and performs the matching
    /// one-time payload processing — dense parameters and encoded payloads
    /// are written to shared memory as-is, encoded remote wire bytes have
    /// their descriptor validated in place (dense remote bytes are stored
    /// as-is; a dimension mismatch surfaces at fold time) — before the
    /// object key is queued for `target`.
    ///
    /// The representation-specific methods below remain as typed shortcuts;
    /// this entry point is what `Session::ingest` and other
    /// representation-agnostic callers use. A dense or encoded update with
    /// no client id is attributed to its arrival index.
    ///
    /// # Errors
    /// Fails if the shared-memory store cannot hold the payload or a remote
    /// encoded payload is malformed.
    pub fn ingest(&mut self, target: AggregatorId, update: &Update) -> Result<QueuedUpdate> {
        let fallback = ClientId::new(self.ingested_updates);
        match update {
            Update::Dense(dense) => {
                let client = dense.client.unwrap_or(fallback);
                self.ingest_client_update(client, target, dense.model.as_slice(), dense.samples)
            }
            Update::Encoded {
                client,
                update,
                samples,
            } => {
                let client = client.unwrap_or(fallback);
                self.ingest_encoded_update(client, target, update, *samples)
            }
            Update::RemoteBytes {
                wire,
                weight,
                encoded,
            } => {
                if *encoded {
                    self.ingest_remote_encoded(target, wire.clone(), *weight)
                } else {
                    // Headerless dense little-endian `f32` bytes, stored
                    // as-is (byte-identical to `put_f32` of the decoded
                    // values, with no intermediate decode).
                    let key = self.store.put(wire.clone())?;
                    let queued = QueuedUpdate::intermediate(key, *weight);
                    self.deliver(target, queued);
                    self.ingested_updates += 1;
                    self.ingested_bytes += wire.len() as u64;
                    Ok(queued)
                }
            }
        }
    }

    /// Ingests a raw client update: writes the payload into shared memory and
    /// enqueues the key for `target` (in-place message queuing, §4.2).
    ///
    /// # Errors
    /// Fails if the shared-memory store cannot hold the payload.
    pub fn ingest_client_update(
        &mut self,
        client: ClientId,
        target: AggregatorId,
        payload: &[f32],
        samples: u64,
    ) -> Result<QueuedUpdate> {
        let key = self.store.put_f32(payload)?;
        let mut queued = QueuedUpdate::from_client(client, key);
        queued.weight = samples;
        self.deliver(target, queued);
        self.ingested_updates += 1;
        self.ingested_bytes += (payload.len() * 4) as u64;
        Ok(queued)
    }

    /// Ingests a codec-encoded client update: the compressed self-describing
    /// form is written to shared memory as-is (one-time payload processing,
    /// no re-expansion) and the key is queued for `target` with the encoded
    /// marker set.
    ///
    /// [`Gateway::ingested_bytes`] counts what lands in shared memory — the
    /// stored form, 16-byte descriptor included. Data-plane *wire*
    /// accounting (payload only, [`EncodedUpdate::wire_bytes`]) is tracked by
    /// the callers that price transfers.
    ///
    /// # Errors
    /// Fails if the shared-memory store cannot hold the payload.
    pub fn ingest_encoded_update(
        &mut self,
        client: ClientId,
        target: AggregatorId,
        encoded: &EncodedUpdate,
        samples: u64,
    ) -> Result<QueuedUpdate> {
        let wire = encoded.to_bytes();
        let wire_len = wire.len() as u64;
        let key = self.store.put_encoded(wire, encoded.dense_bytes())?;
        let mut queued = QueuedUpdate::from_client(client, key).encoded();
        queued.weight = samples;
        self.deliver(target, queued);
        self.ingested_updates += 1;
        self.ingested_bytes += wire_len;
        Ok(queued)
    }

    /// Ingests a codec-encoded intermediate arriving from a remote gateway.
    /// The arriving buffer is stored as-is: pass shared `Bytes` (as a
    /// cluster hop does) and zero model-sized copies are made.
    ///
    /// # Errors
    /// Fails if the shared-memory store cannot hold the payload.
    pub fn ingest_remote_encoded(
        &mut self,
        target: AggregatorId,
        wire: impl Into<bytes::Bytes>,
        weight: u64,
    ) -> Result<QueuedUpdate> {
        let wire = wire.into();
        // Only the 16-byte descriptor needs parsing here; the payload is
        // validated in place (no body copy) and stored as-is.
        let dense_bytes = EncodedView::parse(&wire)?.dim() as u64 * 4;
        let wire_len = wire.len() as u64;
        let key = self.store.put_encoded(wire, dense_bytes)?;
        let queued = QueuedUpdate::intermediate(key, weight).encoded();
        self.deliver(target, queued);
        self.ingested_updates += 1;
        self.ingested_bytes += wire_len;
        Ok(queued)
    }

    /// Ingests an intermediate update arriving from a remote node's gateway.
    ///
    /// # Errors
    /// Fails if the shared-memory store cannot hold the payload.
    pub fn ingest_remote_update(
        &mut self,
        target: AggregatorId,
        payload: &[f32],
        weight: u64,
    ) -> Result<QueuedUpdate> {
        let key = self.store.put_f32(payload)?;
        let queued = QueuedUpdate::intermediate(key, weight);
        self.deliver(target, queued);
        self.ingested_updates += 1;
        self.ingested_bytes += (payload.len() * 4) as u64;
        Ok(queued)
    }

    /// Admission-drain ingress: stores a payload that is already in wire
    /// form (headerless dense `f32` bytes, or a self-describing encoded
    /// string) and delivers it attributed to `producer`. The polymorphic
    /// [`Gateway::ingest`] loses client attribution for remote bytes; a
    /// drained backlog offer must keep its producer so mid-round churn can
    /// find and reclaim the client's slot.
    ///
    /// # Errors
    /// Fails if the shared-memory store cannot hold the payload or an
    /// encoded payload is malformed.
    pub fn ingest_prepared(
        &mut self,
        target: AggregatorId,
        producer: Option<ClientId>,
        wire: Vec<u8>,
        weight: u64,
        encoded: bool,
    ) -> Result<QueuedUpdate> {
        let wire_len = wire.len() as u64;
        let key = if encoded {
            let dense_bytes = EncodedView::parse(&wire)?.dim() as u64 * 4;
            self.store.put_encoded(wire, dense_bytes)?
        } else {
            self.store.put(wire)?
        };
        let mut queued = QueuedUpdate {
            producer,
            key,
            weight,
            encoded: false,
        };
        if encoded {
            queued = queued.encoded();
        }
        self.deliver(target, queued);
        self.ingested_updates += 1;
        self.ingested_bytes += wire_len;
        Ok(queued)
    }

    /// Delivers an already-stored update key to a local aggregator's queue
    /// (the SKMSG redirect path).
    pub fn deliver(&mut self, target: AggregatorId, queued: QueuedUpdate) {
        self.inboxes.entry(target).or_default().enqueue(queued);
    }

    /// Transmit path: reads a local object and returns the payload to ship to
    /// a remote gateway (which will call [`Gateway::ingest_remote_update`]).
    ///
    /// # Errors
    /// Fails if the object key is unknown.
    pub fn forward_remote(&mut self, update: &QueuedUpdate) -> Result<Vec<f32>> {
        let object = self.store.get(&update.key)?;
        self.forwarded_bytes += object.len() as u64;
        Ok(object.as_f32_vec())
    }

    /// Transmit path for codec-encoded updates: ships the raw wire bytes (the
    /// compressed representation crosses the network, never the dense form).
    /// The returned handle shares the store's buffer — no copy is made.
    ///
    /// # Errors
    /// Fails if the object key is unknown.
    pub fn forward_remote_bytes(&mut self, update: &QueuedUpdate) -> Result<bytes::Bytes> {
        let object = self.store.get(&update.key)?;
        self.forwarded_bytes += object.len() as u64;
        Ok(object.bytes())
    }

    /// Number of updates ingested.
    pub fn ingested_updates(&self) -> u64 {
        self.ingested_updates
    }

    /// Bytes written into shared memory by this gateway (stored form: for
    /// encoded updates this includes the 16-byte codec descriptor, which is
    /// metadata rather than data-plane payload).
    pub fn ingested_bytes(&self) -> u64 {
        self.ingested_bytes
    }

    /// Bytes shipped to remote gateways.
    pub fn forwarded_bytes(&self) -> u64 {
        self.forwarded_bytes
    }

    /// The shared-memory store backing this gateway.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_lands_key_in_target_queue() {
        let store = ObjectStore::new();
        let mut gw = Gateway::new(NodeId::new(0), store.clone());
        let agg = AggregatorId::new(1);
        let inbox = gw.register_aggregator(agg);
        gw.ingest_client_update(ClientId::new(7), agg, &[1.0, 2.0], 5)
            .unwrap();
        assert_eq!(inbox.len(), 1);
        let queued = inbox.dequeue().unwrap();
        assert_eq!(queued.weight, 5);
        assert_eq!(store.get(&queued.key).unwrap().as_f32_vec(), vec![1.0, 2.0]);
        assert_eq!(gw.ingested_updates(), 1);
        assert_eq!(gw.ingested_bytes(), 8);
    }

    #[test]
    fn forward_reads_payload_for_remote_shipping() {
        let store = ObjectStore::new();
        let mut gw_a = Gateway::new(NodeId::new(0), store.clone());
        let mut gw_b = Gateway::new(NodeId::new(1), ObjectStore::new());
        let agg_local = AggregatorId::new(1);
        let agg_remote = AggregatorId::new(2);
        gw_a.register_aggregator(agg_local);
        let remote_inbox = gw_b.register_aggregator(agg_remote);

        let queued = gw_a
            .ingest_client_update(ClientId::new(1), agg_local, &[3.0, 4.0], 2)
            .unwrap();
        let payload = gw_a.forward_remote(&queued).unwrap();
        gw_b.ingest_remote_update(agg_remote, &payload, queued.weight)
            .unwrap();
        assert_eq!(remote_inbox.len(), 1);
        assert_eq!(gw_a.forwarded_bytes(), 8);
        assert!(gw_b.store().stats().live_objects > 0);
        assert_eq!(gw_a.node(), NodeId::new(0));
    }

    #[test]
    fn encoded_ingest_keeps_payload_compressed_end_to_end() {
        use lifl_fl::codec::UpdateCodec;
        use lifl_fl::DenseModel;
        use lifl_types::CodecKind;

        let store_a = ObjectStore::new();
        let mut gw_a = Gateway::new(NodeId::new(0), store_a.clone());
        let mut gw_b = Gateway::new(NodeId::new(1), ObjectStore::new());
        let agg_a = AggregatorId::new(1);
        let agg_b = AggregatorId::new(2);
        gw_a.register_aggregator(agg_a);
        let inbox_b = gw_b.register_aggregator(agg_b);

        let model = DenseModel::from_vec((0..64).map(|i| i as f32 * 0.1).collect());
        let mut codec = UpdateCodec::new(CodecKind::Uniform8);
        let encoded = codec.encode(&model);
        let queued = gw_a
            .ingest_encoded_update(ClientId::new(3), agg_a, &encoded, 5)
            .unwrap();
        assert!(queued.encoded);
        assert_eq!(gw_a.ingested_bytes(), encoded.stored_bytes());
        assert!(store_a.stats().bytes_saved() > 0);

        // Cross-node: the compressed bytes travel, the remote store stays compressed.
        let wire = gw_a.forward_remote_bytes(&queued).unwrap();
        assert_eq!(wire.len() as u64, encoded.stored_bytes());
        let remote = gw_b.ingest_remote_encoded(agg_b, wire.clone(), 5).unwrap();
        assert!(remote.encoded);
        assert_eq!(inbox_b.len(), 1);
        assert!(gw_b.store().stats().encoded_puts > 0);
    }

    #[test]
    fn polymorphic_ingest_covers_every_representation() {
        use lifl_fl::codec::UpdateCodec;
        use lifl_fl::{DenseModel, ModelUpdate, Update};
        use lifl_types::CodecKind;

        let store = ObjectStore::new();
        let mut gw = Gateway::new(NodeId::new(0), store.clone());
        let agg = AggregatorId::new(1);
        let inbox = gw.register_aggregator(agg);

        let model = DenseModel::from_vec((0..32).map(|i| i as f32 * 0.5).collect());
        // Dense without a client id: attributed to the arrival index.
        let dense = gw
            .ingest(
                agg,
                &Update::Dense(ModelUpdate::intermediate(model.clone(), 3)),
            )
            .unwrap();
        assert_eq!(dense.producer, Some(ClientId::new(0)));
        assert_eq!(dense.weight, 3);
        assert!(!dense.encoded);

        let mut codec = UpdateCodec::new(CodecKind::Uniform8);
        let encoded = codec.encode(&model);
        let wire = encoded.to_bytes();
        let queued = gw
            .ingest(agg, &Update::encoded(ClientId::new(9), encoded, 4))
            .unwrap();
        assert!(queued.encoded);

        let remote = gw
            .ingest(agg, &Update::remote_bytes(wire, 7, true))
            .unwrap();
        assert!(remote.encoded);
        assert_eq!(remote.weight, 7);

        // Remote dense bytes land byte-identical to put_f32.
        let raw: Vec<u8> = model
            .as_slice()
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        let dense_remote = gw
            .ingest(agg, &Update::remote_bytes(raw, 2, false))
            .unwrap();
        assert!(!dense_remote.encoded);
        assert_eq!(
            store.get(&dense_remote.key).unwrap().as_f32_vec(),
            model.as_slice()
        );

        assert_eq!(inbox.len(), 4);
        assert_eq!(gw.ingested_updates(), 4);
        assert!(gw
            .ingest(agg, &Update::remote_bytes(vec![1u8, 2], 1, true))
            .is_err());
    }

    #[test]
    fn forward_unknown_key_fails() {
        let mut gw = Gateway::new(NodeId::new(0), ObjectStore::new());
        let bogus = QueuedUpdate::intermediate(lifl_types::ObjectKey::from_words(1, 2), 1);
        assert!(gw.forward_remote(&bogus).is_err());
    }
}
