//! # lifl-baselines
//!
//! The baseline FL systems the paper compares LIFL against (§6):
//!
//! * **SF** — the serverful system following Google's FL stack / Meta's PAPAYA
//!   (Fig. 2(a)): always-on aggregators with direct gRPC channels.
//! * **SL** — the serverless system following FedKeeper / AdaFed on Knative
//!   (Fig. 2(b)): functions behind a message broker with container sidecars,
//!   threshold autoscaling and least-connection load balancing.
//! * **SL-H** — the Fig. 8 baseline: a serverless control plane that already
//!   has LIFL's shared-memory data plane but keeps Knative's least-connection
//!   placement, reactive scaling, no runtime reuse and lazy aggregation.
//! * **NH** — a single aggregator without hierarchy (the Fig. 4 baseline).
//!
//! All of them reuse the cluster simulation engine in `lifl-core`, configured
//! through [`lifl_core::PlatformProfile`], plus the FL workload driver in
//! [`driver`] that turns (population, dataset, system) into the
//! time-to-accuracy and cost-to-accuracy curves of Fig. 9 and the time series
//! of Fig. 10.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod systems;

pub use driver::{WorkloadDriver, WorkloadOutcome, WorkloadSetup};
pub use systems::{
    no_hierarchy_profile, serverful, serverful_with_codec, serverless, serverless_with_codec,
    sl_hierarchical,
};
