//! The Topology Abstraction Graph (TAG, Appendix D): the control plane's
//! description of aggregator-to-aggregator and aggregator-to-client
//! connectivity, with role metadata and channel metadata (including the
//! `groupBy` placement-affinity label used for locality-aware placement).

use lifl_types::{AggregatorId, AggregatorRole, NodeId};
use std::collections::HashMap;

/// A role (vertex) in the TAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Role {
    /// The aggregator playing this role.
    pub aggregator: AggregatorId,
    /// Its level in the hierarchy.
    pub role: AggregatorRole,
    /// The node the role is placed on.
    pub node: NodeId,
    /// The placement-affinity group label (`groupBy` attribute).
    pub group: String,
}

/// The communication mechanism of a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelKind {
    /// Intra-node shared memory.
    SharedMemory,
    /// Inter-node kernel networking through the gateways.
    KernelNetwork,
}

/// A channel (edge) in the TAG: a cross-level data dependency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Channel {
    /// The producing (lower-level) aggregator.
    pub from: AggregatorId,
    /// The consuming (higher-level) aggregator.
    pub to: AggregatorId,
    /// Communication mechanism.
    pub kind: ChannelKind,
}

/// The topology abstraction graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TopologyAbstractionGraph {
    roles: HashMap<AggregatorId, Role>,
    channels: Vec<Channel>,
}

impl TopologyAbstractionGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a role. Re-adding an aggregator replaces its previous role.
    pub fn add_role(&mut self, role: Role) {
        self.roles.insert(role.aggregator, role);
    }

    /// Adds a channel from `from` to `to`, deriving the channel kind from the
    /// placement of the two roles (same node → shared memory).
    ///
    /// Returns `None` (and adds nothing) when either endpoint is unknown.
    pub fn connect(&mut self, from: AggregatorId, to: AggregatorId) -> Option<ChannelKind> {
        let from_node = self.roles.get(&from)?.node;
        let to_node = self.roles.get(&to)?.node;
        let kind = if from_node == to_node {
            ChannelKind::SharedMemory
        } else {
            ChannelKind::KernelNetwork
        };
        self.channels.push(Channel { from, to, kind });
        Some(kind)
    }

    /// The role of an aggregator, if registered.
    pub fn role(&self, aggregator: AggregatorId) -> Option<&Role> {
        self.roles.get(&aggregator)
    }

    /// All channels.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// All roles.
    pub fn roles(&self) -> impl Iterator<Item = &Role> {
        self.roles.values()
    }

    /// Number of channels that cross node boundaries.
    pub fn inter_node_channels(&self) -> usize {
        self.channels
            .iter()
            .filter(|c| c.kind == ChannelKind::KernelNetwork)
            .count()
    }

    /// The downstream consumer of an aggregator, if connected.
    pub fn consumer_of(&self, aggregator: AggregatorId) -> Option<AggregatorId> {
        self.channels
            .iter()
            .find(|c| c.from == aggregator)
            .map(|c| c.to)
    }

    /// Aggregators grouped by their `groupBy` label.
    pub fn groups(&self) -> HashMap<String, Vec<AggregatorId>> {
        let mut groups: HashMap<String, Vec<AggregatorId>> = HashMap::new();
        for role in self.roles.values() {
            groups
                .entry(role.group.clone())
                .or_default()
                .push(role.aggregator);
        }
        for members in groups.values_mut() {
            members.sort();
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn role(agg: u64, node: u64, level: AggregatorRole) -> Role {
        Role {
            aggregator: AggregatorId::new(agg),
            role: level,
            node: NodeId::new(node),
            group: format!("node-{node}"),
        }
    }

    #[test]
    fn channel_kind_follows_placement() {
        let mut tag = TopologyAbstractionGraph::new();
        tag.add_role(role(1, 0, AggregatorRole::Leaf));
        tag.add_role(role(2, 0, AggregatorRole::Middle));
        tag.add_role(role(3, 1, AggregatorRole::Top));
        assert_eq!(
            tag.connect(AggregatorId::new(1), AggregatorId::new(2)),
            Some(ChannelKind::SharedMemory)
        );
        assert_eq!(
            tag.connect(AggregatorId::new(2), AggregatorId::new(3)),
            Some(ChannelKind::KernelNetwork)
        );
        assert_eq!(tag.inter_node_channels(), 1);
        assert_eq!(
            tag.consumer_of(AggregatorId::new(1)),
            Some(AggregatorId::new(2))
        );
        assert_eq!(tag.consumer_of(AggregatorId::new(3)), None);
    }

    #[test]
    fn unknown_endpoint_is_rejected() {
        let mut tag = TopologyAbstractionGraph::new();
        tag.add_role(role(1, 0, AggregatorRole::Leaf));
        assert_eq!(
            tag.connect(AggregatorId::new(1), AggregatorId::new(9)),
            None
        );
        assert!(tag.channels().is_empty());
    }

    #[test]
    fn groups_cluster_by_label() {
        let mut tag = TopologyAbstractionGraph::new();
        tag.add_role(role(1, 0, AggregatorRole::Leaf));
        tag.add_role(role(2, 0, AggregatorRole::Leaf));
        tag.add_role(role(3, 1, AggregatorRole::Leaf));
        let groups = tag.groups();
        assert_eq!(
            groups["node-0"],
            vec![AggregatorId::new(1), AggregatorId::new(2)]
        );
        assert_eq!(groups["node-1"], vec![AggregatorId::new(3)]);
        assert_eq!(tag.roles().count(), 3);
        assert!(tag.role(AggregatorId::new(2)).is_some());
    }
}
