//! Quickstart: aggregate a handful of client updates through LIFL's
//! shared-memory hierarchy and simulate one cluster-scale round.
//!
//! Run with: `cargo run -p lifl-examples --example quickstart`

use lifl_core::platform::{LiflPlatform, RoundSpec};
use lifl_core::runtime::{run_hierarchical, HierarchicalRunConfig};
use lifl_examples::demo_updates;
use lifl_types::{ClusterConfig, LiflConfig, ModelKind, SimTime};

fn main() {
    // 1. Real in-process aggregation over shared memory (Appendix G runtime).
    let updates = demo_updates(8, 64);
    let result = run_hierarchical(
        HierarchicalRunConfig {
            leaves: 4,
            updates_per_leaf: 2,
            aggregation_shards: 1,
        },
        &updates,
    )
    .expect("hierarchical aggregation");
    println!(
        "aggregated {} client updates ({} samples), ||w|| = {:.4}",
        updates.len(),
        result.samples,
        result.model.l2_norm()
    );

    // 2. Cluster-scale simulation of one LIFL round with 20 ResNet-152 updates.
    let mut platform = LiflPlatform::new(ClusterConfig::default(), LiflConfig::default());
    let arrivals: Vec<SimTime> = (0..20)
        .map(|i| SimTime::from_secs(i as f64 * 0.5))
        .collect();
    let report = platform.run_round(&RoundSpec::new(ModelKind::ResNet152, arrivals));
    println!(
        "simulated round: ACT = {:.1}s, CPU = {:.1}s, nodes used = {}, aggregators created = {}",
        report.metrics.aggregation_completion_time.as_secs(),
        report.metrics.cpu_time.as_secs(),
        report.metrics.nodes_used,
        report.metrics.aggregators_created
    );
}
