//! Simulated time.
//!
//! The discrete-event simulator measures time in seconds as `f64`. Two
//! newtypes keep instants and durations apart and provide saturating,
//! non-negative arithmetic so that simulation code never produces a negative
//! timestamp.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulated clock, in seconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SimTime(f64);

/// A span of simulated time in seconds. Always non-negative.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SimDuration(f64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates an instant from seconds. Negative values are clamped to zero.
    pub fn from_secs(secs: f64) -> Self {
        SimTime(secs.max(0.0))
    }

    /// Seconds since the simulation epoch.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Duration elapsed since `earlier`; zero if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration::from_secs((self.0 - earlier.0).max(0.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a duration from seconds. Negative values are clamped to zero.
    pub fn from_secs(secs: f64) -> Self {
        SimDuration(secs.max(0.0))
    }

    /// Creates a duration from milliseconds.
    pub fn from_millis(millis: f64) -> Self {
        Self::from_secs(millis / 1e3)
    }

    /// Duration in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Duration in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Duration in hours.
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// Scales the duration by a non-negative factor.
    pub fn scaled(self, factor: f64) -> SimDuration {
        SimDuration::from_secs(self.0 * factor.max(0.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}
impl Eq for SimDuration {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).unwrap_or(Ordering::Equal)
    }
}

impl PartialOrd for SimDuration {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimDuration {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).unwrap_or(Ordering::Equal)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration::from_secs(self.0 - rhs.0)
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_never_negative() {
        assert_eq!(SimTime::from_secs(-5.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn duration_since_saturates() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(3.0);
        assert_eq!(b.duration_since(a).as_secs(), 2.0);
        assert_eq!(a.duration_since(b), SimDuration::ZERO);
        assert_eq!(a - b, SimDuration::ZERO);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_secs(10.0) + SimDuration::from_secs(2.5);
        assert_eq!(t.as_secs(), 12.5);
        let d = SimDuration::from_millis(1500.0);
        assert_eq!(d.as_secs(), 1.5);
        assert_eq!(d.as_millis(), 1500.0);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_secs(3.0),
            SimTime::from_secs(1.0),
            SimTime::from_secs(2.0),
        ];
        v.sort();
        assert_eq!(v[0].as_secs(), 1.0);
        assert_eq!(v[2].as_secs(), 3.0);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1.0, 2.0, 3.5]
            .iter()
            .map(|s| SimDuration::from_secs(*s))
            .sum();
        assert!((total.as_secs() - 6.5).abs() < 1e-12);
        assert!((total.as_hours() - 6.5 / 3600.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_clamps_negative_factor() {
        let d = SimDuration::from_secs(2.0);
        assert_eq!(d.scaled(-1.0), SimDuration::ZERO);
        assert_eq!(d.scaled(2.0).as_secs(), 4.0);
    }
}
