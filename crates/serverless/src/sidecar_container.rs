//! Container-based sidecars: the per-function, always-on proxies that
//! serverless platforms attach to every function instance (§2.3).

use lifl_dataplane::sidecar::ContainerSidecarModel;
use lifl_types::{InstanceId, SimDuration};
use std::collections::HashSet;

/// Tracks the sidecars attached to a set of function instances and their
/// resource consumption.
#[derive(Debug, Clone, Default)]
pub struct SidecarFleet {
    model: ContainerSidecarModel,
    attached: HashSet<InstanceId>,
    messages_proxied: u64,
    proxy_cpu: SimDuration,
}

impl SidecarFleet {
    /// Creates an empty fleet with the given per-sidecar cost model.
    pub fn new(model: ContainerSidecarModel) -> Self {
        SidecarFleet {
            model,
            ..SidecarFleet::default()
        }
    }

    /// Attaches a sidecar to `instance` (done automatically at pod creation).
    pub fn attach(&mut self, instance: InstanceId) {
        self.attached.insert(instance);
    }

    /// Detaches the sidecar when the instance terminates.
    pub fn detach(&mut self, instance: InstanceId) {
        self.attached.remove(&instance);
    }

    /// Number of sidecars currently running.
    pub fn count(&self) -> usize {
        self.attached.len()
    }

    /// Records one message of `bytes` proxied through an instance's sidecar,
    /// returning the latency it added.
    pub fn proxy(&mut self, bytes: u64) -> SimDuration {
        self.messages_proxied += 1;
        self.proxy_cpu += self.model.cpu(bytes).to_duration(2.8);
        self.model.latency(bytes)
    }

    /// Total messages proxied.
    pub fn messages_proxied(&self) -> u64 {
        self.messages_proxied
    }

    /// CPU consumed by message proxying.
    pub fn proxy_cpu(&self) -> SimDuration {
        self.proxy_cpu
    }

    /// Always-on CPU consumed by the fleet over a wall-clock interval.
    pub fn idle_cpu(&self, wall: SimDuration) -> SimDuration {
        self.model.idle_cpu_time(wall).scaled(self.count() as f64)
    }

    /// Resident memory of the fleet, bytes.
    pub fn resident_memory(&self) -> u64 {
        self.model.resident_memory_bytes * self.count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_tracks_attachment_and_cost() {
        let mut fleet = SidecarFleet::new(ContainerSidecarModel::default());
        fleet.attach(InstanceId::new(1));
        fleet.attach(InstanceId::new(2));
        assert_eq!(fleet.count(), 2);
        assert!(fleet.resident_memory() > 0);
        let latency = fleet.proxy(44 * 1024 * 1024);
        assert!(latency.as_secs() > 0.0);
        assert_eq!(fleet.messages_proxied(), 1);
        assert!(fleet.proxy_cpu().as_secs() > 0.0);
        let idle_two = fleet.idle_cpu(SimDuration::from_secs(100.0));
        fleet.detach(InstanceId::new(2));
        let idle_one = fleet.idle_cpu(SimDuration::from_secs(100.0));
        assert!(idle_two > idle_one);
        assert_eq!(fleet.count(), 1);
    }
}
