//! Measures the orchestration overhead of LIFL's control plane (§6.1).
fn main() {
    let result = lifl_experiments::orchestration_overhead::run();
    println!(
        "{}",
        lifl_experiments::orchestration_overhead::format(&result)
    );
}
