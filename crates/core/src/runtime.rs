//! The in-process threaded runtime: real aggregation of real model parameters
//! through the shared-memory object store, exercised by examples, integration
//! tests and the data-plane micro-benchmarks.
//!
//! Each aggregator of a two-level hierarchy runs the step-based processing
//! model of Appendix G on its own thread; model updates are placed in shared
//! memory by the gateway and only 16-byte object keys travel between threads.

use crate::aggregator::AggregatorRuntime;
use crate::gateway::Gateway;
use lifl_fl::aggregate::ModelUpdate;
use lifl_fl::DenseModel;
use lifl_shmem::{InPlaceQueue, ObjectStore};
use lifl_types::{AggregatorId, AggregatorRole, ClientId, LiflError, NodeId, Result};

/// Configuration of an in-process hierarchical aggregation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchicalRunConfig {
    /// Number of leaf aggregators.
    pub leaves: usize,
    /// Updates expected per leaf (the leaf's aggregation goal).
    pub updates_per_leaf: usize,
}

impl Default for HierarchicalRunConfig {
    fn default() -> Self {
        HierarchicalRunConfig {
            leaves: 4,
            updates_per_leaf: 2,
        }
    }
}

/// Runs a complete two-level hierarchical aggregation over the given client
/// updates using real threads and shared memory, returning the global model.
///
/// The updates are distributed to leaves round-robin; each leaf aggregates its
/// share eagerly, sends its intermediate to the top aggregator, and the top
/// produces the global model once every leaf has reported.
///
/// # Errors
/// Fails if `updates` does not evenly cover `leaves * updates_per_leaf`, or on
/// any store/aggregation error.
pub fn run_hierarchical(
    config: HierarchicalRunConfig,
    updates: &[ModelUpdate],
) -> Result<ModelUpdate> {
    let expected = config.leaves * config.updates_per_leaf;
    if config.leaves == 0 || updates.len() != expected {
        return Err(LiflError::InvalidConfig(format!(
            "expected {} updates ({} leaves x {}), got {}",
            expected,
            config.leaves,
            config.updates_per_leaf,
            updates.len()
        )));
    }
    let store = ObjectStore::new();
    let node = NodeId::new(0);
    let mut gateway = Gateway::new(node, store.clone());

    // Top aggregator consumes one intermediate per leaf.
    let top_inbox = InPlaceQueue::new();
    let mut top = AggregatorRuntime::new(
        AggregatorId::new(1000),
        AggregatorRole::Top,
        config.leaves as u64,
        store.clone(),
        top_inbox.clone(),
    )?;

    // Spawn leaf threads.
    let mut handles = Vec::new();
    for leaf_idx in 0..config.leaves {
        let inbox = gateway.register_aggregator(AggregatorId::new(leaf_idx as u64));
        // Queue this leaf's share of updates through the gateway.
        for (k, update) in updates
            .iter()
            .enumerate()
            .filter(|(k, _)| k % config.leaves == leaf_idx)
        {
            let client = update.client.unwrap_or(ClientId::new(k as u64));
            gateway.ingest_client_update(
                client,
                AggregatorId::new(leaf_idx as u64),
                update.model.as_slice(),
                update.samples,
            )?;
        }
        let store = store.clone();
        let top_inbox = top_inbox.clone();
        let goal = config.updates_per_leaf as u64;
        let handle = std::thread::spawn(move || -> Result<()> {
            let mut leaf = AggregatorRuntime::new(
                AggregatorId::new(leaf_idx as u64),
                AggregatorRole::Leaf,
                goal,
                store,
                inbox,
            )?;
            let intermediate = leaf.run_to_completion()?;
            top_inbox.enqueue(intermediate);
            Ok(())
        });
        handles.push(handle);
    }
    for handle in handles {
        handle
            .join()
            .map_err(|_| LiflError::Simulation("leaf thread panicked".to_string()))??;
    }

    let result = top.run_to_completion()?;
    let object = store.get(&result.key)?;
    Ok(ModelUpdate::intermediate(
        DenseModel::from_vec(object.as_f32_vec()),
        result.weight,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifl_fl::aggregate::fedavg;

    fn updates(n: usize, dim: usize) -> Vec<ModelUpdate> {
        (0..n)
            .map(|i| {
                let values: Vec<f32> = (0..dim).map(|d| (i * dim + d) as f32 * 0.1).collect();
                ModelUpdate::from_client(
                    ClientId::new(i as u64),
                    DenseModel::from_vec(values),
                    (i + 1) as u64,
                )
            })
            .collect()
    }

    #[test]
    fn threaded_hierarchy_matches_flat_fedavg() {
        let updates = updates(8, 16);
        let config = HierarchicalRunConfig {
            leaves: 4,
            updates_per_leaf: 2,
        };
        let hierarchical = run_hierarchical(config, &updates).unwrap();
        let flat = fedavg(&updates).unwrap();
        assert_eq!(hierarchical.samples, flat.samples);
        for (a, b) in hierarchical
            .model
            .as_slice()
            .iter()
            .zip(flat.model.as_slice())
        {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn mismatched_update_count_is_rejected() {
        let updates = updates(5, 4);
        let config = HierarchicalRunConfig {
            leaves: 4,
            updates_per_leaf: 2,
        };
        assert!(run_hierarchical(config, &updates).is_err());
        assert!(run_hierarchical(
            HierarchicalRunConfig {
                leaves: 0,
                updates_per_leaf: 2
            },
            &[]
        )
        .is_err());
    }

    #[test]
    fn single_leaf_degenerates_to_flat() {
        let updates = updates(3, 8);
        let config = HierarchicalRunConfig {
            leaves: 1,
            updates_per_leaf: 3,
        };
        let result = run_hierarchical(config, &updates).unwrap();
        let flat = fedavg(&updates).unwrap();
        for (a, b) in result.model.as_slice().iter().zip(flat.model.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
    }
}
