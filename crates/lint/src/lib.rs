//! # lifl-lint
//!
//! Workspace static analysis that machine-enforces the repo's load-bearing
//! invariants. PR 8 relaxed `forbid(unsafe_code)` to land AVX2 kernels, and
//! since then the safety story (unsafe confined to `crates/fl/src/kernels/`),
//! the kernel-arm parity story (scalar and AVX2 arms never drift), and the
//! determinism story (bit-exact folds across backends) were enforced only by
//! convention and review. This crate checks them as named, individually
//! testable rules on every commit:
//!
//! | rule | name                | invariant                                               |
//! |------|---------------------|---------------------------------------------------------|
//! | R1   | `unsafe`            | `unsafe` only under `crates/fl/src/kernels/`; every crate root carries `#![forbid(unsafe_code)]` or `#![deny(unsafe_code)]` |
//! | R2   | `safety-comment`    | every `unsafe fn` / `unsafe {` / `unsafe impl` is immediately preceded by a `// SAFETY:` comment |
//! | R3   | `kernel-parity`     | every public fn in `kernels/scalar.rs` has a matching-signature AVX2 counterpart and a dispatch site in `kernels/mod.rs` |
//! | R4   | `panic`             | no `unwrap()`/`expect(`/`panic!`/`todo!`/`unimplemented!` in non-test code of the hot-path crates |
//! | R5   | `determinism`       | no `HashMap`/`HashSet`, `Instant::now` or `SystemTime` in the fold/aggregation modules |
//! | R6   | `no-legacy-runtime` | the legacy runtime deleted in PR 6 stays deleted        |
//! | R7   | `ci-sync`           | the justfile `ci` recipe and `.github/workflows/ci.yml` run the same commands |
//!
//! Diagnostics are machine readable (`file:line: rule-id: message`) and the
//! binary exits nonzero on any finding. A site with a genuine reason to break
//! a rule opts out inline with `// lifl-lint: allow(<rule>) — <justification>`
//! (or `allow-file(<rule>)` for a whole file); a marker without a
//! justification is itself a finding.
//!
//! There is no `syn` offline, so the rules run over a real token-level lexer
//! ([`lexer`]) that understands comments, strings, raw strings and nesting —
//! a `"unsafe"` inside a string literal is never a finding, and an `unwrap()`
//! inside a doc comment is never code.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod lexer;
pub mod rules;
pub mod source;
pub mod sync;

use source::SourceFile;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The rules `lifl-lint` enforces, plus the pseudo-rule for malformed allow
/// markers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1: `unsafe` containment.
    UnsafeContainment,
    /// R2: `// SAFETY:` comments on every unsafe site.
    SafetyComment,
    /// R3: scalar/AVX2 kernel-arm parity.
    KernelParity,
    /// R4: panic freedom on the hot-path crates.
    Panic,
    /// R5: determinism of the fold/aggregation modules.
    Determinism,
    /// R6: the legacy runtime stays deleted.
    LegacyRuntime,
    /// R7: justfile ↔ ci.yml command sync.
    CiSync,
    /// Malformed `lifl-lint: allow(...)` markers (not individually runnable).
    Marker,
}

impl Rule {
    /// Every enforceable rule, in catalog order.
    pub const ALL: [Rule; 7] = [
        Rule::UnsafeContainment,
        Rule::SafetyComment,
        Rule::KernelParity,
        Rule::Panic,
        Rule::Determinism,
        Rule::LegacyRuntime,
        Rule::CiSync,
    ];

    /// Stable diagnostic identifier, e.g. `R4-panic`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::UnsafeContainment => "R1-unsafe",
            Rule::SafetyComment => "R2-safety-comment",
            Rule::KernelParity => "R3-kernel-parity",
            Rule::Panic => "R4-panic",
            Rule::Determinism => "R5-determinism",
            Rule::LegacyRuntime => "R6-no-legacy-runtime",
            Rule::CiSync => "R7-ci-sync",
            Rule::Marker => "allow-marker",
        }
    }

    /// Short name accepted in allow markers and `--rules`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnsafeContainment => "unsafe",
            Rule::SafetyComment => "safety-comment",
            Rule::KernelParity => "kernel-parity",
            Rule::Panic => "panic",
            Rule::Determinism => "determinism",
            Rule::LegacyRuntime => "no-legacy-runtime",
            Rule::CiSync => "ci-sync",
            Rule::Marker => "allow-marker",
        }
    }

    /// Code (`R1`..`R7`) of an enforceable rule.
    pub fn code(self) -> &'static str {
        match self {
            Rule::UnsafeContainment => "R1",
            Rule::SafetyComment => "R2",
            Rule::KernelParity => "R3",
            Rule::Panic => "R4",
            Rule::Determinism => "R5",
            Rule::LegacyRuntime => "R6",
            Rule::CiSync => "R7",
            Rule::Marker => "allow-marker",
        }
    }

    /// Resolves a marker/CLI rule spelling: short name, `R<k>` code, or the
    /// full diagnostic id.
    pub fn from_marker_name(raw: &str) -> Option<Rule> {
        Rule::ALL
            .into_iter()
            .find(|r| raw == r.name() || raw == r.code() || raw == r.id())
    }

    /// One-line human catalog of the rule names, for diagnostics.
    pub fn catalog() -> String {
        Rule::ALL
            .iter()
            .map(|r| format!("{}={}", r.code(), r.name()))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// One diagnostic: where, which rule, and what is wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path relative to the workspace root, forward slashes.
    pub file: String,
    /// 1-based line number the finding anchors to.
    pub line: u32,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable description including the suggested fix.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// Result of a lint run.
pub struct Report {
    /// Surviving findings (allow-marker suppression already applied), sorted
    /// by file, line, rule.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// When R7 ran clean, the number of commands the justfile and ci.yml
    /// agree on (the old `check_ci_sync.sh` reported this count).
    pub ci_sync_commands: Option<usize>,
}

/// Directories under the workspace root that are scanned for `.rs` sources.
/// `vendor/` is exempt by design: the shims stand in for external crates and
/// are replaced wholesale if crates.io access ever exists.
const SCAN_ROOTS: [&str; 3] = ["crates", "tests", "examples"];

/// The lint's own fixture corpus: full of deliberate violations, never
/// scanned as part of the live workspace.
const FIXTURES_DIR: &str = "crates/lint/tests/fixtures";

fn walk_rs(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let rel = rel_path(&path, root);
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == ".git" || rel == FIXTURES_DIR {
                continue;
            }
            walk_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(path: &Path, root: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Loads every scanned source file under `root`, sorted by relative path.
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    for sub in SCAN_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            walk_rs(&dir, root, &mut paths)?;
        }
    }
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let text = fs::read_to_string(&path)?;
        files.push(SourceFile::new(rel_path(&path, root), &text));
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

/// Runs the selected rules over the workspace at `root` and returns the
/// surviving findings. Marker diagnostics (unknown rule, missing
/// justification) are always included and never suppressible.
pub fn run(root: &Path, selected: &[Rule]) -> io::Result<Report> {
    let files = load_workspace(root)?;
    let mut findings: Vec<Finding> = Vec::new();
    for f in &files {
        findings.extend(f.marker_findings());
    }
    let mut ci_sync_commands = None;
    for rule in selected {
        match rule {
            Rule::UnsafeContainment => findings.extend(rules::unsafe_containment(&files)),
            Rule::SafetyComment => findings.extend(rules::safety_comments(&files)),
            Rule::KernelParity => findings.extend(rules::kernel_parity(&files)),
            Rule::Panic => findings.extend(rules::panic_freedom(&files)),
            Rule::Determinism => findings.extend(rules::determinism(&files)),
            Rule::LegacyRuntime => findings.extend(rules::legacy_runtime(root, &files)),
            Rule::CiSync => {
                let (sync_findings, count) = sync::ci_sync(root);
                findings.extend(sync_findings);
                ci_sync_commands = count;
            }
            Rule::Marker => {}
        }
    }
    // Apply allow-marker suppression (markers themselves are never
    // suppressible).
    findings.retain(|fi| {
        fi.rule == Rule::Marker
            || !files
                .iter()
                .any(|f| f.rel == fi.file && f.allowed(fi.rule, fi.line))
    });
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(Report {
        findings,
        files_scanned: files.len(),
        ci_sync_commands,
    })
}

/// Finds the workspace root by walking up from `start` until a `Cargo.toml`
/// containing a `[workspace]` table is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
