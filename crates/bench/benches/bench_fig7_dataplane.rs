//! Fig. 7(a,b): single intra-node model-update transfer under each data plane.
use criterion::{criterion_group, criterion_main, Criterion};
use lifl_dataplane::{CostModel, DataPlaneKind};
use lifl_types::ModelKind;

fn bench(c: &mut Criterion) {
    let cost = CostModel::paper_calibrated();
    let mut group = c.benchmark_group("fig7_dataplane");
    group.sample_size(20);
    for model in ModelKind::paper_models() {
        for (label, plane) in [
            ("LIFL", DataPlaneKind::LiflSharedMemory),
            ("SF", DataPlaneKind::ServerfulGrpc),
            ("SL", DataPlaneKind::ServerlessBrokerSidecar),
        ] {
            let t = cost.intra_node_transfer(plane, model.update_bytes());
            println!(
                "fig7 {label} {model}: latency {:.2}s cpu {:.2}G",
                t.latency.as_secs(),
                t.cpu.as_giga()
            );
            group.bench_function(format!("{label}/{model}"), |b| {
                b.iter(|| {
                    cost.intra_node_transfer(plane, std::hint::black_box(model.update_bytes()))
                })
            });
        }
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
