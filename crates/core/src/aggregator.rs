//! The LIFL aggregator runtime: the step-based Recv → Agg → Send processing
//! model of Appendix G, operating on object keys in shared memory.

use lifl_fl::codec::{EncodedView, UpdateCodec};
use lifl_fl::robust::PolicyFold;
use lifl_shmem::queue::QueuedUpdate;
use lifl_shmem::{InPlaceQueue, ObjectStore, SharedObject};
use lifl_types::{AggregatorId, AggregatorRole, FoldPolicy, LiflError, Result, Topology};

/// The step the runtime is currently in (Appendix G, Fig. 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregatorStep {
    /// Waiting to receive / dequeue the next model update.
    Recv,
    /// Folding a dequeued update into the running aggregate.
    Agg,
    /// Publishing the aggregated update to the designated consumer.
    Send,
}

/// A single stateless aggregator runtime.
///
/// The runtime is "homogenised" (§5.3): the same struct serves as leaf, middle
/// or top aggregator — only its `role` and aggregation goal differ, so a warm
/// instance can be promoted without restarting.
#[derive(Debug)]
pub struct AggregatorRuntime {
    id: AggregatorId,
    role: AggregatorRole,
    goal: u64,
    store: ObjectStore,
    inbox: InPlaceQueue,
    accumulator: PolicyFold,
    step: AggregatorStep,
    aggregated: u64,
    /// When set (and lossy), outgoing intermediates are re-encoded with this
    /// codec and stored compressed (the decode-fold-encode interior path).
    codec: Option<UpdateCodec>,
    /// Parameter-vector partitions for batch folding (1 = sequential).
    shards: usize,
}

impl AggregatorRuntime {
    /// Creates a runtime with the given aggregation goal (§2.1), reading
    /// updates from `inbox` and payloads from `store`.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidAggregationGoal`] if `goal` is zero.
    pub fn new(
        id: AggregatorId,
        role: AggregatorRole,
        goal: u64,
        store: ObjectStore,
        inbox: InPlaceQueue,
    ) -> Result<Self> {
        if goal == 0 {
            return Err(LiflError::InvalidAggregationGoal(0));
        }
        Ok(AggregatorRuntime {
            id,
            role,
            goal,
            store,
            inbox,
            accumulator: PolicyFold::default(),
            step: AggregatorStep::Recv,
            aggregated: 0,
            codec: None,
            shards: 1,
        })
    }

    /// Creates a runtime whose outgoing intermediates travel through `codec`.
    /// Incoming updates are decoded from whatever representation their queue
    /// entry declares, so mixed (dense + encoded) inboxes are fine.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidAggregationGoal`] if `goal` is zero.
    pub fn with_codec(
        id: AggregatorId,
        role: AggregatorRole,
        goal: u64,
        store: ObjectStore,
        inbox: InPlaceQueue,
        codec: UpdateCodec,
    ) -> Result<Self> {
        let mut runtime = Self::new(id, role, goal, store, inbox)?;
        runtime.codec = Some(codec);
        Ok(runtime)
    }

    /// Creates the runtime serving position (`level`, `index`) of an N-level
    /// [`Topology`] tree: the role (level 0 = leaf, last level = top,
    /// anything between = middle), the aggregation goal (the level's fan-in)
    /// and the aggregator identity all derive from the tree position, so a
    /// session can instantiate any tree without per-shape wiring code.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidConfig`] if the position lies outside the
    /// topology.
    pub fn for_level(
        topology: &Topology,
        level: usize,
        index: usize,
        store: ObjectStore,
        inbox: InPlaceQueue,
        codec: UpdateCodec,
    ) -> Result<Self> {
        if level >= topology.levels() || index >= topology.width(level) {
            return Err(LiflError::InvalidConfig(format!(
                "aggregator position (level {level}, index {index}) outside {topology}"
            )));
        }
        let role = if level + 1 == topology.levels() {
            AggregatorRole::Top
        } else if level == 0 {
            AggregatorRole::Leaf
        } else {
            AggregatorRole::Middle
        };
        let id = position_id(level, index);
        Self::with_codec(id, role, topology.fan_in(level) as u64, store, inbox, codec)
    }

    /// Sets the number of parameter-vector shards batch drains fold across
    /// (`LiflConfig.aggregation_shards`; clamped to at least 1). With more
    /// than one shard, [`AggregatorRuntime::run_to_completion`] drains the
    /// inbox in batches through the sharded cache-blocked fold instead of
    /// polling one update at a time.
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = shards.max(1);
    }

    /// The configured shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Sets the fold policy this runtime aggregates with
    /// (`LiflConfig.fold_policy`). [`FoldPolicy::FedAvg`] keeps the seed's
    /// eager constant-memory fold bit-exactly; robust policies buffer the
    /// round and compute a coordinate-wise statistic at send time.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidConfig`] for invalid policy parameters or
    /// when updates have already been folded into the current round.
    pub fn set_policy(&mut self, policy: FoldPolicy) -> Result<()> {
        if self.accumulator.updates_folded() > 0 {
            return Err(LiflError::InvalidConfig(
                "cannot change fold policy mid-round".to_string(),
            ));
        }
        self.accumulator = PolicyFold::new(policy)?;
        Ok(())
    }

    /// The fold policy in use.
    pub fn policy(&self) -> FoldPolicy {
        self.accumulator.policy()
    }

    /// The aggregator's identity.
    pub fn id(&self) -> AggregatorId {
        self.id
    }

    /// The current role.
    pub fn role(&self) -> AggregatorRole {
        self.role
    }

    /// Promotes the runtime to a higher role (opportunistic reuse, §5.3),
    /// optionally adopting a new aggregation goal. The runtime is stateless
    /// between rounds, so no other change is required.
    pub fn promote(&mut self, new_goal: u64) -> Result<()> {
        let Some(next) = self.role.promoted() else {
            return Err(LiflError::InvalidConfig(
                "top aggregator cannot be promoted further".to_string(),
            ));
        };
        if new_goal == 0 {
            return Err(LiflError::InvalidAggregationGoal(0));
        }
        self.role = next;
        self.goal = new_goal;
        self.accumulator = PolicyFold::new(self.accumulator.policy())?;
        self.aggregated = 0;
        self.step = AggregatorStep::Recv;
        Ok(())
    }

    /// The step the runtime is in.
    pub fn step(&self) -> AggregatorStep {
        self.step
    }

    /// Updates aggregated so far toward the goal.
    pub fn aggregated(&self) -> u64 {
        self.aggregated
    }

    /// Whether the aggregation goal has been met.
    pub fn goal_met(&self) -> bool {
        self.aggregated >= self.goal
    }

    /// Runs one Recv+Agg step: dequeues the next key (if any) and folds the
    /// referenced update into the accumulator. Returns `true` if an update was
    /// processed (eager aggregation processes updates one at a time, §5.4).
    ///
    /// # Errors
    /// Propagates object-store and dimension errors.
    pub fn poll(&mut self) -> Result<bool> {
        let Some(queued) = self.inbox.dequeue() else {
            self.step = AggregatorStep::Recv;
            return Ok(false);
        };
        self.step = AggregatorStep::Agg;
        let object = self.store.get(&queued.key)?;
        // Fused decode-fold straight off the shared-memory bytes: no
        // intermediate `DenseModel` (or payload copy) is materialised.
        self.accumulator
            .fold_encoded_view(&payload_view(&object, &queued)?, queued.weight)?;
        self.aggregated += 1;
        if self.goal_met() {
            self.step = AggregatorStep::Send;
        } else {
            self.step = AggregatorStep::Recv;
        }
        Ok(true)
    }

    /// Drains queued updates up to the aggregation goal in one batch, folding
    /// the batch across the configured shard partitions (cache-blocked,
    /// parallel when `shards > 1`). Returns the number of updates folded.
    ///
    /// The result is bit-identical to polling the same updates one at a time:
    /// the sharded fold applies updates in queue order within every element,
    /// and — like the eager poll loop — updates beyond the goal stay queued.
    ///
    /// # Errors
    /// Propagates object-store, codec-parse and dimension errors. On failure
    /// nothing is folded; every drained update except a corrupt one (which is
    /// dropped, exactly as a failed [`AggregatorRuntime::poll`] drops it) is
    /// re-enqueued in order.
    pub fn drain_batch(&mut self) -> Result<usize> {
        let remaining = self.goal.saturating_sub(self.aggregated) as usize;
        let mut queued = Vec::with_capacity(remaining);
        while queued.len() < remaining {
            match self.inbox.dequeue() {
                Some(entry) => queued.push(entry),
                None => break,
            }
        }
        if queued.is_empty() {
            self.step = AggregatorStep::Recv;
            return Ok(0);
        }
        self.step = AggregatorStep::Agg;
        match self.fold_drained(&queued) {
            Ok(folded) => {
                self.aggregated += folded as u64;
                if self.goal_met() {
                    self.step = AggregatorStep::Send;
                } else {
                    self.step = AggregatorStep::Recv;
                }
                Ok(folded)
            }
            Err((corrupt, error)) => {
                for (i, entry) in queued.into_iter().enumerate() {
                    if Some(i) != corrupt {
                        self.inbox.enqueue(entry);
                    }
                }
                self.step = AggregatorStep::Recv;
                Err(error)
            }
        }
    }

    /// Folds a drained batch all-or-nothing; on failure reports which entry
    /// (if any single one) was at fault so the caller can drop just it.
    fn fold_drained(
        &mut self,
        queued: &[QueuedUpdate],
    ) -> std::result::Result<usize, (Option<usize>, LiflError)> {
        let mut objects = Vec::with_capacity(queued.len());
        for (i, entry) in queued.iter().enumerate() {
            objects.push(self.store.get(&entry.key).map_err(|e| (Some(i), e))?);
        }
        let mut views = Vec::with_capacity(queued.len());
        for (i, (object, entry)) in objects.iter().zip(queued).enumerate() {
            views.push((
                payload_view(object, entry).map_err(|e| (Some(i), e))?,
                entry.weight,
            ));
        }
        self.accumulator
            .fold_encoded_batch(&views, self.shards)
            .map_err(|e| (None, e))?;
        Ok(views.len())
    }

    /// Runs the Send step: finalises the aggregate, writes it into shared
    /// memory and returns the queue entry to hand to the consumer.
    ///
    /// # Errors
    /// Returns an error if the goal has not been met or the store is full.
    pub fn send(&mut self) -> Result<QueuedUpdate> {
        if !self.goal_met() {
            return Err(LiflError::InvalidAggregationGoal(self.aggregated));
        }
        let result = self.accumulator.finalize()?;
        let queued = match &mut self.codec {
            Some(codec) if !codec.kind().is_lossless() => {
                let encoded = codec.encode(&result.model);
                let key = self
                    .store
                    .put_encoded(encoded.to_bytes(), encoded.dense_bytes())?;
                QueuedUpdate::intermediate(key, result.samples).encoded()
            }
            _ => {
                let key = self.store.put_f32(result.model.as_slice())?;
                QueuedUpdate::intermediate(key, result.samples)
            }
        };
        self.aggregated = 0;
        self.step = AggregatorStep::Recv;
        Ok(queued)
    }

    /// Drives the runtime until the goal is met and the result is sent
    /// (a convenience for tests and the in-process runtime; lazy aggregation
    /// simply calls this after all inputs are queued).
    ///
    /// # Errors
    /// Propagates the errors of [`AggregatorRuntime::poll`] and [`AggregatorRuntime::send`].
    pub fn run_to_completion(&mut self) -> Result<QueuedUpdate> {
        while !self.goal_met() {
            let progressed = if self.shards > 1 {
                self.drain_batch()? > 0
            } else {
                self.poll()?
            };
            if !progressed {
                return Err(LiflError::Simulation(format!(
                    "aggregator {} starved: {}/{} updates received",
                    self.id, self.aggregated, self.goal
                )));
            }
        }
        self.send()
    }
}

/// The aggregator identity at position (`level`, `index`) of a topology tree
/// — the one packing shared by [`AggregatorRuntime::for_level`] and the
/// session's gateway inbox registration, so routing ids always match
/// aggregator identities.
pub(crate) fn position_id(level: usize, index: usize) -> AggregatorId {
    AggregatorId::new(((level as u64) << 32) | index as u64)
}

/// A zero-copy fused-fold view over a queued payload: encoded payloads parse
/// their self-describing header in place; dense payloads fold through the
/// bit-exact `Identity` kernel.
fn payload_view<'a>(object: &'a SharedObject, queued: &QueuedUpdate) -> Result<EncodedView<'a>> {
    if queued.encoded {
        EncodedView::parse(object.as_slice())
    } else {
        Ok(EncodedView::identity_over(object.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifl_types::ClientId;

    fn queue_client_update(
        store: &ObjectStore,
        inbox: &InPlaceQueue,
        client: u64,
        values: &[f32],
        samples: u64,
    ) {
        let key = store.put_f32(values).unwrap();
        let mut q = QueuedUpdate::from_client(ClientId::new(client), key);
        q.weight = samples;
        inbox.enqueue(q);
    }

    #[test]
    fn aggregates_to_goal_and_sends() {
        let store = ObjectStore::new();
        let inbox = InPlaceQueue::new();
        let mut agg = AggregatorRuntime::new(
            AggregatorId::new(1),
            AggregatorRole::Leaf,
            2,
            store.clone(),
            inbox.clone(),
        )
        .unwrap();
        assert_eq!(agg.step(), AggregatorStep::Recv);
        queue_client_update(&store, &inbox, 1, &[2.0, 4.0], 1);
        queue_client_update(&store, &inbox, 2, &[4.0, 8.0], 3);
        assert!(agg.poll().unwrap());
        assert_eq!(agg.step(), AggregatorStep::Recv);
        assert!(agg.poll().unwrap());
        assert_eq!(agg.step(), AggregatorStep::Send);
        let out = agg.send().unwrap();
        assert_eq!(out.weight, 4);
        let result = store.get(&out.key).unwrap().as_f32_vec();
        assert!((result[0] - 3.5).abs() < 1e-6);
        assert!((result[1] - 7.0).abs() < 1e-6);
    }

    #[test]
    fn poll_without_updates_returns_false() {
        let store = ObjectStore::new();
        let inbox = InPlaceQueue::new();
        let mut agg =
            AggregatorRuntime::new(AggregatorId::new(1), AggregatorRole::Leaf, 1, store, inbox)
                .unwrap();
        assert!(!agg.poll().unwrap());
        assert!(agg.send().is_err());
        assert!(agg.run_to_completion().is_err());
    }

    #[test]
    fn promotion_resets_state() {
        let store = ObjectStore::new();
        let inbox = InPlaceQueue::new();
        let mut agg = AggregatorRuntime::new(
            AggregatorId::new(1),
            AggregatorRole::Leaf,
            1,
            store.clone(),
            inbox.clone(),
        )
        .unwrap();
        queue_client_update(&store, &inbox, 1, &[1.0], 1);
        agg.run_to_completion().unwrap();
        agg.promote(3).unwrap();
        assert_eq!(agg.role(), AggregatorRole::Middle);
        assert_eq!(agg.aggregated(), 0);
        agg.promote(2).unwrap();
        assert_eq!(agg.role(), AggregatorRole::Top);
        assert!(agg.promote(2).is_err());
        assert!(agg.promote(0).is_err());
    }

    #[test]
    fn for_level_derives_role_goal_and_identity_from_topology() {
        use lifl_types::CodecKind;

        let topology = Topology::new(vec![2, 3, 4]).unwrap();
        let make = |level: usize, index: usize| {
            AggregatorRuntime::for_level(
                &topology,
                level,
                index,
                ObjectStore::new(),
                InPlaceQueue::new(),
                UpdateCodec::new(CodecKind::Identity),
            )
        };
        let leaf = make(0, 11).unwrap();
        assert_eq!(leaf.role(), AggregatorRole::Leaf);
        assert_eq!(leaf.id(), AggregatorId::new(11));
        let middle = make(1, 3).unwrap();
        assert_eq!(middle.role(), AggregatorRole::Middle);
        assert_eq!(middle.id(), AggregatorId::new((1 << 32) | 3));
        let top = make(2, 0).unwrap();
        assert_eq!(top.role(), AggregatorRole::Top);
        // Positions outside the tree are rejected.
        assert!(make(0, 12).is_err());
        assert!(make(1, 4).is_err());
        assert!(make(3, 0).is_err());
    }

    #[test]
    fn codec_runtime_decodes_folds_and_reencodes() {
        use lifl_fl::DenseModel;
        use lifl_types::CodecKind;

        let store = ObjectStore::new();
        let inbox = InPlaceQueue::new();
        let mut agg = AggregatorRuntime::with_codec(
            AggregatorId::new(1),
            AggregatorRole::Leaf,
            2,
            store.clone(),
            inbox.clone(),
            UpdateCodec::new(CodecKind::Uniform8),
        )
        .unwrap();
        // Client updates arrive already encoded (as the gateway stores them);
        // 64 dims so the 16-byte wire header is amortised and bytes shrink.
        let mut client_codec = UpdateCodec::new(CodecKind::Uniform8);
        for (i, base) in [2.0f32, 4.0].iter().enumerate() {
            let values: Vec<f32> = (0..64).map(|d| base * (1.0 + d as f32 / 32.0)).collect();
            let encoded = client_codec.encode(&DenseModel::from_vec(values));
            let key = store
                .put_encoded(encoded.to_bytes(), encoded.dense_bytes())
                .unwrap();
            let mut q = QueuedUpdate::from_client(ClientId::new(i as u64), key).encoded();
            q.weight = 1 + 2 * i as u64;
            inbox.enqueue(q);
        }
        agg.poll().unwrap();
        agg.poll().unwrap();
        let out = agg.send().unwrap();
        assert!(out.encoded, "interior output must stay compressed");
        assert_eq!(out.weight, 4);
        let object = store.get(&out.key).unwrap();
        let decoded = EncodedView::parse(object.as_slice()).unwrap().decode();
        // Weighted mean is 3.5 * (1 + d/32), within quantization error.
        assert!((decoded.as_slice()[0] - 3.5).abs() < 0.3);
        assert!((decoded.as_slice()[63] - 3.5 * (1.0 + 63.0 / 32.0)).abs() < 0.3);
        // The store really held compressed payloads.
        assert!(store.stats().encoded_puts >= 3);
        assert!(store.stats().bytes_saved() > 0);
    }

    #[test]
    fn drain_batch_is_bit_identical_to_eager_polling() {
        let dim = 9000;
        let values = |i: usize| -> Vec<f32> {
            (0..dim)
                .map(|d| ((i * 13 + d) % 59) as f32 * 0.03)
                .collect()
        };
        let run = |shards: usize| -> Vec<f32> {
            let store = ObjectStore::new();
            let inbox = InPlaceQueue::new();
            let mut agg = AggregatorRuntime::new(
                AggregatorId::new(1),
                AggregatorRole::Leaf,
                4,
                store.clone(),
                inbox.clone(),
            )
            .unwrap();
            agg.set_shards(shards);
            assert_eq!(agg.shards(), shards);
            for i in 0..4 {
                queue_client_update(&store, &inbox, i as u64, &values(i), i as u64 + 1);
            }
            let out = agg.run_to_completion().unwrap();
            store.get(&out.key).unwrap().as_f32_vec()
        };
        let eager = run(1);
        for shards in [2usize, 4] {
            let batched = run(shards);
            for (a, b) in eager.iter().zip(&batched) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{shards}-shard drain diverged: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn drain_batch_stops_at_the_goal_like_eager_polling() {
        let store = ObjectStore::new();
        let inbox = InPlaceQueue::new();
        let mut agg = AggregatorRuntime::new(
            AggregatorId::new(1),
            AggregatorRole::Leaf,
            2,
            store.clone(),
            inbox.clone(),
        )
        .unwrap();
        agg.set_shards(4);
        for i in 0..5u64 {
            queue_client_update(&store, &inbox, i, &[i as f32, 1.0], 1);
        }
        assert_eq!(agg.drain_batch().unwrap(), 2);
        assert_eq!(agg.step(), AggregatorStep::Send);
        // The three updates beyond the goal survive for the next round.
        assert_eq!(inbox.len(), 3);
        let out = agg.send().unwrap();
        let result = store.get(&out.key).unwrap().as_f32_vec();
        assert!((result[0] - 0.5).abs() < 1e-6, "folded first two only");
        assert_eq!(agg.drain_batch().unwrap(), 2);
        assert_eq!(inbox.len(), 1);
    }

    #[test]
    fn drain_batch_requeues_valid_updates_around_a_corrupt_one() {
        let store = ObjectStore::new();
        let inbox = InPlaceQueue::new();
        let mut agg = AggregatorRuntime::new(
            AggregatorId::new(1),
            AggregatorRole::Leaf,
            3,
            store.clone(),
            inbox.clone(),
        )
        .unwrap();
        agg.set_shards(2);
        queue_client_update(&store, &inbox, 0, &[1.0, 2.0], 1);
        let corrupt = store.put(vec![1u8, 2, 3]).unwrap();
        inbox.enqueue(QueuedUpdate::from_client(ClientId::new(1), corrupt).encoded());
        queue_client_update(&store, &inbox, 2, &[3.0, 4.0], 1);
        assert!(matches!(agg.drain_batch(), Err(LiflError::Codec(_))));
        // Nothing was folded; the two valid updates went back in order.
        assert_eq!(agg.aggregated(), 0);
        assert_eq!(inbox.len(), 2);
        assert_eq!(inbox.dequeue().unwrap().producer, Some(ClientId::new(0)));
        assert_eq!(inbox.dequeue().unwrap().producer, Some(ClientId::new(2)));
    }

    #[test]
    fn drain_batch_on_empty_inbox_reports_starvation() {
        let mut agg = AggregatorRuntime::new(
            AggregatorId::new(1),
            AggregatorRole::Leaf,
            1,
            ObjectStore::new(),
            InPlaceQueue::new(),
        )
        .unwrap();
        agg.set_shards(4);
        assert_eq!(agg.drain_batch().unwrap(), 0);
        assert!(agg.run_to_completion().is_err());
    }

    #[test]
    fn corrupt_encoded_payload_is_an_error() {
        let store = ObjectStore::new();
        let inbox = InPlaceQueue::new();
        let mut agg = AggregatorRuntime::new(
            AggregatorId::new(1),
            AggregatorRole::Leaf,
            1,
            store.clone(),
            inbox.clone(),
        )
        .unwrap();
        let key = store.put(vec![1u8, 2, 3]).unwrap();
        inbox.enqueue(QueuedUpdate::from_client(ClientId::new(1), key).encoded());
        assert!(matches!(agg.poll(), Err(LiflError::Codec(_))));
    }

    #[test]
    fn robust_policy_survives_an_adversarial_update() {
        let store = ObjectStore::new();
        let inbox = InPlaceQueue::new();
        let mut agg = AggregatorRuntime::new(
            AggregatorId::new(1),
            AggregatorRole::Leaf,
            3,
            store.clone(),
            inbox.clone(),
        )
        .unwrap();
        agg.set_policy(FoldPolicy::Median).unwrap();
        assert_eq!(agg.policy(), FoldPolicy::Median);
        queue_client_update(&store, &inbox, 0, &[1.0, 2.0], 1);
        queue_client_update(&store, &inbox, 1, &[3.0, 4.0], 1);
        // An adversary scales its update by 1e6 and claims a huge weight.
        queue_client_update(&store, &inbox, 2, &[1e6, -1e6], 1000);
        let out = agg.run_to_completion().unwrap();
        let result = store.get(&out.key).unwrap().as_f32_vec();
        assert_eq!(result, vec![3.0, 2.0], "median ignores the outlier");
        // Mid-round policy changes are rejected.
        queue_client_update(&store, &inbox, 3, &[1.0, 1.0], 1);
        agg.poll().unwrap();
        assert!(agg.set_policy(FoldPolicy::FedAvg).is_err());
    }

    #[test]
    fn zero_goal_rejected() {
        let err = AggregatorRuntime::new(
            AggregatorId::new(1),
            AggregatorRole::Leaf,
            0,
            ObjectStore::new(),
            InPlaceQueue::new(),
        );
        assert!(err.is_err());
    }
}
