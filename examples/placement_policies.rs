//! Compares the three placement policies of §5.1 (BestFit, FirstFit, WorstFit)
//! on the Fig. 8 workload: how many nodes each uses and the resulting ACT.
//!
//! Run with: `cargo run -p lifl-examples --example placement_policies`

use lifl_core::platform::{LiflPlatform, PlatformProfile, RoundSpec};
use lifl_types::{ClusterConfig, LiflConfig, ModelKind, PlacementPolicy, SimTime};

fn main() {
    for updates in [20usize, 60, 100] {
        println!("--- {updates} concurrent ResNet-152 updates, 5 nodes, MC=20 ---");
        for policy in [
            PlacementPolicy::BestFit,
            PlacementPolicy::FirstFit,
            PlacementPolicy::WorstFit,
        ] {
            let config = LiflConfig {
                placement: policy,
                ..LiflConfig::default()
            };
            let mut profile = PlatformProfile::lifl(ClusterConfig::default(), &config);
            profile.warm_across_rounds = false;
            let mut platform = LiflPlatform::with_profile(profile);
            let spec = RoundSpec::simultaneous(ModelKind::ResNet152, updates, SimTime::ZERO);
            let report = platform.run_round(&spec);
            println!(
                "  {policy:?}: nodes used = {}, ACT = {:.1}s, inter-node = {} MiB",
                report.metrics.nodes_used,
                report.metrics.aggregation_completion_time.as_secs(),
                report.metrics.inter_node_bytes / (1024 * 1024)
            );
        }
    }
}
