//! Minimal offline stand-in for the `serde` crate.
//!
//! The real `serde` is a zero-cost serialization *framework*; this shim is a
//! concrete one: [`Serialize`] lowers a value into a JSON-like [`Value`] tree
//! and [`Deserialize`] rebuilds it from one. The `serde_json` shim in this
//! workspace emits/parses text from the same [`Value`]. The API surface is
//! exactly what this workspace uses: the two traits, the derive re-exports,
//! and blanket implementations for the standard types that appear in derived
//! structs.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like data model used as the serialization intermediate form.
///
/// Object fields keep insertion order so derived output is stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX` or the
    /// source type is unsigned).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array of values.
    Array(Vec<Value>),
    /// Ordered key/value object.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an [`Value::Object`] by key.
    pub fn field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `i64` if it is numeric and fits.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) => i64::try_from(v).ok(),
            Value::Float(v) if v.fract() == 0.0 => Some(v as i64),
            _ => None,
        }
    }

    /// The value as a `u64` if it is numeric and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(v) => u64::try_from(v).ok(),
            Value::UInt(v) => Some(v),
            Value::Float(v) if v.fract() == 0.0 && v >= 0.0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as an `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(v) => Some(v as f64),
            Value::UInt(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a `bool` if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Error produced when rebuilding a Rust value from a [`Value`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Lowers `self` into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses a [`Value`] tree into `Self`.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value.as_f64().ok_or_else(|| DeError::new("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| DeError::new("expected f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value.as_bool().ok_or_else(|| DeError::new("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError::new("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::new("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(value)?;
        <[T; N]>::try_from(items).map_err(|_| DeError::new("array length mismatch"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Array(items) => {
                        let mut iter = items.iter();
                        let out = ($(
                            $name::from_value(
                                iter.next().ok_or_else(|| DeError::new("tuple too short"))?,
                            )?,
                        )+);
                        if iter.next().is_some() {
                            return Err(DeError::new("tuple too long"));
                        }
                        Ok(out)
                    }
                    _ => Err(DeError::new("expected tuple array")),
                }
            }
        }
    )*};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(&k.to_value()), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::new("expected object")),
        }
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::new("expected object")),
        }
    }
}

impl<T: Serialize + Eq + Hash, S> Serialize for std::collections::HashSet<T, S> {
    fn to_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by_key(|v| format!("{v:?}"));
        Value::Array(items)
    }
}

/// Renders a serialized key as a map key string.
fn key_string(value: &Value) -> String {
    match value {
        Value::Str(s) => s.clone(),
        Value::Int(v) => v.to_string(),
        Value::UInt(v) => v.to_string(),
        Value::Float(v) => v.to_string(),
        Value::Bool(v) => v.to_string(),
        other => format!("{other:?}"),
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}
