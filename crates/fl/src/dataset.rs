//! Synthetic non-IID federated dataset.
//!
//! The paper trains on FEMNIST with FedScale's real client-data mapping
//! (§6.2), giving each client a skewed label distribution and a skewed number
//! of samples. We reproduce both forms of heterogeneity synthetically:
//! features are drawn from per-class Gaussians and each client's label
//! distribution is a Dirichlet draw, while per-client sample counts follow a
//! heavy-tailed distribution.

use crate::model::DenseModel;
use lifl_simcore::SimRng;
use lifl_types::ClientId;

/// One labelled example.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Feature vector.
    pub features: Vec<f32>,
    /// Class label in `[0, num_classes)`.
    pub label: usize,
}

/// A federated dataset: per-client shards plus a held-out global test set.
#[derive(Debug, Clone)]
pub struct FederatedDataset {
    /// Number of feature dimensions.
    pub num_features: usize,
    /// Number of classes.
    pub num_classes: usize,
    shards: Vec<Vec<Sample>>,
    test_set: Vec<Sample>,
    class_centers: Vec<Vec<f32>>,
}

/// Configuration of the synthetic dataset generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetConfig {
    /// Number of clients to generate shards for.
    pub num_clients: usize,
    /// Feature dimensionality.
    pub num_features: usize,
    /// Number of classes (62 for the FEMNIST-like default).
    pub num_classes: usize,
    /// Mean samples per client.
    pub mean_samples_per_client: usize,
    /// Dirichlet concentration controlling label skew (smaller = more non-IID).
    pub dirichlet_alpha: f64,
    /// Number of held-out test samples.
    pub test_samples: usize,
    /// Feature noise standard deviation.
    pub noise_std: f64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            num_clients: 100,
            num_features: 32,
            num_classes: 62,
            mean_samples_per_client: 60,
            dirichlet_alpha: 0.3,
            test_samples: 2000,
            noise_std: 0.6,
        }
    }
}

impl FederatedDataset {
    /// Generates a dataset according to `config` using the deterministic `rng`.
    pub fn generate(config: DatasetConfig, rng: &mut SimRng) -> Self {
        let class_centers: Vec<Vec<f32>> = (0..config.num_classes)
            .map(|_| {
                (0..config.num_features)
                    .map(|_| rng.normal(0.0, 1.0) as f32)
                    .collect()
            })
            .collect();

        let sample_for_class = |class: usize, rng: &mut SimRng| -> Sample {
            let features = class_centers[class]
                .iter()
                .map(|c| c + rng.normal(0.0, config.noise_std) as f32)
                .collect();
            Sample {
                features,
                label: class,
            }
        };

        let mut shards = Vec::with_capacity(config.num_clients);
        for _ in 0..config.num_clients {
            let label_dist = rng.dirichlet(config.num_classes, config.dirichlet_alpha);
            // Heavy-tailed per-client sample count (FedScale-like quantity skew).
            let count = ((config.mean_samples_per_client as f64) * (0.3 + rng.exponential(0.7)))
                .round()
                .max(4.0) as usize;
            let mut shard = Vec::with_capacity(count);
            for _ in 0..count {
                let class = sample_class(&label_dist, rng);
                shard.push(sample_for_class(class, rng));
            }
            shards.push(shard);
        }

        let test_set = (0..config.test_samples)
            .map(|i| sample_for_class(i % config.num_classes, rng))
            .collect();

        FederatedDataset {
            num_features: config.num_features,
            num_classes: config.num_classes,
            shards,
            test_set,
            class_centers,
        }
    }

    /// Number of clients with shards.
    pub fn num_clients(&self) -> usize {
        self.shards.len()
    }

    /// The shard of `client`, empty if the client index is out of range.
    pub fn shard(&self, client: ClientId) -> &[Sample] {
        self.shards
            .get(client.index() as usize)
            .map(|s| s.as_slice())
            .unwrap_or(&[])
    }

    /// The held-out test set.
    pub fn test_set(&self) -> &[Sample] {
        &self.test_set
    }

    /// Dimensionality of the flattened model for this dataset
    /// (weights `classes x features` plus one bias per class).
    pub fn model_dim(&self) -> usize {
        self.num_classes * self.num_features + self.num_classes
    }

    /// A zero-initialised model of the right dimension.
    pub fn initial_model(&self) -> DenseModel {
        DenseModel::zeros(self.model_dim())
    }

    /// The class centers (exposed for tests that need a well-separated oracle).
    pub fn class_centers(&self) -> &[Vec<f32>] {
        &self.class_centers
    }
}

fn sample_class(dist: &[f64], rng: &mut SimRng) -> usize {
    let r = rng.uniform(0.0, 1.0);
    let mut cumulative = 0.0;
    for (idx, p) in dist.iter().enumerate() {
        cumulative += p;
        if r < cumulative {
            return idx;
        }
    }
    dist.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> DatasetConfig {
        DatasetConfig {
            num_clients: 10,
            num_features: 8,
            num_classes: 5,
            mean_samples_per_client: 20,
            dirichlet_alpha: 0.3,
            test_samples: 100,
            noise_std: 0.3,
        }
    }

    #[test]
    fn shards_and_test_set_have_expected_shape() {
        let mut rng = SimRng::from_seed(1);
        let ds = FederatedDataset::generate(small_config(), &mut rng);
        assert_eq!(ds.num_clients(), 10);
        assert_eq!(ds.test_set().len(), 100);
        assert_eq!(ds.model_dim(), 5 * 8 + 5);
        for c in 0..10 {
            let shard = ds.shard(ClientId::new(c));
            assert!(!shard.is_empty());
            for s in shard {
                assert_eq!(s.features.len(), 8);
                assert!(s.label < 5);
            }
        }
        assert!(ds.shard(ClientId::new(999)).is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let mut r1 = SimRng::from_seed(7);
        let mut r2 = SimRng::from_seed(7);
        let a = FederatedDataset::generate(small_config(), &mut r1);
        let b = FederatedDataset::generate(small_config(), &mut r2);
        assert_eq!(a.shard(ClientId::new(0)), b.shard(ClientId::new(0)));
    }

    #[test]
    fn clients_are_non_iid() {
        let mut rng = SimRng::from_seed(3);
        let ds = FederatedDataset::generate(small_config(), &mut rng);
        // Label histograms of two clients should differ with high probability.
        let hist = |c: u64| {
            let mut h = vec![0usize; 5];
            for s in ds.shard(ClientId::new(c)) {
                h[s.label] += 1;
            }
            h
        };
        assert_ne!(hist(0), hist(1));
    }
}
