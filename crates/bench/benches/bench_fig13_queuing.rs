//! Fig. 13: message-queuing overheads of the four setups of Fig. 5.
use criterion::{criterion_group, criterion_main, Criterion};
use lifl_experiments::fig13;

fn bench(c: &mut Criterion) {
    let result = fig13::run();
    println!("{}", fig13::format(&result));
    let mut group = c.benchmark_group("fig13_queuing");
    group.sample_size(20);
    group.bench_function("all_setups", |b| b.iter(fig13::run));
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
