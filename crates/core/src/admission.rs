//! Bounded per-leaf admission queues for the streaming ingress path.
//!
//! When a round is full, `Session::try_ingest` / `Cluster::try_ingest` park
//! the offered update here instead of erroring: each leaf aggregator owns a
//! bounded queue whose slot and byte budgets are enforced by a pool-backed
//! [`PooledBacklog`], so a million clients hammering a full round cost
//! O(queue caps) memory, never O(clients). When the next round opens, queued
//! offers are drained in Oort-utility order — the highest-utility clients
//! win admission under pressure, ties broken by arrival order — and their
//! payloads move into the shared-memory store without a copy.
//!
//! Everything here is deterministic (covered by `lifl-lint` R5): offers are
//! sequence-numbered, utilities live in a [`BTreeMap`], and drain order is a
//! total order over `(utility, seq)`, so the same offer trace always admits
//! the same clients in the same order.

use lifl_shmem::{BufferPool, PooledBacklog};
use lifl_types::{AdmissionConfig, AdmissionOutcome, ClientId};
use std::collections::{BTreeMap, VecDeque};

/// Utility assigned to a client that has never reported feedback — matching
/// the Oort selector's optimistic prior for unexplored clients.
const UNEXPLORED_UTILITY: f64 = 1.0;

/// One parked offer: a client update in wire form, waiting for the next
/// round to open.
#[derive(Debug)]
pub struct QueuedOffer {
    /// Producing client, when known (`None` for anonymous remote bytes).
    pub client: Option<ClientId>,
    /// Wire-form payload: headerless little-endian `f32` bytes when
    /// `encoded` is false, a self-describing encoded wire string otherwise.
    pub payload: Vec<u8>,
    /// Fold weight (training samples).
    pub weight: u64,
    /// Whether `payload` is a codec-encoded wire string.
    pub encoded: bool,
    /// Utility score snapshot at queue time (drain priority).
    pub utility: f64,
    /// Global arrival sequence number (FIFO tiebreak and leaf routing).
    pub seq: u64,
}

/// Lifetime counters for one [`AdmissionQueues`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionStats {
    /// Offers parked in a queue.
    pub queued: u64,
    /// Offers turned away because a queue budget was exhausted.
    pub rejected: u64,
    /// Offers drained into a round.
    pub drained: u64,
    /// Offers dropped without admission (departed clients, discarded
    /// backlogs, queue re-bucketing overflow).
    pub dropped: u64,
    /// High-water mark of parked offers across all queues.
    pub peak_queued: usize,
    /// High-water mark of parked payload bytes across all queues.
    pub peak_bytes: usize,
}

#[derive(Debug)]
struct LeafQueue {
    backlog: PooledBacklog,
    offers: VecDeque<QueuedOffer>,
}

impl LeafQueue {
    fn new(pool: BufferPool, config: &AdmissionConfig) -> LeafQueue {
        LeafQueue {
            backlog: PooledBacklog::new(pool, config.queue_slots, config.queue_bytes),
            offers: VecDeque::new(),
        }
    }
}

/// The bounded per-leaf admission queues of one session or cluster: offers
/// route to leaf `seq % leaves` for cap accounting, and drain globally in
/// `(utility desc, seq asc)` order.
#[derive(Debug)]
pub struct AdmissionQueues {
    config: AdmissionConfig,
    pool: BufferPool,
    queues: Vec<LeafQueue>,
    /// Oort-style utility score per client; absent clients score
    /// [`UNEXPLORED_UTILITY`].
    utilities: BTreeMap<ClientId, f64>,
    seq: u64,
    stats: AdmissionStats,
}

impl AdmissionQueues {
    /// Creates one bounded queue per leaf, all drawing payload buffers from
    /// `pool`.
    pub fn new(config: AdmissionConfig, leaves: usize, pool: BufferPool) -> AdmissionQueues {
        let queues = (0..leaves.max(1))
            .map(|_| LeafQueue::new(pool.clone(), &config))
            .collect();
        AdmissionQueues {
            config,
            pool,
            queues,
            utilities: BTreeMap::new(),
            seq: 0,
            stats: AdmissionStats::default(),
        }
    }

    /// The configured caps and round-close policy.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Records a client's Oort utility score (√samples × loss shape,
    /// computed by the selector); it decides drain priority from now on.
    pub fn record_utility(&mut self, client: ClientId, utility: f64) {
        self.utilities.insert(client, utility);
    }

    /// The drain priority an offer from `client` would queue with.
    pub fn utility_of(&self, client: Option<ClientId>) -> f64 {
        client
            .and_then(|c| self.utilities.get(&c).copied())
            .unwrap_or(UNEXPLORED_UTILITY)
    }

    /// Parks one offer in its leaf queue (leaf `seq % leaves`). Returns
    /// `Queued{depth}` with the queue's occupancy after the push, or
    /// `Rejected{retry_after}` when the leaf's slot or byte budget is
    /// exhausted. Never returns `Admitted` — admission into an open round is
    /// the caller's fast path.
    pub fn offer(
        &mut self,
        client: Option<ClientId>,
        payload: &[u8],
        weight: u64,
        encoded: bool,
    ) -> AdmissionOutcome {
        let seq = self.seq;
        self.seq += 1;
        let utility = self.utility_of(client);
        let leaf = (seq as usize) % self.queues.len();
        let Some(queue) = self.queues.get_mut(leaf) else {
            self.stats.rejected += 1;
            return AdmissionOutcome::Rejected {
                retry_after: self.config.retry_after,
            };
        };
        match queue.backlog.try_store(payload) {
            Some(stored) => {
                queue.offers.push_back(QueuedOffer {
                    client,
                    payload: stored,
                    weight,
                    encoded,
                    utility,
                    seq,
                });
                let depth = queue.offers.len();
                self.stats.queued += 1;
                self.stats.peak_queued = self.stats.peak_queued.max(self.total_queued());
                self.stats.peak_bytes = self.stats.peak_bytes.max(self.total_bytes());
                AdmissionOutcome::Queued { depth }
            }
            None => {
                self.stats.rejected += 1;
                AdmissionOutcome::Rejected {
                    retry_after: self.config.retry_after,
                }
            }
        }
    }

    /// Removes and returns the globally best parked offer — maximum
    /// `(utility, -seq)`, so higher utility wins and ties go to the earliest
    /// arrival. Utilities are read from the live score map at drain time, so
    /// a score recorded while an offer was parked still decides its
    /// priority. The offer's budget charge is withdrawn (its payload is
    /// about to move into the object store, not back to the pool).
    pub fn take_best(&mut self) -> Option<QueuedOffer> {
        let mut best: Option<(usize, usize, f64)> = None;
        for (qi, queue) in self.queues.iter().enumerate() {
            for (oi, offer) in queue.offers.iter().enumerate() {
                let utility = self.utility_of(offer.client);
                let better = match best {
                    None => true,
                    Some((bqi, boi, incumbent_utility)) => {
                        let incumbent = &self.queues[bqi].offers[boi];
                        match utility.total_cmp(&incumbent_utility) {
                            std::cmp::Ordering::Greater => true,
                            std::cmp::Ordering::Less => false,
                            std::cmp::Ordering::Equal => offer.seq < incumbent.seq,
                        }
                    }
                };
                if better {
                    best = Some((qi, oi, utility));
                }
            }
        }
        let (qi, oi, _) = best?;
        let queue = self.queues.get_mut(qi)?;
        let offer = queue.offers.remove(oi)?;
        queue.backlog.withdraw(offer.payload.len());
        self.stats.drained += 1;
        Some(offer)
    }

    /// Drops every parked offer from `client` (mid-round churn: a departed
    /// client's queued offers must not win admission later). Returns how many
    /// offers were dropped.
    pub fn remove_client(&mut self, client: ClientId) -> usize {
        let mut removed = 0;
        for queue in &mut self.queues {
            while let Some(pos) = queue.offers.iter().position(|o| o.client == Some(client)) {
                if let Some(offer) = queue.offers.remove(pos) {
                    queue.backlog.release(offer.payload);
                    removed += 1;
                }
            }
        }
        self.stats.dropped += removed as u64;
        removed
    }

    /// Re-buckets every parked offer across `leaves` queues (fleet scaling
    /// resized the tree). Offers re-route in arrival order; any that no
    /// longer fit the new budgets are dropped.
    pub fn resize(&mut self, leaves: usize) {
        let mut parked: Vec<QueuedOffer> = Vec::new();
        for queue in &mut self.queues {
            while let Some(offer) = queue.offers.pop_front() {
                queue.backlog.withdraw(offer.payload.len());
                parked.push(offer);
            }
        }
        parked.sort_by_key(|o| o.seq);
        self.queues = (0..leaves.max(1))
            .map(|_| LeafQueue::new(self.pool.clone(), &self.config))
            .collect();
        for (i, mut offer) in parked.into_iter().enumerate() {
            let leaf = i % self.queues.len();
            let Some(queue) = self.queues.get_mut(leaf) else {
                continue;
            };
            if queue.backlog.would_admit(offer.payload.len()) {
                // Re-charge the budgets for the surviving buffer; the bytes
                // themselves stay where they are (no copy).
                let placeholder = queue.backlog.try_store(&offer.payload);
                if let Some(spare) = placeholder {
                    // try_store copied into a fresh pool buffer; keep that
                    // canonical copy and recycle the old one.
                    let old = std::mem::replace(&mut offer.payload, spare);
                    self.pool.checkin_bytes(old);
                    queue.offers.push_back(offer);
                    continue;
                }
            }
            self.stats.dropped += 1;
            self.pool.checkin_bytes(offer.payload);
        }
    }

    /// Drops every parked offer (the backlog's rounds were discarded),
    /// returning the buffers to the pool.
    pub fn clear(&mut self) {
        for queue in &mut self.queues {
            while let Some(offer) = queue.offers.pop_front() {
                self.stats.dropped += 1;
                queue.backlog.release(offer.payload);
            }
        }
    }

    /// Occupancy of leaf queue `leaf` (0 for an out-of-range leaf).
    pub fn depth(&self, leaf: usize) -> usize {
        self.queues.get(leaf).map_or(0, |q| q.offers.len())
    }

    /// Occupancy of every leaf queue, in leaf order.
    pub fn depths(&self) -> Vec<usize> {
        self.queues.iter().map(|q| q.offers.len()).collect()
    }

    /// Total parked offers across all queues.
    pub fn total_queued(&self) -> usize {
        self.queues.iter().map(|q| q.offers.len()).sum()
    }

    /// Total parked payload bytes across all queues.
    pub fn total_bytes(&self) -> usize {
        self.queues
            .iter()
            .map(|q| q.backlog.stats().used_bytes)
            .sum()
    }

    /// Whether any offer is parked.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(|q| q.offers.is_empty())
    }

    /// Number of leaf queues.
    pub fn leaves(&self) -> usize {
        self.queues.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queues(slots: usize, bytes: usize, leaves: usize) -> AdmissionQueues {
        AdmissionQueues::new(
            AdmissionConfig::bounded(slots, bytes),
            leaves,
            BufferPool::new(),
        )
    }

    #[test]
    fn offers_round_robin_leaves_and_report_depth() {
        let mut q = queues(4, 1024, 2);
        for i in 0..4u64 {
            let outcome = q.offer(Some(ClientId::new(i)), &[i as u8; 8], 1, false);
            // Offers 0,2 land on leaf 0; 1,3 on leaf 1 — each reports its
            // own queue's depth.
            assert_eq!(
                outcome,
                AdmissionOutcome::Queued {
                    depth: (i / 2 + 1) as usize
                }
            );
        }
        assert_eq!(q.depths(), vec![2, 2]);
        assert_eq!(q.total_queued(), 4);
        assert_eq!(q.total_bytes(), 32);
    }

    #[test]
    fn slot_and_byte_budgets_reject() {
        let mut q = queues(1, 1024, 1);
        assert!(q.offer(None, &[0u8; 8], 1, false).is_queued());
        assert!(q.offer(None, &[0u8; 8], 1, false).is_rejected());
        let mut q = queues(8, 10, 1);
        assert!(q.offer(None, &[0u8; 8], 1, false).is_queued());
        assert!(q.offer(None, &[0u8; 8], 1, false).is_rejected());
        assert_eq!(q.stats().rejected, 1);
    }

    #[test]
    fn drain_order_is_utility_then_arrival() {
        let mut q = queues(8, 4096, 2);
        q.record_utility(ClientId::new(1), 0.5);
        q.record_utility(ClientId::new(2), 2.0);
        for i in 0..4u64 {
            q.offer(Some(ClientId::new(i)), &[i as u8; 4], 1, false);
        }
        // Client 2 has the highest utility; clients 0 and 3 are unexplored
        // (1.0) and drain in arrival order; client 1 (0.5) drains last.
        let order: Vec<u64> = std::iter::from_fn(|| q.take_best())
            .map(|o| o.client.map_or(u64::MAX, |c| c.index()))
            .collect();
        assert_eq!(order, vec![2, 0, 3, 1]);
        assert!(q.is_empty());
        assert_eq!(q.stats().drained, 4);
        assert_eq!(q.total_bytes(), 0);
    }

    #[test]
    fn remove_client_drops_only_their_offers() {
        let mut q = queues(8, 4096, 1);
        q.offer(Some(ClientId::new(1)), &[1u8; 4], 1, false);
        q.offer(Some(ClientId::new(2)), &[2u8; 4], 1, false);
        q.offer(Some(ClientId::new(1)), &[3u8; 4], 1, false);
        assert_eq!(q.remove_client(ClientId::new(1)), 2);
        assert_eq!(q.total_queued(), 1);
        let survivor = q.take_best().expect("client 2 remains");
        assert_eq!(survivor.client, Some(ClientId::new(2)));
        assert_eq!(survivor.payload, vec![2u8; 4]);
    }

    #[test]
    fn resize_rebuckets_in_arrival_order() {
        let mut q = queues(8, 4096, 1);
        for i in 0..6u64 {
            q.offer(Some(ClientId::new(i)), &[i as u8; 4], 1, false);
        }
        q.resize(3);
        assert_eq!(q.leaves(), 3);
        assert_eq!(q.depths(), vec![2, 2, 2]);
        // Payloads survived the re-bucketing intact.
        let best = q.take_best().expect("offers survive");
        assert_eq!(best.payload.len(), 4);
        // Shrinking to tighter total budget drops the overflow.
        let mut small = queues(1, 4096, 4);
        for i in 0..4u64 {
            small.offer(Some(ClientId::new(i)), &[0u8; 4], 1, false);
        }
        small.resize(2);
        assert_eq!(small.total_queued(), 2, "2 leaves x 1 slot survive");
        assert_eq!(small.stats().dropped, 2);
    }

    #[test]
    fn clear_returns_buffers_to_the_pool() {
        let pool = BufferPool::new();
        let mut q = AdmissionQueues::new(AdmissionConfig::bounded(8, 4096), 2, pool.clone());
        q.offer(None, &[0u8; 16], 1, false);
        q.offer(None, &[0u8; 16], 1, false);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(pool.stats().idle_buffers, 2);
        assert_eq!(q.stats().dropped, 2);
    }
}
