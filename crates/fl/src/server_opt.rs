//! Server-side federated optimizers.
//!
//! The paper's evaluation uses plain FedAvg (§6.2), but its related-work
//! section points at the adaptive federated-optimization family (Reddi et
//! al., 2020) as one of the algorithm-level directions LIFL is meant to be a
//! substrate for. This module implements that family so a downstream user can
//! swap the server update rule without touching the aggregation hierarchy:
//! the hierarchy still produces a sample-weighted average of client models
//! (via [`crate::aggregate::CumulativeFedAvg`]), and the server optimizer then
//! decides how the global model moves toward that average.
//!
//! All optimizers operate on the *pseudo-gradient* `Δ = aggregate − global`:
//!
//! * [`ServerOptKind::FedAvg`] — `global ← global + η·Δ` (η = 1 reproduces
//!   vanilla FedAvg exactly).
//! * [`ServerOptKind::FedAdagrad`] — per-coordinate accumulated squared
//!   pseudo-gradients.
//! * [`ServerOptKind::FedAdam`] — first and second moments with bias-free
//!   server form used by Reddi et al.
//! * [`ServerOptKind::FedYogi`] — Adam variant with additive second-moment
//!   update, more robust to heavy-tailed client drift.

use crate::model::DenseModel;
use lifl_types::{LiflError, Result};
use serde::{Deserialize, Serialize};

/// Which server optimizer to apply on top of the aggregated client average.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ServerOptKind {
    /// Plain server averaging: `global ← global + η·Δ`.
    #[default]
    FedAvg,
    /// Adaptive per-coordinate learning rates from accumulated squared deltas.
    FedAdagrad,
    /// Server-side Adam on the pseudo-gradient.
    FedAdam,
    /// Server-side Yogi on the pseudo-gradient.
    FedYogi,
}

impl ServerOptKind {
    /// All optimizer kinds, in the order used by experiment sweeps.
    pub fn all() -> [ServerOptKind; 4] {
        [
            ServerOptKind::FedAvg,
            ServerOptKind::FedAdagrad,
            ServerOptKind::FedAdam,
            ServerOptKind::FedYogi,
        ]
    }

    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            ServerOptKind::FedAvg => "FedAvg",
            ServerOptKind::FedAdagrad => "FedAdagrad",
            ServerOptKind::FedAdam => "FedAdam",
            ServerOptKind::FedYogi => "FedYogi",
        }
    }
}

impl std::fmt::Display for ServerOptKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Hyper-parameters of the server optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerOptConfig {
    /// Which update rule to apply.
    pub kind: ServerOptKind,
    /// Server learning rate η (1.0 for vanilla FedAvg).
    pub learning_rate: f32,
    /// First-moment decay β₁ (FedAdam / FedYogi).
    pub beta1: f32,
    /// Second-moment decay β₂ (FedAdam / FedYogi).
    pub beta2: f32,
    /// Adaptivity floor τ added to the denominator.
    pub tau: f32,
}

impl Default for ServerOptConfig {
    fn default() -> Self {
        ServerOptConfig {
            kind: ServerOptKind::FedAvg,
            learning_rate: 1.0,
            beta1: 0.9,
            beta2: 0.99,
            tau: 1e-3,
        }
    }
}

impl ServerOptConfig {
    /// A configuration for the given kind with the Reddi et al. defaults.
    pub fn for_kind(kind: ServerOptKind) -> Self {
        let learning_rate = match kind {
            ServerOptKind::FedAvg => 1.0,
            // Adaptive methods use a smaller server step by default.
            _ => 0.1,
        };
        ServerOptConfig {
            kind,
            learning_rate,
            ..ServerOptConfig::default()
        }
    }

    /// Validates the hyper-parameters.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidConfig`] when a rate or decay is outside its
    /// valid range.
    pub fn validate(&self) -> Result<()> {
        if self.learning_rate <= 0.0 {
            return Err(LiflError::InvalidConfig(format!(
                "server learning rate must be positive, got {}",
                self.learning_rate
            )));
        }
        if !(0.0..1.0).contains(&self.beta1) || !(0.0..1.0).contains(&self.beta2) {
            return Err(LiflError::InvalidConfig(format!(
                "betas must be in [0,1): beta1={}, beta2={}",
                self.beta1, self.beta2
            )));
        }
        if self.tau <= 0.0 {
            return Err(LiflError::InvalidConfig(format!(
                "tau must be positive, got {}",
                self.tau
            )));
        }
        Ok(())
    }
}

/// Stateful server optimizer applied once per committed aggregate.
#[derive(Debug, Clone)]
pub struct ServerOptimizer {
    config: ServerOptConfig,
    /// First moment m (FedAdam / FedYogi), lazily sized.
    momentum: Vec<f32>,
    /// Second moment v (adaptive methods), lazily sized.
    second_moment: Vec<f32>,
    steps: u64,
}

impl ServerOptimizer {
    /// Creates an optimizer from a validated configuration.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidConfig`] when the configuration is invalid.
    pub fn new(config: ServerOptConfig) -> Result<Self> {
        config.validate()?;
        Ok(ServerOptimizer {
            config,
            momentum: Vec::new(),
            second_moment: Vec::new(),
            steps: 0,
        })
    }

    /// Creates a vanilla-FedAvg optimizer (η = 1), which never fails.
    pub fn fedavg() -> Self {
        ServerOptimizer {
            config: ServerOptConfig::default(),
            momentum: Vec::new(),
            second_moment: Vec::new(),
            steps: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ServerOptConfig {
        &self.config
    }

    /// Number of server steps applied so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Applies one server step: moves `global` toward `aggregate` according to
    /// the configured update rule. `aggregate` is the sample-weighted client
    /// average produced by the aggregation hierarchy.
    ///
    /// # Errors
    /// Returns [`LiflError::DimensionMismatch`] when the aggregate's dimension
    /// differs from the global model's.
    pub fn step(&mut self, global: &mut DenseModel, aggregate: &DenseModel) -> Result<()> {
        if global.dim() != aggregate.dim() {
            return Err(LiflError::DimensionMismatch {
                expected: global.dim(),
                actual: aggregate.dim(),
            });
        }
        let dim = global.dim();
        if self.momentum.len() != dim {
            self.momentum = vec![0.0; dim];
            self.second_moment = vec![0.0; dim];
        }
        self.steps += 1;
        let lr = self.config.learning_rate;
        let b1 = self.config.beta1;
        let b2 = self.config.beta2;
        let tau = self.config.tau;
        let params = global.as_mut_slice();
        match self.config.kind {
            ServerOptKind::FedAvg => {
                for (g, a) in params.iter_mut().zip(aggregate.as_slice()) {
                    let delta = a - *g;
                    *g += lr * delta;
                }
            }
            ServerOptKind::FedAdagrad => {
                for ((g, a), v) in params
                    .iter_mut()
                    .zip(aggregate.as_slice())
                    .zip(self.second_moment.iter_mut())
                {
                    let delta = a - *g;
                    *v += delta * delta;
                    *g += lr * delta / (v.sqrt() + tau);
                }
            }
            ServerOptKind::FedAdam => {
                for (((g, a), m), v) in params
                    .iter_mut()
                    .zip(aggregate.as_slice())
                    .zip(self.momentum.iter_mut())
                    .zip(self.second_moment.iter_mut())
                {
                    let delta = a - *g;
                    *m = b1 * *m + (1.0 - b1) * delta;
                    *v = b2 * *v + (1.0 - b2) * delta * delta;
                    *g += lr * *m / (v.sqrt() + tau);
                }
            }
            ServerOptKind::FedYogi => {
                for (((g, a), m), v) in params
                    .iter_mut()
                    .zip(aggregate.as_slice())
                    .zip(self.momentum.iter_mut())
                    .zip(self.second_moment.iter_mut())
                {
                    let delta = a - *g;
                    let delta_sq = delta * delta;
                    *m = b1 * *m + (1.0 - b1) * delta;
                    *v -= (1.0 - b2) * delta_sq * (*v - delta_sq).signum();
                    *g += lr * *m / (v.abs().sqrt() + tau);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(values: &[f32]) -> DenseModel {
        DenseModel::from_vec(values.to_vec())
    }

    #[test]
    fn fedavg_with_unit_rate_reproduces_plain_averaging() {
        let mut global = model(&[0.0, 2.0, -4.0]);
        let aggregate = model(&[1.0, 1.0, 1.0]);
        let mut opt = ServerOptimizer::fedavg();
        opt.step(&mut global, &aggregate).unwrap();
        assert_eq!(global.as_slice(), aggregate.as_slice());
        assert_eq!(opt.steps(), 1);
    }

    #[test]
    fn fedavg_with_partial_rate_interpolates() {
        let mut global = model(&[0.0, 0.0]);
        let aggregate = model(&[2.0, -2.0]);
        let mut opt = ServerOptimizer::new(ServerOptConfig {
            learning_rate: 0.5,
            ..ServerOptConfig::default()
        })
        .unwrap();
        opt.step(&mut global, &aggregate).unwrap();
        assert_eq!(global.as_slice(), &[1.0, -1.0]);
    }

    #[test]
    fn adaptive_optimizers_move_toward_aggregate() {
        for kind in [
            ServerOptKind::FedAdagrad,
            ServerOptKind::FedAdam,
            ServerOptKind::FedYogi,
        ] {
            let mut global = model(&[0.0, 0.0, 0.0]);
            let aggregate = model(&[1.0, -1.0, 0.5]);
            let mut opt = ServerOptimizer::new(ServerOptConfig::for_kind(kind)).unwrap();
            let initial_dist: f32 = aggregate
                .as_slice()
                .iter()
                .zip(global.as_slice())
                .map(|(a, g)| (a - g).abs())
                .sum();
            for _ in 0..50 {
                opt.step(&mut global, &aggregate).unwrap();
            }
            let final_dist: f32 = aggregate
                .as_slice()
                .iter()
                .zip(global.as_slice())
                .map(|(a, g)| (a - g).abs())
                .sum();
            assert!(
                final_dist < initial_dist * 0.5,
                "{kind}: distance {initial_dist} -> {final_dist} should shrink"
            );
        }
    }

    #[test]
    fn repeated_steps_converge_to_fixed_point() {
        // Once global == aggregate, every optimizer must stay put (Δ = 0).
        for kind in ServerOptKind::all() {
            let aggregate = model(&[0.3, -0.7, 1.1]);
            let mut global = aggregate.clone();
            let mut opt = ServerOptimizer::new(ServerOptConfig::for_kind(kind)).unwrap();
            // Warm the moments on a non-zero delta first, then converge.
            let mut far = model(&[5.0, 5.0, 5.0]);
            opt.step(&mut far, &aggregate).unwrap();
            opt.step(&mut global, &aggregate).unwrap();
            for (g, a) in global.as_slice().iter().zip(aggregate.as_slice()) {
                assert!((g - a).abs() < 0.2, "{kind}: {g} vs {a}");
            }
        }
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let mut global = model(&[0.0, 0.0]);
        let aggregate = model(&[1.0]);
        let mut opt = ServerOptimizer::fedavg();
        assert!(matches!(
            opt.step(&mut global, &aggregate),
            Err(LiflError::DimensionMismatch {
                expected: 2,
                actual: 1
            })
        ));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(ServerOptimizer::new(ServerOptConfig {
            learning_rate: 0.0,
            ..ServerOptConfig::default()
        })
        .is_err());
        assert!(ServerOptimizer::new(ServerOptConfig {
            beta1: 1.5,
            ..ServerOptConfig::default()
        })
        .is_err());
        assert!(ServerOptimizer::new(ServerOptConfig {
            tau: -1.0,
            ..ServerOptConfig::default()
        })
        .is_err());
    }

    #[test]
    fn labels_and_iteration_order_are_stable() {
        let labels: Vec<&str> = ServerOptKind::all().iter().map(|k| k.label()).collect();
        assert_eq!(labels, vec!["FedAvg", "FedAdagrad", "FedAdam", "FedYogi"]);
        assert_eq!(ServerOptKind::FedYogi.to_string(), "FedYogi");
    }

    #[test]
    fn for_kind_uses_smaller_rate_for_adaptive_methods() {
        assert_eq!(
            ServerOptConfig::for_kind(ServerOptKind::FedAvg).learning_rate,
            1.0
        );
        assert!(ServerOptConfig::for_kind(ServerOptKind::FedAdam).learning_rate < 1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arbitrary_pair() -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
        (1usize..16).prop_flat_map(|dim| {
            (
                proptest::collection::vec(-5.0f32..5.0, dim..=dim),
                proptest::collection::vec(-5.0f32..5.0, dim..=dim),
            )
        })
    }

    proptest! {
        #[test]
        fn fedavg_step_lands_between_global_and_aggregate(
            (global_vec, agg_vec) in arbitrary_pair(),
            lr in 0.05f32..1.0,
        ) {
            let mut global = DenseModel::from_vec(global_vec.clone());
            let aggregate = DenseModel::from_vec(agg_vec.clone());
            let mut opt = ServerOptimizer::new(ServerOptConfig {
                learning_rate: lr,
                ..ServerOptConfig::default()
            }).unwrap();
            opt.step(&mut global, &aggregate).unwrap();
            for ((before, after), target) in global_vec.iter().zip(global.as_slice()).zip(&agg_vec) {
                let lo = before.min(*target) - 1e-5;
                let hi = before.max(*target) + 1e-5;
                prop_assert!(*after >= lo && *after <= hi,
                    "{after} not within [{lo}, {hi}]");
            }
        }

        #[test]
        fn adaptive_steps_are_bounded_by_learning_rate(
            (global_vec, agg_vec) in arbitrary_pair(),
        ) {
            // Each adaptive step moves any coordinate by at most ~lr * |delta| / tau,
            // but more importantly it must be finite and never NaN.
            for kind in [ServerOptKind::FedAdagrad, ServerOptKind::FedAdam, ServerOptKind::FedYogi] {
                let mut global = DenseModel::from_vec(global_vec.clone());
                let aggregate = DenseModel::from_vec(agg_vec.clone());
                let mut opt = ServerOptimizer::new(ServerOptConfig::for_kind(kind)).unwrap();
                for _ in 0..5 {
                    opt.step(&mut global, &aggregate).unwrap();
                }
                for v in global.as_slice() {
                    prop_assert!(v.is_finite(), "{kind:?} produced non-finite parameter {v}");
                }
            }
        }
    }
}
