//! # lifl-simcore
//!
//! A small discrete-event simulation engine used by the LIFL reproduction to
//! model cluster-scale experiments: an event queue with a deterministic
//! tie-breaking order, CPU-core and shared-channel resources, deterministic
//! random-number helpers and statistics collectors (time series, Gantt
//! timelines, histograms).
//!
//! The engine is intentionally generic: the LIFL platform, the baseline
//! systems and the experiment harness all drive their own event loops on top
//! of these primitives.
//!
//! ```
//! use lifl_simcore::event::EventQueue;
//! use lifl_types::SimTime;
//!
//! let mut queue: EventQueue<&'static str> = EventQueue::new();
//! queue.push(SimTime::from_secs(2.0), "late");
//! queue.push(SimTime::from_secs(1.0), "early");
//! let (t, e) = queue.pop().unwrap();
//! assert_eq!(e, "early");
//! assert_eq!(t.as_secs(), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod resource;
pub mod rng;
pub mod stats;

pub use engine::{Engine, Scheduler};
pub use event::EventQueue;
pub use resource::{CpuPool, SharedChannel};
pub use rng::SimRng;
pub use stats::{Gantt, GanttSegment, Histogram, Summary, TimeSeries};
