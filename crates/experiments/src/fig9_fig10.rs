//! Figures 9 and 10: end-to-end FL workloads.
//!
//! Fig. 9: time-to-accuracy and cost-to-accuracy for SF, SL and LIFL on the
//! ResNet-18 (120 active mobile clients) and ResNet-152 (15 always-on server
//! clients) workloads. Fig. 10: time series of update arrival rate, active
//! aggregators and per-round CPU cost for the same runs.

use crate::report::format_table;
use lifl_baselines::{serverful, serverless, WorkloadDriver, WorkloadOutcome, WorkloadSetup};
use lifl_core::platform::LiflPlatform;
use lifl_types::{ClusterConfig, LiflConfig, ModelKind};
use serde::Serialize;

/// Summary of one (workload, system) run.
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadSummary {
    /// Workload model.
    pub model: String,
    /// System label.
    pub system: String,
    /// Wall-clock hours to the target accuracy (None if never reached).
    pub time_to_accuracy_h: Option<f64>,
    /// CPU hours to the target accuracy (None if never reached).
    pub cpu_to_accuracy_h: Option<f64>,
    /// Final accuracy after all rounds.
    pub final_accuracy: f64,
    /// Total simulated wall-clock hours.
    pub total_wall_h: f64,
    /// Total aggregation-service CPU hours.
    pub total_cpu_h: f64,
}

/// The full Fig. 9 / Fig. 10 result for one workload.
#[derive(Debug)]
pub struct WorkloadComparison {
    /// The target accuracy used for the "time to accuracy" headline.
    pub target_accuracy: f64,
    /// Summary per system.
    pub summaries: Vec<WorkloadSummary>,
    /// Full curves per system (for Fig. 10).
    pub outcomes: Vec<WorkloadOutcome>,
}

/// Runs one workload (ResNet-18 or ResNet-152 setup) on SF, SL and LIFL.
///
/// `rounds` controls simulation length; `target_accuracy` is the accuracy
/// level the headline numbers are reported at (the paper uses 70% on FEMNIST;
/// the synthetic task converges to a different absolute scale, so callers pick
/// a level both systems reach, keeping the comparison meaningful).
pub fn run_workload(model: ModelKind, rounds: usize, target_accuracy: f64) -> WorkloadComparison {
    let setup = match model {
        ModelKind::ResNet152 => WorkloadSetup::resnet152(rounds),
        _ => WorkloadSetup::resnet18(rounds),
    };
    let driver = WorkloadDriver::new(setup.clone());
    let cluster = ClusterConfig::default();

    let mut lifl = LiflPlatform::new(cluster.clone(), LiflConfig::default());
    let mut sf = serverful(cluster.clone());
    let mut sl = serverless(cluster);

    let outcomes = vec![
        driver.run(&mut sf),
        driver.run(&mut sl),
        driver.run(&mut lifl),
    ];
    let summaries = outcomes
        .iter()
        .map(|o| WorkloadSummary {
            model: setup.model.to_string(),
            system: o.system.clone(),
            time_to_accuracy_h: o.time_to_accuracy_hours(target_accuracy),
            cpu_to_accuracy_h: o.cpu_to_accuracy_hours(target_accuracy),
            final_accuracy: o.final_accuracy,
            total_wall_h: o.total_wall.as_hours(),
            total_cpu_h: o.total_cpu.as_hours(),
        })
        .collect();
    WorkloadComparison {
        target_accuracy,
        summaries,
        outcomes,
    }
}

/// Formats the Fig. 9 headline table for one workload.
pub fn format(comparison: &WorkloadComparison) -> String {
    let fmt_opt = |v: Option<f64>| {
        v.map(|x| format!("{x:.2}"))
            .unwrap_or_else(|| "-".to_string())
    };
    let rows: Vec<Vec<String>> = comparison
        .summaries
        .iter()
        .map(|s| {
            vec![
                s.model.clone(),
                s.system.clone(),
                fmt_opt(s.time_to_accuracy_h),
                fmt_opt(s.cpu_to_accuracy_h),
                format!("{:.1}", s.final_accuracy),
                format!("{:.2}", s.total_wall_h),
                format!("{:.2}", s.total_cpu_h),
            ]
        })
        .collect();
    let mut out = format!(
        "Fig. 9: time/cost to {:.0}% accuracy (synthetic workload; see DESIGN.md)\n",
        comparison.target_accuracy
    );
    out.push_str(&format_table(
        &[
            "model",
            "system",
            "TTA (h)",
            "CPU-to-acc (h)",
            "final acc (%)",
            "wall (h)",
            "CPU (h)",
        ],
        &rows,
    ));
    out
}

/// Formats the Fig. 10 time-series summary for one workload.
pub fn format_timeseries(comparison: &WorkloadComparison) -> String {
    let mut out = String::from("Fig. 10: per-round time series (last sample per system)\n");
    let rows: Vec<Vec<String>> = comparison
        .outcomes
        .iter()
        .map(|o| {
            let mean_rate = if o.arrival_rate.is_empty() {
                0.0
            } else {
                o.arrival_rate.points.iter().map(|(_, v)| v).sum::<f64>()
                    / o.arrival_rate.len() as f64
            };
            let mean_active = if o.active_aggregators.is_empty() {
                0.0
            } else {
                o.active_aggregators
                    .points
                    .iter()
                    .map(|(_, v)| v)
                    .sum::<f64>()
                    / o.active_aggregators.len() as f64
            };
            let mean_cpu = if o.cpu_per_round.is_empty() {
                0.0
            } else {
                o.cpu_per_round.points.iter().map(|(_, v)| v).sum::<f64>()
                    / o.cpu_per_round.len() as f64
            };
            vec![
                o.system.clone(),
                format!("{mean_rate:.1}"),
                format!("{mean_active:.1}"),
                format!("{mean_cpu:.1}"),
            ]
        })
        .collect();
    out.push_str(&format_table(
        &["system", "arrivals/min", "avg active agg", "CPU s/round"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifl_beats_sl_and_sf_on_small_run() {
        let comparison = run_workload(ModelKind::ResNet18, 6, 30.0);
        assert_eq!(comparison.summaries.len(), 3);
        let find = |label: &str| {
            comparison
                .summaries
                .iter()
                .find(|s| s.system == label)
                .unwrap()
                .clone()
        };
        let lifl = find("LIFL");
        let sl = find("SL");
        let sf = find("SF");
        // Fig. 9 shape: LIFL's total wall and CPU are lowest; SL the most expensive CPU.
        assert!(lifl.total_wall_h < sl.total_wall_h);
        assert!(lifl.total_cpu_h < sf.total_cpu_h);
        assert!(lifl.total_cpu_h < sl.total_cpu_h);
        let text = format(&comparison);
        assert!(text.contains("LIFL"));
        let ts = format_timeseries(&comparison);
        assert!(ts.contains("arrivals/min"));
    }
}
