//! Local SGD training of the softmax-regression workload (§6.2: SGD,
//! batch size 32, learning rate 0.01).

use crate::dataset::Sample;
use crate::model::DenseModel;
use lifl_simcore::SimRng;

/// Local-training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainerConfig {
    /// Mini-batch size (paper: 32).
    pub batch_size: usize,
    /// Learning rate (paper: 0.01).
    pub learning_rate: f32,
    /// Local epochs per round (paper: 1).
    pub local_epochs: usize,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            batch_size: 32,
            learning_rate: 0.01,
            local_epochs: 1,
        }
    }
}

/// A local trainer for the softmax-regression model.
///
/// The model layout is `[W (classes x features) | b (classes)]`, flattened
/// row-major into a [`DenseModel`].
#[derive(Debug, Clone)]
pub struct LocalTrainer {
    num_features: usize,
    num_classes: usize,
    config: TrainerConfig,
}

impl LocalTrainer {
    /// Creates a trainer for the given problem shape.
    pub fn new(num_features: usize, num_classes: usize, config: TrainerConfig) -> Self {
        LocalTrainer {
            num_features,
            num_classes,
            config,
        }
    }

    /// Model dimension expected by this trainer.
    pub fn model_dim(&self) -> usize {
        self.num_classes * self.num_features + self.num_classes
    }

    /// Runs local SGD starting from `global`, returning the locally trained
    /// model and the average training loss of the final epoch.
    pub fn train(
        &self,
        global: &DenseModel,
        shard: &[Sample],
        rng: &mut SimRng,
    ) -> (DenseModel, f64) {
        let mut model = global.clone();
        if shard.is_empty() {
            return (model, 0.0);
        }
        let mut order: Vec<usize> = (0..shard.len()).collect();
        let mut last_loss = 0.0;
        for _ in 0..self.config.local_epochs.max(1) {
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0f64;
            let mut batches = 0.0f64;
            for batch in order.chunks(self.config.batch_size.max(1)) {
                epoch_loss += self.sgd_step(&mut model, shard, batch);
                batches += 1.0;
            }
            last_loss = epoch_loss / batches.max(1.0);
        }
        (model, last_loss)
    }

    /// Computes class probabilities for one sample under `model`.
    pub fn predict(&self, model: &DenseModel, features: &[f32]) -> Vec<f32> {
        let params = model.as_slice();
        let f = self.num_features;
        let mut logits = vec![0.0f32; self.num_classes];
        for (c, logit) in logits.iter_mut().enumerate() {
            let row = &params[c * f..(c + 1) * f];
            let bias = params[self.num_classes * f + c];
            *logit = bias + row.iter().zip(features).map(|(w, x)| w * x).sum::<f32>();
        }
        softmax(&logits)
    }

    fn sgd_step(&self, model: &mut DenseModel, shard: &[Sample], batch: &[usize]) -> f64 {
        let f = self.num_features;
        let k = self.num_classes;
        let lr = self.config.learning_rate;
        let scale = lr / batch.len() as f32;
        let mut loss = 0.0f64;
        // Accumulate gradient over the batch, then apply.
        let mut grad = vec![0.0f32; model.dim()];
        for &idx in batch {
            let sample = &shard[idx];
            let probs = self.predict(model, &sample.features);
            loss -= (probs[sample.label].max(1e-7) as f64).ln();
            for c in 0..k {
                let err = probs[c] - if c == sample.label { 1.0 } else { 0.0 };
                let row = &mut grad[c * f..(c + 1) * f];
                for (g, x) in row.iter_mut().zip(&sample.features) {
                    *g += err * x;
                }
                grad[k * f + c] += err;
            }
        }
        let params = model.as_mut_slice();
        for (p, g) in params.iter_mut().zip(&grad) {
            *p -= scale * g;
        }
        loss / batch.len() as f64
    }
}

fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|l| (l - max).exp()).collect();
    let sum: f32 = exps.iter().sum::<f32>().max(1e-12);
    exps.iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetConfig, FederatedDataset};
    use lifl_types::ClientId;

    #[test]
    fn softmax_sums_to_one() {
        let probs = softmax(&[1.0, 2.0, 3.0]);
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(probs[2] > probs[0]);
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = SimRng::from_seed(11);
        let ds = FederatedDataset::generate(
            DatasetConfig {
                num_clients: 4,
                num_features: 8,
                num_classes: 4,
                mean_samples_per_client: 80,
                dirichlet_alpha: 5.0,
                test_samples: 50,
                noise_std: 0.2,
            },
            &mut rng,
        );
        let trainer = LocalTrainer::new(
            8,
            4,
            TrainerConfig {
                local_epochs: 5,
                learning_rate: 0.1,
                batch_size: 16,
            },
        );
        let global = ds.initial_model();
        let shard = ds.shard(ClientId::new(0));
        let (_, loss_first) = trainer.train(&global, &shard[..shard.len().min(64)], &mut rng);
        let (trained, _) = trainer.train(&global, shard, &mut rng);
        let (_, loss_after) = trainer.train(&trained, shard, &mut rng);
        assert!(loss_after < loss_first, "{loss_after} < {loss_first}");
        assert_eq!(trainer.model_dim(), ds.model_dim());
    }

    #[test]
    fn empty_shard_returns_global() {
        let trainer = LocalTrainer::new(4, 3, TrainerConfig::default());
        let global = DenseModel::zeros(trainer.model_dim());
        let mut rng = SimRng::from_seed(1);
        let (model, loss) = trainer.train(&global, &[], &mut rng);
        assert_eq!(model, global);
        assert_eq!(loss, 0.0);
    }
}
