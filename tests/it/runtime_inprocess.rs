//! The in-process threaded runtime produces exactly the FedAvg result.

use lifl_core::runtime::{run_hierarchical, HierarchicalRunConfig};
use lifl_fl::aggregate::{fedavg, ModelUpdate};
use lifl_fl::DenseModel;
use lifl_types::ClientId;

fn updates(n: usize, dim: usize, seed: f32) -> Vec<ModelUpdate> {
    (0..n)
        .map(|i| {
            let values: Vec<f32> = (0..dim)
                .map(|d| seed + (i * dim + d) as f32 * 0.001)
                .collect();
            ModelUpdate::from_client(
                ClientId::new(i as u64),
                DenseModel::from_vec(values),
                (2 * i + 1) as u64,
            )
        })
        .collect()
}

#[test]
fn hierarchy_of_threads_matches_flat_fedavg() {
    for (leaves, per_leaf) in [(2usize, 2usize), (4, 2), (3, 3), (8, 2)] {
        let updates = updates(leaves * per_leaf, 32, 0.5);
        let config = HierarchicalRunConfig {
            leaves,
            updates_per_leaf: per_leaf,
            aggregation_shards: 1,
        };
        let hierarchical = run_hierarchical(config, &updates).expect("runtime");
        let flat = fedavg(&updates).expect("fedavg");
        assert_eq!(hierarchical.samples, flat.samples);
        for (a, b) in hierarchical
            .model
            .as_slice()
            .iter()
            .zip(flat.model.as_slice())
        {
            assert!((a - b).abs() < 1e-4, "{leaves}x{per_leaf}: {a} vs {b}");
        }
    }
}

#[test]
fn larger_payloads_still_aggregate_correctly() {
    let updates = updates(4, 4096, -1.0);
    let result = run_hierarchical(
        HierarchicalRunConfig {
            leaves: 2,
            updates_per_leaf: 2,
            aggregation_shards: 1,
        },
        &updates,
    )
    .expect("runtime");
    assert_eq!(result.model.dim(), 4096);
    assert!(result.model.l2_norm() > 0.0);
}
