//! End-to-end: real FedAvg training combined with the LIFL cluster simulation.

use lifl_baselines::{WorkloadDriver, WorkloadSetup};
use lifl_core::platform::LiflPlatform;
use lifl_core::AggregationSystem;
use lifl_types::{ClusterConfig, LiflConfig};

fn tiny_setup(rounds: usize) -> WorkloadSetup {
    let mut setup = WorkloadSetup::resnet18(rounds);
    setup.population.total_clients = 60;
    setup.population.active_per_round = 20;
    setup.dataset.num_clients = 60;
    setup.dataset.test_samples = 300;
    setup
}

#[test]
fn accuracy_improves_and_costs_accumulate() {
    let driver = WorkloadDriver::new(tiny_setup(8));
    let mut lifl = LiflPlatform::new(ClusterConfig::default(), LiflConfig::default());
    let out = driver.run(&mut lifl);
    assert_eq!(out.accuracy_vs_time.len(), 8);
    let first = out.accuracy_vs_time.points.first().unwrap().1;
    let last = out.accuracy_vs_time.points.last().unwrap().1;
    assert!(last > first, "accuracy should improve: {first} -> {last}");
    assert!(out.total_cpu.as_secs() > 0.0);
    assert!(out.total_wall.as_secs() > 0.0);
    assert!(lifl.rounds_run() == 8);
}

#[test]
fn workload_is_deterministic_for_fixed_seed() {
    let driver = WorkloadDriver::new(tiny_setup(4));
    let mut a = LiflPlatform::new(ClusterConfig::default(), LiflConfig::default());
    let mut b = LiflPlatform::new(ClusterConfig::default(), LiflConfig::default());
    let out_a = driver.run(&mut a);
    let out_b = driver.run(&mut b);
    assert_eq!(out_a.accuracy_vs_time.points, out_b.accuracy_vs_time.points);
    assert_eq!(out_a.total_cpu, out_b.total_cpu);
    assert_eq!(a.system(), b.system());
}
