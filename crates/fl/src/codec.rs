//! Model-update codecs: quantized / sparsified wire representations.
//!
//! LIFL's headline win is cutting the per-update *hand-off* cost; this module
//! attacks the remaining term, the payload bytes themselves, in the spirit of
//! implicitly/quantization-enhanced RL representations (iQRL, QeRL —
//! PAPERS.md). Three lossy representations are provided next to the lossless
//! [`CodecKind::Identity`]:
//!
//! * **Uniform8 / Uniform4** — stochastic uniform quantization with one `f32`
//!   scale per tensor. Stochastic rounding makes the quantizer *unbiased*
//!   (`E[decode(encode(x))] = x`), so cumulative FedAvg over many clients and
//!   rounds is not systematically dragged; the worst-case per-element error is
//!   one quantization step (`scale`), half a step in expectation.
//! * **TopK** — magnitude sparsification; only the largest-magnitude
//!   coordinates travel as `(index, value)` pairs.
//!
//! [`ErrorFeedback`] keeps a per-client residual (the part of each update the
//! codec dropped) and folds it into the client's next transmission, the
//! standard error-feedback construction that keeps long-run FedAvg convergent
//! even under aggressive compression.
//!
//! The wire form [`EncodedUpdate`] is a self-describing byte string (16-byte
//! header + payload) so it can be stored zero-copy in the `lifl-shmem` object
//! store and re-parsed by any aggregator without side-channel metadata. Its
//! size always equals [`CodecKind::encoded_bytes`] applied to the dense size,
//! keeping the simulator's cost accounting and the in-process runtime's real
//! byte counters consistent.

use crate::model::DenseModel;
use lifl_simcore::SimRng;
use lifl_types::{ClientId, CodecKind, LiflError, Result, WIRE_HEADER_BYTES};
use std::collections::HashMap;

/// Codec tags used in byte 0 of the wire header.
const TAG_IDENTITY: u8 = 0;
const TAG_UNIFORM8: u8 = 1;
const TAG_UNIFORM4: u8 = 2;
const TAG_TOPK: u8 = 3;

/// Quantization levels on each side of zero for the uniform codecs.
const U8_LEVELS: f32 = 127.0;
const U4_LEVELS: f32 = 7.0;

/// A model update in its on-wire representation: a self-describing header
/// followed by the codec-specific payload.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedUpdate {
    codec: CodecKind,
    dim: u32,
    scale: f32,
    kept: u32,
    body: Vec<u8>,
}

impl EncodedUpdate {
    /// The codec that produced this update.
    pub fn codec(&self) -> CodecKind {
        self.codec
    }

    /// Number of parameters of the dense model this encodes.
    pub fn dim(&self) -> usize {
        self.dim as usize
    }

    /// The per-tensor quantization scale (0 for `Identity` and `TopK`).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Payload bytes this update puts on the data plane. The 16-byte
    /// descriptor header travels the SKMSG control channel alongside the
    /// object key and weight, so it is excluded here — this always equals
    /// [`CodecKind::encoded_bytes`] of the dense size.
    pub fn wire_bytes(&self) -> u64 {
        self.body.len() as u64
    }

    /// Bytes the self-describing form occupies in shared memory (descriptor
    /// header + payload). The headerless dense representation of the
    /// pre-codec path is produced by `ObjectStore::put_f32`, not by this
    /// type, so every `EncodedUpdate` — `Identity` included — carries the
    /// header and round-trips through [`EncodedUpdate::from_bytes`].
    pub fn stored_bytes(&self) -> u64 {
        WIRE_HEADER_BYTES + self.body.len() as u64
    }

    /// Bytes of the dense `f32` representation of the same model.
    pub fn dense_bytes(&self) -> u64 {
        u64::from(self.dim) * 4
    }

    /// Serializes header + payload into one byte string for shared memory or
    /// the wire; [`EncodedUpdate::from_bytes`] is its exact inverse for every
    /// codec.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(WIRE_HEADER_BYTES as usize + self.body.len());
        let (tag, permille) = match self.codec {
            CodecKind::Identity => (TAG_IDENTITY, 0u16),
            CodecKind::Uniform8 => (TAG_UNIFORM8, 0),
            CodecKind::Uniform4 => (TAG_UNIFORM4, 0),
            CodecKind::TopK { permille } => (TAG_TOPK, permille),
        };
        out.push(tag);
        out.push(0);
        out.extend_from_slice(&permille.to_le_bytes());
        out.extend_from_slice(&self.dim.to_le_bytes());
        out.extend_from_slice(&self.scale.to_le_bytes());
        out.extend_from_slice(&self.kept.to_le_bytes());
        out.extend_from_slice(&self.body);
        out
    }

    /// Parses a wire byte string produced by [`EncodedUpdate::to_bytes`].
    ///
    /// # Errors
    /// Returns [`LiflError::Codec`] on a truncated or malformed buffer.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let header = bytes
            .get(..WIRE_HEADER_BYTES as usize)
            .ok_or_else(|| LiflError::Codec("wire buffer shorter than header".to_string()))?;
        let permille = u16::from_le_bytes([header[2], header[3]]);
        let dim = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        let scale = f32::from_le_bytes([header[8], header[9], header[10], header[11]]);
        let kept = u32::from_le_bytes([header[12], header[13], header[14], header[15]]);
        let codec = match header[0] {
            TAG_IDENTITY => CodecKind::Identity,
            TAG_UNIFORM8 => CodecKind::Uniform8,
            TAG_UNIFORM4 => CodecKind::Uniform4,
            TAG_TOPK => CodecKind::TopK { permille },
            other => return Err(LiflError::Codec(format!("unknown codec tag {other}"))),
        };
        let body = bytes[WIRE_HEADER_BYTES as usize..].to_vec();
        let expected = match codec {
            CodecKind::Identity => dim as usize * 4,
            CodecKind::Uniform8 => dim as usize,
            CodecKind::Uniform4 => (dim as usize).div_ceil(2),
            CodecKind::TopK { .. } => kept as usize * 8,
        };
        if body.len() != expected {
            return Err(LiflError::Codec(format!(
                "payload length {} does not match header (codec {codec}, dim {dim}, kept {kept})",
                body.len()
            )));
        }
        Ok(EncodedUpdate {
            codec,
            dim,
            scale,
            kept,
            body,
        })
    }

    /// Reconstructs the dense model this update encodes.
    pub fn decode(&self) -> DenseModel {
        let dim = self.dim as usize;
        match self.codec {
            CodecKind::Identity => DenseModel::from_vec(
                self.body
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    .collect(),
            ),
            CodecKind::Uniform8 => DenseModel::from_vec(
                self.body
                    .iter()
                    .map(|b| f32::from(*b as i8) * self.scale)
                    .collect(),
            ),
            CodecKind::Uniform4 => {
                let mut params = Vec::with_capacity(dim);
                for byte in &self.body {
                    params.push(f32::from(nibble_to_i8(byte & 0x0F)) * self.scale);
                    if params.len() < dim {
                        params.push(f32::from(nibble_to_i8(byte >> 4)) * self.scale);
                    }
                }
                params.truncate(dim);
                DenseModel::from_vec(params)
            }
            CodecKind::TopK { .. } => {
                let mut params = vec![0.0f32; dim];
                for pair in self.body.chunks_exact(8) {
                    let index = u32::from_le_bytes([pair[0], pair[1], pair[2], pair[3]]) as usize;
                    let value = f32::from_le_bytes([pair[4], pair[5], pair[6], pair[7]]);
                    if index < dim {
                        params[index] = value;
                    }
                }
                DenseModel::from_vec(params)
            }
        }
    }
}

/// Maps a sign-magnitude 4-bit nibble back to `[-7, 7]`.
fn nibble_to_i8(nibble: u8) -> i8 {
    let magnitude = (nibble & 0x07) as i8;
    if nibble & 0x08 != 0 {
        -magnitude
    } else {
        magnitude
    }
}

/// Maps a quantized level in `[-7, 7]` to a sign-magnitude nibble.
fn i8_to_nibble(level: i8) -> u8 {
    let magnitude = level.unsigned_abs().min(7);
    if level < 0 {
        magnitude | 0x08
    } else {
        magnitude
    }
}

/// The encoder/decoder for one [`CodecKind`], owning the randomness stream the
/// stochastic rounding draws from (deterministic given the seed).
#[derive(Debug, Clone)]
pub struct UpdateCodec {
    kind: CodecKind,
    rng: SimRng,
}

impl UpdateCodec {
    /// Creates a codec with a fixed default seed (deterministic streams).
    pub fn new(kind: CodecKind) -> Self {
        Self::with_seed(kind, 0xC0DEC)
    }

    /// Creates a codec whose stochastic rounding draws from `seed`.
    pub fn with_seed(kind: CodecKind, seed: u64) -> Self {
        UpdateCodec {
            kind,
            rng: SimRng::from_seed(seed),
        }
    }

    /// The configured codec kind.
    pub fn kind(&self) -> CodecKind {
        self.kind
    }

    /// Encodes a dense model into its wire representation.
    pub fn encode(&mut self, model: &DenseModel) -> EncodedUpdate {
        let params = model.as_slice();
        let dim = params.len() as u32;
        match self.kind {
            CodecKind::Identity => {
                let mut body = Vec::with_capacity(params.len() * 4);
                for v in params {
                    body.extend_from_slice(&v.to_le_bytes());
                }
                EncodedUpdate {
                    codec: self.kind,
                    dim,
                    scale: 0.0,
                    kept: dim,
                    body,
                }
            }
            CodecKind::Uniform8 => {
                let scale = tensor_scale(params, U8_LEVELS);
                let body = params
                    .iter()
                    .map(|v| self.stochastic_level(*v, scale, U8_LEVELS) as u8)
                    .collect();
                EncodedUpdate {
                    codec: self.kind,
                    dim,
                    scale,
                    kept: dim,
                    body,
                }
            }
            CodecKind::Uniform4 => {
                let scale = tensor_scale(params, U4_LEVELS);
                let mut body = Vec::with_capacity(params.len().div_ceil(2));
                for pair in params.chunks(2) {
                    let low = i8_to_nibble(self.stochastic_level(pair[0], scale, U4_LEVELS));
                    let high = pair
                        .get(1)
                        .map(|v| i8_to_nibble(self.stochastic_level(*v, scale, U4_LEVELS)))
                        .unwrap_or(0);
                    body.push(low | (high << 4));
                }
                EncodedUpdate {
                    codec: self.kind,
                    dim,
                    scale,
                    kept: dim,
                    body,
                }
            }
            CodecKind::TopK { permille } => {
                let kept = CodecKind::top_k_kept(params.len() as u64, permille) as usize;
                let mut order: Vec<usize> = (0..params.len()).collect();
                let by_magnitude_desc = |a: &usize, b: &usize| {
                    params[*b]
                        .abs()
                        .partial_cmp(&params[*a].abs())
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(b))
                };
                // Linear-time selection of the top-k set; only the kept
                // prefix needs ordering (and only by index, for the wire).
                if kept < order.len() {
                    order.select_nth_unstable_by(kept, by_magnitude_desc);
                    order.truncate(kept);
                }
                let mut indices = order;
                indices.sort_unstable();
                let mut body = Vec::with_capacity(indices.len() * 8);
                for index in &indices {
                    body.extend_from_slice(&(*index as u32).to_le_bytes());
                    body.extend_from_slice(&params[*index].to_le_bytes());
                }
                EncodedUpdate {
                    codec: self.kind,
                    dim,
                    scale: 0.0,
                    kept: indices.len() as u32,
                    body,
                }
            }
        }
    }

    /// Convenience: encode then immediately decode (what an aggregator sees).
    pub fn roundtrip(&mut self, model: &DenseModel) -> DenseModel {
        self.encode(model).decode()
    }

    /// Stochastically rounds `value / scale` to an integer level in
    /// `[-levels, levels]`: the floor is kept with probability `1 - frac`,
    /// making the quantizer unbiased.
    fn stochastic_level(&mut self, value: f32, scale: f32, levels: f32) -> i8 {
        if scale <= 0.0 || !value.is_finite() {
            return 0;
        }
        let exact = f64::from(value / scale);
        let floor = exact.floor();
        let frac = exact - floor;
        let rounded = if self.rng.uniform(0.0, 1.0) < frac {
            floor + 1.0
        } else {
            floor
        };
        rounded.clamp(f64::from(-levels), f64::from(levels)) as i8
    }
}

/// Per-tensor scale so the largest magnitude maps to the outermost level.
fn tensor_scale(params: &[f32], levels: f32) -> f32 {
    let max_abs = params
        .iter()
        .filter(|v| v.is_finite())
        .fold(0.0f32, |acc, v| acc.max(v.abs()));
    if max_abs == 0.0 {
        0.0
    } else {
        max_abs / levels
    }
}

/// Client-side error feedback: each client remembers the residual its codec
/// dropped last round and adds it back before encoding the next update, so the
/// *cumulative* FedAvg signal stays unbiased even under aggressive
/// compression.
#[derive(Debug, Clone)]
pub struct ErrorFeedback {
    codec: UpdateCodec,
    residuals: HashMap<ClientId, DenseModel>,
}

impl ErrorFeedback {
    /// Creates an error-feedback encoder around `codec`.
    pub fn new(codec: UpdateCodec) -> Self {
        ErrorFeedback {
            codec,
            residuals: HashMap::new(),
        }
    }

    /// The codec kind in use.
    pub fn kind(&self) -> CodecKind {
        self.codec.kind()
    }

    /// Encodes `model` for `client`, compensating with the client's stored
    /// residual and retaining the new residual for the next round.
    ///
    /// # Errors
    /// Returns [`LiflError::DimensionMismatch`] if the client's model changes
    /// dimension between rounds.
    pub fn encode(&mut self, client: ClientId, model: &DenseModel) -> Result<EncodedUpdate> {
        let mut compensated = model.clone();
        if let Some(residual) = self.residuals.get(&client) {
            compensated.axpy(1.0, residual)?;
        }
        let encoded = self.codec.encode(&compensated);
        if self.codec.kind().is_lossless() {
            self.residuals.remove(&client);
        } else {
            let mut residual = compensated;
            residual.axpy(-1.0, &encoded.decode())?;
            self.residuals.insert(client, residual);
        }
        Ok(encoded)
    }

    /// The residual currently stored for `client`, if any.
    pub fn residual(&self, client: ClientId) -> Option<&DenseModel> {
        self.residuals.get(&client)
    }

    /// Drops every stored residual (e.g. when the model dimension changes).
    pub fn reset(&mut self) {
        self.residuals.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(values: &[f32]) -> DenseModel {
        DenseModel::from_vec(values.to_vec())
    }

    #[test]
    fn identity_roundtrip_is_bit_exact() {
        let m = model(&[1.0, -2.5, 3.75, f32::MIN_POSITIVE]);
        let mut codec = UpdateCodec::new(CodecKind::Identity);
        let encoded = codec.encode(&m);
        // The data plane accounts payload bytes only; the stored form adds
        // the 16-byte descriptor so from_bytes can re-parse it.
        assert_eq!(encoded.wire_bytes(), 16);
        assert_eq!(encoded.to_bytes().len(), 32);
        let parsed = EncodedUpdate::from_bytes(&encoded.to_bytes()).unwrap();
        assert_eq!(parsed, encoded);
        let decoded = encoded.decode();
        for (a, b) in m.as_slice().iter().zip(decoded.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn wire_bytes_match_codec_kind_accounting() {
        let dims = [1usize, 2, 7, 64, 1001];
        for kind in CodecKind::ablation_set() {
            let mut codec = UpdateCodec::new(kind);
            for dim in dims {
                let m = DenseModel::from_vec((0..dim).map(|i| i as f32 * 0.3 - 1.0).collect());
                let encoded = codec.encode(&m);
                assert_eq!(
                    encoded.wire_bytes(),
                    kind.encoded_bytes((dim * 4) as u64),
                    "codec {kind} dim {dim}"
                );
                assert_eq!(encoded.to_bytes().len() as u64, encoded.stored_bytes());
            }
        }
    }

    #[test]
    fn from_bytes_roundtrips_every_codec() {
        for kind in [
            CodecKind::Identity,
            CodecKind::Uniform8,
            CodecKind::Uniform4,
            CodecKind::TopK { permille: 300 },
        ] {
            let mut codec = UpdateCodec::new(kind);
            let m = DenseModel::from_vec((0..33).map(|i| (i as f32 - 16.0) * 0.21).collect());
            let encoded = codec.encode(&m);
            let parsed = EncodedUpdate::from_bytes(&encoded.to_bytes()).unwrap();
            assert_eq!(parsed, encoded);
            assert_eq!(parsed.decode(), encoded.decode());
        }
    }

    #[test]
    fn malformed_wire_buffers_are_rejected() {
        assert!(EncodedUpdate::from_bytes(&[1, 2, 3]).is_err());
        let mut codec = UpdateCodec::new(CodecKind::Uniform8);
        let mut bytes = codec.encode(&model(&[1.0, 2.0])).to_bytes();
        bytes[0] = 99; // unknown tag
        assert!(EncodedUpdate::from_bytes(&bytes).is_err());
        bytes[0] = 1;
        bytes.pop(); // truncated payload
        assert!(EncodedUpdate::from_bytes(&bytes).is_err());
    }

    #[test]
    fn uniform_error_is_bounded_by_one_step() {
        let values: Vec<f32> = (0..257)
            .map(|i| ((i * 37) % 101) as f32 * 0.13 - 6.5)
            .collect();
        let m = DenseModel::from_vec(values);
        for (kind, levels) in [
            (CodecKind::Uniform8, U8_LEVELS),
            (CodecKind::Uniform4, U4_LEVELS),
        ] {
            let mut codec = UpdateCodec::new(kind);
            let encoded = codec.encode(&m);
            let scale = encoded.scale();
            assert!((scale - 6.5 / levels).abs() < 0.2, "scale {scale}");
            for (x, y) in m.as_slice().iter().zip(encoded.decode().as_slice()) {
                assert!(
                    (x - y).abs() <= scale + 1e-6,
                    "{kind}: |{x} - {y}| > step {scale}"
                );
            }
        }
    }

    #[test]
    fn top_k_keeps_largest_magnitudes() {
        let m = model(&[0.1, -9.0, 0.2, 7.0, -0.3, 0.05, 4.0, 0.0, 0.0, 0.0]);
        let mut codec = UpdateCodec::new(CodecKind::TopK { permille: 300 });
        let decoded = codec.encode(&m).decode();
        let slice = decoded.as_slice();
        assert_eq!(slice[1], -9.0);
        assert_eq!(slice[3], 7.0);
        assert_eq!(slice[6], 4.0);
        assert_eq!(slice.iter().filter(|v| **v != 0.0).count(), 3);
    }

    #[test]
    fn zero_tensor_encodes_losslessly_everywhere() {
        for kind in CodecKind::ablation_set() {
            let mut codec = UpdateCodec::new(kind);
            let decoded = codec.roundtrip(&DenseModel::zeros(9));
            assert_eq!(decoded.as_slice(), &[0.0f32; 9]);
        }
    }

    #[test]
    fn error_feedback_residual_tracks_dropped_mass() {
        let client = ClientId::new(7);
        let m = model(&[1.0, -0.4, 0.03, 0.8]);
        let mut feedback = ErrorFeedback::new(UpdateCodec::new(CodecKind::Uniform4));
        let encoded = feedback.encode(client, &m).unwrap();
        let residual = feedback.residual(client).unwrap().clone();
        // residual = compensated - decoded, so decoded + residual == input.
        let mut reconstructed = encoded.decode();
        reconstructed.axpy(1.0, &residual).unwrap();
        for (a, b) in m.as_slice().iter().zip(reconstructed.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
        // Identity stores no residual.
        let mut lossless = ErrorFeedback::new(UpdateCodec::new(CodecKind::Identity));
        lossless.encode(client, &m).unwrap();
        assert!(lossless.residual(client).is_none());
        lossless.reset();
    }

    #[test]
    fn error_feedback_time_average_converges_to_input() {
        // A client repeatedly sends the same update through an aggressive
        // codec; with error feedback the *average* decoded signal converges to
        // the true update even though each round is coarsely quantized.
        let client = ClientId::new(1);
        let m = model(&[0.31, -0.27, 0.011, 0.44, -0.09]);
        let mut feedback = ErrorFeedback::new(UpdateCodec::new(CodecKind::Uniform4));
        let rounds = 400;
        let mut sum = DenseModel::zeros(m.dim());
        for _ in 0..rounds {
            let decoded = feedback.encode(client, &m).unwrap().decode();
            sum.axpy(1.0, &decoded).unwrap();
        }
        sum.scale(1.0 / rounds as f32);
        for (a, b) in m.as_slice().iter().zip(sum.as_slice()) {
            assert!((a - b).abs() < 0.02, "time-average {b} far from {a}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::aggregate::{fedavg, ModelUpdate};
    use proptest::prelude::*;

    fn arbitrary_params() -> impl Strategy<Value = Vec<f32>> {
        proptest::collection::vec(-8.0f32..8.0, 1..48)
    }

    proptest! {
        /// Stochastic uniform quantization never errs by more than one step
        /// per element (and half a step in expectation; the hard bound is what
        /// holds sample-wise).
        #[test]
        fn quantize_dequantize_error_bounded_by_step(params in arbitrary_params(), seed in 0u64..1000) {
            for (kind, levels) in [(CodecKind::Uniform8, 127.0f32), (CodecKind::Uniform4, 7.0f32)] {
                let mut codec = UpdateCodec::with_seed(kind, seed);
                let m = DenseModel::from_vec(params.clone());
                let encoded = codec.encode(&m);
                let step = encoded.scale();
                let max_abs = params.iter().fold(0.0f32, |a, v| a.max(v.abs()));
                prop_assert!((step - max_abs / levels).abs() <= max_abs * 1e-5 + 1e-12);
                for (x, y) in m.as_slice().iter().zip(encoded.decode().as_slice()) {
                    prop_assert!((x - y).abs() <= step * 1.0001 + 1e-6,
                        "{}: |{} - {}| exceeds step {}", kind, x, y, step);
                }
            }
        }

        /// Error-feedback FedAvg over many rounds converges to the
        /// unquantized mean: the running average of the decoded aggregate
        /// approaches the true FedAvg of the client updates.
        #[test]
        fn error_feedback_fedavg_converges_to_unquantized_mean(
            updates in proptest::collection::vec((arbitrary_params(), 1u64..20), 2..5),
            seed in 0u64..200,
        ) {
            let dim = updates[0].0.len();
            let clients: Vec<ModelUpdate> = updates
                .iter()
                .enumerate()
                .map(|(i, (params, samples))| {
                    let mut p = params.clone();
                    p.resize(dim, 0.0);
                    ModelUpdate::from_client(ClientId::new(i as u64), DenseModel::from_vec(p), *samples)
                })
                .collect();
            let exact = fedavg(&clients).unwrap();
            let mut feedback = ErrorFeedback::new(UpdateCodec::with_seed(CodecKind::Uniform4, seed));
            let rounds = 150usize;
            let mut mean = DenseModel::zeros(dim);
            for _ in 0..rounds {
                let round: Vec<ModelUpdate> = clients
                    .iter()
                    .map(|u| {
                        let decoded = feedback
                            .encode(u.client.unwrap(), &u.model)
                            .unwrap()
                            .decode();
                        ModelUpdate::from_client(u.client.unwrap(), decoded, u.samples)
                    })
                    .collect();
                mean.axpy(1.0 / rounds as f32, &fedavg(&round).unwrap().model).unwrap();
            }
            let max_abs = exact.model.as_slice().iter().fold(1.0f32, |a, v| a.max(v.abs()));
            for (a, b) in exact.model.as_slice().iter().zip(mean.as_slice()) {
                prop_assert!((a - b).abs() <= 0.08 * max_abs + 0.05,
                    "round-averaged {} drifted from exact {}", b, a);
            }
        }

        /// Hierarchical aggregation over Identity-encoded updates is bit-exact
        /// with the same hierarchy over the raw updates, and both match flat
        /// aggregation within float tolerance.
        #[test]
        fn identity_hierarchy_is_bit_exact(
            updates in proptest::collection::vec((proptest::collection::vec(-10.0f32..10.0, 4..=4), 1u64..30), 4..10),
            split in 1usize..9,
        ) {
            let raw: Vec<ModelUpdate> = updates
                .iter()
                .enumerate()
                .map(|(i, (p, s))| ModelUpdate::from_client(ClientId::new(i as u64), DenseModel::from_vec(p.clone()), *s))
                .collect();
            let mut codec = UpdateCodec::new(CodecKind::Identity);
            let encoded: Vec<ModelUpdate> = raw
                .iter()
                .map(|u| ModelUpdate {
                    client: u.client,
                    model: codec.encode(&u.model).decode(),
                    samples: u.samples,
                })
                .collect();
            let split = split.min(raw.len() - 1).max(1);
            let top_raw = fedavg(&[
                fedavg(&raw[..split]).unwrap(),
                fedavg(&raw[split..]).unwrap(),
            ]).unwrap();
            let top_encoded = fedavg(&[
                fedavg(&encoded[..split]).unwrap(),
                fedavg(&encoded[split..]).unwrap(),
            ]).unwrap();
            prop_assert_eq!(top_raw.samples, top_encoded.samples);
            for (a, b) in top_raw.model.as_slice().iter().zip(top_encoded.model.as_slice()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "identity hierarchy not bit-exact");
            }
            let flat = fedavg(&raw).unwrap();
            for (a, b) in flat.model.as_slice().iter().zip(top_encoded.model.as_slice()) {
                prop_assert!((a - b).abs() < 1e-2);
            }
        }
    }
}
