//! Figure 13 (Appendix F): message-queuing overheads of SF-mono, LIFL,
//! SF-micro and SL-B — CPU, memory and client-to-aggregator delay for one
//! model update of each paper model size.

use crate::report::format_table;
use lifl_dataplane::{CostModel, QueuingSetup};
use lifl_types::ModelKind;
use serde::Serialize;

/// One bar of Fig. 13.
#[derive(Debug, Clone, Serialize)]
pub struct Fig13Row {
    /// Model name (M1 = ResNet-18, M2 = ResNet-34, M3 = ResNet-152).
    pub model: String,
    /// Queuing setup label.
    pub setup: String,
    /// CPU cycles in giga-cycles (Fig. 13(a) reports CPU utilisation; cycles are proportional).
    pub cpu_gcycles: f64,
    /// Memory cost normalised to SF-mono (Fig. 13(b)).
    pub normalized_memory: f64,
    /// End-to-end delay from client to aggregator in seconds (Fig. 13(c)).
    pub delay_s: f64,
}

/// The full Fig. 13 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig13Result {
    /// All rows.
    pub rows: Vec<Fig13Row>,
}

/// Runs the Fig. 13 comparison.
pub fn run() -> Fig13Result {
    let cost = CostModel::paper_calibrated();
    let mut rows = Vec::new();
    for model in ModelKind::paper_models() {
        let bytes = model.update_bytes();
        let mono_memory = QueuingSetup::SfMono
            .queuing_pipeline(bytes, &cost.models)
            .buffered_bytes_excluding("kernel") as f64;
        for setup in QueuingSetup::all() {
            let pipeline = setup.queuing_pipeline(bytes, &cost.models);
            rows.push(Fig13Row {
                model: model.to_string(),
                setup: setup.label().to_string(),
                cpu_gcycles: pipeline.cpu().as_giga(),
                normalized_memory: pipeline.buffered_bytes_excluding("kernel") as f64 / mono_memory,
                delay_s: pipeline.latency().as_secs(),
            });
        }
    }
    Fig13Result { rows }
}

/// Formats the result.
pub fn format(result: &Fig13Result) -> String {
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.setup.clone(),
                format!("{:.2}", r.cpu_gcycles),
                format!("{:.2}", r.normalized_memory),
                format!("{:.3}", r.delay_s),
            ]
        })
        .collect();
    let mut out = String::from("Fig. 13: message-queuing overheads (client -> aggregator)\n");
    out.push_str(&format_table(
        &[
            "model",
            "setup",
            "CPU (Gcycles)",
            "norm. memory",
            "delay (s)",
        ],
        &rows,
    ));
    out
}

impl Fig13Result {
    /// Looks up one bar.
    pub fn cell(&self, model: &str, setup: &str) -> Option<&Fig13Row> {
        self.rows
            .iter()
            .find(|r| r.model == model && r.setup == setup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_appendix_f_claims() {
        let result = run();
        assert_eq!(result.rows.len(), 12);
        let lifl = result.cell("ResNet-152", "LIFL").unwrap();
        let mono = result.cell("ResNet-152", "SF-mono").unwrap();
        let micro = result.cell("ResNet-152", "SF-micro").unwrap();
        let slb = result.cell("ResNet-152", "SL-B").unwrap();

        // Memory: SL-B ~3x SF-mono/LIFL; SF-micro in between (Appendix F).
        assert!(slb.normalized_memory > 2.4 && slb.normalized_memory < 3.6);
        assert!(micro.normalized_memory > 1.5);
        assert!(lifl.normalized_memory <= 1.05);
        // CPU: LIFL ~1.5x less than SL-B and ~1.9x less than SF-micro.
        assert!(slb.cpu_gcycles / lifl.cpu_gcycles > 1.3);
        assert!(micro.cpu_gcycles / lifl.cpu_gcycles > 1.3);
        // Delay: LIFL lower than both, and equivalent to the monolith.
        assert!(slb.delay_s > lifl.delay_s);
        assert!(micro.delay_s > lifl.delay_s);
        assert!((lifl.delay_s / mono.delay_s) < 1.3);
        let text = format(&result);
        assert!(text.contains("SF-micro"));
    }
}
