//! Table formatting and JSON output shared by the experiment binaries.

use serde::Serialize;

/// Formats a simple aligned table.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Serialises a result record to pretty JSON (for EXPERIMENTS.md bookkeeping).
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).unwrap_or_else(|e| format!("{{\"error\": \"{e}\"}}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let table = format_table(
            &["system", "latency"],
            &[
                vec!["LIFL".to_string(), "0.76".to_string()],
                vec!["SF".to_string(), "2.28".to_string()],
            ],
        );
        assert!(table.contains("LIFL"));
        assert!(table.contains("0.76"));
        assert!(table.lines().count() >= 4);
    }

    #[test]
    fn json_roundtrip() {
        #[derive(serde::Serialize)]
        struct R {
            x: f64,
        }
        assert!(to_json(&R { x: 1.5 }).contains("1.5"));
    }
}
