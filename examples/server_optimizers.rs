//! Swapping the server optimizer on top of LIFL's aggregation: FedAvg versus
//! the adaptive federated optimizers (FedAdagrad / FedAdam / FedYogi) on the
//! same synchronous round loop and non-IID workload.
//!
//! Run with: `cargo run -p lifl-examples --example server_optimizers`

use lifl_fl::aggregate::{fedavg, ModelUpdate};
use lifl_fl::client::ClientAvailability;
use lifl_fl::dataset::{DatasetConfig, FederatedDataset};
use lifl_fl::metrics::accuracy_percent;
use lifl_fl::population::{Population, PopulationConfig};
use lifl_fl::server_opt::{ServerOptConfig, ServerOptKind, ServerOptimizer};
use lifl_fl::trainer::{LocalTrainer, TrainerConfig};
use lifl_simcore::SimRng;

const ROUNDS: usize = 12;

fn main() {
    let mut rng = SimRng::from_seed(7);
    let dataset = FederatedDataset::generate(
        DatasetConfig {
            num_clients: 60,
            num_features: 16,
            num_classes: 8,
            mean_samples_per_client: 50,
            dirichlet_alpha: 0.3,
            test_samples: 500,
            noise_std: 0.4,
        },
        &mut rng,
    );
    let population = Population::generate(
        PopulationConfig {
            total_clients: 60,
            active_per_round: 20,
            availability: ClientAvailability::AlwaysOn,
            mean_samples: 50,
            speed_spread: 0.4,
        },
        &mut rng,
    );
    let trainer = LocalTrainer::new(
        dataset.num_features,
        dataset.num_classes,
        TrainerConfig {
            batch_size: 16,
            learning_rate: 0.05,
            local_epochs: 2,
        },
    );

    println!("optimizer    final accuracy after {ROUNDS} rounds");
    for kind in ServerOptKind::all() {
        // Each optimizer sees the same client selection sequence.
        let mut rng = SimRng::from_seed(99);
        let mut optimizer =
            ServerOptimizer::new(ServerOptConfig::for_kind(kind)).expect("valid config");
        let mut global = dataset.initial_model();
        for _ in 0..ROUNDS {
            let participants = population.select_round(&mut rng);
            let updates: Vec<ModelUpdate> = participants
                .iter()
                .map(|client| {
                    let shard = dataset.shard(client.id);
                    let (local, _) = trainer.train(&global, shard, &mut rng);
                    ModelUpdate::from_client(client.id, local, shard.len().max(1) as u64)
                })
                .collect();
            let aggregate = fedavg(&updates).expect("non-empty round");
            optimizer
                .step(&mut global, &aggregate.model)
                .expect("dimensions match");
        }
        let accuracy = accuracy_percent(&trainer, &global, dataset.test_set());
        println!("{:<12} {:>6.1}%", kind.label(), accuracy);
    }
}
