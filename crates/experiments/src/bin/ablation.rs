//! Regenerates the ablation sweeps (EWMA α, leaf fan-in, placement policy).
fn main() {
    let result = lifl_experiments::ablation::run();
    println!("{}", lifl_experiments::ablation::format(&result));
    println!("{}", lifl_experiments::report::to_json(&result));
}
