#![forbid(unsafe_code)]
mod runtime;

#[allow(deprecated)]
pub fn drive() {
    runtime::run_hierarchical();
}
