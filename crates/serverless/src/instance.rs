//! Warm-instance pools with cold-start accounting and keep-alive termination.

use crate::function::{FunctionSpec, InstanceState};
use lifl_dataplane::cost::StartupCost;
use lifl_types::{InstanceId, SimDuration, SimTime};
use std::collections::HashMap;

/// The result of acquiring an instance for a piece of work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcquireOutcome {
    /// The instance that will run the work.
    pub instance: InstanceId,
    /// When the instance is ready to start processing.
    pub ready_at: SimTime,
    /// Whether a cold start was required.
    pub cold_start: bool,
    /// CPU time consumed by the start-up (zero for warm acquisitions).
    pub startup_cpu: SimDuration,
}

#[derive(Debug, Clone)]
struct Instance {
    state: InstanceState,
    idle_since: SimTime,
    busy_until: SimTime,
}

/// A per-node pool of function instances.
#[derive(Debug, Clone)]
pub struct InstancePool {
    spec: FunctionSpec,
    startup: StartupCost,
    instances: HashMap<InstanceId, Instance>,
    next_id: u64,
    cold_starts: u64,
    warm_acquisitions: u64,
}

impl InstancePool {
    /// Creates an empty pool for `spec` with the given start-up cost model.
    pub fn new(spec: FunctionSpec, startup: StartupCost) -> Self {
        InstancePool {
            spec,
            startup,
            instances: HashMap::new(),
            next_id: 0,
            cold_starts: 0,
            warm_acquisitions: 0,
        }
    }

    /// The function spec this pool serves.
    pub fn spec(&self) -> &FunctionSpec {
        &self.spec
    }

    /// Acquires an instance at `now`: reuses a warm idle instance when one
    /// exists, otherwise performs a cold start.
    pub fn acquire(&mut self, now: SimTime) -> AcquireOutcome {
        self.expire_idle(now);
        // Prefer a warm idle instance.
        let warm = self
            .instances
            .iter()
            .filter(|(_, inst)| inst.state == InstanceState::Idle)
            .map(|(id, _)| *id)
            .min();
        if let Some(id) = warm {
            let inst = self.instances.get_mut(&id).expect("instance exists");
            inst.state = InstanceState::Busy;
            self.warm_acquisitions += 1;
            return AcquireOutcome {
                instance: id,
                ready_at: now + self.startup.warm_start,
                cold_start: false,
                startup_cpu: SimDuration::ZERO,
            };
        }
        // Cold start a new instance.
        let id = InstanceId::new(self.next_id);
        self.next_id += 1;
        self.instances.insert(
            id,
            Instance {
                state: InstanceState::Busy,
                idle_since: now,
                busy_until: now,
            },
        );
        self.cold_starts += 1;
        AcquireOutcome {
            instance: id,
            ready_at: now + self.startup.cold_start,
            cold_start: true,
            startup_cpu: self.startup.cold_start_cpu,
        }
    }

    /// Releases `instance` back to the warm pool at `now`.
    pub fn release(&mut self, instance: InstanceId, now: SimTime) {
        if let Some(inst) = self.instances.get_mut(&instance) {
            inst.state = InstanceState::Idle;
            inst.idle_since = now;
            inst.busy_until = now;
        }
    }

    /// Terminates instances idle longer than the keep-alive period.
    pub fn expire_idle(&mut self, now: SimTime) {
        let keep_alive = self.spec.keep_alive;
        for inst in self.instances.values_mut() {
            if inst.state == InstanceState::Idle && now.duration_since(inst.idle_since) > keep_alive
            {
                inst.state = InstanceState::Terminated;
            }
        }
        self.instances
            .retain(|_, inst| inst.state != InstanceState::Terminated);
    }

    /// Number of live (warm or busy) instances.
    pub fn live_instances(&self) -> usize {
        self.instances.len()
    }

    /// Number of cold starts performed.
    pub fn cold_starts(&self) -> u64 {
        self.cold_starts
    }

    /// Number of warm acquisitions served.
    pub fn warm_acquisitions(&self) -> u64 {
        self.warm_acquisitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifl_dataplane::CostModel;
    use lifl_types::SystemKind;

    fn pool(system: SystemKind) -> InstancePool {
        InstancePool::new(
            FunctionSpec::aggregator(system),
            CostModel::paper_calibrated().startup(system),
        )
    }

    #[test]
    fn cold_then_warm() {
        let mut pool = pool(SystemKind::Serverless);
        let t0 = SimTime::from_secs(0.0);
        let first = pool.acquire(t0);
        assert!(first.cold_start);
        assert!(first.ready_at.as_secs() >= 3.0);
        pool.release(first.instance, SimTime::from_secs(10.0));
        let second = pool.acquire(SimTime::from_secs(12.0));
        assert!(!second.cold_start);
        assert_eq!(second.instance, first.instance);
        assert_eq!(pool.cold_starts(), 1);
        assert_eq!(pool.warm_acquisitions(), 1);
    }

    #[test]
    fn keep_alive_expires_idle_instances() {
        let mut pool = pool(SystemKind::Serverless);
        let first = pool.acquire(SimTime::ZERO);
        pool.release(first.instance, SimTime::from_secs(5.0));
        // Past keep-alive (60s), the instance is gone and we cold start again.
        let second = pool.acquire(SimTime::from_secs(120.0));
        assert!(second.cold_start);
        assert_eq!(pool.cold_starts(), 2);
    }

    #[test]
    fn lifl_cold_start_cheaper_than_knative() {
        let mut sl = pool(SystemKind::Serverless);
        let mut lifl = pool(SystemKind::Lifl);
        let a = sl.acquire(SimTime::ZERO);
        let b = lifl.acquire(SimTime::ZERO);
        assert!(b.ready_at < a.ready_at);
        assert!(b.startup_cpu < a.startup_cpu);
    }

    #[test]
    fn concurrent_acquisitions_create_instances() {
        let mut pool = pool(SystemKind::Lifl);
        let a = pool.acquire(SimTime::ZERO);
        let b = pool.acquire(SimTime::ZERO);
        assert_ne!(a.instance, b.instance);
        assert_eq!(pool.live_instances(), 2);
    }
}
