//! Node kills at every phase of a cluster round: before the drive, at every
//! hop boundary mid-drive, mid-ingest, and between rounds. The round must
//! survive via refill + retry-with-dedup, and undisturbed re-sends must keep
//! the survived aggregate bit-exact with a failure-free round.

use crate::util::{assert_bit_exact, assert_close, updates};
use lifl_core::cluster::{Cluster, ClusterBuilder, FaultToleranceConfig};
use lifl_core::session::Update;
use lifl_fl::aggregate::ModelUpdate;
use lifl_types::{NodeId, Topology};

const DIM: usize = 16;

/// Three nodes of `[2, 2]` subtrees: 12 updates per round.
fn topology() -> Topology {
    Topology::new(vec![2, 2, 3]).expect("topology")
}

fn fault_cluster() -> Cluster {
    ClusterBuilder::new()
        .topology(topology())
        .fault_tolerance(FaultToleranceConfig::default())
        .build()
        .expect("cluster")
}

fn drive_clean(batch: &[ModelUpdate]) -> ModelUpdate {
    let mut cluster = ClusterBuilder::new()
        .topology(topology())
        .build()
        .expect("cluster");
    cluster
        .ingest_all(batch.iter().cloned().map(Update::Dense))
        .unwrap();
    cluster.drive().unwrap().update
}

/// Re-sends every lost client's original update, in the order the cluster
/// reported the loss.
fn resend_lost(cluster: &mut Cluster, batch: &[ModelUpdate]) -> usize {
    let lost = cluster.take_lost_clients();
    let n = lost.len();
    for client in lost {
        let update = batch
            .iter()
            .find(|u| u.client == Some(client))
            .expect("lost client came from the batch");
        cluster.ingest(Update::Dense(update.clone())).unwrap();
    }
    n
}

/// A non-top node killed at every hop boundary — from "no hops done yet"
/// through "every survivor already exported" — always loses exactly its own
/// subtree, and the retried round is bit-exact with the undisturbed one.
#[test]
fn kill_at_every_hop_boundary_survives_bit_exact() {
    let batch = updates(topology().total_updates(), DIM);
    let clean = drive_clean(&batch);
    for after_hops in 0..3u64 {
        let mut cluster = fault_cluster();
        cluster
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .unwrap();
        // Node 2 never hosts the top (the incumbent is node 0), so its kill
        // is always a child failure, never a checkpoint restore.
        cluster
            .schedule_node_failure(NodeId::new(2), after_hops)
            .unwrap();
        match cluster.drive() {
            Err(lifl_types::LiflError::NodeFailure { node, lost_updates }) => {
                assert_eq!(node, 2, "after {after_hops} hops");
                assert_eq!(lost_updates, 4, "after {after_hops} hops");
            }
            other => panic!("after {after_hops} hops: expected a node failure, got {other:?}"),
        }
        assert_eq!(resend_lost(&mut cluster, &batch), 4);
        let report = cluster.drive().unwrap();
        assert_eq!(report.updates_ingested(), 12);
        assert_eq!(report.hops.len(), 3, "retry still prices one hop per node");
        let stats = cluster.fault_stats().unwrap();
        assert_eq!(
            stats.deduped_hops, after_hops,
            "every hop completed before the kill is deduped, never re-shipped"
        );
        assert_eq!(stats.node_restarts, 1);
        assert_bit_exact(
            &report.update.model,
            &clean.model,
            &format!("kill after {after_hops} hops"),
        );
        assert_eq!(report.update.samples, clean.samples);
    }
}

/// A node killed halfway through ingest loses only what it held; the refill
/// re-routes in-flight clients, so leaf assignment shifts and the survived
/// aggregate matches the clean round to tolerance rather than bit-exactly.
#[test]
fn mid_ingest_kill_survives_to_tolerance() {
    let batch = updates(topology().total_updates(), DIM);
    let clean = drive_clean(&batch);
    let mut cluster = fault_cluster();
    // One update per leaf so far: node 1 holds exactly two.
    cluster
        .ingest_all(batch.iter().take(6).cloned().map(Update::Dense))
        .unwrap();
    let kill = cluster.inject_node_failure(NodeId::new(1)).unwrap();
    assert!(!kill.top_host);
    assert_eq!(kill.lost_updates, 2);
    // The rest of the fleet keeps reporting; the restarted node's slots are
    // refilled first, so these in-flight clients land on different leaves
    // than they would have in a failure-free round.
    cluster
        .ingest_all(batch.iter().skip(6).cloned().map(Update::Dense))
        .unwrap();
    assert_eq!(resend_lost(&mut cluster, &batch), 2);
    let report = cluster.drive().unwrap();
    assert_eq!(report.updates_ingested(), 12);
    assert_eq!(report.update.samples, clean.samples);
    assert_close(&report.update.model, &clean.model, 1e-3, "mid-ingest kill");
}

/// A kill between rounds (nothing pending) loses no updates and the next
/// round over the restarted node is bit-exact with an undisturbed cluster.
#[test]
fn between_rounds_kill_loses_nothing() {
    let batch = updates(topology().total_updates(), DIM);
    let clean = drive_clean(&batch);
    let mut cluster = fault_cluster();
    cluster
        .ingest_all(batch.iter().cloned().map(Update::Dense))
        .unwrap();
    cluster.drive().unwrap();
    // The fleet is idle when node 1 dies: a restart, but zero loss.
    let kill = cluster.inject_node_failure(NodeId::new(1)).unwrap();
    assert_eq!(kill.lost_updates, 0);
    assert!(!kill.top_host);
    assert!(cluster.take_lost_clients().is_empty());
    cluster
        .ingest_all(batch.iter().cloned().map(Update::Dense))
        .unwrap();
    let report = cluster.drive().unwrap();
    assert_eq!(report.updates_ingested(), 12);
    assert_bit_exact(&report.update.model, &clean.model, "between-rounds kill");
    assert_eq!(cluster.fault_stats().unwrap().node_restarts, 1);
}
