//! Deprecated compatibility shims over the unified [`crate::session`] API.
//!
//! The in-process threaded runtime used to be driven through two parallel
//! free functions (codec-blind [`run_hierarchical`] and codec-aware
//! [`run_hierarchical_with_codec`]) hard-wired to a two-level tree. Both now
//! delegate to a [`SessionBuilder`]-built [`crate::session::Session`] — one
//! builder-driven, codec-transparent entry point supporting N-level
//! topologies — and exist only so downstream code migrates incrementally
//! (see `MIGRATION.md`).

// The deprecated entry points are intentionally defined, exercised and
// cross-checked against `Session` here.
#![allow(deprecated)]

use crate::session::{SessionBuilder, SessionReport, Update};
use lifl_fl::aggregate::ModelUpdate;
use lifl_shmem::StoreStats;
use lifl_types::{CodecKind, Result, Topology};

/// Configuration of an in-process two-level hierarchical aggregation run.
#[deprecated(
    since = "0.2.0",
    note = "use lifl_types::Topology with lifl_core::session::SessionBuilder (see MIGRATION.md)"
)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchicalRunConfig {
    /// Number of leaf aggregators.
    pub leaves: usize,
    /// Updates expected per leaf (the leaf's aggregation goal).
    pub updates_per_leaf: usize,
    /// Parameter-vector shards every aggregator folds batches across
    /// (`LiflConfig.aggregation_shards`; 1 = the sequential eager fold).
    pub aggregation_shards: usize,
}

impl Default for HierarchicalRunConfig {
    fn default() -> Self {
        HierarchicalRunConfig {
            leaves: 4,
            updates_per_leaf: 2,
            aggregation_shards: 1,
        }
    }
}

impl From<HierarchicalRunConfig> for Topology {
    fn from(config: HierarchicalRunConfig) -> Topology {
        Topology::two_level(config.leaves, config.updates_per_leaf)
    }
}

/// What a codec-aware hierarchical run produced, beyond the global model.
#[deprecated(
    since = "0.2.0",
    note = "use lifl_core::session::SessionReport (see MIGRATION.md)"
)]
#[derive(Debug, Clone)]
pub struct HierarchicalRunReport {
    /// The aggregated global model.
    pub update: ModelUpdate,
    /// Object-store statistics at the end of the run.
    pub store_stats: StoreStats,
    /// Total bytes client updates occupied on the data plane (encoded form).
    pub client_wire_bytes: u64,
}

/// Builds a two-level session for a shim run and drives it over `updates`.
fn run_session(
    config: HierarchicalRunConfig,
    updates: &[ModelUpdate],
    codec: CodecKind,
) -> Result<SessionReport> {
    // The seed rejected degenerate shapes outright; `Topology::two_level`
    // clamps zeros to 1 instead, so keep the old contract explicitly.
    if config.leaves == 0 || config.updates_per_leaf == 0 {
        return Err(lifl_types::LiflError::InvalidConfig(format!(
            "leaves ({}) and updates_per_leaf ({}) must be at least 1",
            config.leaves, config.updates_per_leaf
        )));
    }
    Topology::from(config).validate(updates.len())?;
    let mut session = SessionBuilder::new()
        .topology(config.into())
        .codec(codec)
        .shards(config.aggregation_shards)
        .build()?;
    session.ingest_all(updates.iter().cloned().map(Update::Dense))?;
    session.drive()
}

/// Runs a complete two-level hierarchical aggregation over the given client
/// updates using real threads and shared memory, returning the global model.
///
/// # Errors
/// Fails if `updates` does not evenly cover `leaves * updates_per_leaf`, or on
/// any store/aggregation error.
#[deprecated(
    since = "0.2.0",
    note = "use lifl_core::session::SessionBuilder + Session::drive (see MIGRATION.md)"
)]
pub fn run_hierarchical(
    config: HierarchicalRunConfig,
    updates: &[ModelUpdate],
) -> Result<ModelUpdate> {
    Ok(run_session(config, updates, CodecKind::Identity)?.update)
}

/// Runs the same two-level hierarchy as [`run_hierarchical`], but every
/// update travels in its `codec`-encoded wire form. With
/// [`CodecKind::Identity`] this path is bit-exact with [`run_hierarchical`].
///
/// # Errors
/// Same conditions as [`run_hierarchical`], plus codec parse failures.
#[deprecated(
    since = "0.2.0",
    note = "use lifl_core::session::SessionBuilder with .codec(..) (see MIGRATION.md)"
)]
pub fn run_hierarchical_with_codec(
    config: HierarchicalRunConfig,
    updates: &[ModelUpdate],
    codec: CodecKind,
) -> Result<HierarchicalRunReport> {
    let report = run_session(config, updates, codec)?;
    Ok(HierarchicalRunReport {
        update: report.update,
        store_stats: report.store_stats,
        client_wire_bytes: report.ingress_wire_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifl_fl::aggregate::fedavg;
    use lifl_fl::DenseModel;
    use lifl_types::ClientId;

    fn updates(n: usize, dim: usize) -> Vec<ModelUpdate> {
        (0..n)
            .map(|i| {
                let values: Vec<f32> = (0..dim).map(|d| (i * dim + d) as f32 * 0.1).collect();
                ModelUpdate::from_client(
                    ClientId::new(i as u64),
                    DenseModel::from_vec(values),
                    (i + 1) as u64,
                )
            })
            .collect()
    }

    #[test]
    fn threaded_hierarchy_matches_flat_fedavg() {
        let updates = updates(8, 16);
        let config = HierarchicalRunConfig {
            leaves: 4,
            updates_per_leaf: 2,
            aggregation_shards: 1,
        };
        let hierarchical = run_hierarchical(config, &updates).unwrap();
        let flat = fedavg(&updates).unwrap();
        assert_eq!(hierarchical.samples, flat.samples);
        for (a, b) in hierarchical
            .model
            .as_slice()
            .iter()
            .zip(flat.model.as_slice())
        {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn mismatched_update_count_is_rejected() {
        let updates = updates(5, 4);
        let config = HierarchicalRunConfig {
            leaves: 4,
            updates_per_leaf: 2,
            aggregation_shards: 1,
        };
        assert!(run_hierarchical(config, &updates).is_err());
        assert!(run_hierarchical(
            HierarchicalRunConfig {
                leaves: 0,
                updates_per_leaf: 2,
                aggregation_shards: 1
            },
            &[]
        )
        .is_err());
        // Zero-valued shapes are rejected even when the (clamped) update
        // count would match — the seed contract.
        assert!(run_hierarchical(
            HierarchicalRunConfig {
                leaves: 0,
                updates_per_leaf: 1,
                aggregation_shards: 1
            },
            &updates[..1]
        )
        .is_err());
        assert!(run_hierarchical(
            HierarchicalRunConfig {
                leaves: 4,
                updates_per_leaf: 0,
                aggregation_shards: 1
            },
            &updates[..4]
        )
        .is_err());
    }

    #[test]
    fn identity_codec_run_is_bit_exact_with_pre_codec_path() {
        let updates = updates(8, 16);
        let config = HierarchicalRunConfig {
            leaves: 4,
            updates_per_leaf: 2,
            aggregation_shards: 1,
        };
        let pre_codec = run_hierarchical(config, &updates).unwrap();
        let report = run_hierarchical_with_codec(config, &updates, CodecKind::Identity).unwrap();
        assert_eq!(report.update.samples, pre_codec.samples);
        for (a, b) in report
            .update
            .model
            .as_slice()
            .iter()
            .zip(pre_codec.model.as_slice())
        {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "identity path diverged: {a} vs {b}"
            );
        }
        assert_eq!(report.store_stats.encoded_puts, 0);
    }

    #[test]
    fn quantized_codec_run_stays_close_and_compresses() {
        let updates = updates(8, 32);
        let config = HierarchicalRunConfig {
            leaves: 4,
            updates_per_leaf: 2,
            aggregation_shards: 1,
        };
        let flat = lifl_fl::aggregate::fedavg(&updates).unwrap();
        let report = run_hierarchical_with_codec(config, &updates, CodecKind::Uniform8).unwrap();
        assert_eq!(report.update.samples, flat.samples);
        let scale_bound = updates
            .iter()
            .flat_map(|u| u.model.as_slice())
            .fold(0.0f32, |a, v| a.max(v.abs()))
            / 127.0;
        for (a, b) in report
            .update
            .model
            .as_slice()
            .iter()
            .zip(flat.model.as_slice())
        {
            // Two quantization stages (client + leaf) bound the error.
            assert!((a - b).abs() <= 3.0 * scale_bound, "{a} vs {b}");
        }
        assert!(report.store_stats.encoded_puts > 0);
        assert!(report.store_stats.bytes_saved() > 0);
        assert!(report.client_wire_bytes < updates.len() as u64 * 32 * 4);
    }

    #[test]
    fn single_leaf_degenerates_to_flat() {
        let updates = updates(3, 8);
        let config = HierarchicalRunConfig {
            leaves: 1,
            updates_per_leaf: 3,
            aggregation_shards: 1,
        };
        let result = run_hierarchical(config, &updates).unwrap();
        let flat = fedavg(&updates).unwrap();
        for (a, b) in result.model.as_slice().iter().zip(flat.model.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    /// The shims are *thin*: byte-for-byte the same result as driving the
    /// session directly, for every codec.
    #[test]
    fn shims_delegate_to_session_exactly() {
        use crate::session::SessionBuilder;
        use lifl_types::Topology;

        let updates = updates(8, 48);
        let config = HierarchicalRunConfig {
            leaves: 4,
            updates_per_leaf: 2,
            aggregation_shards: 1,
        };
        for codec in CodecKind::ablation_set() {
            let shim = run_hierarchical_with_codec(config, &updates, codec).unwrap();
            let mut session = SessionBuilder::new()
                .topology(Topology::two_level(4, 2))
                .codec(codec)
                .build()
                .unwrap();
            session
                .ingest_all(updates.iter().cloned().map(Update::Dense))
                .unwrap();
            let direct = session.drive().unwrap();
            assert_eq!(shim.update.samples, direct.update.samples, "{codec}");
            assert_eq!(shim.client_wire_bytes, direct.ingress_wire_bytes, "{codec}");
            for (a, b) in shim
                .update
                .model
                .as_slice()
                .iter()
                .zip(direct.update.model.as_slice())
            {
                assert_eq!(a.to_bits(), b.to_bits(), "{codec}: shim diverged");
            }
        }
    }
}
