//! Hierarchy-aware autoscaling (§5.2): an EWMA estimator of the pending queue
//! length per node and a planner that builds a k-ary aggregation tree on each
//! node, sized to the estimated load — two-level by default as in the paper,
//! deeper when an interior fan-in cap is configured
//! (`LiflConfig::max_interior_fan_in`).

use lifl_types::{NodeId, Topology};

/// The Exponentially Weighted Moving Average estimator of the pending queue
/// length `Q_{i,t}` (§5.2): `Q_t = α·Q_{t−1} + (1−α)·q_t` with α = 0.7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EwmaEstimator {
    alpha: f64,
    value: Option<f64>,
}

impl EwmaEstimator {
    /// Creates an estimator with smoothing coefficient `alpha` in `[0, 1]`.
    pub fn new(alpha: f64) -> Self {
        EwmaEstimator {
            alpha: alpha.clamp(0.0, 1.0),
            value: None,
        }
    }

    /// Feeds an observation and returns the smoothed estimate.
    pub fn observe(&mut self, observation: f64) -> f64 {
        let next = match self.value {
            None => observation,
            Some(prev) => self.alpha * prev + (1.0 - self.alpha) * observation,
        };
        self.value = Some(next);
        next
    }

    /// The current estimate (None before the first observation).
    pub fn estimate(&self) -> Option<f64> {
        self.value
    }
}

/// The aggregation tree planned for one node: `leaves` leaf aggregators
/// feeding the node's interior levels (§5.2 plans one "central" middle;
/// with a capped interior fan-in, heavy nodes grow additional middle
/// levels).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeHierarchy {
    /// The node this hierarchy lives on.
    pub node: NodeId,
    /// Number of model updates expected at this node.
    pub pending_updates: u32,
    /// Client updates per leaf the subtree was planned with (I, §5.2).
    pub leaf_fan_in: u32,
    /// The full subtree shape (the shape an in-process `Session` — or one
    /// node of a `Cluster` — would instantiate for this node's load). The
    /// leaf and middle counts derive from it, so the plan cannot hold an
    /// inconsistent triple.
    pub subtree: Topology,
}

impl NodeHierarchy {
    /// Number of leaf aggregators.
    pub fn leaves(&self) -> u32 {
        self.subtree.leaves() as u32
    }

    /// Whether at least one middle aggregator is needed (more than one leaf).
    pub fn middle(&self) -> bool {
        self.subtree.levels() > 1
    }

    /// Total aggregators in this node's subtree (every level's width).
    pub fn aggregators(&self) -> u32 {
        self.subtree.aggregators() as u32
    }

    /// This subtree as a [`Topology`]. Always agrees with
    /// [`NodeHierarchy::aggregators`] because it *is* the planned shape.
    pub fn topology(&self) -> Topology {
        self.subtree.clone()
    }
}

/// The cluster-wide hierarchy plan: per-node trees plus the node hosting the
/// top aggregator that updates the global model.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HierarchyPlan {
    /// Per-node subtrees (nodes with zero pending updates are omitted).
    pub nodes: Vec<NodeHierarchy>,
    /// The node chosen to host the top aggregator.
    pub top_node: Option<NodeId>,
}

impl HierarchyPlan {
    /// Plans the hierarchy from the per-node pending-update estimates.
    ///
    /// `leaf_fan_in` is the number of client updates per leaf aggregator
    /// (I, kept small — 2 — to maximise parallelism, §5.2). The top aggregator
    /// is placed on the node with the most pending updates so that the largest
    /// intermediate never crosses nodes.
    pub fn plan(pending_per_node: &[(NodeId, u32)], leaf_fan_in: u32) -> HierarchyPlan {
        Self::plan_capped(pending_per_node, leaf_fan_in, 0)
    }

    /// [`HierarchyPlan::plan`] with a cap on every interior aggregator's
    /// fan-in (`LiflConfig::max_interior_fan_in`; 0 = uncapped): heavily
    /// loaded nodes grow deeper-than-two-level subtrees instead of one wide
    /// middle, so cross-machine rounds can run 3+ levels end to end.
    pub fn plan_capped(
        pending_per_node: &[(NodeId, u32)],
        leaf_fan_in: u32,
        max_interior_fan_in: u32,
    ) -> HierarchyPlan {
        let mut nodes = Vec::new();
        let mut top_node = None;
        let mut top_load = 0u32;
        for &(node, pending) in pending_per_node {
            if pending == 0 {
                continue;
            }
            // The per-node subtree shape comes from the one shared
            // tree-sizing rule (§5.2) in `Topology::for_load_capped`.
            let subtree = Topology::for_load_capped(
                pending as usize,
                leaf_fan_in as usize,
                max_interior_fan_in as usize,
            );
            nodes.push(NodeHierarchy {
                node,
                pending_updates: pending,
                leaf_fan_in,
                subtree,
            });
            if pending > top_load || top_node.is_none() {
                top_load = pending;
                top_node = Some(node);
            }
        }
        HierarchyPlan { nodes, top_node }
    }

    /// Total aggregators in the plan (leaves + middles + the top).
    pub fn total_aggregators(&self) -> u32 {
        let subtree: u32 = self.nodes.iter().map(NodeHierarchy::aggregators).sum();
        subtree + u32::from(self.top_node.is_some())
    }

    /// The subtree planned on `node`, if any.
    pub fn on_node(&self, node: NodeId) -> Option<&NodeHierarchy> {
        self.nodes.iter().find(|h| h.node == node)
    }

    /// Total pending updates covered by the plan.
    pub fn total_updates(&self) -> u32 {
        self.nodes.iter().map(|h| h.pending_updates).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_matches_paper_formula() {
        let mut e = EwmaEstimator::new(0.7);
        assert_eq!(e.estimate(), None);
        assert_eq!(e.observe(10.0), 10.0);
        let v = e.observe(20.0);
        assert!((v - (0.7 * 10.0 + 0.3 * 20.0)).abs() < 1e-12);
        assert_eq!(e.estimate(), Some(v));
    }

    #[test]
    fn ewma_damps_spikes() {
        let mut e = EwmaEstimator::new(0.7);
        e.observe(10.0);
        let spiked = e.observe(100.0);
        assert!(spiked < 40.0, "spike damped: {spiked}");
    }

    #[test]
    fn plan_covers_all_updates_once() {
        let pending = vec![
            (NodeId::new(0), 20),
            (NodeId::new(1), 7),
            (NodeId::new(2), 0),
        ];
        let plan = HierarchyPlan::plan(&pending, 2);
        assert_eq!(plan.total_updates(), 27);
        assert_eq!(plan.nodes.len(), 2);
        let n0 = plan.on_node(NodeId::new(0)).unwrap();
        assert_eq!(n0.leaves(), 10);
        assert!(n0.middle());
        let n1 = plan.on_node(NodeId::new(1)).unwrap();
        assert_eq!(n1.leaves(), 4);
        assert!(plan.on_node(NodeId::new(2)).is_none());
        // Top on the most loaded node.
        assert_eq!(plan.top_node, Some(NodeId::new(0)));
        assert_eq!(plan.total_aggregators(), 10 + 1 + 4 + 1 + 1);
    }

    #[test]
    fn node_subtree_converts_to_topology() {
        let plan = HierarchyPlan::plan(&[(NodeId::new(0), 20), (NodeId::new(1), 2)], 2);
        let big = plan.on_node(NodeId::new(0)).unwrap().topology();
        assert_eq!(big.levels(), 2);
        assert_eq!(big.leaves(), 10);
        assert_eq!(big.fan_in(0), 2);
        let small = plan.on_node(NodeId::new(1)).unwrap().topology();
        assert_eq!(small.levels(), 1, "one leaf's load plans a flat subtree");
        // The derived topology always agrees with the plan's own counts.
        let node = plan.on_node(NodeId::new(0)).unwrap();
        assert_eq!(big.aggregators() as u32, node.aggregators());
    }

    #[test]
    fn capped_plan_grows_deep_subtrees() {
        let pending = vec![(NodeId::new(0), 40), (NodeId::new(1), 4)];
        let plan = HierarchyPlan::plan_capped(&pending, 2, 4);
        let heavy = plan.on_node(NodeId::new(0)).unwrap();
        assert!(heavy.subtree.levels() > 2, "{}", heavy.subtree);
        assert!(heavy.subtree.fan_ins()[1..].iter().all(|f| *f <= 4));
        assert_eq!(heavy.aggregators(), heavy.subtree.aggregators() as u32);
        // Light nodes keep the paper's two-level (or flat) shape.
        let light = plan.on_node(NodeId::new(1)).unwrap();
        assert_eq!(light.subtree.levels(), 2);
        // Uncapped planning is the classic plan.
        assert_eq!(
            HierarchyPlan::plan_capped(&pending, 2, 0),
            HierarchyPlan::plan(&pending, 2)
        );
    }

    #[test]
    fn single_leaf_needs_no_middle() {
        let plan = HierarchyPlan::plan(&[(NodeId::new(3), 2)], 2);
        let h = plan.on_node(NodeId::new(3)).unwrap();
        assert_eq!(h.leaves(), 1);
        assert!(!h.middle());
        assert_eq!(h.aggregators(), 1);
    }

    #[test]
    fn empty_plan() {
        let plan = HierarchyPlan::plan(&[], 2);
        assert_eq!(plan.total_aggregators(), 0);
        assert!(plan.top_node.is_none());
    }

    #[test]
    fn fan_in_of_zero_is_clamped() {
        let plan = HierarchyPlan::plan(&[(NodeId::new(0), 5)], 0);
        assert_eq!(plan.on_node(NodeId::new(0)).unwrap().leaves(), 5);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn plan_covers_every_update_with_bounded_fan_in(
            pending in proptest::collection::vec(0u32..60, 1..8),
            fan_in in 1u32..6,
        ) {
            let input: Vec<(NodeId, u32)> = pending
                .iter()
                .enumerate()
                .map(|(i, p)| (NodeId::new(i as u64), *p))
                .collect();
            let plan = HierarchyPlan::plan(&input, fan_in);
            let expected: u32 = pending.iter().sum();
            prop_assert_eq!(plan.total_updates(), expected);
            for node in &plan.nodes {
                prop_assert!(node.pending_updates > 0);
                // Leaves suffice for the load and never exceed it by more than one leaf.
                prop_assert!(node.leaves() * fan_in >= node.pending_updates);
                prop_assert!((node.leaves() - 1) * fan_in < node.pending_updates);
            }
            if expected > 0 {
                prop_assert!(plan.top_node.is_some());
            }
        }

        #[test]
        fn ewma_stays_within_observation_range(observations in proptest::collection::vec(0.0f64..1000.0, 1..50)) {
            let mut e = EwmaEstimator::new(0.7);
            let min = observations.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = observations.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for obs in &observations {
                let v = e.observe(*obs);
                prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
            }
        }
    }
}
