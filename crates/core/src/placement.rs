//! Locality-aware placement and load balancing (§5.1).
//!
//! Incoming model updates are mapped to worker nodes by a bin-packing policy
//! over residual service capacity `RC_i = MC_i − k_i·E_i`. LIFL uses BestFit
//! to concentrate load onto the fewest nodes (maximising shared-memory use and
//! minimising inter-node transfers); WorstFit reproduces Knative's
//! "least connection" spreading; FirstFit minimises search cost.

use lifl_types::{LiflError, NodeId, PlacementPolicy, Result};

/// Mutable view of one node's placement state during a round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeCapacity {
    /// The node.
    pub node: NodeId,
    /// Maximum service capacity MC_i (updates aggregated simultaneously).
    pub max_capacity: u32,
    /// Updates already assigned in this round (k_i·E_i, in update units).
    pub assigned: u32,
}

impl NodeCapacity {
    /// A fresh, empty node.
    pub fn new(node: NodeId, max_capacity: u32) -> Self {
        NodeCapacity {
            node,
            max_capacity,
            assigned: 0,
        }
    }

    /// Residual service capacity RC_i.
    pub fn residual(&self) -> u32 {
        self.max_capacity.saturating_sub(self.assigned)
    }
}

/// The result of placing a batch of updates.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlacementOutcome {
    /// Node chosen for each update, in input order.
    pub assignments: Vec<NodeId>,
    /// Number of distinct nodes used.
    pub nodes_used: usize,
    /// Updates that could not be placed because every node was full.
    pub overflow: u64,
}

/// The placement engine.
#[derive(Debug, Clone)]
pub struct PlacementEngine {
    policy: PlacementPolicy,
}

impl PlacementEngine {
    /// Creates an engine for the given policy.
    pub fn new(policy: PlacementPolicy) -> Self {
        PlacementEngine { policy }
    }

    /// The engine's policy.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Places one update given the current per-node state, returning the
    /// chosen node and updating its assignment count.
    ///
    /// # Errors
    /// Returns [`LiflError::InsufficientCapacity`] when every node is full.
    pub fn place_one(&self, nodes: &mut [NodeCapacity]) -> Result<NodeId> {
        let candidate = match self.policy {
            PlacementPolicy::BestFit => nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.residual() > 0)
                // Smallest residual that still fits => pack tightly.
                .min_by_key(|(_, n)| (n.residual(), n.node.index()))
                .map(|(i, _)| i),
            PlacementPolicy::WorstFit => nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.residual() > 0)
                // Largest residual => spread like least-connection.
                .max_by_key(|(_, n)| (n.residual(), std::cmp::Reverse(n.node.index())))
                .map(|(i, _)| i),
            PlacementPolicy::FirstFit => nodes.iter().position(|n| n.residual() > 0),
        };
        match candidate {
            Some(idx) => {
                nodes[idx].assigned += 1;
                Ok(nodes[idx].node)
            }
            None => Err(LiflError::InsufficientCapacity {
                demanded: 1,
                capacity: 0,
            }),
        }
    }

    /// Places `count` updates over `nodes`, assigning overflow updates (beyond
    /// total capacity) round-robin so they queue rather than being dropped.
    pub fn place_batch(&self, count: u64, nodes: &mut [NodeCapacity]) -> PlacementOutcome {
        let mut outcome = PlacementOutcome::default();
        for i in 0..count {
            match self.place_one(nodes) {
                Ok(node) => outcome.assignments.push(node),
                Err(_) => {
                    outcome.overflow += 1;
                    if !nodes.is_empty() {
                        let idx = (i % nodes.len() as u64) as usize;
                        nodes[idx].assigned += 1;
                        outcome.assignments.push(nodes[idx].node);
                    }
                }
            }
        }
        let mut used: Vec<NodeId> = outcome.assignments.clone();
        used.sort();
        used.dedup();
        outcome.nodes_used = used.len();
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u64, cap: u32) -> Vec<NodeCapacity> {
        (0..n)
            .map(|i| NodeCapacity::new(NodeId::new(i), cap))
            .collect()
    }

    #[test]
    fn bestfit_concentrates_on_fewest_nodes() {
        // Fig. 8(d): 20, 60, 100 updates over 5 nodes of capacity 20 should
        // use 1, 3 and 5 nodes respectively.
        for (updates, expected_nodes) in [(20u64, 1usize), (60, 3), (100, 5)] {
            let engine = PlacementEngine::new(PlacementPolicy::BestFit);
            let mut caps = nodes(5, 20);
            let outcome = engine.place_batch(updates, &mut caps);
            assert_eq!(outcome.nodes_used, expected_nodes, "{updates} updates");
            assert_eq!(outcome.overflow, 0);
        }
    }

    #[test]
    fn worstfit_spreads_across_all_nodes() {
        // SL-H's least-connection behaviour: even 20 updates land on all 5 nodes.
        let engine = PlacementEngine::new(PlacementPolicy::WorstFit);
        let mut caps = nodes(5, 20);
        let outcome = engine.place_batch(20, &mut caps);
        assert_eq!(outcome.nodes_used, 5);
    }

    #[test]
    fn firstfit_fills_in_order() {
        let engine = PlacementEngine::new(PlacementPolicy::FirstFit);
        let mut caps = nodes(3, 2);
        let outcome = engine.place_batch(4, &mut caps);
        assert_eq!(
            outcome.assignments,
            vec![
                NodeId::new(0),
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(1)
            ]
        );
    }

    #[test]
    fn capacity_is_never_exceeded_without_overflow() {
        let engine = PlacementEngine::new(PlacementPolicy::BestFit);
        let mut caps = nodes(5, 20);
        engine.place_batch(100, &mut caps);
        assert!(caps.iter().all(|c| c.assigned <= c.max_capacity));
    }

    #[test]
    fn overflow_beyond_total_capacity_still_assigns() {
        let engine = PlacementEngine::new(PlacementPolicy::BestFit);
        let mut caps = nodes(2, 5);
        let outcome = engine.place_batch(12, &mut caps);
        assert_eq!(outcome.assignments.len(), 12);
        assert_eq!(outcome.overflow, 2);
    }

    #[test]
    fn place_one_errors_when_full() {
        let engine = PlacementEngine::new(PlacementPolicy::FirstFit);
        let mut caps = nodes(1, 1);
        engine.place_one(&mut caps).unwrap();
        assert!(engine.place_one(&mut caps).is_err());
    }

    #[test]
    fn residual_accounts_assignment() {
        let mut cap = NodeCapacity::new(NodeId::new(0), 10);
        assert_eq!(cap.residual(), 10);
        cap.assigned = 4;
        assert_eq!(cap.residual(), 6);
        cap.assigned = 20;
        assert_eq!(cap.residual(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use lifl_types::PlacementPolicy;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn capacity_respected_and_all_updates_placed(
            updates in 1u64..120,
            nodes in 1u64..8,
            capacity in 1u32..40,
        ) {
            for policy in [PlacementPolicy::BestFit, PlacementPolicy::FirstFit, PlacementPolicy::WorstFit] {
                let engine = PlacementEngine::new(policy);
                let mut caps: Vec<NodeCapacity> =
                    (0..nodes).map(|i| NodeCapacity::new(NodeId::new(i), capacity)).collect();
                let outcome = engine.place_batch(updates, &mut caps);
                prop_assert_eq!(outcome.assignments.len() as u64, updates);
                let total_capacity = nodes * capacity as u64;
                if updates <= total_capacity {
                    prop_assert_eq!(outcome.overflow, 0);
                    prop_assert!(caps.iter().all(|c| c.assigned <= c.max_capacity));
                }
            }
        }

        #[test]
        fn bestfit_never_uses_more_nodes_than_worstfit(updates in 1u64..100, nodes in 2u64..8) {
            let capacity = 20u32;
            let run = |policy| {
                let engine = PlacementEngine::new(policy);
                let mut caps: Vec<NodeCapacity> =
                    (0..nodes).map(|i| NodeCapacity::new(NodeId::new(i), capacity)).collect();
                engine.place_batch(updates, &mut caps).nodes_used
            };
            prop_assert!(run(PlacementPolicy::BestFit) <= run(PlacementPolicy::WorstFit));
        }
    }
}
