//! Robust aggregation folds ([`FoldPolicy`]).
//!
//! FedAvg's weighted mean has a breakdown point of zero: one corrupted or
//! adversarially scaled client update moves the aggregate arbitrarily far,
//! and lossy low-bit codecs amplify the damage. [`RobustFold`] implements the
//! coordinate-wise robust statistics named by [`FoldPolicy`] — trimmed mean
//! and median — and [`PolicyFold`] is the policy-dispatched accumulator the
//! aggregator runtime folds through: its [`FoldPolicy::FedAvg`] arm delegates
//! to the exact [`CumulativeFedAvg`]/[`ShardedFedAvg`] calls the pre-policy
//! path made, so the default policy stays bit-exact with the seed.
//!
//! The robust statistics are deliberately **unweighted**: an adversary
//! controls the sample count its update reports, so weighting by it would
//! hand the attacker its influence back. The finalized intermediate still
//! carries the summed sample count so hierarchical weighting above a robust
//! level stays meaningful.

use crate::aggregate::{CumulativeFedAvg, ModelUpdate};
use crate::codec::EncodedView;
use crate::model::DenseModel;
use crate::sharded::ShardedFedAvg;
use crate::update::Update;
use lifl_types::{FoldPolicy, LiflError, Result};

/// A buffering accumulator computing a coordinate-wise robust statistic
/// (trimmed mean or median) over one round's updates.
///
/// Unlike [`CumulativeFedAvg`] this cannot fold eagerly in constant memory —
/// order statistics need the whole round — so it buffers each update decoded
/// to dense parameters and computes the statistic at
/// [`RobustFold::finalize`].
#[derive(Debug, Clone)]
pub struct RobustFold {
    policy: FoldPolicy,
    rows: Vec<DenseModel>,
    total_samples: u64,
}

impl RobustFold {
    /// Creates an empty fold for `policy`.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidConfig`] when the policy's parameters are
    /// invalid (see [`FoldPolicy::validate`]) or the policy is
    /// [`FoldPolicy::FedAvg`] (which has a dedicated constant-memory fold).
    pub fn new(policy: FoldPolicy) -> Result<Self> {
        policy.validate().map_err(LiflError::InvalidConfig)?;
        if policy.is_fedavg() {
            return Err(LiflError::InvalidConfig(
                "RobustFold does not serve FedAvg; use CumulativeFedAvg".to_string(),
            ));
        }
        Ok(RobustFold {
            policy,
            rows: Vec::new(),
            total_samples: 0,
        })
    }

    /// The policy this fold computes.
    pub fn policy(&self) -> FoldPolicy {
        self.policy
    }

    /// Number of updates buffered so far.
    pub fn updates_folded(&self) -> u64 {
        self.rows.len() as u64
    }

    /// Total samples represented by the buffered updates.
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// Buffers one update decoded from its zero-copy wire view (the decode
    /// runs on the dispatched [`crate::kernels`] arms like every other
    /// codec consumer).
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidAggregationGoal`] for an update carrying
    /// zero samples and [`LiflError::DimensionMismatch`] on a dimension
    /// mismatch with the buffered rows.
    pub fn fold_encoded_view(&mut self, view: &EncodedView<'_>, samples: u64) -> Result<()> {
        self.push(view.decode(), samples)
    }

    /// Buffers one update in whatever representation its [`Update`] envelope
    /// carries (the robust counterpart of
    /// [`CumulativeFedAvg::fold_update`]).
    ///
    /// # Errors
    /// Same conditions as [`RobustFold::fold_encoded_view`], plus codec parse
    /// failures for malformed remote bytes.
    pub fn fold_update(&mut self, update: &Update) -> Result<()> {
        match update {
            Update::Dense(dense) => self.push(dense.model.clone(), dense.samples),
            Update::Encoded {
                update, samples, ..
            } => self.fold_encoded_view(&update.view(), *samples),
            Update::RemoteBytes {
                wire,
                weight,
                encoded,
            } => {
                if *encoded {
                    self.fold_encoded_view(&EncodedView::parse(wire)?, *weight)
                } else {
                    self.fold_encoded_view(&EncodedView::identity_over(wire), *weight)
                }
            }
        }
    }

    fn push(&mut self, model: DenseModel, samples: u64) -> Result<()> {
        if samples == 0 {
            return Err(LiflError::InvalidAggregationGoal(0));
        }
        if let Some(first) = self.rows.first() {
            if first.dim() != model.dim() {
                return Err(LiflError::DimensionMismatch {
                    expected: first.dim(),
                    actual: model.dim(),
                });
            }
        }
        self.rows.push(model);
        self.total_samples += samples;
        Ok(())
    }

    /// Computes the coordinate-wise statistic over the buffered updates and
    /// returns it as an intermediate update carrying the summed sample count,
    /// leaving the fold empty for reuse.
    ///
    /// Values are ordered with [`f32::total_cmp`], so NaNs injected by
    /// corruption sort past every finite value and land in the trimmed tails.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidAggregationGoal`] if nothing was buffered.
    pub fn finalize(&mut self) -> Result<ModelUpdate> {
        if self.rows.is_empty() {
            return Err(LiflError::InvalidAggregationGoal(0));
        }
        let rows = std::mem::take(&mut self.rows);
        let samples = self.total_samples;
        self.total_samples = 0;
        let dim = rows[0].dim();
        let n = rows.len();
        let trim = match self.policy {
            FoldPolicy::TrimmedMean { trim_permille } => n * usize::from(trim_permille) / 1000,
            // The median is the maximally trimmed mean: keep the middle one
            // (odd n) or average the middle two (even n).
            FoldPolicy::Median => (n - 1) / 2,
            FoldPolicy::FedAvg => unreachable!("RobustFold::new rejects FedAvg"),
        };
        let mut out = DenseModel::zeros(dim);
        let mut column = vec![0.0f32; n];
        for d in 0..dim {
            for (slot, row) in column.iter_mut().zip(&rows) {
                *slot = row.as_slice()[d];
            }
            column.sort_unstable_by(f32::total_cmp);
            let kept = &column[trim..n - trim];
            let sum: f64 = kept.iter().map(|v| f64::from(*v)).sum();
            out.as_mut_slice()[d] = (sum / kept.len() as f64) as f32;
        }
        Ok(ModelUpdate::intermediate(out, samples))
    }
}

/// The policy-dispatched accumulator behind every aggregator: FedAvg folds
/// through the seed's [`CumulativeFedAvg`] / [`ShardedFedAvg`] path
/// unchanged (bit-exact), robust policies buffer through [`RobustFold`].
#[derive(Debug)]
pub enum PolicyFold {
    /// Sample-weighted eager FedAvg (the seed path).
    FedAvg(CumulativeFedAvg),
    /// A buffering coordinate-wise robust statistic.
    Robust(RobustFold),
}

impl Default for PolicyFold {
    fn default() -> Self {
        PolicyFold::FedAvg(CumulativeFedAvg::default())
    }
}

impl PolicyFold {
    /// Creates the accumulator serving `policy`.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidConfig`] for invalid policy parameters.
    pub fn new(policy: FoldPolicy) -> Result<Self> {
        if policy.is_fedavg() {
            Ok(PolicyFold::FedAvg(CumulativeFedAvg::default()))
        } else {
            Ok(PolicyFold::Robust(RobustFold::new(policy)?))
        }
    }

    /// The policy this accumulator computes.
    pub fn policy(&self) -> FoldPolicy {
        match self {
            PolicyFold::FedAvg(_) => FoldPolicy::FedAvg,
            PolicyFold::Robust(robust) => robust.policy(),
        }
    }

    /// Number of updates folded (or buffered) so far.
    pub fn updates_folded(&self) -> u64 {
        match self {
            PolicyFold::FedAvg(acc) => acc.updates_folded(),
            PolicyFold::Robust(robust) => robust.updates_folded(),
        }
    }

    /// Total samples represented by the folded updates.
    pub fn total_samples(&self) -> u64 {
        match self {
            PolicyFold::FedAvg(acc) => acc.total_samples(),
            PolicyFold::Robust(robust) => robust.total_samples(),
        }
    }

    /// Folds one update off its zero-copy wire view.
    ///
    /// # Errors
    /// Propagates the underlying fold's errors.
    pub fn fold_encoded_view(&mut self, view: &EncodedView<'_>, samples: u64) -> Result<()> {
        match self {
            PolicyFold::FedAvg(acc) => acc.fold_encoded_view(view, samples),
            PolicyFold::Robust(robust) => robust.fold_encoded_view(view, samples),
        }
    }

    /// Folds one update in whatever representation its envelope carries.
    ///
    /// # Errors
    /// Propagates the underlying fold's errors.
    pub fn fold_update(&mut self, update: &Update) -> Result<()> {
        match self {
            PolicyFold::FedAvg(acc) => acc.fold_update(update),
            PolicyFold::Robust(robust) => robust.fold_update(update),
        }
    }

    /// Folds a drained batch of wire views, all-or-nothing. The FedAvg arm
    /// folds through the cache-blocked [`ShardedFedAvg`] across `shards`
    /// partitions, exactly like the pre-policy path; robust arms buffer the
    /// decoded batch (order statistics cannot shard over partial sums, so
    /// `shards` is ignored there).
    ///
    /// # Errors
    /// Propagates the underlying fold's errors; on failure nothing is folded.
    pub fn fold_encoded_batch(
        &mut self,
        views: &[(EncodedView<'_>, u64)],
        shards: usize,
    ) -> Result<()> {
        match self {
            PolicyFold::FedAvg(acc) => {
                let mut sharded = ShardedFedAvg::around(std::mem::take(acc), shards);
                let outcome = sharded.fold_encoded_batch(views);
                *acc = sharded.into_inner();
                outcome
            }
            PolicyFold::Robust(robust) => {
                // Decode everything before buffering anything so a corrupt
                // view in the middle leaves the fold untouched.
                let mut decoded = Vec::with_capacity(views.len());
                for (view, samples) in views {
                    if *samples == 0 {
                        return Err(LiflError::InvalidAggregationGoal(0));
                    }
                    decoded.push((view.decode(), *samples));
                }
                for (model, samples) in decoded {
                    robust.push(model, samples)?;
                }
                Ok(())
            }
        }
    }

    /// Finalizes the round's aggregate, leaving the accumulator empty for
    /// reuse.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidAggregationGoal`] if nothing was folded.
    pub fn finalize(&mut self) -> Result<ModelUpdate> {
        match self {
            PolicyFold::FedAvg(acc) => acc.finalize(),
            PolicyFold::Robust(robust) => robust.finalize(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifl_types::ClientId;

    fn dense(values: Vec<f32>, samples: u64) -> Update {
        Update::dense(
            ClientId::new(samples),
            DenseModel::from_vec(values),
            samples,
        )
    }

    #[test]
    fn median_of_odd_and_even_counts() {
        let mut fold = RobustFold::new(FoldPolicy::Median).unwrap();
        for (v, s) in [(1.0f32, 1), (100.0, 7), (3.0, 2)] {
            fold.fold_update(&dense(vec![v, -v], s)).unwrap();
        }
        let odd = fold.finalize().unwrap();
        assert_eq!(odd.model.as_slice(), &[3.0, -3.0]);
        assert_eq!(odd.samples, 10);

        for (v, s) in [(1.0f32, 1), (2.0, 1), (7.0, 1), (100.0, 1)] {
            fold.fold_update(&dense(vec![v], s)).unwrap();
        }
        let even = fold.finalize().unwrap();
        assert_eq!(even.model.as_slice(), &[4.5]);
    }

    #[test]
    fn trimmed_mean_discards_the_tails() {
        let mut fold = RobustFold::new(FoldPolicy::TrimmedMean { trim_permille: 200 }).unwrap();
        // 5 updates, 200‰ per side trims exactly one from each tail.
        for v in [1.0f32, 2.0, 3.0, 4.0, 1000.0] {
            fold.fold_update(&dense(vec![v], 1)).unwrap();
        }
        let agg = fold.finalize().unwrap();
        assert_eq!(agg.model.as_slice(), &[3.0]);
    }

    #[test]
    fn robust_statistics_ignore_reported_sample_counts() {
        // The outlier claims a huge sample count; the median must not care.
        let mut fold = RobustFold::new(FoldPolicy::Median).unwrap();
        fold.fold_update(&dense(vec![1.0], 1)).unwrap();
        fold.fold_update(&dense(vec![2.0], 1)).unwrap();
        fold.fold_update(&dense(vec![1e9], 1_000_000)).unwrap();
        let agg = fold.finalize().unwrap();
        assert_eq!(agg.model.as_slice(), &[2.0]);
    }

    #[test]
    fn nans_sort_into_the_trimmed_tail() {
        let mut fold = RobustFold::new(FoldPolicy::TrimmedMean { trim_permille: 250 }).unwrap();
        for v in [1.0f32, 2.0, 3.0, f32::NAN] {
            fold.fold_update(&dense(vec![v], 1)).unwrap();
        }
        let agg = fold.finalize().unwrap();
        // 250‰ per side over 4 rows trims one from each tail: the NaN (which
        // total_cmp sorts past +inf) and the minimum.
        assert_eq!(agg.model.as_slice(), &[2.5]);
        assert!(agg.model.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn rejects_bad_inputs_and_policies() {
        assert!(RobustFold::new(FoldPolicy::FedAvg).is_err());
        assert!(RobustFold::new(FoldPolicy::TrimmedMean { trim_permille: 500 }).is_err());
        let mut fold = RobustFold::new(FoldPolicy::Median).unwrap();
        assert!(fold.finalize().is_err());
        assert!(fold.fold_update(&dense(vec![1.0], 0)).is_err());
        fold.fold_update(&dense(vec![1.0, 2.0], 1)).unwrap();
        assert!(fold.fold_update(&dense(vec![1.0], 1)).is_err());
    }

    #[test]
    fn policy_fold_fedavg_is_bit_exact_with_cumulative() {
        let updates: Vec<Update> = (1..=5u64)
            .map(|i| dense(vec![i as f32 * 0.7, -(i as f32) * 1.3, 0.25], i))
            .collect();
        let mut reference = CumulativeFedAvg::default();
        let mut policy = PolicyFold::new(FoldPolicy::FedAvg).unwrap();
        for u in &updates {
            reference.fold_update(u).unwrap();
            policy.fold_update(u).unwrap();
        }
        assert_eq!(policy.updates_folded(), 5);
        assert_eq!(policy.total_samples(), 15);
        let a = reference.finalize().unwrap();
        let b = policy.finalize().unwrap();
        assert_eq!(a.samples, b.samples);
        for (x, y) in a.model.as_slice().iter().zip(b.model.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn policy_fold_batch_is_all_or_nothing_for_robust_arms() {
        let mut policy = PolicyFold::new(FoldPolicy::Median).unwrap();
        let payload: Vec<u8> = [1.0f32, 2.0].iter().flat_map(|v| v.to_le_bytes()).collect();
        let views = vec![
            (EncodedView::identity_over(&payload), 1u64),
            (EncodedView::identity_over(&payload), 0u64), // invalid weight
        ];
        assert!(policy.fold_encoded_batch(&views, 2).is_err());
        assert_eq!(policy.updates_folded(), 0);
    }
}
