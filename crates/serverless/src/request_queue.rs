//! Per-revision request queuing (the queue-proxy behaviour of the serverless
//! baseline, §2.3 "inefficient message queuing").
//!
//! In Knative, every pod carries a queue proxy that enforces a container
//! concurrency limit; requests beyond that limit wait in the proxy's queue.
//! For the FL aggregation workload the "requests" are model updates, so the
//! queueing delay directly inflates the aggregation completion time. The
//! model here is an M/D/c-style work-conserving queue evaluated in discrete
//! events: updates arrive with a fixed service demand and are dispatched to
//! the first of `concurrency` slots that frees up.

use lifl_types::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Configuration of a request queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestQueueConfig {
    /// Concurrent requests processed without queuing (container concurrency).
    pub concurrency: u32,
    /// Maximum queued requests before new arrivals are rejected (0 = unbounded).
    pub capacity: u32,
}

impl Default for RequestQueueConfig {
    fn default() -> Self {
        RequestQueueConfig {
            concurrency: 2,
            capacity: 0,
        }
    }
}

/// The fate of one arriving request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Admission {
    /// The request was admitted; fields describe its schedule.
    Admitted {
        /// When service began.
        started_at: SimTime,
        /// When service completed.
        finished_at: SimTime,
        /// Time spent waiting before service.
        queued_for: SimDuration,
    },
    /// The request was rejected because the queue was full.
    Rejected,
}

impl Admission {
    /// Queuing delay, zero for rejected requests.
    pub fn queued_for(&self) -> SimDuration {
        match self {
            Admission::Admitted { queued_for, .. } => *queued_for,
            Admission::Rejected => SimDuration::ZERO,
        }
    }

    /// Whether the request was admitted.
    pub fn is_admitted(&self) -> bool {
        matches!(self, Admission::Admitted { .. })
    }
}

/// A work-conserving bounded request queue with `concurrency` service slots.
#[derive(Debug, Clone)]
pub struct RequestQueue {
    config: RequestQueueConfig,
    /// Completion time of the work currently assigned to each slot.
    slots: Vec<SimTime>,
    /// Completion times of queued-but-unstarted work, kept sorted ascending.
    pending_starts: Vec<SimTime>,
    admitted: u64,
    rejected: u64,
    total_queue_delay: SimDuration,
    max_queue_delay: SimDuration,
}

impl RequestQueue {
    /// Creates an empty queue.
    pub fn new(config: RequestQueueConfig) -> Self {
        RequestQueue {
            slots: vec![SimTime::ZERO; config.concurrency.max(1) as usize],
            config,
            pending_starts: Vec::new(),
            admitted: 0,
            rejected: 0,
            total_queue_delay: SimDuration::ZERO,
            max_queue_delay: SimDuration::ZERO,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RequestQueueConfig {
        &self.config
    }

    /// Number of requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Number of requests rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Mean queuing delay over admitted requests.
    pub fn mean_queue_delay(&self) -> SimDuration {
        if self.admitted == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs(self.total_queue_delay.as_secs() / self.admitted as f64)
        }
    }

    /// Largest queuing delay seen so far.
    pub fn max_queue_delay(&self) -> SimDuration {
        self.max_queue_delay
    }

    /// Number of requests that are queued (admitted but not yet started) at `now`.
    pub fn backlog(&self, now: SimTime) -> usize {
        self.pending_starts
            .iter()
            .filter(|start| start.as_secs() > now.as_secs())
            .count()
    }

    /// Offers one request arriving at `now` with service demand `service`.
    pub fn offer(&mut self, now: SimTime, service: SimDuration) -> Admission {
        // Clean out starts that have already happened.
        self.pending_starts
            .retain(|start| start.as_secs() > now.as_secs());
        if self.config.capacity > 0 && self.pending_starts.len() >= self.config.capacity as usize {
            self.rejected += 1;
            return Admission::Rejected;
        }
        // The request runs on the slot that frees up first.
        let (slot_idx, free_at) = self
            .slots
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.as_secs().partial_cmp(&b.1.as_secs()).unwrap())
            .map(|(i, t)| (i, *t))
            .expect("at least one slot");
        let started_at = now.max(free_at);
        let finished_at = started_at + service;
        self.slots[slot_idx] = finished_at;
        let queued_for = started_at.duration_since(now);
        if queued_for.as_secs() > 0.0 {
            self.pending_starts.push(started_at);
        }
        self.admitted += 1;
        self.total_queue_delay += queued_for;
        if queued_for.as_secs() > self.max_queue_delay.as_secs() {
            self.max_queue_delay = queued_for;
        }
        Admission::Admitted {
            started_at,
            finished_at,
            queued_for,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn dur(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn under_capacity_requests_start_immediately() {
        let mut q = RequestQueue::new(RequestQueueConfig {
            concurrency: 2,
            capacity: 0,
        });
        let a = q.offer(secs(0.0), dur(5.0));
        let b = q.offer(secs(0.0), dur(5.0));
        for adm in [a, b] {
            match adm {
                Admission::Admitted { queued_for, .. } => assert_eq!(queued_for, SimDuration::ZERO),
                Admission::Rejected => panic!("should be admitted"),
            }
        }
        assert_eq!(q.admitted(), 2);
        assert_eq!(q.mean_queue_delay(), SimDuration::ZERO);
    }

    #[test]
    fn excess_requests_queue_behind_busy_slots() {
        let mut q = RequestQueue::new(RequestQueueConfig {
            concurrency: 1,
            capacity: 0,
        });
        q.offer(secs(0.0), dur(10.0));
        let second = q.offer(secs(1.0), dur(10.0));
        match second {
            Admission::Admitted {
                started_at,
                finished_at,
                queued_for,
            } => {
                assert_eq!(started_at.as_secs(), 10.0);
                assert_eq!(finished_at.as_secs(), 20.0);
                assert_eq!(queued_for.as_secs(), 9.0);
            }
            Admission::Rejected => panic!("should be admitted"),
        }
        assert_eq!(q.max_queue_delay().as_secs(), 9.0);
        assert!(q.mean_queue_delay().as_secs() > 0.0);
    }

    #[test]
    fn bounded_queue_rejects_overflow() {
        let mut q = RequestQueue::new(RequestQueueConfig {
            concurrency: 1,
            capacity: 2,
        });
        q.offer(secs(0.0), dur(100.0));
        let a = q.offer(secs(0.0), dur(100.0));
        let b = q.offer(secs(0.0), dur(100.0));
        let c = q.offer(secs(0.0), dur(100.0));
        assert!(a.is_admitted());
        assert!(b.is_admitted());
        assert_eq!(c, Admission::Rejected);
        assert_eq!(q.rejected(), 1);
        assert_eq!(c.queued_for(), SimDuration::ZERO);
    }

    #[test]
    fn backlog_drains_over_time() {
        let mut q = RequestQueue::new(RequestQueueConfig {
            concurrency: 1,
            capacity: 0,
        });
        for _ in 0..4 {
            q.offer(secs(0.0), dur(10.0));
        }
        assert_eq!(q.backlog(secs(0.0)), 3);
        assert_eq!(q.backlog(secs(15.0)), 2);
        assert_eq!(q.backlog(secs(35.0)), 0);
    }

    #[test]
    fn more_concurrency_means_less_queueing() {
        let run = |concurrency| {
            let mut q = RequestQueue::new(RequestQueueConfig {
                concurrency,
                capacity: 0,
            });
            for i in 0..20 {
                q.offer(secs(i as f64 * 0.1), dur(5.0));
            }
            q.mean_queue_delay().as_secs()
        };
        let narrow = run(1);
        let wide = run(8);
        assert!(
            wide < narrow,
            "concurrency 8 ({wide}) should queue less than 1 ({narrow})"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn admitted_requests_never_overlap_beyond_concurrency(
            concurrency in 1u32..6,
            arrivals in proptest::collection::vec((0.0f64..100.0, 0.5f64..10.0), 1..60),
        ) {
            let mut sorted = arrivals.clone();
            sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let mut queue = RequestQueue::new(RequestQueueConfig { concurrency, capacity: 0 });
            let mut intervals: Vec<(f64, f64)> = Vec::new();
            for (arrival, service) in sorted {
                match queue.offer(SimTime::from_secs(arrival), SimDuration::from_secs(service)) {
                    Admission::Admitted { started_at, finished_at, queued_for } => {
                        // Service starts no earlier than arrival and runs for exactly `service`.
                        prop_assert!(started_at.as_secs() >= arrival - 1e-9);
                        prop_assert!((finished_at.as_secs() - started_at.as_secs() - service).abs() < 1e-9);
                        prop_assert!((started_at.as_secs() - arrival - queued_for.as_secs()).abs() < 1e-9);
                        intervals.push((started_at.as_secs(), finished_at.as_secs()));
                    }
                    Admission::Rejected => prop_assert!(false, "unbounded queue never rejects"),
                }
            }
            // At no point do more than `concurrency` admitted requests overlap.
            for &(start, _) in &intervals {
                let active = intervals
                    .iter()
                    .filter(|(s, f)| *s <= start + 1e-9 && *f > start + 1e-9)
                    .count();
                prop_assert!(active <= concurrency as usize,
                    "{active} overlapping requests exceed concurrency {concurrency}");
            }
        }
    }
}
