//! Multi-node session federation over [`Update::RemoteBytes`]: N in-process
//! [`Session`]s composed gateway-to-gateway into one cluster-spanning
//! aggregation tree.
//!
//! The unified session API (see [`crate::session`]) drives an N-level tree
//! inside one process. LIFL's headline claim, however, is hierarchical
//! aggregation that spans *machines*: each node runs its own subtree over its
//! own shared-memory store, and only the node's merged intermediate crosses
//! the network — in its codec-tagged wire form, never re-expanded to dense
//! parameters. [`Cluster`] is that deployment in process form:
//!
//! * [`ClusterBuilder`] splits a configured global [`Topology`] at its top
//!   level: the top fan-in is the machine count, and every node runs the
//!   remaining levels as its own [`Session`] (placed into the global tree via
//!   [`SessionBuilder::tree_position`], so per-position codec streams match a
//!   single session over the whole tree bit-for-bit).
//! * [`Cluster::ingest`] routes each leaf ingest to the owning node with the
//!   same round-robin rule a single session uses, applying per-client
//!   error-feedback encoding once at the cluster ingress.
//! * [`Cluster::drive`] drives every node subtree, exports each merged
//!   update as wire bytes ([`Session::drive_to_wire`] — zero-copy, no
//!   intermediate `DenseModel`), ships it to the parent session's gateway as
//!   [`Update::RemoteBytes`] (header-only parsing on arrival) and prices the
//!   hop through the `lifl-dataplane` transport cost models.
//!
//! A cluster round is **bit-exact** with the equivalent single-session
//! [`Session::drive`] for every codec (enforced by the `tests/it/cluster.rs`
//! tier), so federating over machines changes where bytes live and what the
//! hops cost — never the aggregate.
//!
//! **Live top placement.** The node hosting the global top is not a static
//! wiring decision: under the default [`TopPlacement::MostLoaded`] policy the
//! cluster keeps a per-node [`EwmaEstimator`] of observed load (each round's
//! per-node ingest counts, plus any external queue-depth observations fed in
//! via [`Cluster::observe_node_load`]) and re-places the top on the
//! most-loaded node at every round boundary — the paper's §5.2 rule, so the
//! largest intermediate never crosses machines. A move is a cheap warm-state
//! handoff (the codec streams are tree-position-derived, so results are
//! unchanged — enforced by the re-placement test in `tests/it/driver.rs`)
//! priced like every other hop through [`CostModel::hop_transfer`].

use crate::admission::AdmissionQueues;
use crate::heartbeat::HeartbeatMonitor;
use crate::hierarchy::EwmaEstimator;
use crate::recovery::{RecoveryManager, RecoveryOutcome};
use crate::session::{Session, SessionBuilder, Update, WireExport};
use lifl_dataplane::{CostModel, DataPlaneKind, TransferCost};
use lifl_fl::aggregate::ModelUpdate;
use lifl_fl::codec::{ErrorFeedback, UpdateCodec};
use lifl_serverless::{FleetConfig, FleetController, FleetDecision};
use lifl_shmem::{BufferPool, CheckpointStore, StoreStats};
use lifl_types::{
    AdmissionConfig, AdmissionOutcome, ClientId, CodecKind, FoldPolicy, LiflError, NodeId, Result,
    RoundClose, SimDuration, SimTime, Topology,
};

/// How a [`Cluster`] chooses the node hosting the global top aggregator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopPlacement {
    /// Pin the top to a fixed node for the cluster's whole life (the
    /// pre-live-placement behaviour; useful as an experimental control).
    Pinned(usize),
    /// Live placement (§5.2): host the top on the node with the highest
    /// EWMA-smoothed load estimate, re-evaluated at every round boundary.
    /// Ties keep the incumbent, so a uniformly loaded cluster never churns.
    MostLoaded {
        /// EWMA smoothing coefficient α (the paper uses 0.7).
        alpha: f64,
    },
}

impl Default for TopPlacement {
    fn default() -> Self {
        TopPlacement::MostLoaded { alpha: 0.7 }
    }
}

/// A top re-placement performed at a round boundary: the warm top state (the
/// current global intermediate) handed off from the old host to the new,
/// most-loaded one.
#[derive(Debug, Clone)]
pub struct TopMove {
    /// The node that hosted the top until this round.
    pub from: NodeId,
    /// The node hosting the top from this round on.
    pub to: NodeId,
    /// Bytes of warm top state shipped (zero before any round has produced
    /// a global intermediate).
    pub state_bytes: u64,
    /// The modelled transport cost of the handoff (always a cross-machine
    /// transfer).
    pub cost: TransferCost,
}

/// Configuration of a cluster's failure-handling machinery (§3): keep-alive
/// heartbeats per node, periodic checkpointing of committed global models,
/// and the restart delay a replacement runtime needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultToleranceConfig {
    /// Checkpoint the committed global model every this many driven rounds
    /// (see [`RecoveryManager::new`]). Must be at least 1.
    pub checkpoint_every: u64,
    /// Time a replacement aggregator runtime needs to come up after a
    /// failure.
    pub restart_delay: SimDuration,
    /// A node whose last keep-alive heartbeat is older than this is declared
    /// failed by [`Cluster::detect_failed_nodes`].
    pub heartbeat_timeout: SimDuration,
}

impl Default for FaultToleranceConfig {
    fn default() -> Self {
        FaultToleranceConfig {
            checkpoint_every: 1,
            restart_delay: SimDuration::from_secs(1.0),
            heartbeat_timeout: SimDuration::from_secs(30.0),
        }
    }
}

/// A global-top recovery: the checkpoint restore performed after the node
/// hosting the global top aggregator failed, plus the priced transfer that
/// ships the checkpointed model to the replacement runtime.
#[derive(Debug, Clone)]
pub struct TopRecovery {
    /// What was recovered and what was lost (see
    /// [`RecoveryManager::fail_and_recover`]).
    pub outcome: RecoveryOutcome,
    /// The modelled cost of shipping the checkpointed model from the
    /// persistent store to the replacement top host (a network transfer).
    pub transfer: TransferCost,
}

/// Running totals of the failures a fault-tolerant cluster absorbed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Child-node kills handled by discarding the node's subtree round and
    /// refilling its lost slots (restart-and-redrive).
    pub node_restarts: u64,
    /// Global-top kills handled by restoring the latest checkpoint.
    pub top_recoveries: u64,
    /// Survivor hops *not* re-shipped on a retried drive because their
    /// intermediates were already folded into the global top
    /// (retry-with-dedup on the [`Update::RemoteBytes`] hop).
    pub deduped_hops: u64,
    /// Client updates lost to failures (each must be re-sent by its client).
    pub lost_updates: u64,
}

/// What one injected or detected node kill cost the in-flight round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeKill {
    /// The killed node.
    pub node: NodeId,
    /// Updates that were pending on the node (for a top-host kill: in the
    /// whole round) and are lost.
    pub lost_updates: u64,
    /// Whether the killed node hosted the global top — in which case the
    /// whole round is lost and recovery restores the latest checkpoint
    /// (see [`Cluster::take_recovery`]).
    pub top_host: bool,
}

/// The per-cluster failure-handling state behind
/// [`ClusterBuilder::fault_tolerance`].
#[derive(Debug)]
struct FaultState {
    recovery: RecoveryManager,
    monitor: HeartbeatMonitor,
    clock: SimTime,
    /// A pending [`Cluster::schedule_node_failure`]: kill fires inside the
    /// next drive once this many hops of the round have completed.
    scheduled: Option<(usize, u64)>,
    /// True once the round's top placement ran, so retried drives never
    /// re-place (or double-observe load into the EWMAs) mid-round.
    placed: bool,
    /// Per node: this round's intermediate is already folded into the global
    /// top, so a retried drive skips (dedups) its hop.
    hop_done: Vec<bool>,
    /// Hops / node reports accumulated across retries of the same round.
    partial_hops: Vec<ClusterHop>,
    partial_nodes: Vec<NodeRoundReport>,
    /// Per node: lost update slots a restarted node still needs refilled
    /// (re-ingests route here before round-robin resumes).
    refill: Vec<u64>,
    /// Clients whose updates are pending on each node this round.
    node_clients: Vec<Vec<ClientId>>,
    /// Clients whose updates were lost to kills and must re-send.
    lost_clients: Vec<ClientId>,
    last_recovery: Option<TopRecovery>,
    stats: FaultStats,
}

impl FaultState {
    fn new(config: FaultToleranceConfig, nodes: usize) -> Result<Self> {
        let recovery = RecoveryManager::new(config.checkpoint_every, config.restart_delay)?;
        let mut monitor = HeartbeatMonitor::new(config.heartbeat_timeout);
        for node in 0..nodes {
            monitor.register(ClientId::new(node as u64), SimTime::ZERO);
        }
        Ok(FaultState {
            recovery,
            monitor,
            clock: SimTime::ZERO,
            scheduled: None,
            placed: false,
            hop_done: vec![false; nodes],
            partial_hops: Vec::new(),
            partial_nodes: Vec::new(),
            refill: vec![0; nodes],
            node_clients: vec![Vec::new(); nodes],
            lost_clients: Vec::new(),
            last_recovery: None,
            stats: FaultStats::default(),
        })
    }

    /// Forgets everything scoped to the current round (a completed,
    /// discarded or top-lost round). Heartbeats, stats, the recovery manager
    /// and any pending [`TopRecovery`] persist.
    fn clear_round(&mut self) {
        self.scheduled = None;
        self.placed = false;
        self.hop_done.fill(false);
        self.partial_hops.clear();
        self.partial_nodes.clear();
        self.refill.fill(0);
        for clients in &mut self.node_clients {
            clients.clear();
        }
        self.lost_clients.clear();
    }

    fn advance_clock(&mut self, now: SimTime) {
        if now > self.clock {
            self.clock = now;
        }
    }
}

/// Builds a [`Cluster`]: the global tree, codec, shard count, seed, hop cost
/// model and the top-placement policy, with working defaults.
///
/// ```
/// use lifl_core::cluster::ClusterBuilder;
/// use lifl_types::{CodecKind, Topology};
///
/// // A 3-level global tree whose top fan-in is the machine count: 4 nodes
/// // each drive a [2, 2] subtree, and live placement picks the top host.
/// let cluster = ClusterBuilder::new()
///     .topology(Topology::new(vec![2, 2, 4]).unwrap())
///     .codec(CodecKind::Uniform8)
///     .build()
///     .unwrap();
/// assert_eq!(cluster.nodes(), 4);
/// assert_eq!(cluster.subtree().levels(), 2);
/// assert_eq!(cluster.topology().total_updates(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    topology: Topology,
    codec: CodecKind,
    shards: usize,
    seed: u64,
    placement: TopPlacement,
    cost: CostModel,
    dataplane: DataPlaneKind,
    policy: FoldPolicy,
    faults: Option<FaultToleranceConfig>,
    admission: Option<AdmissionConfig>,
    fleet: Option<FleetConfig>,
    deferred_error: Option<String>,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ClusterBuilder {
    /// A builder with the session defaults: the classic 4×2 two-level tree
    /// split into 4 single-leaf nodes, [`CodecKind::Identity`], one shard,
    /// the paper-calibrated hop cost model, LIFL's shared-memory data plane
    /// for same-node hops, and live [`TopPlacement::MostLoaded`] placement
    /// of the global top (which starts on node 0 until load signals differ).
    pub fn new() -> Self {
        ClusterBuilder {
            topology: Topology::default(),
            codec: CodecKind::Identity,
            shards: 1,
            seed: 0x5EED,
            placement: TopPlacement::default(),
            cost: CostModel::paper_calibrated(),
            dataplane: DataPlaneKind::LiflSharedMemory,
            policy: FoldPolicy::FedAvg,
            faults: None,
            admission: None,
            fleet: None,
            deferred_error: None,
        }
    }

    /// Sets the global aggregation-tree shape. The top level's fan-in is the
    /// machine count; every node drives the remaining levels in process.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Convenience mirroring the hierarchy planner's sizing rule (§5.2):
    /// plans each node's subtree with [`Topology::for_load_capped`] for an
    /// even share of `total_updates` across `nodes` machines, then appends
    /// the cross-machine top level.
    ///
    /// Like the planner, the built tree covers *at least* `total_updates`:
    /// when the load does not divide evenly, per-node shares round up, and a
    /// round must still fill the tree exactly —
    /// [`Cluster::drive`] aggregates `cluster.topology().total_updates()`
    /// updates, which may exceed the `total_updates` planned for (pad with
    /// real ingests, as the planner's under-filled leaves do).
    pub fn for_load(
        mut self,
        total_updates: usize,
        leaf_fan_in: usize,
        max_interior_fan_in: usize,
        nodes: usize,
    ) -> Self {
        let nodes = nodes.max(1);
        let per_node = total_updates.max(1).div_ceil(nodes);
        let subtree = Topology::for_load_capped(per_node, leaf_fan_in, max_interior_fan_in);
        let mut fan_in = subtree.fan_ins().to_vec();
        fan_in.push(nodes);
        // Builders never panic: an invalid planned tree is deferred to
        // `build()`'s Result like every other configuration error.
        match Topology::new(fan_in) {
            Ok(topology) => self.topology = topology,
            Err(error) => {
                self.deferred_error = Some(format!(
                    "for_load({total_updates}, {leaf_fan_in}, {max_interior_fan_in}, \
                     {nodes}) planned an invalid tree: {error}"
                ));
            }
        }
        self
    }

    /// Sets the wire codec every update — and every inter-node hop — travels
    /// with.
    pub fn codec(mut self, codec: CodecKind) -> Self {
        self.codec = codec;
        self
    }

    /// Sets the per-aggregator shard count on every node (see
    /// [`SessionBuilder::shards`]).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Seeds the cluster-ingress error-feedback encoder (per-aggregator
    /// codec streams derive from tree positions, exactly as in a single
    /// session with the same seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Picks the policy deciding which node hosts the global top aggregator.
    /// The paper places it on the most loaded node so the largest
    /// intermediate never crosses machines — that live policy
    /// ([`TopPlacement::MostLoaded`]) is the default; pin with
    /// [`TopPlacement::Pinned`] to reproduce the old static wiring. The
    /// hosting node's hop is priced as an intra-node shared-memory transfer
    /// instead of a network transfer.
    pub fn placement(mut self, placement: TopPlacement) -> Self {
        self.placement = placement;
        self
    }

    /// Injects the transport cost model every hop is priced through.
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the data plane same-node hops cross (remote hops always price as
    /// network transfers).
    pub fn dataplane(mut self, dataplane: DataPlaneKind) -> Self {
        self.dataplane = dataplane;
        self
    }

    /// Sets the fold policy every aggregator — on every node, and at the
    /// global top — applies (see [`SessionBuilder::fold_policy`]). The
    /// default [`FoldPolicy::FedAvg`] is bit-exact with a cluster built
    /// before the policy existed; robust policies discard per-coordinate
    /// tails at each level, so corrupted or adversarially scaled client
    /// updates cannot drag the global aggregate.
    pub fn fold_policy(mut self, policy: FoldPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables the cluster's failure-handling machinery (§3): per-node
    /// keep-alive heartbeats, a child [`Session`] killable mid-round
    /// ([`Cluster::inject_node_failure`] /
    /// [`Cluster::schedule_node_failure`]), retry-with-dedup re-drives from
    /// surviving subtrees, and checkpoint-based recovery of the global top
    /// through a [`RecoveryManager`]. Without this, any failure aborts the
    /// round exactly as before.
    pub fn fault_tolerance(mut self, config: FaultToleranceConfig) -> Self {
        self.faults = Some(config);
        self
    }

    /// Enables the streaming admission path at the cluster ingress: one
    /// bounded, [`BufferPool`]-backed queue per node with the given slot and
    /// byte caps. [`Cluster::try_ingest`] answers with typed backpressure,
    /// overflow on the strict [`Cluster::ingest`] parks instead of erroring,
    /// queued offers drain into the next round in Oort-utility order
    /// ([`Cluster::record_client_utility`]), and a
    /// [`RoundClose::Quorum`] close lets [`Cluster::drive`] run partial
    /// rounds (the quorum propagates into every node subtree and the global
    /// top). Without this the cluster keeps its legacy exact-fill semantics.
    pub fn admission(mut self, config: AdmissionConfig) -> Self {
        self.admission = Some(config);
        self
    }

    /// Enables KPA-driven aggregator-fleet scaling: at every round boundary
    /// each node's observed admission-queue depth feeds a per-node
    /// [`FleetController`] control loop, and nodes whose desired leaf count
    /// changed get their subtree re-split (grown or retired) before the next
    /// round's backlog drains — each re-split priced through the cluster's
    /// [`CostModel::hop_transfer`]. Decisions land in
    /// [`ClusterReport::scaling`]. The controller runs on a synthetic
    /// per-round clock, so the same arrival trace always produces the same
    /// spawn/retire sequence.
    pub fn fleet_scaling(mut self, config: FleetConfig) -> Self {
        self.fleet = Some(config);
        self
    }

    /// Builds the cluster: one child session per node (each with its own
    /// gateway and shared-memory store, all recycling scratch through one
    /// shared [`BufferPool`]) plus the parent session hosting the global
    /// top.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidConfig`] if the global topology is flat
    /// (a cluster needs a top level to split off), a pinned top node lies
    /// outside the machine count, an earlier builder step (such as
    /// [`ClusterBuilder::for_load`]) produced an invalid configuration, or
    /// the codec, fold-policy or fault-tolerance configuration is invalid.
    pub fn build(self) -> Result<Cluster> {
        if let Some(deferred) = self.deferred_error {
            return Err(LiflError::InvalidConfig(deferred));
        }
        self.policy.validate().map_err(LiflError::InvalidConfig)?;
        let Some((subtree, nodes)) = self.topology.split_top() else {
            return Err(LiflError::InvalidConfig(format!(
                "cluster federation needs at least two levels to split \
                 gateway-to-gateway, got {}",
                self.topology
            )));
        };
        let (top_node, alpha) = match self.placement {
            TopPlacement::Pinned(node) => {
                if node >= nodes {
                    return Err(LiflError::InvalidConfig(format!(
                        "pinned top node {node} outside the cluster's {nodes} nodes"
                    )));
                }
                (node, 0.7)
            }
            TopPlacement::MostLoaded { alpha } => (0, alpha),
        };
        if let Some(config) = &self.admission {
            config.validate()?;
        }
        let pool = BufferPool::new();
        // Under a quorum close, partially filled node subtrees (and a
        // partially fed global top) must still drive: the quorum — relaxed
        // to "anything non-empty" — propagates into every child session.
        let child_admission = match &self.admission {
            Some(config) if matches!(config.round_close, RoundClose::Quorum { .. }) => {
                Some(AdmissionConfig {
                    round_close: RoundClose::Quorum { min_updates: 1 },
                    ..*config
                })
            }
            _ => None,
        };
        let children = (0..nodes)
            .map(|k| {
                let mut builder = SessionBuilder::new()
                    .topology(subtree.clone())
                    .codec(self.codec)
                    .shards(self.shards)
                    .seed(self.seed)
                    .fold_policy(self.policy)
                    .node(NodeId::new(k as u64))
                    .tree_position(0, k)
                    .pool(pool.clone());
                if let Some(config) = child_admission {
                    builder = builder.admission(config);
                }
                builder.build()
            })
            .collect::<Result<Vec<Session>>>()?;
        let mut parent_builder = SessionBuilder::new()
            .topology(Topology::flat(nodes))
            .codec(self.codec)
            .shards(self.shards)
            .seed(self.seed)
            .fold_policy(self.policy)
            .node(NodeId::new(top_node as u64))
            .tree_position(subtree.levels(), 0)
            .pool(pool.clone());
        if let Some(config) = child_admission {
            parent_builder = parent_builder.admission(config);
        }
        let parent = parent_builder.build()?;
        let faults = match self.faults {
            Some(config) => Some(FaultState::new(config, nodes)?),
            None => None,
        };
        let admission = self
            .admission
            .map(|config| AdmissionQueues::new(config, nodes, pool.clone()));
        let fleet = match self.fleet {
            Some(config) => Some(FleetController::new(config, nodes)?),
            None => None,
        };
        let feedback = ErrorFeedback::new(
            UpdateCodec::with_seed(self.codec, self.seed).with_pool(pool.clone()),
        );
        Ok(Cluster {
            topology: self.topology,
            subtree,
            codec: self.codec,
            placement: self.placement,
            top_node,
            estimators: vec![EwmaEstimator::new(alpha); nodes],
            node_pending: vec![0; nodes],
            handoff_bytes: 0,
            cost: self.cost,
            dataplane: self.dataplane,
            children,
            parent,
            feedback,
            pool,
            policy: self.policy,
            shards: self.shards,
            seed: self.seed,
            faults,
            admission,
            child_admission,
            fleet,
            vacancies: Vec::new(),
            ingested: 0,
            route_cursor: 0,
            lifetime_ingested: 0,
        })
    }
}

/// One priced gateway-to-gateway hop of a driven cluster round.
#[derive(Debug, Clone)]
pub struct ClusterHop {
    /// The node whose merged intermediate crossed to the top.
    pub node: NodeId,
    /// Payload bytes the hop put on the data plane (codec-encoded form; the
    /// 16-byte descriptor rides the control channel).
    pub wire_bytes: u64,
    /// Whether the hop stayed on the top-hosting node (shared memory) or
    /// crossed the network.
    pub same_node: bool,
    /// The modelled transport cost of the hop.
    pub cost: TransferCost,
}

/// What one node's subtree contributed to a driven cluster round.
#[derive(Debug, Clone)]
pub struct NodeRoundReport {
    /// The node.
    pub node: NodeId,
    /// The node store's statistics at the end of the round.
    pub store_stats: StoreStats,
    /// Data-plane payload bytes the node's leaf ingests occupied.
    pub ingress_wire_bytes: u64,
    /// Client updates the node's subtree aggregated.
    pub updates_ingested: u64,
}

/// One fleet-scaling action applied at a round boundary: a node's subtree
/// re-split to the controller's desired leaf count, priced as the warm-state
/// transfer that moves aggregator state onto (or off) the node.
#[derive(Debug, Clone)]
pub struct ScalingAction {
    /// The controller's decision (observed depth, current and desired
    /// leaves, panic state).
    pub decision: FleetDecision,
    /// The modelled transport cost of re-splitting the subtree (zero bytes
    /// before any round has produced warm state).
    pub cost: TransferCost,
}

/// Everything a driven cluster round produced.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// The aggregated global model (decoded once, at the global top).
    pub update: ModelUpdate,
    /// The global tree the round ran over.
    pub topology: Topology,
    /// Per-node subtree accounting, in node order.
    pub nodes: Vec<NodeRoundReport>,
    /// Every gateway-to-gateway hop, in node order, priced through the
    /// cluster's transport cost model.
    pub hops: Vec<ClusterHop>,
    /// The node that hosted the global top for this round (after any
    /// round-boundary re-placement).
    pub top_node: NodeId,
    /// The top re-placement performed at this round's boundary, if the
    /// placement policy moved the top to a newly most-loaded node.
    pub replacement: Option<TopMove>,
    /// The top-hosting node store's statistics at the end of the round.
    pub top_store_stats: StoreStats,
    /// Per-node admission-queue depths observed at the round boundary
    /// (before the backlog drained into the next round; empty without an
    /// admission configuration).
    pub queue_depths: Vec<usize>,
    /// The fleet-scaling decisions applied at this round's boundary, in node
    /// order (empty without fleet scaling; holds a decision per node every
    /// round, resize or not, so traces are complete).
    pub scaling: Vec<ScalingAction>,
}

impl ClusterReport {
    /// Total client updates the round aggregated.
    pub fn updates_ingested(&self) -> u64 {
        self.nodes.iter().map(|n| n.updates_ingested).sum()
    }

    /// Payload bytes that actually crossed machines (same-node hops stay in
    /// shared memory and are excluded).
    pub fn inter_node_wire_bytes(&self) -> u64 {
        self.hops
            .iter()
            .filter(|h| !h.same_node)
            .map(|h| h.wire_bytes)
            .sum()
    }

    /// Modelled wall-clock cost of the round's *remote* hops when the top
    /// node's gateway serialises arrivals one update at a time (§4.2),
    /// exactly the contention rule the simulated platform applies at its top
    /// stage — the top-hosting node's own intermediate arrives over shared
    /// memory concurrently and is excluded.
    pub fn serialized_hop_latency(&self) -> SimDuration {
        self.hops
            .iter()
            .filter(|h| !h.same_node)
            .map(|h| h.cost.latency)
            .fold(SimDuration::ZERO, |acc, l| acc + l)
    }
}

/// N in-process sessions composed gateway-to-gateway over
/// [`Update::RemoteBytes`] into one cluster-spanning aggregation tree: the
/// multi-node deployment of the unified session API.
///
/// A cluster is reusable across rounds exactly like a [`Session`]: after
/// [`Cluster::drive`] returns (or fails, discarding the round on every
/// node), the next round's ingests begin immediately, and per-client
/// error-feedback residuals persist at the cluster ingress.
///
/// ```
/// use lifl_core::cluster::ClusterBuilder;
/// use lifl_core::session::Update;
/// use lifl_fl::DenseModel;
/// use lifl_types::{ClientId, Topology};
///
/// // Two nodes, each driving a [2, 2] subtree of the global [2, 2, 2] tree.
/// let mut cluster = ClusterBuilder::new()
///     .topology(Topology::new(vec![2, 2, 2]).unwrap())
///     .build()
///     .unwrap();
/// for i in 0..8u64 {
///     let model = DenseModel::from_vec(vec![i as f32; 16]);
///     cluster
///         .ingest(Update::dense(ClientId::new(i), model, i + 1))
///         .unwrap();
/// }
/// let report = cluster.drive().unwrap();
/// assert_eq!(report.update.samples, (1..=8).sum::<u64>());
/// assert_eq!(report.hops.len(), 2);
/// // Node 0 hosts the top: only node 1's intermediate crossed machines.
/// assert!(report.hops[0].same_node && !report.hops[1].same_node);
/// assert_eq!(report.inter_node_wire_bytes(), 16 * 4);
/// ```
#[derive(Debug)]
pub struct Cluster {
    topology: Topology,
    subtree: Topology,
    codec: CodecKind,
    placement: TopPlacement,
    top_node: usize,
    estimators: Vec<EwmaEstimator>,
    node_pending: Vec<u64>,
    handoff_bytes: u64,
    cost: CostModel,
    dataplane: DataPlaneKind,
    children: Vec<Session>,
    parent: Session,
    feedback: ErrorFeedback,
    pool: BufferPool,
    policy: FoldPolicy,
    shards: usize,
    seed: u64,
    faults: Option<FaultState>,
    /// The per-node bounded ingress queues (streaming admission path).
    admission: Option<AdmissionQueues>,
    /// The admission configuration child sessions are (re)built with under a
    /// quorum close, so partially filled subtrees still drive.
    child_admission: Option<AdmissionConfig>,
    /// The KPA fleet controller re-splitting node subtrees at round
    /// boundaries, when fleet scaling is enabled.
    fleet: Option<FleetController>,
    /// Nodes with a reclaimed slot from mid-round churn: refilled before the
    /// round-robin cursor advances, so survivors keep their assignment.
    vacancies: Vec<usize>,
    ingested: u64,
    /// The round-robin position normal ingests route by. Tracks `ingested`
    /// exactly until a node failure: refilling a restarted node's lost slots
    /// routes directly to that node without consuming round-robin positions,
    /// so the survivors' leaf assignment is unchanged.
    route_cursor: u64,
    lifetime_ingested: u64,
}

impl Cluster {
    /// The global tree this cluster aggregates over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The per-node subtree every child session drives.
    pub fn subtree(&self) -> &Topology {
        &self.subtree
    }

    /// The wire codec in use.
    pub fn codec(&self) -> CodecKind {
        self.codec
    }

    /// Number of nodes (child sessions) in the cluster.
    pub fn nodes(&self) -> usize {
        self.children.len()
    }

    /// The per-node child sessions, in node order (read-only observability;
    /// ingests must go through [`Cluster::ingest`] so routing and
    /// error-feedback state stay consistent).
    pub fn node_sessions(&self) -> &[Session] {
        &self.children
    }

    /// The scratch-buffer pool shared by every session's codecs.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// The placement policy deciding which node hosts the global top.
    pub fn placement(&self) -> TopPlacement {
        self.placement
    }

    /// The node currently hosting the global top aggregator.
    pub fn top_node(&self) -> NodeId {
        NodeId::new(self.top_node as u64)
    }

    /// Feeds an external load observation (e.g. a node's reported pending
    /// queue depth, as the coordinator's metric reports do) into the node's
    /// EWMA load estimator. Ingest routing already feeds each round's
    /// per-node update counts automatically; this adds out-of-band signals
    /// so placement can react to load the cluster ingress does not see.
    pub fn observe_node_load(&mut self, node: NodeId, pending: f64) {
        let index = node.index() as usize;
        if index < self.estimators.len() {
            self.estimators[index].observe(pending);
        }
    }

    /// The smoothed per-node load estimates live placement decides over, in
    /// node order (zero until a node has been observed).
    pub fn load_estimates(&self) -> Vec<(NodeId, f64)> {
        self.estimators
            .iter()
            .enumerate()
            .map(|(k, e)| (NodeId::new(k as u64), e.estimate().unwrap_or(0.0)))
            .collect()
    }

    /// Updates ingested into the current (not yet driven) round.
    pub fn pending_updates(&self) -> u64 {
        self.ingested
    }

    /// Updates one round aggregates across every node subtree. Equals the
    /// built topology's total until fleet scaling re-splits a subtree, after
    /// which it tracks the live per-node shapes.
    pub fn round_capacity(&self) -> usize {
        self.children
            .iter()
            .map(|c| c.topology().total_updates())
            .sum()
    }

    /// Leaf aggregators currently deployed per node, in node order.
    pub fn node_leaves(&self) -> Vec<usize> {
        self.children
            .iter()
            .map(|c| c.topology().leaves())
            .collect()
    }

    /// The node owning global leaf `leaf`, under the live per-node shapes
    /// (each node owns a contiguous block of leaves, exactly the built
    /// split until fleet scaling changes a block's width).
    fn node_of_leaf(&self, leaf: usize) -> usize {
        let mut remaining = leaf;
        for (node, child) in self.children.iter().enumerate() {
            let leaves = child.topology().leaves();
            if remaining < leaves {
                return node;
            }
            remaining -= leaves;
        }
        self.children.len().saturating_sub(1)
    }

    /// The node the round-robin cursor routes to next.
    fn cursor_node(&self) -> usize {
        let total: usize = self.children.iter().map(|c| c.topology().leaves()).sum();
        let leaf = (self.route_cursor as usize) % total.max(1);
        self.node_of_leaf(leaf)
    }

    /// The cluster-wide ingress: routes the update to the node owning the
    /// next leaf, with the exact round-robin rule a single session over the
    /// global tree applies (update *k* of a round feeds global leaf
    /// `k % leaves`, and each node owns a contiguous block of leaves).
    ///
    /// Under a lossy codec, dense ingests are encoded once here — with
    /// per-client error feedback seeded like a single session's ingress — so
    /// child sessions store the compressed form as-is and the cluster stays
    /// bit-exact with its single-session equivalent.
    ///
    /// # Errors
    /// Same conditions as [`Session::ingest`]. A failed ingest counts
    /// nothing toward the round.
    pub fn ingest(&mut self, update: Update) -> Result<()> {
        if self.ingested as usize >= self.round_capacity() {
            if self.admission.is_some() {
                // Streaming path configured: overflow routes through the
                // bounded backpressure queues instead of erroring outright.
                return match self.queue_offer(update)? {
                    AdmissionOutcome::Rejected { .. } => Err(LiflError::InvalidConfig(
                        "cluster round is full and the admission queue budget is exhausted"
                            .to_string(),
                    )),
                    _ => Ok(()),
                };
            }
            return Err(LiflError::InvalidConfig(format!(
                "cluster round is full: topology aggregates {} updates",
                self.round_capacity()
            )));
        }
        // Refill slots of a restarted node take priority over round-robin:
        // re-sent updates route straight to the node that lost them, so the
        // survivors' leaf assignment is untouched by the failure. Vacancies
        // reclaimed by mid-round churn refill next, for the same reason.
        let refill_slot = self
            .faults
            .as_ref()
            .and_then(|f| f.refill.iter().position(|&r| r > 0));
        let vacancy = match refill_slot {
            Some(_) => None,
            None => self.vacancies.pop(),
        };
        let node = match (refill_slot, vacancy) {
            (Some(node), _) => node,
            (None, Some(node)) => node,
            (None, None) => self.cursor_node(),
        };
        // One attribution rule for every representation and node: anonymous
        // updates take the *cluster*-lifetime arrival index, so residual
        // slots and fallback ids match the single-session equivalent.
        let fallback = ClientId::new(self.lifetime_ingested);
        let tracked: ClientId;
        let update = match update {
            Update::Dense(mut dense) => {
                tracked = *dense.client.get_or_insert(fallback);
                if self.codec.is_lossless() {
                    Update::Dense(dense)
                } else {
                    let samples = dense.samples;
                    self.feedback.encode_update(tracked, dense.model, samples)
                }
            }
            Update::Encoded {
                client,
                update,
                samples,
            } => {
                tracked = client.unwrap_or(fallback);
                Update::Encoded {
                    client: Some(tracked),
                    update,
                    samples,
                }
            }
            other => {
                tracked = fallback;
                other
            }
        };
        let outcome = self.children[node].ingest(update);
        match &outcome {
            Ok(()) => {
                self.ingested += 1;
                self.lifetime_ingested += 1;
                self.node_pending[node] += 1;
                if refill_slot.is_none() && vacancy.is_none() {
                    self.route_cursor += 1;
                }
                if let Some(f) = &mut self.faults {
                    if refill_slot.is_some() {
                        f.refill[node] -= 1;
                    }
                    f.node_clients[node].push(tracked);
                }
            }
            Err(_) => {
                if let Some(v) = vacancy {
                    self.vacancies.push(v);
                }
            }
        }
        outcome
    }

    /// Ingests a batch of updates in order (see [`Cluster::ingest`]).
    ///
    /// # Errors
    /// Same conditions as [`Cluster::ingest`]; updates before the failing
    /// one stay ingested.
    pub fn ingest_all(&mut self, updates: impl IntoIterator<Item = Update>) -> Result<()> {
        for update in updates {
            self.ingest(update)?;
        }
        Ok(())
    }

    /// The streaming cluster ingress: offers one update and answers with
    /// typed backpressure. While the round has room the update is admitted
    /// exactly as [`Cluster::ingest`] would; once the round is full the
    /// update is parked in the owning node's bounded queue
    /// (`Queued{depth}`) or, when that queue's slot/byte budget is
    /// exhausted, turned away (`Rejected{retry_after}`). Queued clients win
    /// admission into the next round in Oort-utility order. Without a
    /// [`ClusterBuilder::admission`] configuration there is no backlog and
    /// overflow is rejected with a zero retry hint.
    ///
    /// # Errors
    /// Fails only on store/codec errors; a full round is an outcome, not an
    /// error.
    pub fn try_ingest(&mut self, update: Update) -> Result<AdmissionOutcome> {
        if (self.ingested as usize) < self.round_capacity() {
            self.ingest(update)?;
            return Ok(AdmissionOutcome::Admitted);
        }
        if self.admission.is_none() {
            return Ok(AdmissionOutcome::Rejected {
                retry_after: SimDuration::ZERO,
            });
        }
        self.queue_offer(update)
    }

    /// Normalises an overflow update to wire form and parks it in the
    /// per-node admission queues (the round is full).
    fn queue_offer(&mut self, update: Update) -> Result<AdmissionOutcome> {
        // Same attribution and lossy-encode rules as the admitted path, so a
        // queued-then-drained update flows exactly as a direct ingest would.
        let fallback = ClientId::new(self.lifetime_ingested);
        let update = match update {
            Update::Dense(mut dense) => {
                let client = *dense.client.get_or_insert(fallback);
                if self.codec.is_lossless() {
                    Update::Dense(dense)
                } else {
                    let samples = dense.samples;
                    self.feedback.encode_update(client, dense.model, samples)
                }
            }
            other => other,
        };
        let outcome = match &update {
            Update::Dense(dense) => {
                let mut wire = self.pool.checkout_bytes(dense.model.dim() * 4);
                for v in dense.model.as_slice() {
                    wire.extend_from_slice(&v.to_le_bytes());
                }
                let outcome = match self.admission.as_mut() {
                    Some(queues) => queues.offer(dense.client, &wire, dense.samples, false),
                    None => AdmissionOutcome::Rejected {
                        retry_after: SimDuration::ZERO,
                    },
                };
                self.pool.checkin_bytes(wire);
                outcome
            }
            Update::Encoded {
                client,
                update: encoded,
                samples,
            } => {
                let wire = encoded.to_bytes();
                match self.admission.as_mut() {
                    Some(queues) => queues.offer(*client, &wire, *samples, true),
                    None => AdmissionOutcome::Rejected {
                        retry_after: SimDuration::ZERO,
                    },
                }
            }
            Update::RemoteBytes {
                wire,
                weight,
                encoded,
            } => match self.admission.as_mut() {
                Some(queues) => queues.offer(None, wire, *weight, *encoded),
                None => AdmissionOutcome::Rejected {
                    retry_after: SimDuration::ZERO,
                },
            },
        };
        self.feedback.recycle_update(update);
        Ok(outcome)
    }

    /// Drains queued offers into the open round — globally best first
    /// (utility desc, arrival asc) — until the round is full or the backlog
    /// is empty. Called automatically when a driven round opens the next
    /// one.
    fn drain_backlog(&mut self) {
        while (self.ingested as usize) < self.round_capacity() {
            let Some(offer) = self.admission.as_mut().and_then(AdmissionQueues::take_best) else {
                break;
            };
            if self
                .ingest_prepared(offer.client, offer.payload, offer.weight, offer.encoded)
                .is_err()
            {
                break;
            }
        }
    }

    /// Admits a payload already in wire form into the round, preserving its
    /// client attribution (the drain half of the admission path). Routing
    /// follows the same vacancy-then-round-robin rule as
    /// [`Cluster::ingest`].
    fn ingest_prepared(
        &mut self,
        client: Option<ClientId>,
        payload: Vec<u8>,
        weight: u64,
        encoded: bool,
    ) -> Result<()> {
        if self.ingested as usize >= self.round_capacity() {
            return Err(LiflError::InvalidConfig(format!(
                "cluster round is full: topology aggregates {} updates",
                self.round_capacity()
            )));
        }
        let vacancy = self.vacancies.pop();
        let node = vacancy.unwrap_or_else(|| self.cursor_node());
        let tracked = client.unwrap_or(ClientId::new(self.lifetime_ingested));
        match self.children[node].ingest_prepared(client, payload, weight, encoded) {
            Ok(()) => {
                self.ingested += 1;
                self.lifetime_ingested += 1;
                self.node_pending[node] += 1;
                if vacancy.is_none() {
                    self.route_cursor += 1;
                }
                if let Some(f) = &mut self.faults {
                    f.node_clients[node].push(tracked);
                }
                Ok(())
            }
            Err(e) => {
                if let Some(v) = vacancy {
                    self.vacancies.push(v);
                }
                Err(e)
            }
        }
    }

    /// Mid-round churn: removes a departed client's update from the current
    /// round on whichever node holds it (reclaiming the slot) and drops any
    /// offers it has parked in the admission queues. Reclaimed slots refill
    /// from the backlog when possible — replacements land on the departed
    /// client's node *behind* the survivors, so every survivor keeps its
    /// position. Returns `true` if anything (slot or queued offer) was
    /// reclaimed.
    pub fn depart_client(&mut self, client: ClientId) -> bool {
        let mut departed = self
            .admission
            .as_mut()
            .is_some_and(|queues| queues.remove_client(client) > 0);
        for node in 0..self.children.len() {
            let before = self.children[node].pending_updates();
            if !self.children[node].depart_client(client) {
                continue;
            }
            let removed = before.saturating_sub(self.children[node].pending_updates());
            if removed == 0 {
                continue;
            }
            departed = true;
            self.ingested = self.ingested.saturating_sub(removed);
            self.node_pending[node] = self.node_pending[node].saturating_sub(removed);
            for _ in 0..removed {
                self.vacancies.push(node);
            }
            if let Some(f) = &mut self.faults {
                let mut to_drop = removed;
                f.node_clients[node].retain(|c| {
                    if *c == client && to_drop > 0 {
                        to_drop -= 1;
                        false
                    } else {
                        true
                    }
                });
            }
        }
        // Refill reclaimed slots from the backlog (highest utility first).
        self.drain_backlog();
        departed
    }

    /// Records a client's Oort utility score for admission priority (no-op
    /// without an admission configuration).
    pub fn record_client_utility(&mut self, client: ClientId, utility: f64) {
        if let Some(queues) = self.admission.as_mut() {
            queues.record_utility(client, utility);
        }
    }

    /// The admission configuration, when the streaming path is enabled.
    pub fn admission_config(&self) -> Option<&AdmissionConfig> {
        self.admission.as_ref().map(AdmissionQueues::config)
    }

    /// Occupancy of every per-node admission queue, in node order (empty
    /// without an admission configuration).
    pub fn queue_depths(&self) -> Vec<usize> {
        self.admission
            .as_ref()
            .map_or_else(Vec::new, |q| q.depths())
    }

    /// Total updates parked in the admission queues.
    pub fn queued_updates(&self) -> usize {
        self.admission
            .as_ref()
            .map_or(0, AdmissionQueues::total_queued)
    }

    /// Lifetime admission counters (zero-default without an admission
    /// configuration).
    pub fn admission_stats(&self) -> crate::admission::AdmissionStats {
        self.admission
            .as_ref()
            .map(AdmissionQueues::stats)
            .unwrap_or_default()
    }

    /// Whether KPA fleet scaling is enabled.
    pub fn fleet_scaling_enabled(&self) -> bool {
        self.fleet.is_some()
    }

    /// The fleet controller's configuration, when fleet scaling is enabled.
    pub fn fleet_config(&self) -> Option<&FleetConfig> {
        self.fleet.as_ref().map(FleetController::config)
    }

    /// Drives the round across every node: each child session drives its
    /// subtree and exports the merged update as codec-tagged wire bytes
    /// ([`Session::drive_to_wire`] — no intermediate `DenseModel`); the
    /// parent gateway ingests each export via [`Update::RemoteBytes`]
    /// (header-only parsing, the arriving buffer is stored as-is) and the
    /// global top folds them in node order, so results are deterministic —
    /// and bit-exact with a single session over the global tree.
    ///
    /// Every hop is priced through the cluster's [`CostModel`]: a network
    /// transfer for remote nodes, a shared-memory transfer for the node
    /// hosting the top.
    ///
    /// At the round boundary (after the round's load is known, before any
    /// hop is priced) the placement policy re-evaluates which node should
    /// host the top: under [`TopPlacement::MostLoaded`] the round's per-node
    /// ingest counts (plus any [`Cluster::observe_node_load`] signals) feed
    /// the per-node EWMAs, and a now-more-loaded node takes the top over —
    /// a warm-state handoff priced in [`ClusterReport::replacement`]. The
    /// aggregate is placement-invariant: only hop pricing moves.
    ///
    /// # Errors
    /// Fails if the ingested updates do not exactly fill the global tree
    /// (the round is kept and can be topped up), or on any store, codec or
    /// aggregation error — in which case the round is discarded on every
    /// node and the cluster is reset to an empty round.
    ///
    /// With [`ClusterBuilder::fault_tolerance`] enabled, a node kill instead
    /// surfaces as [`LiflError::NodeFailure`] and the round *survives*: the
    /// killed node's subtree restarts empty while every other node (and any
    /// intermediate already folded into the global top) keeps its state.
    /// Re-ingest the lost clients' updates ([`Cluster::take_lost_clients`])
    /// and call `drive` again — the retry re-ships only the hops that never
    /// arrived, skipping (and counting, see [`FaultStats::deduped_hops`])
    /// the survivors'. A kill of the top-hosting node surfaces as
    /// [`LiflError::AggregatorFailure`]: the round is lost wholesale and the
    /// latest checkpoint is restored ([`Cluster::take_recovery`]).
    pub fn drive(&mut self) -> Result<ClusterReport> {
        if let Some(f) = &self.faults {
            if let Some(node) = f.refill.iter().position(|&r| r > 0) {
                return Err(LiflError::NodeFailure {
                    node: node as u64,
                    lost_updates: f.refill[node],
                });
            }
        }
        self.validate_round()?;
        let resuming = self.faults.as_ref().is_some_and(|f| f.placed);
        let replacement = if resuming { None } else { self.place_top() };
        if let Some(f) = &mut self.faults {
            f.placed = true;
        }
        match self.drive_hops() {
            Ok(mut report) => {
                report.replacement = replacement;
                self.ingested = 0;
                self.route_cursor = 0;
                self.node_pending.fill(0);
                self.vacancies.clear();
                // Next move's handoff ships the warm global intermediate.
                self.handoff_bytes = report.update.model.dim() as u64 * 4;
                if let Some(f) = &mut self.faults {
                    let now = f.clock;
                    f.recovery.commit_version(&report.update.model, now);
                    f.clear_round();
                }
                // The round boundary: observe queue depths, let the fleet
                // controller re-split subtrees, then drain the backlog into
                // the (possibly resized) fresh round.
                report.queue_depths = self.queue_depths();
                report.scaling = self.apply_fleet_scaling();
                self.drain_backlog();
                Ok(report)
            }
            Err(error) => {
                // A survivable node kill keeps the partial round for retry;
                // a top kill already cleaned up after itself. Everything
                // else aborts the round exactly as without fault tolerance.
                let survivable = self.faults.is_some()
                    && matches!(
                        error,
                        LiflError::NodeFailure { .. } | LiflError::AggregatorFailure { .. }
                    );
                if !survivable {
                    self.abort_round();
                }
                Err(error)
            }
        }
    }

    /// Validates the round is closable: exact fill by default, the
    /// configured quorum under a [`RoundClose::Quorum`] admission close.
    fn validate_round(&self) -> Result<()> {
        let capacity = self.round_capacity();
        let close = self
            .admission
            .as_ref()
            .map_or(RoundClose::Exact, |q| q.config().round_close);
        match close {
            RoundClose::Exact => {
                if capacity == self.topology.total_updates() {
                    self.topology.validate(self.ingested as usize)
                } else if self.ingested as usize != capacity {
                    // Fleet scaling has re-split a subtree: the built
                    // topology's error message would mislead, so report
                    // against the live capacity.
                    Err(LiflError::InvalidConfig(format!(
                        "cluster round incomplete: the scaled fleet aggregates {} updates, got {}",
                        capacity, self.ingested
                    )))
                } else {
                    Ok(())
                }
            }
            quorum @ RoundClose::Quorum { .. } => {
                let required = quorum.required_updates(capacity);
                if (self.ingested as usize) < required {
                    return Err(LiflError::InvalidConfig(format!(
                        "quorum not met: round has {} of {} required updates",
                        self.ingested, required
                    )));
                }
                Ok(())
            }
        }
    }

    /// Whether the admission close lets partially filled subtrees drive.
    fn quorum_close(&self) -> bool {
        self.admission
            .as_ref()
            .is_some_and(|q| matches!(q.config().round_close, RoundClose::Quorum { .. }))
    }

    /// Applies the KPA fleet decisions of one round boundary: every node
    /// whose desired leaf count changed gets its subtree re-split to a
    /// two-level tree of that many leaves at the node's existing leaf
    /// fan-in, priced as a warm-state transfer per changed leaf. Returns
    /// one action per node (resize or hold) so scaling traces are complete.
    fn apply_fleet_scaling(&mut self) -> Vec<ScalingAction> {
        if self.fleet.is_none() {
            return Vec::new();
        }
        let depths: Vec<f64> = match self.admission.as_ref() {
            Some(queues) => queues.depths().iter().map(|&d| d as f64).collect(),
            None => vec![0.0; self.children.len()],
        };
        let current: Vec<u32> = self
            .children
            .iter()
            .map(|c| c.topology().leaves() as u32)
            .collect();
        let decisions = match self.fleet.as_mut() {
            Some(fleet) => fleet.observe_round(&depths, &current),
            None => return Vec::new(),
        };
        let handoff = self.handoff_bytes;
        let mut actions = Vec::with_capacity(decisions.len());
        for decision in decisions {
            let changed = (decision.spawned() + decision.retired()) as u64;
            let cost = self
                .cost
                .hop_transfer(false, self.dataplane, changed * handoff);
            if decision.is_resize() {
                // A failed rebuild (impossible for in-bounds leaf counts)
                // keeps the old subtree; the decision still lands in the
                // trace so divergence is visible.
                let _ = self.resize_node(decision.node, decision.desired_leaves as usize);
            }
            actions.push(ScalingAction { decision, cost });
        }
        actions
    }

    /// Re-splits one node's subtree to `desired_leaves` leaf aggregators at
    /// the node's existing leaf fan-in (the [`Topology::split_top`]-style
    /// re-split, applied per node). The rebuilt session keeps the node's
    /// tree position, codec seed, fold policy and pool, so scaled rounds
    /// stay deterministic.
    fn resize_node(&mut self, node: usize, desired_leaves: usize) -> Result<()> {
        let fan_in = self.children[node].topology().fan_in(0);
        let topology = Topology::two_level(desired_leaves.max(1), fan_in);
        let mut builder = SessionBuilder::new()
            .topology(topology)
            .codec(self.codec)
            .shards(self.shards)
            .seed(self.seed)
            .fold_policy(self.policy)
            .node(NodeId::new(node as u64))
            .tree_position(0, node)
            .pool(self.pool.clone());
        if let Some(config) = self.child_admission {
            builder = builder.admission(config);
        }
        self.children[node] = builder.build()?;
        Ok(())
    }

    /// Re-evaluates top placement at a round boundary: feeds the round's
    /// per-node ingest counts into the EWMAs, then (under live placement)
    /// moves the top to the most-loaded node unless the incumbent already
    /// ties it. Returns the priced handoff when a move happened.
    fn place_top(&mut self) -> Option<TopMove> {
        for (estimator, pending) in self.estimators.iter_mut().zip(&self.node_pending) {
            estimator.observe(*pending as f64);
        }
        if !matches!(self.placement, TopPlacement::MostLoaded { .. }) {
            return None;
        }
        let estimates: Vec<f64> = self
            .estimators
            .iter()
            .map(|e| e.estimate().unwrap_or(0.0))
            .collect();
        let best = estimates.iter().copied().fold(f64::MIN, f64::max);
        // Incumbent-wins tie-breaking: equal load never churns the top.
        if estimates[self.top_node] >= best {
            return None;
        }
        let to = estimates.iter().position(|&e| e == best)?;
        let from = NodeId::new(self.top_node as u64);
        self.top_node = to;
        Some(TopMove {
            from,
            to: NodeId::new(to as u64),
            state_bytes: self.handoff_bytes,
            cost: self
                .cost
                .hop_transfer(false, self.dataplane, self.handoff_bytes),
        })
    }

    /// Runs the export → hop → parent-fold pipeline over every node,
    /// resuming a partially shipped round (and firing any scheduled kill)
    /// when fault tolerance is enabled.
    fn drive_hops(&mut self) -> Result<ClusterReport> {
        let mut hops;
        let mut nodes;
        if let Some(f) = &mut self.faults {
            hops = std::mem::take(&mut f.partial_hops);
            nodes = std::mem::take(&mut f.partial_nodes);
        } else {
            hops = Vec::with_capacity(self.children.len());
            nodes = Vec::with_capacity(self.children.len());
        }
        for k in 0..self.children.len() {
            if let Some(f) = &self.faults {
                if f.hop_done[k] {
                    // Retry-with-dedup: this node's intermediate already
                    // reached the global top on an earlier attempt; never
                    // re-ship (or re-price) the hop.
                    // lifl-lint: allow(panic) — re-borrow mutably inside the
                    // enclosing `if let Some(f) = &self.faults` guard.
                    let f = self.faults.as_mut().expect("checked above");
                    f.stats.deduped_hops += 1;
                    continue;
                }
                if let Some((victim, after_hops)) = f.scheduled {
                    let completed = f.hop_done.iter().filter(|&&d| d).count() as u64;
                    if completed >= after_hops {
                        // lifl-lint: allow(panic) — re-borrow mutably inside
                        // the enclosing `if let Some(f) = &self.faults` guard.
                        let f = self.faults.as_mut().expect("checked above");
                        f.scheduled = None;
                        f.partial_hops = hops;
                        f.partial_nodes = nodes;
                        return Err(self.kill_node(victim));
                    }
                }
            }
            if self.children[k].pending_updates() == 0 && self.quorum_close() {
                // A quorum round can leave whole subtrees empty: no export,
                // no hop, nothing for the top to fold from this node.
                continue;
            }
            let node = NodeId::new(k as u64);
            let export: WireExport = self.children[k].drive_to_wire()?;
            let wire_bytes = export.wire_bytes();
            let same_node = k == self.top_node;
            let cost = self
                .cost
                .hop_transfer(same_node, self.dataplane, wire_bytes);
            nodes.push(NodeRoundReport {
                node,
                store_stats: export.store_stats,
                ingress_wire_bytes: export.ingress_wire_bytes,
                updates_ingested: export.updates_ingested,
            });
            self.parent.ingest(export.update)?;
            hops.push(ClusterHop {
                node,
                wire_bytes,
                same_node,
                cost,
            });
            // The export is safely folded at the top: from here on a kill of
            // this node loses nothing of the round.
            self.node_pending[k] = 0;
            if let Some(f) = &mut self.faults {
                f.hop_done[k] = true;
                f.node_clients[k].clear();
                f.recovery.record_fold();
            }
        }
        let report = self.parent.drive()?;
        Ok(ClusterReport {
            update: report.update,
            topology: self.topology.clone(),
            nodes,
            hops,
            top_node: NodeId::new(self.top_node as u64),
            replacement: None,
            top_store_stats: report.store_stats,
            queue_depths: Vec::new(),
            scaling: Vec::new(),
        })
    }

    /// Discards the current (not yet driven) round on every node, returning
    /// the cluster to an empty round. Per-client error-feedback residuals
    /// and the load estimators persist.
    pub fn discard_round(&mut self) {
        self.abort_round();
    }

    /// Discards the round on every node (failed drives already reset the
    /// failing session; this sweeps the survivors and the parent).
    fn abort_round(&mut self) {
        for child in &mut self.children {
            child.discard_round();
        }
        self.parent.discard_round();
        self.ingested = 0;
        self.route_cursor = 0;
        self.node_pending.fill(0);
        self.vacancies.clear();
        if let Some(f) = &mut self.faults {
            f.clear_round();
        }
    }

    /// The fold policy every aggregator in the cluster applies.
    pub fn fold_policy(&self) -> FoldPolicy {
        self.policy
    }

    /// Whether the failure-handling machinery is enabled.
    pub fn fault_tolerance_enabled(&self) -> bool {
        self.faults.is_some()
    }

    /// The checkpoint store the cluster's recovery manager commits global
    /// models to, when fault tolerance is enabled.
    pub fn checkpoint_store(&self) -> Option<&CheckpointStore> {
        self.faults.as_ref().map(|f| f.recovery.store())
    }

    /// Running failure-handling totals, when fault tolerance is enabled.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.faults.as_ref().map(|f| f.stats)
    }

    /// Advances the cluster's fault clock (used to timestamp checkpoints and
    /// recoveries). Heartbeats and failure detection advance it implicitly.
    pub fn set_time(&mut self, now: SimTime) {
        if let Some(f) = &mut self.faults {
            f.advance_clock(now);
        }
    }

    /// Records a keep-alive heartbeat from a node's LIFL agent.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidConfig`] when fault tolerance is not
    /// enabled or the node is outside the cluster.
    pub fn node_heartbeat(&mut self, node: NodeId, now: SimTime) -> Result<()> {
        let nodes = self.children.len();
        let f = self.require_faults()?;
        if node.index() as usize >= nodes {
            return Err(LiflError::InvalidConfig(format!(
                "node {node:?} outside the cluster's {nodes} nodes"
            )));
        }
        f.advance_clock(now);
        f.monitor.heartbeat(ClientId::new(node.index()), now);
        Ok(())
    }

    /// Declares failed — and kills, exactly like
    /// [`Cluster::inject_node_failure`] — every node whose last heartbeat is
    /// older than the configured timeout at `now`, returning the kills in
    /// node order. Each overdue node is reported (and killed) exactly once;
    /// restarted nodes resume heartbeating from `now`.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidConfig`] when fault tolerance is not
    /// enabled, or a checkpoint-restore error when a top-host kill finds a
    /// corrupt checkpoint.
    pub fn detect_failed_nodes(&mut self, now: SimTime) -> Result<Vec<NodeKill>> {
        let f = self.require_faults()?;
        f.advance_clock(now);
        let overdue: Vec<usize> = f
            .monitor
            .take_failed(now)
            .into_iter()
            .map(|client| client.index() as usize)
            .collect();
        let mut kills = Vec::with_capacity(overdue.len());
        for node in overdue {
            kills.push(self.kill_checked(node)?);
        }
        Ok(kills)
    }

    /// Kills a node *now* (the fault-injection hook): its child [`Session`]
    /// loses the in-flight round state, exactly as a crashed process would.
    ///
    /// For an ordinary node the cluster round survives: the lost slots are
    /// tracked for refill ([`Cluster::take_lost_clients`] says whose updates
    /// must be re-sent) and the next [`Cluster::drive`] fails with
    /// [`LiflError::NodeFailure`] until they are. A node whose intermediate
    /// already reached the global top this round loses nothing. Killing the
    /// top-hosting node loses the whole round and restores the latest
    /// checkpoint ([`Cluster::take_recovery`]).
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidConfig`] when fault tolerance is not
    /// enabled or the node is outside the cluster, and a checkpoint-restore
    /// error when a top-host kill finds a corrupt checkpoint.
    pub fn inject_node_failure(&mut self, node: NodeId) -> Result<NodeKill> {
        let nodes = self.children.len();
        self.require_faults()?;
        let index = node.index() as usize;
        if index >= nodes {
            return Err(LiflError::InvalidConfig(format!(
                "node {node:?} outside the cluster's {nodes} nodes"
            )));
        }
        self.kill_checked(index)
    }

    /// Schedules a node kill that fires *inside* the next drive, once
    /// `after_hops` gateway-to-gateway hops of the round have completed —
    /// the mid-round fault-injection hook the fault test tier drives.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidConfig`] when fault tolerance is not
    /// enabled or the node is outside the cluster.
    pub fn schedule_node_failure(&mut self, node: NodeId, after_hops: u64) -> Result<()> {
        let nodes = self.children.len();
        let f = self.require_faults()?;
        if node.index() as usize >= nodes {
            return Err(LiflError::InvalidConfig(format!(
                "node {node:?} outside the cluster's {nodes} nodes"
            )));
        }
        f.scheduled = Some((node.index() as usize, after_hops));
        Ok(())
    }

    /// Clients whose updates were lost to node kills and must be re-sent
    /// (each reported exactly once). Re-ingesting them refills the restarted
    /// node directly, leaving the survivors' leaf assignment untouched.
    pub fn take_lost_clients(&mut self) -> Vec<ClientId> {
        self.faults
            .as_mut()
            .map(|f| std::mem::take(&mut f.lost_clients))
            .unwrap_or_default()
    }

    /// The checkpoint restore performed for the most recent top-host kill,
    /// if one happened since the last take.
    pub fn take_recovery(&mut self) -> Option<TopRecovery> {
        self.faults.as_mut().and_then(|f| f.last_recovery.take())
    }

    fn require_faults(&mut self) -> Result<&mut FaultState> {
        self.faults.as_mut().ok_or_else(|| {
            LiflError::InvalidConfig(
                "fault tolerance is not enabled on this cluster \
                 (see ClusterBuilder::fault_tolerance)"
                    .to_string(),
            )
        })
    }

    /// Kills `node` (bounds already checked), translating the resulting
    /// error into the [`NodeKill`] report the injection APIs return.
    fn kill_checked(&mut self, node: usize) -> Result<NodeKill> {
        let top_host = node == self.top_node;
        let lost_updates = if top_host {
            self.ingested
        } else {
            self.node_pending[node]
        };
        match self.kill_node(node) {
            LiflError::NodeFailure { .. } | LiflError::AggregatorFailure { .. } => Ok(NodeKill {
                node: NodeId::new(node as u64),
                lost_updates,
                top_host,
            }),
            other => Err(other),
        }
    }

    /// The kill itself: discards what the dead process held and records what
    /// the round must get back. Returns the failure as an error value (the
    /// mid-drive path propagates it out of [`Cluster::drive`]).
    fn kill_node(&mut self, node: usize) -> LiflError {
        if node == self.top_node {
            return self.kill_top(node);
        }
        let lost = self.node_pending[node];
        // The crashed process takes its subtree's in-flight round with it;
        // the restarted (stateless) session starts from an empty round.
        self.children[node].discard_round();
        self.ingested -= lost;
        self.node_pending[node] = 0;
        // lifl-lint: allow(panic) — node kills are only injectable through
        // the fault harness, which populates `self.faults` at construction.
        let f = self.faults.as_mut().expect("kill paths require faults");
        f.refill[node] += lost;
        let clients = std::mem::take(&mut f.node_clients[node]);
        f.lost_clients.extend(clients);
        f.stats.node_restarts += 1;
        f.stats.lost_updates += lost;
        let now = f.clock;
        // The restarted node resumes heartbeating.
        f.monitor.register(ClientId::new(node as u64), now);
        LiflError::NodeFailure {
            node: node as u64,
            lost_updates: lost,
        }
    }

    /// A kill of the node hosting the global top: the whole round is lost
    /// (its partially folded top state died with the process) and the
    /// replacement runtime restores the latest checkpoint, priced as a
    /// network transfer from the persistent store.
    fn kill_top(&mut self, node: usize) -> LiflError {
        let lost = self.ingested;
        let lost_clients: u64 = self
            .faults
            .as_ref()
            .map(|f| f.node_clients.iter().map(|c| c.len() as u64).sum())
            .unwrap_or(0);
        self.abort_round();
        let cost = self.cost;
        let dataplane = self.dataplane;
        // lifl-lint: allow(panic) — top kills are only injectable through
        // the fault harness, which populates `self.faults` at construction.
        let f = self.faults.as_mut().expect("kill paths require faults");
        f.stats.top_recoveries += 1;
        f.stats.lost_updates += lost.max(lost_clients);
        let now = f.clock;
        match f.recovery.fail_and_recover(now) {
            Ok(outcome) => {
                let bytes = outcome
                    .recovered_model
                    .as_ref()
                    .map_or(0, |m| m.dim() as u64 * 4);
                let transfer = cost.hop_transfer(false, dataplane, bytes);
                f.last_recovery = Some(TopRecovery { outcome, transfer });
                f.monitor.register(ClientId::new(node as u64), now);
                LiflError::AggregatorFailure { node: node as u64 }
            }
            Err(error) => error,
        }
    }
}

/// A cluster is an [`Ingest`](lifl_fl::Ingest) backend: the federated,
/// multi-node target the multi-round training driver
/// ([`crate::training::TrainingDriver`]) runs over — bit-exact with the
/// same driver over a single [`Session`] of the global tree (enforced by
/// the `tests/it/driver.rs` tier).
impl lifl_fl::Ingest for Cluster {
    fn ingest_update(&mut self, update: Update) -> Result<()> {
        self.ingest(update)
    }

    fn try_ingest(&mut self, update: Update) -> Result<AdmissionOutcome> {
        Cluster::try_ingest(self, update)
    }

    fn round_capacity(&self) -> usize {
        Cluster::round_capacity(self)
    }

    fn ingress_codec(&self) -> CodecKind {
        self.codec
    }

    fn aggregate_round(&mut self) -> Result<lifl_fl::RoundAggregate> {
        let report = self.drive()?;
        Ok(lifl_fl::RoundAggregate {
            ingress_wire_bytes: report.nodes.iter().map(|n| n.ingress_wire_bytes).sum(),
            updates_ingested: report.updates_ingested(),
            update: report.update,
        })
    }

    fn discard_round(&mut self) {
        Cluster::discard_round(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifl_fl::aggregate::fedavg;
    use lifl_fl::DenseModel;

    fn updates(n: usize, dim: usize) -> Vec<ModelUpdate> {
        (0..n)
            .map(|i| {
                let values: Vec<f32> = (0..dim)
                    .map(|d| ((i * dim + d * 5) % 97) as f32 * 0.04 - 1.9)
                    .collect();
                ModelUpdate::from_client(
                    ClientId::new(i as u64),
                    DenseModel::from_vec(values),
                    (i + 1) as u64,
                )
            })
            .collect()
    }

    #[test]
    fn flat_topology_cannot_federate() {
        assert!(ClusterBuilder::new()
            .topology(Topology::flat(4))
            .build()
            .is_err());
        assert!(ClusterBuilder::new()
            .placement(TopPlacement::Pinned(9))
            .build()
            .is_err());
    }

    #[test]
    fn live_placement_moves_top_to_most_loaded_node() {
        let mut cluster = ClusterBuilder::new()
            .topology(Topology::new(vec![2, 2, 2]).unwrap())
            .build()
            .unwrap();
        assert_eq!(cluster.top_node(), NodeId::new(0));
        // A cluster round always fills the tree evenly, so ingest counts
        // alone never move the top: uniform load keeps the incumbent.
        let batch = updates(8, 16);
        cluster
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .unwrap();
        let report = cluster.drive().unwrap();
        assert!(report.replacement.is_none());
        assert_eq!(report.top_node, NodeId::new(0));
        // An out-of-band signal (a deep pending queue reported for node 1)
        // tips the EWMA and the next round's boundary moves the top.
        cluster.observe_node_load(NodeId::new(1), 64.0);
        let estimates = cluster.load_estimates();
        assert!(estimates[1].1 > estimates[0].1);
        cluster
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .unwrap();
        let report = cluster.drive().unwrap();
        let moved = report.replacement.as_ref().expect("top must move");
        assert_eq!(moved.from, NodeId::new(0));
        assert_eq!(moved.to, NodeId::new(1));
        // The handoff ships the previous round's warm global intermediate.
        assert_eq!(moved.state_bytes, 16 * 4);
        assert!(moved.cost.latency > SimDuration::ZERO);
        assert_eq!(report.top_node, NodeId::new(1));
        assert_eq!(cluster.top_node(), NodeId::new(1));
        // Hop pricing follows the move: node 1's hop is now the local one.
        assert!(!report.hops[0].same_node);
        assert!(report.hops[1].same_node);
        // With no fresh signal the EWMA decays slowly: the top stays put
        // rather than churning back on the next round.
        cluster
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .unwrap();
        let report = cluster.drive().unwrap();
        assert!(report.replacement.is_none());
        assert_eq!(report.top_node, NodeId::new(1));
    }

    #[test]
    fn pinned_placement_never_moves() {
        let mut cluster = ClusterBuilder::new()
            .topology(Topology::new(vec![2, 2, 2]).unwrap())
            .placement(TopPlacement::Pinned(1))
            .build()
            .unwrap();
        cluster.observe_node_load(NodeId::new(0), 1000.0);
        let batch = updates(8, 16);
        cluster
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .unwrap();
        let report = cluster.drive().unwrap();
        assert!(report.replacement.is_none());
        assert_eq!(report.top_node, NodeId::new(1));
        assert!(!report.hops[0].same_node);
        assert!(report.hops[1].same_node);
    }

    #[test]
    fn identity_cluster_matches_flat_fedavg() {
        let topology = Topology::new(vec![2, 2, 2]).unwrap();
        let batch = updates(topology.total_updates(), 24);
        let mut cluster = ClusterBuilder::new()
            .topology(topology.clone())
            .build()
            .unwrap();
        assert_eq!(cluster.nodes(), 2);
        cluster
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .unwrap();
        let report = cluster.drive().unwrap();
        let flat = fedavg(&batch).unwrap();
        assert_eq!(report.update.samples, flat.samples);
        assert_eq!(report.updates_ingested(), 8);
        for (a, b) in report
            .update
            .model
            .as_slice()
            .iter()
            .zip(flat.model.as_slice())
        {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        // Every node contributed half the round through its own store.
        assert_eq!(report.nodes.len(), 2);
        for node in &report.nodes {
            assert_eq!(node.updates_ingested, 4);
        }
        // One hop stayed on the top node, one crossed the network.
        assert_eq!(report.hops.len(), 2);
        assert!(report.hops[0].same_node);
        assert!(!report.hops[1].same_node);
        assert!(report.hops[1].cost.latency > report.hops[0].cost.latency);
        assert_eq!(report.inter_node_wire_bytes(), 24 * 4);
        assert!(report.serialized_hop_latency() > SimDuration::ZERO);
    }

    #[test]
    fn quantized_hops_cross_fewer_bytes() {
        let topology = Topology::new(vec![2, 2, 3]).unwrap();
        let batch = updates(topology.total_updates(), 256);
        let run = |codec: CodecKind| {
            let mut cluster = ClusterBuilder::new()
                .topology(topology.clone())
                .codec(codec)
                .build()
                .unwrap();
            cluster
                .ingest_all(batch.iter().cloned().map(Update::Dense))
                .unwrap();
            cluster.drive().unwrap()
        };
        let dense = run(CodecKind::Identity);
        let quantized = run(CodecKind::Uniform8);
        assert!(quantized.inter_node_wire_bytes() * 3 < dense.inter_node_wire_bytes());
        assert!(quantized.serialized_hop_latency() < dense.serialized_hop_latency());
        // The compressed form is what the top node's store received.
        assert!(quantized.top_store_stats.encoded_puts > 0);
        assert_eq!(dense.top_store_stats.encoded_puts, 0);
    }

    #[test]
    fn clusters_are_reusable_and_stores_stay_bounded() {
        let mut cluster = ClusterBuilder::new()
            .topology(Topology::new(vec![2, 2, 2]).unwrap())
            .codec(CodecKind::Uniform4)
            .build()
            .unwrap();
        let batch = updates(8, 64);
        for _ in 0..3 {
            cluster
                .ingest_all(batch.iter().cloned().map(Update::Dense))
                .unwrap();
            let report = cluster.drive().unwrap();
            assert_eq!(report.updates_ingested(), 8);
            assert_eq!(cluster.pending_updates(), 0);
        }
        for session in cluster.node_sessions() {
            assert_eq!(
                session.store().stats().live_objects,
                0,
                "node rounds must not leak store objects"
            );
        }
        assert!(cluster.pool().stats().hits > 0, "codec scratch was pooled");
    }

    #[test]
    fn failed_round_is_discarded_on_every_node() {
        let mut cluster = ClusterBuilder::new()
            .topology(Topology::new(vec![2, 1, 2]).unwrap())
            .build()
            .unwrap();
        let batch = updates(4, 16);
        for update in batch.iter().take(3) {
            cluster.ingest(Update::Dense(update.clone())).unwrap();
        }
        // Wrong dimension on the last leaf: node 1's subtree fails mid-drive.
        cluster
            .ingest(Update::remote_bytes(vec![0u8; 8], 1, false))
            .unwrap();
        assert!(cluster.drive().is_err());
        assert_eq!(cluster.pending_updates(), 0);
        for session in cluster.node_sessions() {
            assert_eq!(session.store().stats().live_objects, 0);
        }
        // A fresh, fully valid round drives cleanly.
        cluster
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .unwrap();
        assert!(cluster.drive().is_ok());
    }

    #[test]
    fn for_load_builds_the_planner_shape() {
        let cluster = ClusterBuilder::new().for_load(40, 2, 0, 4).build().unwrap();
        // 10 updates per node at fan-in 2: a [2, 5] subtree per node.
        assert_eq!(cluster.nodes(), 4);
        assert_eq!(cluster.subtree(), &Topology::two_level(5, 2));
        // A capped interior fan-in grows deeper per-node subtrees.
        let deep = ClusterBuilder::new().for_load(64, 2, 4, 2).build().unwrap();
        assert!(deep.subtree().levels() > 2);
    }

    #[test]
    fn for_load_overflow_is_deferred_to_build_not_a_panic() {
        // A load this large overflows the planned tree's update count; the
        // builder must carry the error to build() instead of panicking.
        let outcome = ClusterBuilder::new().for_load(usize::MAX, 1, 0, 2).build();
        assert!(matches!(outcome, Err(LiflError::InvalidConfig(_))));
    }

    #[test]
    fn invalid_fold_policy_is_rejected_at_build() {
        let outcome = ClusterBuilder::new()
            .fold_policy(FoldPolicy::TrimmedMean { trim_permille: 500 })
            .build();
        assert!(matches!(outcome, Err(LiflError::InvalidConfig(_))));
        let cluster = ClusterBuilder::new()
            .fold_policy(FoldPolicy::Median)
            .build()
            .unwrap();
        assert_eq!(cluster.fold_policy(), FoldPolicy::Median);
    }

    #[test]
    fn fault_apis_require_fault_tolerance() {
        let mut cluster = ClusterBuilder::new().build().unwrap();
        assert!(!cluster.fault_tolerance_enabled());
        assert!(cluster.inject_node_failure(NodeId::new(0)).is_err());
        assert!(cluster.schedule_node_failure(NodeId::new(0), 1).is_err());
        assert!(cluster.detect_failed_nodes(SimTime::ZERO).is_err());
        assert!(cluster
            .node_heartbeat(NodeId::new(0), SimTime::ZERO)
            .is_err());
        assert!(cluster.take_lost_clients().is_empty());
        assert!(cluster.take_recovery().is_none());
        assert!(cluster.fault_stats().is_none());
        assert!(cluster.checkpoint_store().is_none());
    }

    #[test]
    fn injected_child_failure_survives_via_refill_and_redrive() {
        let topology = Topology::new(vec![2, 2, 2]).unwrap();
        let batch = updates(8, 16);
        let mut clean = ClusterBuilder::new()
            .topology(topology.clone())
            .build()
            .unwrap();
        clean
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .unwrap();
        let clean_report = clean.drive().unwrap();

        let mut cluster = ClusterBuilder::new()
            .topology(topology)
            .fault_tolerance(FaultToleranceConfig::default())
            .build()
            .unwrap();
        cluster
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .unwrap();
        // Kill node 1 (not the top host) with the whole round pending.
        let kill = cluster.inject_node_failure(NodeId::new(1)).unwrap();
        assert!(!kill.top_host);
        assert_eq!(kill.lost_updates, 4);
        // Driving before the lost slots are refilled reports the failure.
        assert!(matches!(
            cluster.drive(),
            Err(LiflError::NodeFailure {
                node: 1,
                lost_updates: 4
            })
        ));
        // The lost clients re-send; their updates refill the restarted node
        // directly, leaving node 0's leaf assignment untouched.
        let lost = cluster.take_lost_clients();
        assert_eq!(lost.len(), 4);
        assert!(cluster.take_lost_clients().is_empty(), "reported once");
        for client in &lost {
            let update = batch
                .iter()
                .find(|u| u.client == Some(*client))
                .expect("lost client came from the batch");
            cluster.ingest(Update::Dense(update.clone())).unwrap();
        }
        let report = cluster.drive().unwrap();
        assert_eq!(report.updates_ingested(), 8);
        // Same updates, same order, lossless codec: the survived round is
        // bit-exact with the undisturbed one.
        for (a, b) in report
            .update
            .model
            .as_slice()
            .iter()
            .zip(clean_report.update.model.as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
        let stats = cluster.fault_stats().unwrap();
        assert_eq!(stats.node_restarts, 1);
        assert_eq!(stats.lost_updates, 4);
        assert_eq!(stats.top_recoveries, 0);
    }

    #[test]
    fn mid_drive_kill_retries_with_deduped_survivor_hops() {
        let topology = Topology::new(vec![2, 2, 2]).unwrap();
        let batch = updates(8, 16);
        let mut clean = ClusterBuilder::new()
            .topology(topology.clone())
            .build()
            .unwrap();
        clean
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .unwrap();
        let clean_report = clean.drive().unwrap();

        let mut cluster = ClusterBuilder::new()
            .topology(topology)
            .fault_tolerance(FaultToleranceConfig::default())
            .build()
            .unwrap();
        cluster
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .unwrap();
        // Node 1 dies mid-drive, after node 0's intermediate already reached
        // the global top.
        cluster.schedule_node_failure(NodeId::new(1), 1).unwrap();
        assert!(matches!(
            cluster.drive(),
            Err(LiflError::NodeFailure {
                node: 1,
                lost_updates: 4
            })
        ));
        for client in cluster.take_lost_clients() {
            let update = batch
                .iter()
                .find(|u| u.client == Some(client))
                .expect("lost client came from the batch");
            cluster.ingest(Update::Dense(update.clone())).unwrap();
        }
        let report = cluster.drive().unwrap();
        assert_eq!(report.updates_ingested(), 8);
        // Node 0's hop was not re-shipped: the retry deduped it, and the
        // report still prices exactly one hop per node.
        assert_eq!(report.hops.len(), 2);
        assert_eq!(cluster.fault_stats().unwrap().deduped_hops, 1);
        for (a, b) in report
            .update
            .model
            .as_slice()
            .iter()
            .zip(clean_report.update.model.as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn already_exported_node_kill_loses_nothing() {
        let mut cluster = ClusterBuilder::new()
            .topology(Topology::new(vec![2, 2, 2]).unwrap())
            .placement(TopPlacement::Pinned(1))
            .fault_tolerance(FaultToleranceConfig::default())
            .build()
            .unwrap();
        let batch = updates(8, 16);
        cluster
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .unwrap();
        // Node 0 (not the top host) dies after its own hop completed: its
        // intermediate is already safe at the top, so nothing is lost.
        cluster.schedule_node_failure(NodeId::new(0), 1).unwrap();
        assert!(matches!(
            cluster.drive(),
            Err(LiflError::NodeFailure {
                node: 0,
                lost_updates: 0
            })
        ));
        assert!(cluster.take_lost_clients().is_empty());
        // The retry completes without any re-sends.
        let report = cluster.drive().unwrap();
        assert_eq!(report.updates_ingested(), 8);
    }

    #[test]
    fn top_host_kill_restores_the_latest_checkpoint() {
        use crate::recovery::model_from_bytes;

        let mut cluster = ClusterBuilder::new()
            .topology(Topology::new(vec![2, 2, 2]).unwrap())
            .fault_tolerance(FaultToleranceConfig {
                checkpoint_every: 1,
                ..FaultToleranceConfig::default()
            })
            .build()
            .unwrap();
        let batch = updates(8, 16);
        // Round 1 commits and checkpoints the global model.
        cluster
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .unwrap();
        let committed = cluster.drive().unwrap();
        // Round 2 is mid-flight when the top-hosting node dies: the round is
        // lost wholesale and the checkpoint is restored.
        cluster
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .unwrap();
        let kill = cluster.inject_node_failure(cluster.top_node()).unwrap();
        assert!(kill.top_host);
        assert_eq!(kill.lost_updates, 8);
        let recovery = cluster.take_recovery().expect("a recovery happened");
        let recovered = recovery.outcome.recovered_model.expect("checkpointed");
        // The restore is bit-exact with the checkpointed bytes, which are
        // bit-exact with the committed round-1 model.
        let latest = cluster
            .checkpoint_store()
            .unwrap()
            .latest()
            .expect("round 1 checkpointed");
        assert_eq!(model_from_bytes(&latest.data).unwrap(), recovered);
        for (a, b) in recovered
            .as_slice()
            .iter()
            .zip(committed.update.model.as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
        assert!(recovery.transfer.latency > SimDuration::ZERO);
        let stats = cluster.fault_stats().unwrap();
        assert_eq!(stats.top_recoveries, 1);
        assert_eq!(stats.lost_updates, 8);
        // The cluster is empty and immediately reusable.
        assert_eq!(cluster.pending_updates(), 0);
        cluster
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .unwrap();
        assert!(cluster.drive().is_ok());
    }

    #[test]
    fn silent_nodes_are_detected_and_killed_by_heartbeat_timeout() {
        let mut cluster = ClusterBuilder::new()
            .topology(Topology::new(vec![2, 2, 2]).unwrap())
            .fault_tolerance(FaultToleranceConfig {
                heartbeat_timeout: SimDuration::from_secs(30.0),
                ..FaultToleranceConfig::default()
            })
            .build()
            .unwrap();
        let batch = updates(8, 16);
        cluster
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .unwrap();
        // Node 0 keeps heartbeating; node 1 has been silent since start.
        let now = SimTime::from_secs(40.0);
        cluster.node_heartbeat(NodeId::new(0), now).unwrap();
        let kills = cluster.detect_failed_nodes(now).unwrap();
        assert_eq!(
            kills,
            vec![NodeKill {
                node: NodeId::new(1),
                lost_updates: 4,
                top_host: false,
            }]
        );
        // Each failure is detected exactly once: the restarted node resumes
        // heartbeating from the detection time.
        assert!(cluster
            .detect_failed_nodes(SimTime::from_secs(45.0))
            .unwrap()
            .is_empty());
        // The round survives once the lost updates are re-sent.
        for client in cluster.take_lost_clients() {
            let update = batch
                .iter()
                .find(|u| u.client == Some(client))
                .expect("lost client came from the batch");
            cluster.ingest(Update::Dense(update.clone())).unwrap();
        }
        assert_eq!(cluster.drive().unwrap().updates_ingested(), 8);
    }

    #[test]
    fn over_offer_without_admission_keeps_the_legacy_error() {
        let mut cluster = ClusterBuilder::new()
            .topology(Topology::new(vec![2, 2, 2]).unwrap())
            .build()
            .unwrap();
        let batch = updates(9, 16);
        cluster
            .ingest_all(batch.iter().take(8).cloned().map(Update::Dense))
            .unwrap();
        // The strict path still fails loudly with the historical message…
        let overflow = cluster.ingest(Update::Dense(batch[8].clone()));
        match overflow {
            Err(LiflError::InvalidConfig(message)) => {
                assert!(message.contains("cluster round is full"), "{message}");
            }
            other => panic!("expected the legacy full-round error, got {other:?}"),
        }
        // …and the streaming path reports it as backpressure, not an error.
        let outcome = cluster.try_ingest(Update::Dense(batch[8].clone())).unwrap();
        assert_eq!(
            outcome,
            AdmissionOutcome::Rejected {
                retry_after: SimDuration::ZERO
            }
        );
        assert_eq!(cluster.drive().unwrap().updates_ingested(), 8);
    }

    #[test]
    fn cluster_overflow_queues_and_drains_into_the_next_round() {
        let mut cluster = ClusterBuilder::new()
            .topology(Topology::new(vec![2, 2, 2]).unwrap())
            .admission(AdmissionConfig::bounded(4, 1 << 20))
            .build()
            .unwrap();
        let batch = updates(10, 16);
        for update in batch.iter().take(8) {
            assert!(cluster
                .try_ingest(Update::Dense(update.clone()))
                .unwrap()
                .is_admitted());
        }
        // The round is full: the next two offers park in the per-node queues
        // instead of failing (satellite-5 regression: `ingest` also parks).
        assert!(cluster
            .try_ingest(Update::Dense(batch[8].clone()))
            .unwrap()
            .is_queued());
        cluster.ingest(Update::Dense(batch[9].clone())).unwrap();
        assert_eq!(cluster.queued_updates(), 2);
        let report = cluster.drive().unwrap();
        assert_eq!(report.updates_ingested(), 8);
        // The report captures the boundary's depths, then the backlog drains
        // into the fresh round.
        assert_eq!(report.queue_depths.iter().sum::<usize>(), 2);
        assert_eq!(cluster.queued_updates(), 0);
        assert_eq!(cluster.pending_updates(), 2);
        cluster
            .ingest_all(updates(6, 16).into_iter().map(Update::Dense))
            .unwrap();
        assert_eq!(cluster.drive().unwrap().updates_ingested(), 8);
    }

    #[test]
    fn exhausted_queue_budget_rejects_with_the_retry_hint() {
        let retry = SimDuration::from_millis(125.0);
        let mut cluster = ClusterBuilder::new()
            .topology(Topology::new(vec![2, 2, 2]).unwrap())
            .admission(AdmissionConfig::bounded(1, 1 << 20).with_retry_after(retry))
            .build()
            .unwrap();
        let batch = updates(12, 16);
        cluster
            .ingest_all(batch.iter().take(8).cloned().map(Update::Dense))
            .unwrap();
        // One slot per node: two offers park, the third is turned away.
        assert!(cluster
            .try_ingest(Update::Dense(batch[8].clone()))
            .unwrap()
            .is_queued());
        assert!(cluster
            .try_ingest(Update::Dense(batch[9].clone()))
            .unwrap()
            .is_queued());
        assert_eq!(
            cluster
                .try_ingest(Update::Dense(batch[10].clone()))
                .unwrap(),
            AdmissionOutcome::Rejected { retry_after: retry }
        );
        // The strict path surfaces the same exhaustion as an error.
        assert!(cluster.ingest(Update::Dense(batch[11].clone())).is_err());
        assert!(cluster.admission_stats().rejected >= 1);
    }

    #[test]
    fn quorum_cluster_round_closes_partial_and_matches_flat_fedavg() {
        let topology = Topology::new(vec![2, 2, 2]).unwrap();
        let batch = updates(5, 24);
        let mut cluster = ClusterBuilder::new()
            .topology(topology)
            .admission(AdmissionConfig::default().with_quorum(5))
            .build()
            .unwrap();
        cluster
            .ingest_all(batch.iter().take(4).cloned().map(Update::Dense))
            .unwrap();
        // Below quorum the round refuses to close…
        let short = cluster.drive();
        match short {
            Err(LiflError::InvalidConfig(message)) => {
                assert!(message.contains("quorum not met"), "{message}");
            }
            other => panic!("expected a quorum error, got {other:?}"),
        }
        // …and the refused round is kept: one more update meets the quorum.
        cluster.ingest(Update::Dense(batch[4].clone())).unwrap();
        let report = cluster.drive().unwrap();
        assert_eq!(report.updates_ingested(), 5);
        let flat = fedavg(&batch).unwrap();
        assert_eq!(report.update.samples, flat.samples);
        for (a, b) in report
            .update
            .model
            .as_slice()
            .iter()
            .zip(flat.model.as_slice())
        {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn departed_cluster_client_is_refilled_from_the_backlog() {
        let mut cluster = ClusterBuilder::new()
            .topology(Topology::new(vec![2, 2, 2]).unwrap())
            .admission(AdmissionConfig::bounded(4, 1 << 20))
            .build()
            .unwrap();
        let batch = updates(9, 16);
        for update in batch.iter().take(8) {
            assert!(cluster
                .try_ingest(Update::Dense(update.clone()))
                .unwrap()
                .is_admitted());
        }
        assert!(cluster
            .try_ingest(Update::Dense(batch[8].clone()))
            .unwrap()
            .is_queued());
        // Client 3 churns out mid-round: its slot is reclaimed on its node
        // and the parked offer refills it without touching the survivors.
        assert!(cluster.depart_client(ClientId::new(3)));
        assert_eq!(cluster.pending_updates(), 8);
        assert_eq!(cluster.queued_updates(), 0);
        let report = cluster.drive().unwrap();
        assert_eq!(report.updates_ingested(), 8);
        let survivors: Vec<ModelUpdate> = batch
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 3)
            .map(|(_, u)| u.clone())
            .collect();
        let flat = fedavg(&survivors).unwrap();
        assert_eq!(report.update.samples, flat.samples);
        for (a, b) in report
            .update
            .model
            .as_slice()
            .iter()
            .zip(flat.model.as_slice())
        {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        // Departing an unknown client reclaims nothing.
        assert!(!cluster.depart_client(ClientId::new(99)));
    }

    #[test]
    fn fleet_scaling_grows_under_a_spike_where_the_fixed_tree_saturates() {
        let topology = Topology::new(vec![2, 2, 2]).unwrap();
        // Partial (quorum) rounds: a streaming fleet closes on whatever
        // arrived, whether or not the grown capacity is saturated.
        let admission = AdmissionConfig::bounded(64, 1 << 24).with_quorum(1);
        let mut scaled = ClusterBuilder::new()
            .topology(topology.clone())
            .admission(admission)
            .fleet_scaling(
                FleetConfig::default()
                    .with_target_depth(1.0)
                    .with_leaf_bounds(2, 16),
            )
            .build()
            .unwrap();
        let mut fixed = ClusterBuilder::new()
            .topology(topology)
            .admission(admission)
            .build()
            .unwrap();
        assert!(scaled.fleet_scaling_enabled());
        assert!(!fixed.fleet_scaling_enabled());
        // A sustained spike: 24 arrivals per round against an 8-update tree.
        let mut spawned = 0u32;
        let mut scaled_aggregated = 0u64;
        let mut fixed_aggregated = 0u64;
        for _ in 0..12 {
            for update in updates(24, 16) {
                let _ = scaled.try_ingest(Update::Dense(update.clone())).unwrap();
                let _ = fixed.try_ingest(Update::Dense(update)).unwrap();
            }
            let report = scaled.drive().unwrap();
            assert_eq!(report.scaling.len(), scaled.nodes());
            spawned += report
                .scaling
                .iter()
                .map(|a| a.decision.spawned())
                .sum::<u32>();
            scaled_aggregated += report.updates_ingested();
            fixed_aggregated += fixed.drive().unwrap().updates_ingested();
        }
        // The controller re-split subtrees: the fleet grew and the grown
        // capacity aggregated far more of the offered load.
        assert!(spawned > 0, "the spike must spawn leaf aggregators");
        assert!(
            scaled.round_capacity() > 8,
            "capacity should have grown, still {}",
            scaled.round_capacity()
        );
        assert!(
            scaled_aggregated > fixed_aggregated * 2,
            "scaled fleet should clear a multiple of the fixed tree's load \
             ({scaled_aggregated} vs {fixed_aggregated})"
        );
        // The fixed tree's bounded queues saturate and start turning offers
        // away; the scaled fleet keeps absorbing them.
        assert!(fixed.admission_stats().rejected > 0);
        assert_eq!(scaled.admission_stats().rejected, 0);
        assert!(fixed.queued_updates() >= scaled.queued_updates());
    }

    #[test]
    fn fleet_scaling_is_deterministic_per_arrival_trace() {
        let run = || {
            let mut cluster = ClusterBuilder::new()
                .topology(Topology::new(vec![2, 2, 2]).unwrap())
                .admission(AdmissionConfig::bounded(64, 1 << 24).with_quorum(1))
                .fleet_scaling(
                    FleetConfig::default()
                        .with_target_depth(2.0)
                        .with_leaf_bounds(2, 8),
                )
                .build()
                .unwrap();
            let mut decisions: Vec<FleetDecision> = Vec::new();
            for round in 0..10 {
                // A deterministic, bursty trace: quiet, spike, drain.
                let arrivals = if round % 4 < 2 { 8 } else { 20 };
                for update in updates(arrivals, 16) {
                    let _ = cluster.try_ingest(Update::Dense(update)).unwrap();
                }
                let report = cluster.drive().unwrap();
                decisions.extend(report.scaling.iter().map(|a| a.decision));
            }
            decisions
        };
        assert_eq!(run(), run(), "same trace, same spawn/retire sequence");
    }

    #[test]
    fn resized_fleet_rounds_still_match_flat_fedavg() {
        let mut cluster = ClusterBuilder::new()
            .topology(Topology::new(vec![2, 2, 2]).unwrap())
            .admission(AdmissionConfig::bounded(64, 1 << 24).with_quorum(1))
            .fleet_scaling(
                FleetConfig::default()
                    .with_target_depth(1.0)
                    .with_leaf_bounds(2, 16),
            )
            .build()
            .unwrap();
        // Grow the fleet with a spike, then let the backlog drain.
        for _ in 0..6 {
            for update in updates(24, 16) {
                let _ = cluster.try_ingest(Update::Dense(update)).unwrap();
            }
            cluster.drive().unwrap();
        }
        while cluster.pending_updates() > 0 {
            cluster.drive().unwrap();
        }
        assert_eq!(cluster.queued_updates(), 0);
        // A clean round over the (re-split) fleet still matches flat FedAvg.
        let batch = updates(cluster.round_capacity(), 24);
        cluster
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .unwrap();
        let report = cluster.drive().unwrap();
        assert_eq!(report.updates_ingested(), batch.len() as u64);
        let flat = fedavg(&batch).unwrap();
        assert_eq!(report.update.samples, flat.samples);
        for (a, b) in report
            .update
            .model
            .as_slice()
            .iter()
            .zip(flat.model.as_slice())
        {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }
}
