//! The LIFL coordinator (§3, §5, Fig. 6): the cluster-wide control-plane
//! component that periodically re-plans the aggregation hierarchy from the
//! metric server's queue estimates, drives placement, and applies runtime
//! reuse. It is the interface between the FL job designer and the serverless
//! control plane.

use crate::hierarchy::{EwmaEstimator, HierarchyPlan};
use crate::metric_server::MetricServer;
use crate::placement::{NodeCapacity, PlacementEngine, PlacementOutcome};
use lifl_types::{ClusterConfig, LiflConfig, NodeId, SimTime};
use std::collections::HashMap;

/// The cluster-wide coordinator.
#[derive(Debug)]
pub struct LiflCoordinator {
    cluster: ClusterConfig,
    config: LiflConfig,
    metric_server: MetricServer,
    estimators: HashMap<NodeId, EwmaEstimator>,
    last_replan: SimTime,
    replans: u64,
    current_plan: HierarchyPlan,
}

impl LiflCoordinator {
    /// Creates a coordinator for the cluster.
    pub fn new(cluster: ClusterConfig, config: LiflConfig) -> Self {
        LiflCoordinator {
            cluster,
            config,
            metric_server: MetricServer::new(),
            estimators: HashMap::new(),
            last_replan: SimTime::ZERO,
            replans: 0,
            current_plan: HierarchyPlan::default(),
        }
    }

    /// Mutable access to the metric server (agents report through this).
    pub fn metric_server_mut(&mut self) -> &mut MetricServer {
        &mut self.metric_server
    }

    /// Places a batch of `updates` incoming model updates across the cluster
    /// using the configured bin-packing policy (§5.1).
    pub fn place_updates(&self, updates: u64) -> PlacementOutcome {
        let engine = PlacementEngine::new(self.config.placement);
        let mut caps: Vec<NodeCapacity> = (0..self.cluster.aggregation_nodes as u64)
            .map(|i| NodeCapacity::new(NodeId::new(i), self.cluster.node.max_service_capacity))
            .collect();
        engine.place_batch(updates, &mut caps)
    }

    /// Whether a hierarchy re-plan is due at `now` (§6.1: 2-minute cycle).
    pub fn replan_due(&self, now: SimTime) -> bool {
        now.duration_since(self.last_replan) >= self.config.replan_period || self.replans == 0
    }

    /// Re-plans the per-node hierarchies from EWMA-smoothed queue estimates (§5.2).
    pub fn replan(&mut self, now: SimTime) -> &HierarchyPlan {
        let alpha = self.config.ewma_alpha;
        let mut pending = Vec::new();
        for (node, raw) in self.metric_server.queue_estimates() {
            let est = self
                .estimators
                .entry(node)
                .or_insert_with(|| EwmaEstimator::new(alpha))
                .observe(raw);
            pending.push((node, est.round() as u32));
        }
        self.current_plan = HierarchyPlan::plan(&pending, self.config.leaf_fan_in);
        self.last_replan = now;
        self.replans += 1;
        &self.current_plan
    }

    /// The most recent hierarchy plan.
    pub fn current_plan(&self) -> &HierarchyPlan {
        &self.current_plan
    }

    /// Number of re-planning passes executed.
    pub fn replans(&self) -> u64 {
        self.replans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric_server::NodeLoad;
    use lifl_types::SimDuration;

    #[test]
    fn replan_cycle_and_plan_shape() {
        let mut coordinator = LiflCoordinator::new(ClusterConfig::default(), LiflConfig::default());
        assert!(coordinator.replan_due(SimTime::ZERO));
        for node in 0..3u64 {
            coordinator.metric_server_mut().report(
                NodeId::new(node),
                NodeLoad {
                    arrival_rate: (node + 1) as f64,
                    avg_exec_time: SimDuration::from_secs(2.0),
                },
            );
        }
        let plan = coordinator.replan(SimTime::from_secs(10.0)).clone();
        assert_eq!(plan.nodes.len(), 3);
        assert_eq!(plan.top_node, Some(NodeId::new(2)));
        assert!(!coordinator.replan_due(SimTime::from_secs(60.0)));
        assert!(coordinator.replan_due(SimTime::from_secs(131.0)));
        assert_eq!(coordinator.replans(), 1);
        assert_eq!(coordinator.current_plan(), &plan);
    }

    #[test]
    fn placement_respects_policy() {
        let coordinator = LiflCoordinator::new(ClusterConfig::default(), LiflConfig::default());
        let outcome = coordinator.place_updates(20);
        assert_eq!(
            outcome.nodes_used, 1,
            "BestFit packs 20 updates on one node"
        );
    }
}
