//! Shared helpers for the cross-crate integration tests.

use lifl_types::SimTime;

/// Evenly spaced arrival times.
pub fn spread_arrivals(n: usize, gap_secs: f64) -> Vec<SimTime> {
    (0..n)
        .map(|i| SimTime::from_secs(i as f64 * gap_secs))
        .collect()
}
