//! FedProx local training (Li et al., 2020a, cited in §7).
//!
//! FedProx augments each client's local objective with a proximal term
//! `μ/2 · ‖w − w_global‖²` that keeps local models close to the current global
//! model, which stabilises training under the system and statistical
//! heterogeneity that motivates LIFL's elastic design (hibernating mobile
//! clients with very different data, §6.2). The aggregation side is unchanged:
//! FedProx updates flow through the same hierarchy and the same FedAvg
//! averaging, so the platform needs no modification — exactly the "LIFL is a
//! substrate for FL algorithms" claim of the related-work discussion.

use crate::dataset::Sample;
use crate::model::DenseModel;
use crate::trainer::{LocalTrainer, TrainerConfig};
use lifl_simcore::SimRng;
use lifl_types::{LiflError, Result};
use serde::{Deserialize, Serialize};

/// FedProx hyper-parameters: the underlying SGD configuration plus the
/// proximal coefficient μ.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FedProxConfig {
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Local epochs per round.
    pub local_epochs: usize,
    /// Proximal coefficient μ ≥ 0; μ = 0 reduces to plain FedAvg local SGD.
    pub mu: f32,
}

impl Default for FedProxConfig {
    fn default() -> Self {
        FedProxConfig {
            batch_size: 32,
            learning_rate: 0.01,
            local_epochs: 1,
            mu: 0.01,
        }
    }
}

impl FedProxConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidConfig`] when μ is negative or the learning
    /// rate is non-positive.
    pub fn validate(&self) -> Result<()> {
        if self.mu < 0.0 {
            return Err(LiflError::InvalidConfig(format!(
                "fedprox mu must be non-negative, got {}",
                self.mu
            )));
        }
        if self.learning_rate <= 0.0 {
            return Err(LiflError::InvalidConfig(format!(
                "learning rate must be positive, got {}",
                self.learning_rate
            )));
        }
        Ok(())
    }

    fn sgd_config(&self) -> TrainerConfig {
        TrainerConfig {
            batch_size: self.batch_size,
            learning_rate: self.learning_rate,
            local_epochs: self.local_epochs,
        }
    }
}

/// A FedProx local trainer for the softmax-regression workload.
#[derive(Debug, Clone)]
pub struct FedProxTrainer {
    inner: LocalTrainer,
    config: FedProxConfig,
}

impl FedProxTrainer {
    /// Creates a FedProx trainer for the given problem shape.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidConfig`] when the configuration is invalid.
    pub fn new(num_features: usize, num_classes: usize, config: FedProxConfig) -> Result<Self> {
        config.validate()?;
        Ok(FedProxTrainer {
            inner: LocalTrainer::new(num_features, num_classes, config.sgd_config()),
            config,
        })
    }

    /// Model dimension expected by this trainer.
    pub fn model_dim(&self) -> usize {
        self.inner.model_dim()
    }

    /// The FedProx configuration.
    pub fn config(&self) -> &FedProxConfig {
        &self.config
    }

    /// Runs FedProx local training starting from `global`.
    ///
    /// The proximal term is applied as an extra gradient `μ·(w − w_global)`
    /// after each epoch of the base SGD pass (a standard mini-batch-level
    /// approximation that keeps the base trainer unchanged); with μ = 0 the
    /// output is exactly the base trainer's output.
    pub fn train(
        &self,
        global: &DenseModel,
        shard: &[Sample],
        rng: &mut SimRng,
    ) -> (DenseModel, f64) {
        let (mut model, loss) = self.inner.train(global, shard, rng);
        if self.config.mu > 0.0 && !shard.is_empty() {
            // Pull the locally trained model back toward the global model:
            // w ← w − lr·μ·(w − w_global), applied once per local epoch.
            let shrink = (self.config.learning_rate * self.config.mu).min(1.0)
                * self.config.local_epochs.max(1) as f32;
            let shrink = shrink.min(1.0);
            let params = model.as_mut_slice();
            for (w, g) in params.iter_mut().zip(global.as_slice()) {
                *w -= shrink * (*w - g);
            }
        }
        (model, loss)
    }

    /// Squared L2 distance between a local model and the global model — the
    /// quantity the proximal term penalises. Exposed for tests and analysis.
    pub fn drift(&self, local: &DenseModel, global: &DenseModel) -> f64 {
        local
            .as_slice()
            .iter()
            .zip(global.as_slice())
            .map(|(l, g)| ((l - g) as f64).powi(2))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetConfig, FederatedDataset};
    use lifl_types::ClientId;

    fn dataset(seed: u64) -> (FederatedDataset, SimRng) {
        let mut rng = SimRng::from_seed(seed);
        let ds = FederatedDataset::generate(
            DatasetConfig {
                num_clients: 4,
                num_features: 10,
                num_classes: 4,
                mean_samples_per_client: 60,
                dirichlet_alpha: 0.2,
                test_samples: 50,
                noise_std: 0.3,
            },
            &mut rng,
        );
        (ds, rng)
    }

    #[test]
    fn mu_zero_matches_plain_sgd() {
        let (ds, mut rng) = dataset(3);
        let config = FedProxConfig {
            mu: 0.0,
            learning_rate: 0.05,
            local_epochs: 2,
            batch_size: 16,
        };
        let prox = FedProxTrainer::new(10, 4, config).unwrap();
        let sgd = LocalTrainer::new(
            10,
            4,
            TrainerConfig {
                batch_size: 16,
                learning_rate: 0.05,
                local_epochs: 2,
            },
        );
        let global = ds.initial_model();
        let shard = ds.shard(ClientId::new(0));
        let mut rng_a = rng.clone();
        let (prox_model, _) = prox.train(&global, shard, &mut rng_a);
        let (sgd_model, _) = sgd.train(&global, shard, &mut rng);
        assert_eq!(prox_model, sgd_model);
    }

    #[test]
    fn larger_mu_keeps_model_closer_to_global() {
        let (ds, rng) = dataset(11);
        let global = ds.initial_model();
        let shard = ds.shard(ClientId::new(1));
        let drift_for = |mu: f32| {
            let trainer = FedProxTrainer::new(
                10,
                4,
                FedProxConfig {
                    mu,
                    learning_rate: 0.1,
                    local_epochs: 4,
                    batch_size: 8,
                },
            )
            .unwrap();
            let mut rng = rng.clone();
            let (model, _) = trainer.train(&global, shard, &mut rng);
            trainer.drift(&model, &global)
        };
        let loose = drift_for(0.0);
        let tight = drift_for(5.0);
        assert!(
            tight < loose,
            "mu=5 drift {tight} should be below mu=0 drift {loose}"
        );
        assert!(loose > 0.0);
    }

    #[test]
    fn training_still_learns_with_moderate_mu() {
        let (ds, mut rng) = dataset(21);
        let trainer = FedProxTrainer::new(
            10,
            4,
            FedProxConfig {
                mu: 0.1,
                learning_rate: 0.1,
                local_epochs: 5,
                batch_size: 16,
            },
        )
        .unwrap();
        let global = ds.initial_model();
        let shard = ds.shard(ClientId::new(2));
        let (trained, _) = trainer.train(&global, shard, &mut rng);
        let (_, loss_before) = trainer.train(&global, shard, &mut rng.clone());
        let (_, loss_after) = trainer.train(&trained, shard, &mut rng);
        assert!(loss_after < loss_before, "{loss_after} < {loss_before}");
        assert_eq!(trainer.model_dim(), ds.model_dim());
    }

    #[test]
    fn empty_shard_returns_global_unchanged() {
        let trainer = FedProxTrainer::new(6, 3, FedProxConfig::default()).unwrap();
        let global = DenseModel::zeros(trainer.model_dim());
        let mut rng = SimRng::from_seed(1);
        let (model, loss) = trainer.train(&global, &[], &mut rng);
        assert_eq!(model, global);
        assert_eq!(loss, 0.0);
        assert_eq!(trainer.drift(&model, &global), 0.0);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(FedProxTrainer::new(
            4,
            2,
            FedProxConfig {
                mu: -0.1,
                ..FedProxConfig::default()
            }
        )
        .is_err());
        assert!(FedProxTrainer::new(
            4,
            2,
            FedProxConfig {
                learning_rate: 0.0,
                ..FedProxConfig::default()
            }
        )
        .is_err());
        assert!(FedProxConfig::default().validate().is_ok());
    }
}
