//! Regenerates the codec ablation (bytes-on-wire and time-to-accuracy
//! across update codecs and transports).
fn main() {
    let result = lifl_experiments::fig_codec::run();
    println!("{}", lifl_experiments::fig_codec::format(&result));
    println!("{}", lifl_experiments::report::to_json(&result));
}
