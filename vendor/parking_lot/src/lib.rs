//! Minimal offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::{Mutex, RwLock}` behind parking_lot's non-poisoning
//! API: `lock()`, `read()`, and `write()` return guards directly rather
//! than `Result`s. A poisoned std lock (a panic while holding the guard)
//! is recovered by taking the inner value, matching parking_lot's
//! "no poisoning" semantics closely enough for this workspace.

use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read`/`write` cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}
