//! Micro-benchmark: zero-copy shared-memory hand-off vs serialize-and-copy.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lifl_shmem::ObjectStore;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("shmem_handoff");
    group.sample_size(20);
    for mib in [1usize, 16, 64] {
        let bytes = mib * 1024 * 1024;
        let payload = vec![0u8; bytes];
        group.throughput(Throughput::Bytes(bytes as u64));
        group.bench_with_input(
            BenchmarkId::new("zero_copy_key_handoff", mib),
            &payload,
            |b, p| {
                let store = ObjectStore::new();
                let key = store.put(p.clone()).unwrap();
                b.iter(|| {
                    // The consumer side of LIFL's data plane: resolve the key, read in place.
                    let obj = store.get(std::hint::black_box(&key)).unwrap();
                    std::hint::black_box(obj.len())
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("copy_pipeline", mib), &payload, |b, p| {
            b.iter(|| {
                // The broker/sidecar style pipeline copies the payload per hop.
                let hop1 = p.clone();
                let hop2 = hop1.clone();
                std::hint::black_box(hop2.len())
            })
        });
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
