use std::collections::BTreeMap;

// A HashMap mentioned in a comment is fine, as is one in test code.
pub fn fold(updates: BTreeMap<u64, f32>) -> f32 {
    updates.values().sum()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn hash_in_tests_is_fine() {
        let mut m = HashMap::new();
        m.insert(1u64, 2.0f32);
        assert_eq!(m.len(), 1);
    }
}
