//! Integration tests of the extension features: client-selection strategies,
//! asynchronous aggregation (Fig. 11 / future work) and heartbeat-based
//! failure handling, combined with the core platform.

use lifl_core::async_round::AsyncAggregator;
use lifl_core::heartbeat::{over_provisioned_selection, HeartbeatMonitor};
use lifl_core::platform::{LiflPlatform, RoundSpec};
use lifl_fl::aggregate::ModelUpdate;
use lifl_fl::selector::{select_clients, SelectionStrategy};
use lifl_fl::{DenseModel, Population, PopulationConfig};
use lifl_simcore::SimRng;
use lifl_types::{
    AggregationTiming, ClientId, ClusterConfig, LiflConfig, ModelKind, SimDuration, SimTime,
};

#[test]
fn selection_strategies_feed_the_platform() {
    let mut rng = SimRng::from_seed(11);
    let population = Population::generate(
        PopulationConfig {
            total_clients: 100,
            active_per_round: 30,
            ..PopulationConfig::resnet18_paper()
        },
        &mut rng,
    );
    let mut platform = LiflPlatform::new(ClusterConfig::default(), LiflConfig::default());
    for strategy in [
        SelectionStrategy::UniformRandom,
        SelectionStrategy::DataSizeWeighted,
        SelectionStrategy::FastestFirst,
    ] {
        let selected = select_clients(
            strategy,
            population.clients(),
            30,
            ModelKind::ResNet18,
            &mut rng,
        );
        let arrivals: Vec<SimTime> = selected
            .iter()
            .map(|c| {
                c.update_arrival(
                    SimTime::ZERO,
                    ModelKind::ResNet18,
                    SimDuration::from_secs(1.0),
                    &mut rng,
                )
            })
            .collect();
        let report = platform.run_round(&RoundSpec::new(ModelKind::ResNet18, arrivals));
        assert_eq!(report.metrics.updates_aggregated, 30, "{strategy:?}");
    }
}

#[test]
fn asynchronous_aggregation_advances_versions_under_streaming_updates() {
    let mut agg = AsyncAggregator::new(4, AggregationTiming::Eager).unwrap();
    let mut committed = 0;
    for i in 0..20u64 {
        let update = ModelUpdate::from_client(
            ClientId::new(i),
            DenseModel::from_vec(vec![i as f32, 1.0]),
            i + 1,
        );
        let base_version = i / 6; // some clients train against stale versions
        if agg
            .submit(update, base_version, SimTime::from_secs(i as f64))
            .unwrap()
            .is_some()
        {
            committed += 1;
        }
    }
    assert_eq!(committed, 5);
    assert_eq!(agg.versions().len(), 5);
    // Staleness is tracked per committed window.
    assert!(agg.versions().iter().any(|v| v.stale_updates > 0));
}

#[test]
fn heartbeats_plus_overprovisioning_keep_the_round_on_goal() {
    // Select enough clients that, after drop-outs flagged by the heartbeat
    // monitor, the aggregation goal is still met.
    let goal = 20u64;
    let selected = over_provisioned_selection(goal, 0.2).unwrap();
    assert!(selected > goal);

    let mut monitor = HeartbeatMonitor::new(SimDuration::from_secs(60.0));
    for i in 0..selected {
        monitor.register(ClientId::new(i), SimTime::ZERO);
    }
    // 20% of clients go silent; the rest heartbeat and deliver.
    let silent = (selected as f64 * 0.2) as u64;
    for i in silent..selected {
        monitor.heartbeat(ClientId::new(i), SimTime::from_secs(90.0));
    }
    let failed = monitor.failed_clients(SimTime::from_secs(120.0));
    assert_eq!(failed.len() as u64, silent);

    let delivered = selected - silent;
    assert!(
        delivered >= goal,
        "{delivered} deliveries still meet the goal of {goal}"
    );
    let mut platform = LiflPlatform::new(ClusterConfig::default(), LiflConfig::default());
    let arrivals: Vec<SimTime> = (0..delivered)
        .map(|i| SimTime::from_secs(i as f64))
        .collect();
    let report = platform.run_round(&RoundSpec::new(ModelKind::ResNet152, arrivals));
    assert_eq!(report.metrics.updates_aggregated, delivered);
}
