//! Message broker model (§2.3, §4.2): the stateful, persistent networking
//! component serverless FL systems insert between functions to hold routes
//! and queue model updates.

use lifl_types::{CpuCycles, SimDuration};

/// Cost model of a message broker hop (publish + store + deliver).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrokerModel {
    /// Added latency per mebibyte, seconds.
    pub latency_per_mib: f64,
    /// Fixed added latency per message, seconds.
    pub latency_fixed: f64,
    /// CPU cycles per mebibyte of published + delivered payload.
    pub cycles_per_mib: f64,
    /// Idle (always-on) CPU share of the broker, in cores.
    pub idle_cores: f64,
    /// Resident memory of the broker process, bytes.
    pub resident_memory_bytes: u64,
}

impl Default for BrokerModel {
    fn default() -> Self {
        BrokerModel {
            // The paper attributes ~20% of the serverless datapath delay to
            // the broker (§2.3); calibrated accordingly.
            latency_per_mib: 0.0038,
            latency_fixed: 0.004,
            cycles_per_mib: 15.0e6,
            idle_cores: 0.1,
            resident_memory_bytes: 256 * 1024 * 1024,
        }
    }
}

impl BrokerModel {
    /// Added latency for routing one message of `bytes` through the broker.
    pub fn latency(&self, bytes: u64) -> SimDuration {
        let mib = bytes as f64 / (1024.0 * 1024.0);
        SimDuration::from_secs(self.latency_fixed + self.latency_per_mib * mib)
    }

    /// Added CPU for one message of `bytes`.
    pub fn cpu(&self, bytes: u64) -> CpuCycles {
        let mib = bytes as f64 / (1024.0 * 1024.0);
        CpuCycles(self.cycles_per_mib * mib)
    }

    /// Bytes the broker buffers while a message waits for its consumer.
    pub fn buffered_bytes(&self, bytes: u64) -> u64 {
        bytes
    }

    /// CPU-seconds of idle cost over a wall-clock interval.
    pub fn idle_cpu_time(&self, wall: SimDuration) -> SimDuration {
        wall.scaled(self.idle_cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broker_adds_smaller_share_than_sidecar() {
        use crate::sidecar::ContainerSidecarModel;
        let broker = BrokerModel::default();
        let sidecar = ContainerSidecarModel::default();
        let bytes = 232 * 1024 * 1024;
        assert!(broker.latency(bytes) < sidecar.latency(bytes));
    }

    #[test]
    fn costs_scale_with_size() {
        let b = BrokerModel::default();
        assert!(b.latency(100 << 20) > b.latency(1 << 20));
        assert!(b.cpu(100 << 20).0 > b.cpu(1 << 20).0);
        assert_eq!(b.buffered_bytes(123), 123);
        assert!(b.idle_cpu_time(SimDuration::from_secs(10.0)).as_secs() > 0.0);
    }
}
