//! Aggregator failure handling and recovery from checkpoints (§3, Appendix B).
//!
//! LIFL's aggregators are stateless: "new ones start without state
//! synchronization upon an aggregator failure". The durable state is the
//! global model, which the LIFL agent checkpoints asynchronously to an
//! external persistent store after a configured number of committed versions.
//! This module ties those two pieces together: it tracks the in-progress
//! aggregation work, periodically checkpoints committed global models, and on
//! a failure reports exactly what is recovered (the latest checkpointed model)
//! and what must be redone (updates folded since that checkpoint, which the
//! clients or lower-level aggregators re-send).

use lifl_fl::DenseModel;
use lifl_shmem::CheckpointStore;
use lifl_types::{LiflError, Result, RoundId, SimDuration, SimTime};

/// Serialises a model to little-endian `f32` bytes for the checkpoint store.
pub fn model_to_bytes(model: &DenseModel) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(model.dim() * 4);
    for value in model.as_slice() {
        bytes.extend_from_slice(&value.to_le_bytes());
    }
    bytes
}

/// Deserialises a model previously written by [`model_to_bytes`].
///
/// # Errors
/// Returns [`LiflError::DimensionMismatch`] when the byte length is not a
/// multiple of four.
pub fn model_from_bytes(bytes: &[u8]) -> Result<DenseModel> {
    if !bytes.len().is_multiple_of(4) {
        return Err(LiflError::DimensionMismatch {
            expected: bytes.len().div_ceil(4) * 4,
            actual: bytes.len(),
        });
    }
    let params = bytes
        .chunks_exact(4)
        .map(|chunk| f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]))
        .collect();
    Ok(DenseModel::from_vec(params))
}

/// The outcome of recovering from an aggregator failure.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryOutcome {
    /// The model the replacement aggregator starts from (the latest
    /// checkpoint), or `None` when nothing was ever checkpointed and training
    /// restarts from the initial model.
    pub recovered_model: Option<DenseModel>,
    /// The round of the recovered checkpoint.
    pub recovered_round: Option<RoundId>,
    /// Committed versions lost because they were never checkpointed.
    pub lost_versions: u64,
    /// In-progress updates (folded but not committed) that must be re-sent.
    pub lost_in_progress_updates: u64,
    /// Time until the replacement aggregator is ready (the runtime restart).
    pub restart_delay: SimDuration,
    /// When the replacement is ready to aggregate again.
    pub ready_at: SimTime,
}

/// Tracks committed versions, periodic checkpoints and in-progress work for
/// one (logical) top aggregator, and produces [`RecoveryOutcome`]s on failure.
#[derive(Debug, Clone)]
pub struct RecoveryManager {
    store: CheckpointStore,
    checkpoint_every: u64,
    restart_delay: SimDuration,
    committed_versions: u64,
    last_checkpointed_version: Option<u64>,
    in_progress_updates: u64,
    failures: u64,
}

impl RecoveryManager {
    /// Creates a manager that checkpoints every `checkpoint_every` committed
    /// versions and needs `restart_delay` to bring up a replacement runtime.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidConfig`] when `checkpoint_every` is zero.
    pub fn new(checkpoint_every: u64, restart_delay: SimDuration) -> Result<Self> {
        if checkpoint_every == 0 {
            return Err(LiflError::InvalidConfig(
                "checkpoint_every must be at least 1".into(),
            ));
        }
        Ok(RecoveryManager {
            store: CheckpointStore::new(),
            checkpoint_every,
            restart_delay,
            committed_versions: 0,
            last_checkpointed_version: None,
            in_progress_updates: 0,
            failures: 0,
        })
    }

    /// The underlying checkpoint store (shared with the LIFL agent).
    pub fn store(&self) -> &CheckpointStore {
        &self.store
    }

    /// Number of committed global-model versions seen so far.
    pub fn committed_versions(&self) -> u64 {
        self.committed_versions
    }

    /// Number of failures handled.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Number of updates folded into the accumulator since the last commit.
    pub fn in_progress_updates(&self) -> u64 {
        self.in_progress_updates
    }

    /// Records that one update was folded into the in-progress aggregate.
    pub fn record_fold(&mut self) {
        self.in_progress_updates += 1;
    }

    /// Records a committed global-model version; checkpoints it when the
    /// checkpoint period is reached. Returns whether a checkpoint was written.
    pub fn commit_version(&mut self, model: &DenseModel, now: SimTime) -> bool {
        self.committed_versions += 1;
        self.in_progress_updates = 0;
        if self
            .committed_versions
            .is_multiple_of(self.checkpoint_every)
        {
            let round = RoundId::new(self.committed_versions);
            self.store.save(round, model_to_bytes(model), now);
            self.last_checkpointed_version = Some(self.committed_versions);
            true
        } else {
            false
        }
    }

    /// Handles an aggregator failure at `now`: the stateless runtime is
    /// replaced (after `restart_delay`) and resumes from the latest
    /// checkpoint.
    ///
    /// # Errors
    /// Propagates deserialisation errors for a corrupt checkpoint.
    pub fn fail_and_recover(&mut self, now: SimTime) -> Result<RecoveryOutcome> {
        self.failures += 1;
        let checkpoint = self.store.latest();
        let (recovered_model, recovered_round) = match &checkpoint {
            Some(cp) => (Some(model_from_bytes(&cp.data)?), Some(cp.round)),
            None => (None, None),
        };
        let checkpointed = self.last_checkpointed_version.unwrap_or(0);
        let lost_versions = self.committed_versions.saturating_sub(checkpointed);
        let lost_in_progress = self.in_progress_updates;
        // After recovery, progress resumes from the checkpointed version and
        // there is no in-progress work.
        self.committed_versions = checkpointed;
        self.in_progress_updates = 0;
        Ok(RecoveryOutcome {
            recovered_model,
            recovered_round,
            lost_versions,
            lost_in_progress_updates: lost_in_progress,
            restart_delay: self.restart_delay,
            ready_at: now + self.restart_delay,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(values: &[f32]) -> DenseModel {
        DenseModel::from_vec(values.to_vec())
    }

    #[test]
    fn model_bytes_roundtrip() {
        let original = model(&[1.5, -2.25, 0.0, 1e-3]);
        let bytes = model_to_bytes(&original);
        assert_eq!(bytes.len(), 16);
        let back = model_from_bytes(&bytes).unwrap();
        assert_eq!(back, original);
        assert!(model_from_bytes(&bytes[..3]).is_err());
    }

    #[test]
    fn checkpoints_are_written_on_the_period() {
        let mut manager = RecoveryManager::new(3, SimDuration::from_secs(0.8)).unwrap();
        let mut written = 0;
        for version in 1..=7u64 {
            let wrote = manager.commit_version(
                &model(&[version as f32]),
                SimTime::from_secs(version as f64),
            );
            if wrote {
                written += 1;
            }
        }
        assert_eq!(written, 2, "checkpoints at versions 3 and 6");
        assert_eq!(manager.store().len(), 2);
        assert_eq!(manager.committed_versions(), 7);
    }

    #[test]
    fn recovery_restores_latest_checkpoint_and_counts_lost_work() {
        let mut manager = RecoveryManager::new(2, SimDuration::from_secs(1.0)).unwrap();
        manager.commit_version(&model(&[1.0]), SimTime::from_secs(1.0));
        manager.commit_version(&model(&[2.0]), SimTime::from_secs(2.0)); // checkpointed
        manager.commit_version(&model(&[3.0]), SimTime::from_secs(3.0)); // not checkpointed
        manager.record_fold();
        manager.record_fold();
        let outcome = manager.fail_and_recover(SimTime::from_secs(4.0)).unwrap();
        assert_eq!(outcome.recovered_model, Some(model(&[2.0])));
        assert_eq!(outcome.recovered_round, Some(RoundId::new(2)));
        assert_eq!(outcome.lost_versions, 1);
        assert_eq!(outcome.lost_in_progress_updates, 2);
        assert_eq!(outcome.ready_at, SimTime::from_secs(5.0));
        assert_eq!(manager.failures(), 1);
        // Progress resumed from the checkpoint.
        assert_eq!(manager.committed_versions(), 2);
        assert_eq!(manager.in_progress_updates(), 0);
    }

    #[test]
    fn failure_before_any_checkpoint_restarts_from_scratch() {
        let mut manager = RecoveryManager::new(5, SimDuration::from_secs(0.5)).unwrap();
        manager.commit_version(&model(&[1.0]), SimTime::from_secs(1.0));
        manager.record_fold();
        let outcome = manager.fail_and_recover(SimTime::from_secs(2.0)).unwrap();
        assert!(outcome.recovered_model.is_none());
        assert!(outcome.recovered_round.is_none());
        assert_eq!(outcome.lost_versions, 1);
        assert_eq!(outcome.lost_in_progress_updates, 1);
        assert_eq!(manager.committed_versions(), 0);
    }

    #[test]
    fn repeated_failures_each_recover_from_the_same_checkpoint() {
        let mut manager = RecoveryManager::new(1, SimDuration::from_secs(0.8)).unwrap();
        manager.commit_version(&model(&[7.0]), SimTime::from_secs(1.0));
        let first = manager.fail_and_recover(SimTime::from_secs(2.0)).unwrap();
        let second = manager.fail_and_recover(SimTime::from_secs(3.0)).unwrap();
        assert_eq!(first.recovered_model, second.recovered_model);
        assert_eq!(manager.failures(), 2);
        assert_eq!(second.lost_versions, 0);
    }

    #[test]
    fn zero_checkpoint_period_is_rejected() {
        assert!(RecoveryManager::new(0, SimDuration::ZERO).is_err());
    }

    #[test]
    fn corrupt_checkpoint_bytes_surface_as_an_error_not_a_bad_model() {
        let mut manager = RecoveryManager::new(1, SimDuration::ZERO).unwrap();
        manager.commit_version(&model(&[1.0, 2.0]), SimTime::from_secs(1.0));
        // A torn write leaves a payload that is not a whole number of f32s;
        // it is the latest checkpoint, so recovery must refuse it loudly.
        manager
            .store()
            .save(RoundId::new(99), vec![1u8, 2, 3], SimTime::from_secs(2.0));
        let err = manager.fail_and_recover(SimTime::from_secs(3.0));
        assert!(matches!(err, Err(LiflError::DimensionMismatch { .. })));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn model_for(version: u64) -> DenseModel {
        DenseModel::from_vec(vec![version as f32, -(version as f64 * 0.5) as f32])
    }

    proptest! {
        /// Random interleavings of commits, folds and failures: the recovered
        /// version never exceeds what was committed, lost work is accounted
        /// exactly, and the manager resumes from the checkpointed version.
        #[test]
        fn recovery_accounting_is_exact(
            checkpoint_every in 1u64..6,
            ops in proptest::collection::vec(0u8..6, 1..40),
        ) {
            let mut manager =
                RecoveryManager::new(checkpoint_every, SimDuration::from_secs(1.0)).unwrap();
            // The reference state machine.
            let mut committed = 0u64;
            let mut checkpointed: Option<u64> = None;
            let mut folds_since_commit = 0u64;
            for (step, op) in ops.iter().enumerate() {
                let now = SimTime::from_secs(step as f64);
                match op {
                    // Fold twice as often as the other ops.
                    0..=2 => {
                        manager.record_fold();
                        folds_since_commit += 1;
                    }
                    3 | 4 => {
                        committed += 1;
                        folds_since_commit = 0;
                        let wrote = manager.commit_version(&model_for(committed), now);
                        prop_assert_eq!(wrote, committed.is_multiple_of(checkpoint_every));
                        if wrote {
                            checkpointed = Some(committed);
                        }
                    }
                    _ => {
                        let outcome = manager.fail_and_recover(now).unwrap();
                        let recovered = outcome.recovered_round.map(|r| r.index());
                        prop_assert_eq!(recovered, checkpointed);
                        prop_assert!(recovered.unwrap_or(0) <= committed);
                        prop_assert_eq!(
                            outcome.lost_versions,
                            committed - checkpointed.unwrap_or(0)
                        );
                        prop_assert_eq!(outcome.lost_in_progress_updates, folds_since_commit);
                        prop_assert_eq!(
                            outcome.recovered_model,
                            checkpointed.map(model_for)
                        );
                        prop_assert_eq!(outcome.ready_at, now + SimDuration::from_secs(1.0));
                        // Progress resumes from the checkpoint.
                        committed = checkpointed.unwrap_or(0);
                        folds_since_commit = 0;
                        prop_assert_eq!(manager.committed_versions(), committed);
                        prop_assert_eq!(manager.in_progress_updates(), 0);
                    }
                }
            }
        }

        /// model_to_bytes / model_from_bytes roundtrip bit-exactly, and every
        /// byte length that is not a whole number of f32s is rejected.
        #[test]
        fn model_bytes_roundtrip_and_reject_torn_writes(
            values in proptest::collection::vec(-1e6f32..1e6, 0..64),
            cut in 1usize..4,
        ) {
            let original = DenseModel::from_vec(values);
            let bytes = model_to_bytes(&original);
            let back = model_from_bytes(&bytes).unwrap();
            prop_assert_eq!(back, original);
            if !bytes.is_empty() {
                let torn = &bytes[..bytes.len() - cut.min(bytes.len())];
                if !torn.len().is_multiple_of(4) {
                    prop_assert!(model_from_bytes(torn).is_err());
                }
            }
        }
    }
}
