//! # lifl-experiments
//!
//! The experiment harness: one module per table/figure of the paper's
//! evaluation (§4.1, §6, Appendix F), each exposing a `run()` function that
//! regenerates the figure's rows/series from the simulation and a formatter
//! that prints them the way the paper reports them. The binaries under
//! `src/bin/` are thin wrappers; `all_experiments` runs everything and is what
//! EXPERIMENTS.md records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod fig11_async;
pub mod fig13;
pub mod fig4;
pub mod fig7;
pub mod fig8;
pub mod fig9_fig10;
pub mod fig_codec;
pub mod orchestration_overhead;
pub mod report;
