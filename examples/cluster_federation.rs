//! Multi-node session federation: the same round driven by one in-process
//! session and by a 4-node `Cluster` whose nodes exchange codec-tagged wire
//! bytes gateway-to-gateway (`Update::RemoteBytes`), proving the aggregate
//! bit-exact while reporting what the federation costs on the wire — then a
//! multi-round run where live EWMA placement moves the global top onto the
//! most-loaded node without changing a single aggregate bit.
//!
//! Run with: `cargo run -p lifl-examples --example cluster_federation`
//! (or `just cluster-demo`).

use lifl_core::cluster::{ClusterBuilder, TopPlacement};
use lifl_core::session::{SessionBuilder, Update};
use lifl_examples::demo_updates;
use lifl_types::{CodecKind, NodeId, Topology};

fn main() {
    // A 3-level global tree whose top fan-in is the machine count: 4 nodes
    // each drive a [2, 2] subtree over their own shared-memory store, and
    // node 0 additionally hosts the global top aggregator.
    let topology = Topology::new(vec![2, 2, 4]).expect("topology");
    let updates = demo_updates(topology.total_updates(), 1024);

    for codec in [CodecKind::Identity, CodecKind::Uniform8] {
        // Reference: everything inside one session on one node.
        let mut session = SessionBuilder::new()
            .topology(topology.clone())
            .codec(codec)
            .build()
            .expect("session");
        session
            .ingest_all(updates.iter().cloned().map(Update::Dense))
            .expect("session ingest");
        let single = session.drive().expect("session drive");

        // The federation: leaf ingests route to the owning node, each node
        // drives its subtree, and only the merged intermediates cross
        // machines — in their codec-encoded wire form.
        let mut cluster = ClusterBuilder::new()
            .topology(topology.clone())
            .codec(codec)
            .build()
            .expect("cluster");
        cluster
            .ingest_all(updates.iter().cloned().map(Update::Dense))
            .expect("cluster ingest");
        let report = cluster.drive().expect("cluster drive");

        let bit_exact = single
            .update
            .model
            .as_slice()
            .iter()
            .zip(report.update.model.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        println!(
            "{codec}: {} over {} nodes, ||w|| = {:.4}, bit-exact with single session: {}",
            report.topology,
            report.nodes.len(),
            report.update.model.l2_norm(),
            bit_exact,
        );
        for hop in &report.hops {
            println!(
                "  hop {} -> top: {} wire bytes, {} ({:.4}s modelled)",
                hop.node,
                hop.wire_bytes,
                if hop.same_node {
                    "shared memory"
                } else {
                    "cross-machine"
                },
                hop.cost.latency.as_secs(),
            );
        }
        println!(
            "  inter-node total: {} bytes, serialized hop latency {:.4}s",
            report.inter_node_wire_bytes(),
            report.serialized_hop_latency().as_secs(),
        );
        assert!(bit_exact, "federation must not change the aggregate");
    }

    // Live placement: the top-hosting node is not static wiring. Under the
    // default `TopPlacement::MostLoaded` policy the cluster keeps a per-node
    // EWMA of observed load and re-places the top at every round boundary;
    // here an out-of-band load report tips the estimate and the top moves —
    // with the warm global intermediate handed off at a priced hop, and the
    // aggregates staying bit-identical to a cluster that never moves.
    let mut live = ClusterBuilder::new()
        .topology(topology.clone())
        .codec(CodecKind::Uniform8)
        .build()
        .expect("live cluster");
    let mut pinned = ClusterBuilder::new()
        .topology(topology.clone())
        .codec(CodecKind::Uniform8)
        .placement(TopPlacement::Pinned(0))
        .build()
        .expect("pinned cluster");
    println!("\nlive placement (uniform8, 3 rounds):");
    for round in 0..3u32 {
        if round == 1 {
            // Node 2 reports a deep pending queue; its EWMA now dominates.
            live.observe_node_load(NodeId::new(2), 96.0);
        }
        let updates = demo_updates(topology.total_updates(), 1024);
        live.ingest_all(updates.iter().cloned().map(Update::Dense))
            .expect("live ingest");
        pinned
            .ingest_all(updates.into_iter().map(Update::Dense))
            .expect("pinned ingest");
        let live_report = live.drive().expect("live drive");
        let pinned_report = pinned.drive().expect("pinned drive");
        let bit_exact = live_report
            .update
            .model
            .as_slice()
            .iter()
            .zip(pinned_report.update.model.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        match &live_report.replacement {
            Some(moved) => println!(
                "  round {round}: top moved {} -> {} ({} handoff bytes, \
                 {:.4}s modelled), bit-exact with pinned: {bit_exact}",
                moved.from,
                moved.to,
                moved.state_bytes,
                moved.cost.latency.as_secs(),
            ),
            None => println!(
                "  round {round}: top stays on {}, bit-exact with pinned: {bit_exact}",
                live_report.top_node,
            ),
        }
        assert!(bit_exact, "a top move must not change the aggregate");
    }
}
