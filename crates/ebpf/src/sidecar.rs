//! The eBPF-based sidecar (§4.3): metrics collection attached to an
//! aggregator's socket, triggered by `send()` via the SKMSG hook.

use crate::metrics_map::MetricsMap;
use crate::skmsg::{SkMsg, SkMsgHook, SkMsgVerdict};
use lifl_types::{AggregatorId, SimDuration, SimTime};

/// The lightweight sidecar attached to one aggregator.
///
/// Compared with a container-based sidecar, it holds no dedicated CPU or
/// memory: it is a pair of references (the node's metrics map and SKMSG hook)
/// plus per-event bookkeeping. The CPU cost per invocation is accounted by the
/// data-plane cost model in `lifl-dataplane`, not here.
#[derive(Debug, Clone)]
pub struct EbpfSidecar {
    aggregator: AggregatorId,
    metrics: MetricsMap,
    hook: SkMsgHook,
}

impl EbpfSidecar {
    /// Attaches a sidecar to `aggregator`, wiring it to the node's metrics map
    /// and SKMSG hook.
    pub fn attach(aggregator: AggregatorId, metrics: MetricsMap, hook: SkMsgHook) -> Self {
        EbpfSidecar {
            aggregator,
            metrics,
            hook,
        }
    }

    /// The aggregator this sidecar observes.
    pub fn aggregator(&self) -> AggregatorId {
        self.aggregator
    }

    /// Invoked when the aggregator finishes aggregating one update.
    /// Records execution-time metrics (the input to hierarchy planning, §5.2).
    pub fn observe_aggregation(&self, exec_time: SimDuration, now: SimTime) {
        self.metrics
            .record_aggregation(self.aggregator, exec_time, now);
    }

    /// Invoked when the aggregator calls `send()` to pass an update onward.
    /// Runs the SKMSG program and records send metrics; returns the verdict so
    /// the caller knows whether the message stays on the node.
    pub fn on_send(&self, msg: &SkMsg, now: SimTime) -> SkMsgVerdict {
        self.metrics.record_send(self.aggregator, now);
        self.hook.on_send(msg)
    }

    /// Access to the underlying metrics map (the LIFL agent uses this to drain).
    pub fn metrics(&self) -> &MetricsMap {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sockmap::SockMap;
    use lifl_types::{NodeId, ObjectKey};

    #[test]
    fn sidecar_records_and_steers() {
        let node = NodeId::new(0);
        let sockmap = SockMap::new(node, 0);
        let a1 = AggregatorId::new(1);
        let a2 = AggregatorId::new(2);
        sockmap.register_local(a2);
        let metrics = MetricsMap::new();
        let hook = SkMsgHook::attach(sockmap);
        let sidecar = EbpfSidecar::attach(a1, metrics.clone(), hook);

        sidecar.observe_aggregation(SimDuration::from_secs(1.5), SimTime::from_secs(10.0));
        let verdict = sidecar.on_send(
            &SkMsg {
                source: a1,
                destination: a2,
                key: ObjectKey::from_words(1, 2),
                weight: 2,
            },
            SimTime::from_secs(11.0),
        );
        assert_eq!(verdict, SkMsgVerdict::RedirectLocal(a2));
        let sample = metrics.sample(a1).unwrap();
        assert_eq!(sample.updates_aggregated, 1);
        assert_eq!(sample.updates_sent, 1);
        assert_eq!(sidecar.aggregator(), a1);
        assert_eq!(sidecar.metrics().len(), 1);
    }
}
