//! Entry point binding the ten integration suites into one test binary.

mod algorithms;
mod codec;
mod end_to_end;
mod extensions;
mod failure_injection;
mod placement_routing;
mod platform_vs_baselines;
mod runtime_inprocess;
mod serverless_substrate;
mod workspace_smoke;
