//! Resource-usage and round-level metrics shared by the simulator, the
//! baselines and the experiment harness.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// A CPU-cycle count (the unit used by Fig. 7(b) and Fig. 13(a)).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize, Default)]
pub struct CpuCycles(pub f64);

impl CpuCycles {
    /// Zero cycles.
    pub const ZERO: CpuCycles = CpuCycles(0.0);

    /// Creates a cycle count from giga-cycles.
    pub fn from_giga(g: f64) -> Self {
        CpuCycles(g * 1e9)
    }

    /// Cycle count in giga-cycles.
    pub fn as_giga(self) -> f64 {
        self.0 / 1e9
    }

    /// CPU time these cycles occupy on a core with the given clock (GHz).
    pub fn to_duration(self, clock_ghz: f64) -> SimDuration {
        SimDuration::from_secs(self.0 / (clock_ghz.max(1e-9) * 1e9))
    }

    /// Cycles consumed by busy CPU time on a core with the given clock (GHz).
    pub fn from_duration(d: SimDuration, clock_ghz: f64) -> Self {
        CpuCycles(d.as_secs() * clock_ghz * 1e9)
    }
}

impl Add for CpuCycles {
    type Output = CpuCycles;
    fn add(self, rhs: CpuCycles) -> CpuCycles {
        CpuCycles(self.0 + rhs.0)
    }
}

impl AddAssign for CpuCycles {
    fn add_assign(&mut self, rhs: CpuCycles) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for CpuCycles {
    fn sum<I: Iterator<Item = CpuCycles>>(iter: I) -> Self {
        iter.fold(CpuCycles::ZERO, |a, b| a + b)
    }
}

/// Aggregate resource usage attributed to one component or one experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ResourceUsage {
    /// Busy CPU time.
    pub cpu_time: SimDuration,
    /// CPU cycles (redundant with `cpu_time` given a clock, but kept so that
    /// experiments can report the same units as the paper's figures).
    pub cpu_cycles: CpuCycles,
    /// Peak memory occupied, in bytes.
    pub peak_memory_bytes: u64,
    /// Bytes moved over the network (inter-node only).
    pub network_bytes: u64,
}

impl ResourceUsage {
    /// Usage with every counter at zero.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Adds another usage record into this one, taking the max of peak memory.
    pub fn absorb(&mut self, other: &ResourceUsage) {
        self.cpu_time += other.cpu_time;
        self.cpu_cycles += other.cpu_cycles;
        self.peak_memory_bytes = self.peak_memory_bytes.max(other.peak_memory_bytes);
        self.network_bytes += other.network_bytes;
    }

    /// Adds busy CPU time, also accumulating the equivalent cycles at `clock_ghz`.
    pub fn add_cpu(&mut self, busy: SimDuration, clock_ghz: f64) {
        self.cpu_time += busy;
        self.cpu_cycles += CpuCycles::from_duration(busy, clock_ghz);
    }
}

/// Metrics describing one completed aggregation round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundMetrics {
    /// Round index.
    pub round: u64,
    /// Wall-clock time at which the round started (first update arrival).
    pub started_at: SimTime,
    /// Wall-clock time at which the global model was updated.
    pub completed_at: SimTime,
    /// Aggregation completion time: from first arrival to global-model update.
    pub aggregation_completion_time: SimDuration,
    /// Number of model updates aggregated (the aggregation goal n).
    pub updates_aggregated: u64,
    /// Number of aggregator instances created during the round (cold starts).
    pub aggregators_created: u64,
    /// Number of warm aggregator instances reused across levels.
    pub aggregators_reused: u64,
    /// Number of distinct worker nodes used.
    pub nodes_used: u64,
    /// Busy CPU time consumed by the aggregation service during the round.
    pub cpu_time: SimDuration,
    /// Bytes transferred across nodes during the round.
    pub inter_node_bytes: u64,
    /// Test accuracy of the global model after this round (if evaluated).
    pub accuracy: Option<f64>,
}

impl RoundMetrics {
    /// Creates an empty record for a round starting at `started_at`.
    pub fn new(round: u64, started_at: SimTime) -> Self {
        RoundMetrics {
            round,
            started_at,
            completed_at: started_at,
            aggregation_completion_time: SimDuration::ZERO,
            updates_aggregated: 0,
            aggregators_created: 0,
            aggregators_reused: 0,
            nodes_used: 0,
            cpu_time: SimDuration::ZERO,
            inter_node_bytes: 0,
            accuracy: None,
        }
    }

    /// Marks the round complete at `at`, recording the ACT.
    pub fn complete(&mut self, at: SimTime) {
        self.completed_at = at;
        self.aggregation_completion_time = at.duration_since(self.started_at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_duration_roundtrip() {
        let cycles = CpuCycles::from_giga(2.8);
        let dur = cycles.to_duration(2.8);
        assert!((dur.as_secs() - 1.0).abs() < 1e-9);
        let back = CpuCycles::from_duration(dur, 2.8);
        assert!((back.as_giga() - 2.8).abs() < 1e-9);
    }

    #[test]
    fn usage_absorb_accumulates() {
        let mut a = ResourceUsage::zero();
        a.add_cpu(SimDuration::from_secs(1.0), 2.0);
        let mut b = ResourceUsage::zero();
        b.add_cpu(SimDuration::from_secs(2.0), 2.0);
        b.peak_memory_bytes = 500;
        b.network_bytes = 100;
        a.absorb(&b);
        assert!((a.cpu_time.as_secs() - 3.0).abs() < 1e-12);
        assert!((a.cpu_cycles.as_giga() - 6.0).abs() < 1e-9);
        assert_eq!(a.peak_memory_bytes, 500);
        assert_eq!(a.network_bytes, 100);
    }

    #[test]
    fn round_metrics_act() {
        let mut m = RoundMetrics::new(3, SimTime::from_secs(10.0));
        m.complete(SimTime::from_secs(15.5));
        assert!((m.aggregation_completion_time.as_secs() - 5.5).abs() < 1e-12);
        assert_eq!(m.round, 3);
    }

    #[test]
    fn cycles_sum() {
        let total: CpuCycles = [1.0, 2.0].iter().map(|g| CpuCycles::from_giga(*g)).sum();
        assert!((total.as_giga() - 3.0).abs() < 1e-12);
    }
}
