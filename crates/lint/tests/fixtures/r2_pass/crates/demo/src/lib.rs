// SAFETY: caller must pass a valid, aligned pointer.
#[inline]
pub unsafe fn raw_read(p: *const u8) -> u8 {
    *p
}

pub fn wrapper(p: *const u8) -> u8 {
    // A SAFETY tag inside a longer comment run still counts.
    // SAFETY: `p` comes from a live reference in the caller.
    unsafe { raw_read(p) }
}
