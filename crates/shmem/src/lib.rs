//! # lifl-shmem
//!
//! The shared-memory object store that backs LIFL's intra-node zero-copy data
//! plane (§4.1) and in-place message queuing (§4.2).
//!
//! * Objects are **immutable** byte buffers addressed by a 16-byte
//!   [`ObjectKey`](lifl_types::ObjectKey); immutability removes the need for
//!   locks when multiple aggregators read the same model update (paper §4.1).
//! * The store accounts for capacity, supports explicit recycling and exposes
//!   the counters the experiments need (allocated bytes, peak bytes, object
//!   count).
//! * [`queue::InPlaceQueue`] implements the gateway's in-place message queue:
//!   a FIFO of object keys, so enqueueing a 232 MB ResNet-152 update costs a
//!   16-byte key push instead of a copy.
//! * [`checkpoint::CheckpointStore`] emulates the external persistent storage
//!   service the LIFL agent checkpoints global models to (Appendix B).
//! * [`pool::BufferPool`] keeps model-sized scratch buffers alive between
//!   uses so the codec/fold hot path runs at zero steady-state heap growth.
//!
//! ```
//! use lifl_shmem::ObjectStore;
//!
//! # fn main() -> lifl_types::Result<()> {
//! let store = ObjectStore::with_capacity(1024);
//! let key = store.put(vec![1u8, 2, 3])?;
//! let obj = store.get(&key)?;
//! assert_eq!(obj.as_slice(), &[1, 2, 3]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backlog;
pub mod checkpoint;
pub mod object;
pub mod pool;
pub mod queue;
pub mod store;

pub use backlog::{BacklogStats, PooledBacklog};
pub use checkpoint::CheckpointStore;
pub use object::{PayloadEncoding, SharedObject};
pub use pool::{BufferPool, PoolStats};
pub use queue::InPlaceQueue;
pub use store::{ObjectStore, StoreStats};
