//! Fig. 11 / future work: asynchronous FL with eager versus lazy aggregation.
//!
//! The paper's implementation is synchronous; Fig. 11 (Appendix) sketches the
//! intended asynchronous semantics and §7 lists async FL as future work. This
//! experiment exercises that extension end to end:
//!
//! * **Semantics check** — the buffered asynchronous aggregator commits a new
//!   global version every `goal` updates under both eager and lazy timing, and
//!   both timings commit identical models (Fig. 11(a) vs 11(b)).
//! * **Algorithm check** — a full asynchronous FedAvg run over the synthetic
//!   non-IID workload, comparing staleness-weighting policies (constant,
//!   polynomial, hinge) on committed versions, observed staleness and final
//!   accuracy.

use crate::report::format_table;
use lifl_fl::async_driver::{AsyncDriverConfig, AsyncFlDriver};
use lifl_fl::client::ClientAvailability;
use lifl_fl::dataset::{DatasetConfig, FederatedDataset};
use lifl_fl::population::{Population, PopulationConfig};
use lifl_fl::staleness::StalenessPolicy;
use lifl_fl::trainer::TrainerConfig;
use lifl_simcore::SimRng;
use lifl_types::ModelKind;
use serde::Serialize;

/// One row of the staleness-policy comparison.
#[derive(Debug, Clone, Serialize)]
pub struct AsyncPolicyRow {
    /// Policy label.
    pub policy: String,
    /// Versions committed.
    pub versions: usize,
    /// Wall-clock time of the final commit (seconds).
    pub final_commit_secs: f64,
    /// Fraction of accepted updates that were stale.
    pub stale_fraction: f64,
    /// Mean staleness across accepted updates.
    pub mean_staleness: f64,
    /// Final test accuracy (percent).
    pub final_accuracy: f64,
}

/// The full Fig. 11 experiment result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig11Result {
    /// Whether eager and lazy async aggregation committed identical models.
    pub eager_lazy_equivalent: bool,
    /// Staleness-policy comparison rows.
    pub policies: Vec<AsyncPolicyRow>,
}

fn semantics_check() -> bool {
    use lifl_core::async_round::AsyncAggregator;
    use lifl_fl::aggregate::ModelUpdate;
    use lifl_fl::DenseModel;
    use lifl_types::{AggregationTiming, ClientId, SimTime};

    let updates: Vec<ModelUpdate> = (1..=8u64)
        .map(|i| {
            ModelUpdate::from_client(
                ClientId::new(i),
                DenseModel::from_vec(vec![i as f32, (i * 2) as f32, -(i as f32)]),
                i,
            )
        })
        .collect();
    let mut eager = AsyncAggregator::new(4, AggregationTiming::Eager).expect("goal > 0");
    let mut lazy = AsyncAggregator::new(4, AggregationTiming::Lazy).expect("goal > 0");
    for (k, update) in updates.iter().enumerate() {
        let at = SimTime::from_secs(k as f64);
        eager.submit(update.clone(), 0, at).expect("eager submit");
        lazy.submit(update.clone(), 0, at).expect("lazy submit");
    }
    if eager.versions().len() != lazy.versions().len() {
        return false;
    }
    eager.versions().iter().zip(lazy.versions()).all(|(a, b)| {
        a.model
            .as_slice()
            .iter()
            .zip(b.model.as_slice())
            .all(|(x, y)| (x - y).abs() < 1e-5)
    })
}

fn run_policy(policy: StalenessPolicy, label: &str, seed: u64) -> AsyncPolicyRow {
    let mut rng = SimRng::from_seed(seed);
    let dataset = FederatedDataset::generate(
        DatasetConfig {
            num_clients: 60,
            num_features: 16,
            num_classes: 8,
            mean_samples_per_client: 40,
            dirichlet_alpha: 0.4,
            test_samples: 400,
            noise_std: 0.4,
        },
        &mut rng,
    );
    let population = Population::generate(
        PopulationConfig {
            total_clients: 60,
            active_per_round: 24,
            availability: ClientAvailability::Hibernating { max_secs: 30.0 },
            mean_samples: 40,
            speed_spread: 0.6,
        },
        &mut rng,
    );
    let config = AsyncDriverConfig {
        trainer: TrainerConfig {
            batch_size: 16,
            learning_rate: 0.05,
            local_epochs: 2,
        },
        buffer_goal: 12,
        target_versions: 15,
        concurrency: 24,
        staleness: policy,
        model: ModelKind::ResNet18,
        eval_every: 1,
        codec: lifl_types::CodecKind::Identity,
    };
    let mut driver = AsyncFlDriver::new(dataset, population, config).expect("valid config");
    let versions = driver.run(&mut rng);
    let tracker = driver.staleness();
    AsyncPolicyRow {
        policy: label.to_string(),
        versions: versions.len(),
        final_commit_secs: versions
            .last()
            .map(|v| v.committed_at.as_secs())
            .unwrap_or(0.0),
        stale_fraction: if tracker.count() == 0 {
            0.0
        } else {
            tracker.stale_count() as f64 / tracker.count() as f64
        },
        mean_staleness: tracker.mean(),
        final_accuracy: driver.evaluate(),
    }
}

/// Runs the asynchronous-FL experiment.
pub fn run() -> Fig11Result {
    let policies = vec![
        run_policy(StalenessPolicy::Constant, "constant", 11),
        run_policy(
            StalenessPolicy::Polynomial { exponent: 0.5 },
            "poly(0.5)",
            11,
        ),
        run_policy(
            StalenessPolicy::Hinge {
                threshold: 2,
                slope: 0.5,
            },
            "hinge(2,0.5)",
            11,
        ),
    ];
    Fig11Result {
        eager_lazy_equivalent: semantics_check(),
        policies,
    }
}

/// Formats the experiment result.
pub fn format(result: &Fig11Result) -> String {
    let mut out = String::from("Fig. 11 / future work: asynchronous FL\n");
    out.push_str(&format!(
        "eager and lazy async aggregation commit identical models: {}\n\n",
        result.eager_lazy_equivalent
    ));
    out.push_str(&format_table(
        &[
            "staleness policy",
            "versions",
            "final commit (s)",
            "stale frac",
            "mean staleness",
            "accuracy (%)",
        ],
        &result
            .policies
            .iter()
            .map(|r| {
                vec![
                    r.policy.clone(),
                    r.versions.to_string(),
                    format!("{:.0}", r.final_commit_secs),
                    format!("{:.2}", r.stale_fraction),
                    format!("{:.2}", r.mean_staleness),
                    format!("{:.1}", r.final_accuracy),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn async_semantics_and_policies_behave() {
        let result = run();
        assert!(result.eager_lazy_equivalent);
        assert_eq!(result.policies.len(), 3);
        for row in &result.policies {
            assert_eq!(row.versions, 15);
            assert!(row.final_commit_secs > 0.0);
            assert!(
                row.stale_fraction > 0.0,
                "{}: async runs should observe staleness",
                row.policy
            );
            assert!(
                row.final_accuracy > 30.0,
                "{}: async FedAvg should learn, got {:.1}%",
                row.policy,
                row.final_accuracy
            );
        }
        // All policies ran the same workload, so wall-clock of the final
        // commit matches across policies (weighting changes models, not timing).
        let times: Vec<f64> = result
            .policies
            .iter()
            .map(|r| r.final_commit_secs)
            .collect();
        assert!((times[0] - times[1]).abs() < 1e-6);
        let text = format(&result);
        assert!(text.contains("poly(0.5)"));
    }
}
