//! # lifl-fl
//!
//! The federated-learning substrate: FedAvg aggregation (including the
//! cumulative/eager formulation LIFL relies on, §2.1 and §5.4), a synthetic
//! non-IID federated dataset, local SGD trainers, a client population with
//! realistic availability dynamics (§6.2) and a round driver that produces
//! accuracy-versus-round curves.
//!
//! The training workload is a softmax-regression classifier over a synthetic
//! FEMNIST-like task (62 classes, Dirichlet label skew across clients). See
//! DESIGN.md §1 for why this substitution preserves the paper's system-level
//! claims: update *sizes* used for system costs stay at the ResNet sizes, and
//! only the rounds→accuracy mapping comes from this substrate.
//!
//! Beyond the paper's FedAvg workload, the crate also provides the
//! algorithm-level extensions the paper's related-work section points at so
//! that LIFL can act as their substrate: server-side adaptive federated
//! optimizers ([`server_opt`]), FedProx local training ([`fedprox`]),
//! Oort-style guided participant selection ([`oort`]), buffered
//! asynchronous FL with staleness weighting ([`async_driver`], [`staleness`])
//! and quantized/sparsified update codecs with per-client error feedback
//! ([`codec`]), plus robust coordinate-wise aggregation folds against
//! corrupted or adversarial updates ([`robust`]).
//!
//! The codec and aggregation hot paths run on runtime-dispatched SIMD
//! kernels ([`kernels`]): AVX2 on x86-64 hosts that support it, with a
//! bit-exact scalar reference everywhere else (`LIFL_FORCE_SCALAR=1`
//! forces the fallback).

// `deny` rather than `forbid`: the kernels module needs `std::arch` SIMD
// intrinsics behind a scoped allow; everything else stays unsafe-free.
#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod aggregate;
pub mod async_driver;
pub mod client;
pub mod codec;
pub mod dataset;
pub mod fedprox;
#[allow(unsafe_code)]
pub mod kernels;
pub mod metrics;
pub mod model;
pub mod oort;
pub mod population;
pub mod robust;
pub mod rounds;
pub mod selector;
pub mod server_opt;
pub mod sharded;
pub mod sink;
pub mod staleness;
pub mod trainer;
pub mod update;

pub use aggregate::{CumulativeFedAvg, ModelUpdate};
pub use async_driver::{AsyncDriverConfig, AsyncFlDriver, AsyncVersionOutcome};
pub use client::{Client, ClientAvailability};
pub use codec::{EncodedUpdate, EncodedView, ErrorFeedback, UpdateCodec};
pub use dataset::{FederatedDataset, Sample};
pub use fedprox::{FedProxConfig, FedProxTrainer};
pub use model::DenseModel;
pub use oort::{OortConfig, OortSelector};
pub use population::{Population, PopulationConfig};
pub use robust::{PolicyFold, RobustFold};
pub use rounds::{FlDriver, FlDriverConfig, RoundOutcome};
pub use server_opt::{ServerOptConfig, ServerOptKind, ServerOptimizer};
pub use sharded::ShardedFedAvg;
pub use sink::{Ingest, RoundAggregate};
pub use staleness::{StalenessPolicy, StalenessTracker};
pub use trainer::{LocalTrainer, TrainerConfig};
pub use update::Update;
