//! FL clients: local data, compute capability and availability dynamics (§6.2).

use lifl_simcore::SimRng;
use lifl_types::{ClientId, ModelKind, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Availability model of a client.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum ClientAvailability {
    /// Always available (the ResNet-152 "server client" setup, §6.2).
    #[default]
    AlwaysOn,
    /// Mobile-device behaviour: after each round the client hibernates for a
    /// uniformly random interval in `[0, max_secs]` (the ResNet-18 setup, §6.2).
    Hibernating {
        /// Upper bound of the hibernation interval in seconds.
        max_secs: f64,
    },
}

/// A participating client/trainer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Client {
    /// The client's identity.
    pub id: ClientId,
    /// Relative compute speed (1.0 = reference device; lower is slower).
    pub compute_speed: f64,
    /// Number of local training samples (drives both FedAvg weighting and training time).
    pub local_samples: u64,
    /// Availability behaviour.
    pub availability: ClientAvailability,
}

impl Client {
    /// Time to finish local training of one round for `model` on this client.
    ///
    /// Calibrated so that a ResNet-18 round on a constrained mobile client
    /// takes tens of seconds and a ResNet-152 round on a dedicated server
    /// takes a few minutes, matching the arrival-rate dynamics of Fig. 10.
    pub fn training_time(&self, model: ModelKind) -> SimDuration {
        let per_sample_secs = match model {
            ModelKind::ResNet18 => 0.20,
            ModelKind::ResNet34 => 0.35,
            ModelKind::ResNet152 => 1.6,
            ModelKind::Custom { update_bytes } => {
                0.2 * (update_bytes as f64 / (44.0 * 1024.0 * 1024.0))
            }
        };
        SimDuration::from_secs(
            per_sample_secs * self.local_samples as f64 / self.compute_speed.max(0.05),
        )
    }

    /// Time spent hibernating before the client is ready for the next round.
    pub fn hibernation(&self, rng: &mut SimRng) -> SimDuration {
        match self.availability {
            ClientAvailability::AlwaysOn => SimDuration::ZERO,
            ClientAvailability::Hibernating { max_secs } => {
                SimDuration::from_secs(rng.uniform(0.0, max_secs.max(0.0)))
            }
        }
    }

    /// The time at which this client's update arrives at the aggregation
    /// service, given that the round's model was broadcast at `round_start`.
    pub fn update_arrival(
        &self,
        round_start: SimTime,
        model: ModelKind,
        upload_time: SimDuration,
        rng: &mut SimRng,
    ) -> SimTime {
        round_start + self.hibernation(rng) + self.training_time(model) + upload_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client(speed: f64, samples: u64) -> Client {
        Client {
            id: ClientId::new(1),
            compute_speed: speed,
            local_samples: samples,
            availability: ClientAvailability::AlwaysOn,
        }
    }

    #[test]
    fn slower_clients_train_longer() {
        let fast = client(2.0, 100).training_time(ModelKind::ResNet18);
        let slow = client(0.5, 100).training_time(ModelKind::ResNet18);
        assert!(slow > fast);
    }

    #[test]
    fn bigger_models_train_longer() {
        let c = client(1.0, 50);
        assert!(c.training_time(ModelKind::ResNet152) > c.training_time(ModelKind::ResNet18));
    }

    #[test]
    fn hibernation_bounds_respected() {
        let mut rng = SimRng::from_seed(5);
        let c = Client {
            availability: ClientAvailability::Hibernating { max_secs: 60.0 },
            ..client(1.0, 10)
        };
        for _ in 0..100 {
            let h = c.hibernation(&mut rng).as_secs();
            assert!((0.0..=60.0).contains(&h));
        }
        assert_eq!(client(1.0, 10).hibernation(&mut rng), SimDuration::ZERO);
    }

    #[test]
    fn arrival_is_after_round_start() {
        let mut rng = SimRng::from_seed(5);
        let c = client(1.0, 10);
        let start = SimTime::from_secs(100.0);
        let arrival = c.update_arrival(
            start,
            ModelKind::ResNet18,
            SimDuration::from_secs(1.0),
            &mut rng,
        );
        assert!(arrival > start);
    }
}
