//! The codec-transparent model-update envelope.
//!
//! PRs 2–3 grew parallel entry points for every representation a model update
//! can arrive in: dense full-precision parameters, a codec-encoded
//! [`EncodedUpdate`], or raw wire bytes forwarded from a remote node.
//! [`Update`] folds those into one enum so every consumer — the synchronous
//! and asynchronous FL drivers in this crate, and the `Session` ingress in
//! `lifl-core` — can take *any* representation through a single polymorphic
//! path ([`crate::aggregate::CumulativeFedAvg::fold_update`]).

use crate::aggregate::ModelUpdate;
use crate::codec::EncodedUpdate;
use crate::model::DenseModel;
use lifl_types::{ClientId, WIRE_HEADER_BYTES};

/// A model update in whichever representation it arrived.
///
/// ```
/// use lifl_fl::codec::UpdateCodec;
/// use lifl_fl::update::Update;
/// use lifl_fl::DenseModel;
/// use lifl_types::{ClientId, CodecKind};
///
/// let model = DenseModel::from_vec(vec![0.5; 64]);
///
/// // A client's dense update, a pre-quantized update, and the same wire
/// // bytes as a remote gateway would forward them: one envelope for all
/// // three, so every consumer folds through a single polymorphic path.
/// let dense = Update::dense(ClientId::new(1), model.clone(), 10);
/// let mut codec = UpdateCodec::new(CodecKind::Uniform8);
/// let encoded = codec.encode(&model);
/// let wire = encoded.to_bytes();
/// let compressed = Update::encoded(ClientId::new(2), encoded, 10);
/// let forwarded = Update::remote_bytes(wire, 20, true);
///
/// assert_eq!(dense.wire_bytes(), 64 * 4);
/// assert_eq!(compressed.wire_bytes(), 64); // one byte per parameter
/// assert_eq!(forwarded.wire_bytes(), 64); // descriptor rides the control channel
/// assert_eq!(forwarded.weight(), 20);
/// assert_eq!(forwarded.client(), None); // intermediates have no single producer
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Update {
    /// A dense full-precision update (a client's parameters or an
    /// intermediate aggregate).
    Dense(ModelUpdate),
    /// A codec-encoded update in its self-describing wire form.
    Encoded {
        /// The producing client, if this is a leaf-level update.
        client: Option<ClientId>,
        /// The encoded payload.
        update: EncodedUpdate,
        /// Samples (or accumulated weight) this update represents.
        samples: u64,
    },
    /// Raw wire bytes forwarded from a remote node's gateway, exactly as
    /// `Gateway::forward_remote_bytes` shipped them: the self-describing
    /// encoded form when `encoded`, headerless little-endian `f32`
    /// parameters otherwise.
    RemoteBytes {
        /// The forwarded payload.
        wire: bytes::Bytes,
        /// Accumulated sample weight of the intermediate.
        weight: u64,
        /// Whether `wire` is the self-describing encoded form.
        encoded: bool,
    },
}

impl Update {
    /// A dense client update.
    pub fn dense(client: ClientId, model: DenseModel, samples: u64) -> Self {
        Update::Dense(ModelUpdate::from_client(client, model, samples))
    }

    /// A codec-encoded client update.
    pub fn encoded(client: ClientId, update: EncodedUpdate, samples: u64) -> Self {
        Update::Encoded {
            client: Some(client),
            update,
            samples,
        }
    }

    /// An intermediate forwarded from a remote node in wire form.
    pub fn remote_bytes(wire: impl Into<bytes::Bytes>, weight: u64, encoded: bool) -> Self {
        Update::RemoteBytes {
            wire: wire.into(),
            weight,
            encoded,
        }
    }

    /// The sample weight this update carries into FedAvg.
    pub fn weight(&self) -> u64 {
        match self {
            Update::Dense(dense) => dense.samples,
            Update::Encoded { samples, .. } => *samples,
            Update::RemoteBytes { weight, .. } => *weight,
        }
    }

    /// The producing client, when this is a leaf-level update.
    pub fn client(&self) -> Option<ClientId> {
        match self {
            Update::Dense(dense) => dense.client,
            Update::Encoded { client, .. } => *client,
            Update::RemoteBytes { .. } => None,
        }
    }

    /// Payload bytes this update occupies on the data plane (the encoded
    /// body for compressed forms; the 16-byte descriptor of a remote encoded
    /// payload rides the control channel and is excluded, consistent with
    /// [`EncodedUpdate::wire_bytes`]).
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Update::Dense(dense) => dense.byte_size(),
            Update::Encoded { update, .. } => update.wire_bytes(),
            Update::RemoteBytes { wire, encoded, .. } => {
                let len = wire.len() as u64;
                if *encoded {
                    len.saturating_sub(WIRE_HEADER_BYTES)
                } else {
                    len
                }
            }
        }
    }
}

impl From<ModelUpdate> for Update {
    fn from(update: ModelUpdate) -> Self {
        Update::Dense(update)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::UpdateCodec;
    use lifl_types::CodecKind;

    #[test]
    fn envelope_reports_weight_client_and_wire_bytes() {
        let model = DenseModel::from_vec(vec![1.0; 32]);
        let dense = Update::dense(ClientId::new(3), model.clone(), 7);
        assert_eq!(dense.weight(), 7);
        assert_eq!(dense.client(), Some(ClientId::new(3)));
        assert_eq!(dense.wire_bytes(), 128);

        let mut codec = UpdateCodec::new(CodecKind::Uniform8);
        let encoded = codec.encode(&model);
        let wire = encoded.to_bytes();
        let env = Update::encoded(ClientId::new(4), encoded, 5);
        assert_eq!(env.weight(), 5);
        assert_eq!(env.wire_bytes(), 32);

        let remote = Update::remote_bytes(wire, 9, true);
        assert_eq!(remote.weight(), 9);
        assert_eq!(remote.client(), None);
        // Header excluded, like EncodedUpdate::wire_bytes.
        assert_eq!(remote.wire_bytes(), 32);

        let dense_remote = Update::remote_bytes(vec![0u8; 128], 2, false);
        assert_eq!(dense_remote.wire_bytes(), 128);

        let from: Update = ModelUpdate::intermediate(model, 11).into();
        assert_eq!(from.weight(), 11);
        assert_eq!(from.client(), None);
    }
}
