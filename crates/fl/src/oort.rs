//! Oort-style guided participant selection (Lai et al., 2021, cited in §7).
//!
//! The paper positions client-selection research as orthogonal work that LIFL
//! complements ("LIFL focuses on system-level optimization of model
//! aggregation … a good complement to these efforts"). To exercise that
//! claim, this module implements the core of Oort's guided participant
//! selection so it can be plugged into the round loop in place of uniform
//! random selection:
//!
//! * **Statistical utility** — clients whose recent training loss is high
//!   carry more useful gradient information; utility is `|B|·sqrt(Σ loss²/|B|)`
//!   approximated here by the last reported mean loss times the shard size.
//! * **System utility** — clients that would exceed the round's preferred
//!   duration `T` are penalised by `(T / t_i)^α`.
//! * **Exploration/exploitation** — a fraction ε of each round's slots is
//!   reserved for never-tried clients so the utility estimates keep improving.

use crate::client::Client;
use lifl_simcore::SimRng;
use lifl_types::{ClientId, LiflError, ModelKind, Result};
use std::collections::HashMap;

/// Configuration of the Oort selector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OortConfig {
    /// Fraction of each round's slots reserved for unexplored clients (ε).
    pub exploration_fraction: f64,
    /// Preferred round duration in seconds (Oort's T); clients slower than
    /// this are penalised.
    pub preferred_round_secs: f64,
    /// Penalty exponent α applied to the system utility of slow clients.
    pub straggler_penalty: f64,
    /// Workload model used to estimate per-client training time.
    pub model: ModelKind,
}

impl Default for OortConfig {
    fn default() -> Self {
        OortConfig {
            exploration_fraction: 0.2,
            preferred_round_secs: 60.0,
            straggler_penalty: 2.0,
            model: ModelKind::ResNet18,
        }
    }
}

impl OortConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidConfig`] if the exploration fraction is
    /// outside `[0, 1]` or the preferred duration is not positive.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.exploration_fraction) {
            return Err(LiflError::InvalidConfig(format!(
                "exploration fraction must be in [0,1], got {}",
                self.exploration_fraction
            )));
        }
        if self.preferred_round_secs <= 0.0 {
            return Err(LiflError::InvalidConfig(format!(
                "preferred round duration must be positive, got {}",
                self.preferred_round_secs
            )));
        }
        Ok(())
    }
}

/// Per-client state the selector maintains across rounds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
struct ClientRecord {
    /// Last observed mean training loss (statistical-utility signal).
    last_loss: f64,
    /// Number of times the client has participated.
    participations: u64,
}

/// The Oort-style selector.
#[derive(Debug, Clone)]
pub struct OortSelector {
    config: OortConfig,
    records: HashMap<ClientId, ClientRecord>,
}

impl OortSelector {
    /// Creates a selector from a validated configuration.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidConfig`] when the configuration is invalid.
    pub fn new(config: OortConfig) -> Result<Self> {
        config.validate()?;
        Ok(OortSelector {
            config,
            records: HashMap::new(),
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &OortConfig {
        &self.config
    }

    /// Number of clients with recorded feedback.
    pub fn explored_count(&self) -> usize {
        self.records.len()
    }

    /// Records post-round feedback for a participant: its mean training loss.
    pub fn record_feedback(&mut self, client: ClientId, mean_loss: f64) {
        let record = self.records.entry(client).or_default();
        record.last_loss = mean_loss.max(0.0);
        record.participations += 1;
    }

    /// The utility of a client under the current estimates. Unexplored clients
    /// get a neutral statistical utility of 1.0 so they are neither favoured
    /// nor buried by the exploitation pass.
    pub fn utility(&self, client: &Client) -> f64 {
        let statistical = match self.records.get(&client.id) {
            Some(record) => (client.local_samples as f64).sqrt() * (record.last_loss + 1e-6),
            None => 1.0,
        };
        let train_secs = client.training_time(self.config.model).as_secs().max(1e-6);
        let system = if train_secs <= self.config.preferred_round_secs {
            1.0
        } else {
            (self.config.preferred_round_secs / train_secs).powf(self.config.straggler_penalty)
        };
        statistical * system
    }

    /// Selects `count` participants from `pool`: the top-utility explored
    /// clients fill `(1 − ε)·count` slots and uniformly random unexplored
    /// clients fill the rest (falling back to explored clients when every
    /// client has been tried).
    pub fn select(&self, pool: &[Client], count: usize, rng: &mut SimRng) -> Vec<Client> {
        let count = count.min(pool.len());
        if count == 0 {
            return Vec::new();
        }
        let exploration_slots =
            ((count as f64) * self.config.exploration_fraction).round() as usize;
        let exploitation_slots = count - exploration_slots.min(count);

        // Exploitation: highest-utility explored clients.
        let mut explored: Vec<&Client> = pool
            .iter()
            .filter(|c| self.records.contains_key(&c.id))
            .collect();
        explored.sort_by(|a, b| {
            self.utility(b)
                .partial_cmp(&self.utility(a))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut selected: Vec<Client> = explored
            .iter()
            .take(exploitation_slots)
            .map(|c| (*c).clone())
            .collect();

        // Exploration: uniform over unexplored clients.
        let mut unexplored: Vec<&Client> = pool
            .iter()
            .filter(|c| !self.records.contains_key(&c.id))
            .collect();
        let mut order: Vec<usize> = (0..unexplored.len()).collect();
        rng.shuffle(&mut order);
        for idx in order {
            if selected.len() >= count {
                break;
            }
            selected.push(unexplored[idx].clone());
        }
        // Drop references we no longer need before any further borrow games.
        unexplored.clear();

        // Backfill from explored clients if exploration could not fill its slots.
        if selected.len() < count {
            for client in explored.iter().skip(exploitation_slots) {
                if selected.len() >= count {
                    break;
                }
                if !selected.iter().any(|s| s.id == client.id) {
                    selected.push((*client).clone());
                }
            }
        }
        selected.truncate(count);
        selected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientAvailability;

    fn pool(n: usize) -> Vec<Client> {
        (0..n)
            .map(|i| Client {
                id: ClientId::new(i as u64),
                compute_speed: 0.5 + (i % 5) as f64 * 0.5,
                local_samples: 20 + (i as u64 % 7) * 30,
                availability: ClientAvailability::AlwaysOn,
            })
            .collect()
    }

    #[test]
    fn selects_requested_count_without_duplicates() {
        let selector = OortSelector::new(OortConfig::default()).unwrap();
        let pool = pool(60);
        let mut rng = SimRng::from_seed(1);
        let picked = selector.select(&pool, 20, &mut rng);
        assert_eq!(picked.len(), 20);
        let mut ids: Vec<u64> = picked.iter().map(|c| c.id.index()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 20);
    }

    #[test]
    fn high_loss_clients_are_preferred_after_feedback() {
        let mut selector = OortSelector::new(OortConfig {
            exploration_fraction: 0.0,
            ..OortConfig::default()
        })
        .unwrap();
        let pool = pool(30);
        // Give every client feedback; clients 0..5 report much higher loss.
        for client in &pool {
            let loss = if client.id.index() < 5 { 5.0 } else { 0.1 };
            selector.record_feedback(client.id, loss);
        }
        let mut rng = SimRng::from_seed(2);
        let picked = selector.select(&pool, 5, &mut rng);
        let high_loss_picked = picked.iter().filter(|c| c.id.index() < 5).count();
        assert!(
            high_loss_picked >= 3,
            "expected mostly high-loss clients, got {high_loss_picked}/5"
        );
    }

    #[test]
    fn stragglers_are_penalised() {
        let selector = OortSelector::new(OortConfig {
            preferred_round_secs: 10.0,
            model: ModelKind::ResNet152,
            ..OortConfig::default()
        })
        .unwrap();
        let fast = Client {
            id: ClientId::new(1),
            compute_speed: 10.0,
            local_samples: 50,
            availability: ClientAvailability::AlwaysOn,
        };
        let slow = Client {
            id: ClientId::new(2),
            compute_speed: 0.1,
            local_samples: 50,
            availability: ClientAvailability::AlwaysOn,
        };
        assert!(selector.utility(&fast) > selector.utility(&slow));
    }

    #[test]
    fn exploration_picks_untried_clients() {
        let mut selector = OortSelector::new(OortConfig {
            exploration_fraction: 0.5,
            ..OortConfig::default()
        })
        .unwrap();
        let pool = pool(40);
        // Mark the first 20 clients as explored.
        for client in pool.iter().take(20) {
            selector.record_feedback(client.id, 1.0);
        }
        let mut rng = SimRng::from_seed(3);
        let picked = selector.select(&pool, 10, &mut rng);
        let unexplored_picked = picked.iter().filter(|c| c.id.index() >= 20).count();
        assert!(
            unexplored_picked >= 4,
            "exploration should pick several untried clients, got {unexplored_picked}"
        );
        assert_eq!(selector.explored_count(), 20);
    }

    #[test]
    fn all_explored_pool_still_fills_selection() {
        let mut selector = OortSelector::new(OortConfig {
            exploration_fraction: 0.5,
            ..OortConfig::default()
        })
        .unwrap();
        let pool = pool(10);
        for client in &pool {
            selector.record_feedback(client.id, 0.5);
        }
        let mut rng = SimRng::from_seed(4);
        let picked = selector.select(&pool, 8, &mut rng);
        assert_eq!(picked.len(), 8);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(OortSelector::new(OortConfig {
            exploration_fraction: 1.5,
            ..OortConfig::default()
        })
        .is_err());
        assert!(OortSelector::new(OortConfig {
            preferred_round_secs: 0.0,
            ..OortConfig::default()
        })
        .is_err());
    }

    #[test]
    fn empty_pool_and_zero_count_are_handled() {
        let selector = OortSelector::new(OortConfig::default()).unwrap();
        let mut rng = SimRng::from_seed(5);
        assert!(selector.select(&[], 10, &mut rng).is_empty());
        assert!(selector.select(&pool(5), 0, &mut rng).is_empty());
    }
}
