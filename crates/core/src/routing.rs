//! Direct routing for hierarchical aggregation (§4.4, Appendix A).
//!
//! Intra-node routes live in the per-node sockmap consulted by the SKMSG
//! program; inter-node routes live in the gateway's routing table
//! (`source aggregator → (destination aggregator, destination node)`). The
//! routing manager in the LIFL agent rebuilds both from the TAG every time the
//! hierarchy is re-planned.

use crate::tag::{ChannelKind, TopologyAbstractionGraph};
use lifl_ebpf::{SkMsgHook, SockMap};
use lifl_types::{AggregatorId, LiflError, NodeId, Result};
use std::collections::HashMap;

/// The per-node routing state: the sockmap (intra-node) plus the gateway's
/// inter-node table.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    node: NodeId,
    sockmap: SockMap,
    inter_node: HashMap<AggregatorId, (AggregatorId, NodeId)>,
}

/// Where the next hop of an update lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextHop {
    /// The consumer is on the same node; delivery is a shared-memory key hand-off.
    Local(AggregatorId),
    /// The consumer is on another node; the gateway must transfer the payload.
    Remote {
        /// Destination aggregator.
        aggregator: AggregatorId,
        /// Node hosting the destination.
        node: NodeId,
    },
}

impl RoutingTable {
    /// Creates an empty routing table for `node`.
    pub fn new(node: NodeId) -> Self {
        RoutingTable {
            node,
            sockmap: SockMap::new(node, 0),
            inter_node: HashMap::new(),
        }
    }

    /// The node this table belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Rebuilds all routes relevant to this node from the TAG (online
    /// hierarchy update, Appendix A). Existing routes are cleared first.
    pub fn apply_tag(&mut self, tag: &TopologyAbstractionGraph) {
        self.sockmap.clear();
        self.inter_node.clear();
        for role in tag.roles() {
            if role.node == self.node {
                self.sockmap.register_local(role.aggregator);
            }
        }
        for channel in tag.channels() {
            let (Some(from_role), Some(to_role)) = (tag.role(channel.from), tag.role(channel.to))
            else {
                continue;
            };
            if from_role.node != self.node {
                continue;
            }
            match channel.kind {
                ChannelKind::SharedMemory => {
                    self.sockmap.register_local(channel.to);
                }
                ChannelKind::KernelNetwork => {
                    self.sockmap.register_remote(channel.to);
                    self.inter_node
                        .insert(channel.from, (channel.to, to_role.node));
                }
            }
        }
    }

    /// Resolves the next hop for an update produced by `source` destined to `destination`.
    ///
    /// # Errors
    /// Returns [`LiflError::RouteNotFound`] when neither the sockmap nor the
    /// inter-node table knows the destination.
    pub fn next_hop(&self, source: AggregatorId, destination: AggregatorId) -> Result<NextHop> {
        if self.sockmap.is_local(destination) {
            return Ok(NextHop::Local(destination));
        }
        if let Some(&(agg, node)) = self.inter_node.get(&source) {
            if agg == destination {
                return Ok(NextHop::Remote {
                    aggregator: agg,
                    node,
                });
            }
        }
        Err(LiflError::RouteNotFound(destination))
    }

    /// The SKMSG hook backed by this node's sockmap (used by sidecars).
    pub fn skmsg_hook(&self) -> SkMsgHook {
        SkMsgHook::attach(self.sockmap.clone())
    }

    /// Number of local (sockmap) entries.
    pub fn local_routes(&self) -> usize {
        self.sockmap.len()
    }

    /// Number of inter-node entries in the gateway table.
    pub fn inter_node_routes(&self) -> usize {
        self.inter_node.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::Role;
    use lifl_types::AggregatorRole;

    fn tag_two_nodes() -> TopologyAbstractionGraph {
        let mut tag = TopologyAbstractionGraph::new();
        for (agg, node, role) in [
            (1, 0, AggregatorRole::Leaf),
            (2, 0, AggregatorRole::Middle),
            (3, 1, AggregatorRole::Top),
        ] {
            tag.add_role(Role {
                aggregator: AggregatorId::new(agg),
                role,
                node: NodeId::new(node),
                group: format!("node-{node}"),
            });
        }
        tag.connect(AggregatorId::new(1), AggregatorId::new(2));
        tag.connect(AggregatorId::new(2), AggregatorId::new(3));
        tag
    }

    #[test]
    fn routes_follow_tag() {
        let tag = tag_two_nodes();
        let mut table = RoutingTable::new(NodeId::new(0));
        table.apply_tag(&tag);
        assert_eq!(
            table
                .next_hop(AggregatorId::new(1), AggregatorId::new(2))
                .unwrap(),
            NextHop::Local(AggregatorId::new(2))
        );
        assert_eq!(
            table
                .next_hop(AggregatorId::new(2), AggregatorId::new(3))
                .unwrap(),
            NextHop::Remote {
                aggregator: AggregatorId::new(3),
                node: NodeId::new(1)
            }
        );
        assert!(table
            .next_hop(AggregatorId::new(1), AggregatorId::new(9))
            .is_err());
        assert_eq!(table.node(), NodeId::new(0));
        assert!(table.local_routes() >= 2);
        assert_eq!(table.inter_node_routes(), 1);
    }

    #[test]
    fn reapplying_tag_replaces_routes() {
        let tag = tag_two_nodes();
        let mut table = RoutingTable::new(NodeId::new(0));
        table.apply_tag(&tag);
        let before = table.local_routes();
        // A new, smaller hierarchy.
        let mut tag2 = TopologyAbstractionGraph::new();
        tag2.add_role(Role {
            aggregator: AggregatorId::new(7),
            role: AggregatorRole::Top,
            node: NodeId::new(0),
            group: "node-0".to_string(),
        });
        table.apply_tag(&tag2);
        assert!(table.local_routes() < before);
        assert_eq!(table.inter_node_routes(), 0);
        assert!(table
            .next_hop(AggregatorId::new(1), AggregatorId::new(2))
            .is_err());
    }

    #[test]
    fn skmsg_hook_sees_local_routes() {
        let tag = tag_two_nodes();
        let mut table = RoutingTable::new(NodeId::new(0));
        table.apply_tag(&tag);
        let hook = table.skmsg_hook();
        assert!(hook.sockmap().is_local(AggregatorId::new(2)));
    }
}
