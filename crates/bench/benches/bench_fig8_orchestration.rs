//! Fig. 8: the orchestration ablation sweep (ACT / CPU / aggregators / nodes).
use criterion::{criterion_group, criterion_main, Criterion};
use lifl_experiments::fig8;

fn bench(c: &mut Criterion) {
    let result = fig8::run();
    println!("{}", fig8::format(&result));
    let mut group = c.benchmark_group("fig8_orchestration");
    group.sample_size(10);
    group.bench_function("full_sweep", |b| b.iter(fig8::run));
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
