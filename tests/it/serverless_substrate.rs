//! Integration of the serverless substrate's finer-grained mechanics with the
//! FL workload: the KPA control loop driving pod reconciliation on an FL
//! arrival trace, cascading cold starts versus LIFL's planned hierarchy, the
//! gateway's vertical scaling under the paper's two workload setups, and
//! heterogeneous-fleet placement feeding the hierarchy planner.

use lifl_core::fleet::NodeFleet;
use lifl_core::gateway_scaler::{GatewayScaler, GatewayScalerConfig};
use lifl_core::hierarchy::HierarchyPlan;
use lifl_core::placement::PlacementEngine;
use lifl_dataplane::CostModel;
use lifl_serverless::chain::{ChainScaling, FunctionChain};
use lifl_serverless::kpa::{KpaAutoscaler, KpaConfig};
use lifl_serverless::revision::Revision;
use lifl_types::{ModelKind, NodeConfig, PlacementPolicy, SimTime, SystemKind};

#[test]
fn kpa_plus_revision_track_a_bursty_fl_round() {
    // Arrival burst typical of a synchronous round with hibernating clients
    // (Fig. 10(a)): nothing, then a spike of concurrent updates, then nothing.
    let mut kpa = KpaAutoscaler::new(KpaConfig::default());
    let mut revision = Revision::new(
        "aggregator-rev-1",
        CostModel::paper_calibrated().startup(SystemKind::Serverless),
    );
    let mut peak_ready = 0u32;
    for second in 0..600u64 {
        let now = SimTime::from_secs(second as f64);
        let concurrency = if (120..240).contains(&second) {
            12.0
        } else {
            0.0
        };
        kpa.observe(now, concurrency);
        if second % 10 == 0 {
            let ready = revision.ready_pods(now);
            let decision = kpa.evaluate(now, ready);
            revision.reconcile(now, decision.desired_replicas);
            peak_ready = peak_ready.max(revision.ready_pods(now));
        }
    }
    // The burst forced a scale-up...
    assert!(
        peak_ready >= 4,
        "burst should create several pods, saw {peak_ready}"
    );
    assert!(revision.stats().pods_created >= 4);
    // ...and the idle tail scaled the revision back down (eventually to zero).
    let end = SimTime::from_secs(600.0);
    assert!(
        revision.ready_pods(end) <= 1,
        "idle tail should scale back down"
    );
    // Every created pod paid a cold start worth of CPU.
    assert!(revision.stats().startup_cpu.as_secs() > 0.0);
}

#[test]
fn planned_hierarchy_avoids_the_cascading_cold_start_of_reactive_chains() {
    let startup_sl = CostModel::paper_calibrated().startup(SystemKind::Serverless);
    let startup_lifl = CostModel::paper_calibrated().startup(SystemKind::Lifl);
    // The serverless baseline scales its leaf->middle->top chain reactively.
    let mut reactive = FunctionChain::aggregation_chain(SystemKind::Serverless, 3, startup_sl);
    let baseline = reactive.scale_for_traffic(SimTime::ZERO, ChainScaling::Reactive);
    // LIFL plans the hierarchy ahead of the arrivals and uses its lightweight runtime.
    let mut planned = FunctionChain::aggregation_chain(SystemKind::Lifl, 3, startup_lifl);
    let lifl = planned.scale_for_traffic(SimTime::ZERO, ChainScaling::PrePlanned);
    assert!(
        lifl.chain_ready_at.as_secs() * 2.0 < baseline.chain_ready_at.as_secs(),
        "planned LIFL chain ({:.1}s) should be well under half the reactive baseline ({:.1}s)",
        lifl.chain_ready_at.as_secs(),
        baseline.chain_ready_at.as_secs()
    );
    assert_eq!(baseline.cold_starts(), 3);
}

#[test]
fn gateway_vertical_scaling_follows_the_papers_two_workloads() {
    let mut scaler = GatewayScaler::new(GatewayScalerConfig::default()).unwrap();
    // ResNet-18 setup: 120 active mobile clients, bursty but small updates.
    let r18 = scaler.evaluate(SimTime::ZERO, ModelKind::ResNet18, 52.0);
    assert_eq!(
        r18.cores, 1,
        "44 MB updates at ~52/min fit one gateway core"
    );
    assert!(!r18.saturated);
    // ResNet-152 setup at high rate: 232 MB updates need more gateway cores.
    let r152 = scaler.evaluate(SimTime::from_secs(60.0), ModelKind::ResNet152, 120.0);
    assert!(r152.cores > r18.cores);
    assert!(
        !r152.saturated,
        "vertical scaling must keep the gateway off the critical path"
    );
}

#[test]
fn heterogeneous_fleet_placement_feeds_the_hierarchy_planner() {
    // A fleet with one big and two small nodes.
    let fleet = NodeFleet::heterogeneous(vec![
        NodeConfig {
            max_service_capacity: 30,
            ..NodeConfig::default()
        },
        NodeConfig {
            max_service_capacity: 10,
            cores: 16,
            ..NodeConfig::default()
        },
        NodeConfig {
            max_service_capacity: 10,
            cores: 16,
            ..NodeConfig::default()
        },
    ])
    .unwrap();
    assert!(!fleet.is_homogeneous());
    let engine = PlacementEngine::new(PlacementPolicy::BestFit);
    let mut capacities = fleet.capacities();
    let outcome = engine.place_batch(40, &mut capacities);
    assert_eq!(outcome.overflow, 0);
    // Per-node pending counts feed the hierarchy planner.
    let pending: Vec<(lifl_types::NodeId, u32)> =
        capacities.iter().map(|c| (c.node, c.assigned)).collect();
    let plan = HierarchyPlan::plan(&pending, 2);
    assert_eq!(plan.total_updates(), 40);
    // No node was planned beyond its capacity.
    for node in &plan.nodes {
        let mc = fleet.node(node.node).unwrap().max_service_capacity;
        assert!(
            node.pending_updates <= mc,
            "{} > MC {}",
            node.pending_updates,
            mc
        );
    }
    // The top aggregator sits on the most-loaded (big) node, minimising
    // cross-node transfers of intermediates.
    assert_eq!(plan.top_node, Some(lifl_types::NodeId::new(0)));
}
