# Local invocations mirroring CI (.github/workflows/ci.yml) exactly —
# enforced by lifl-lint rule R7 (`just lint-lifl`), which diffs the `ci`
# recipe's command list against the workflow's steps. Requires `just`
# (https://github.com/casey/just); every recipe body is a plain shell
# command, so copy-paste works without it too.

# Run the full CI gate locally.
default: ci

# Everything CI runs, in CI order.
ci: lint-lifl lint doc build test alloc faults test-scalar scale bench-check bench-baseline-check bench-ingest-check smoke

# Repo invariants (unsafe containment, SAFETY comments, kernel parity,
# panic freedom, fold determinism, no legacy runtime, justfile↔CI sync) as
# machine-checked rules R1–R7. `--list-rules` shows the catalog.
lint-lifl:
    cargo run --release -p lifl-lint

# Formatting + clippy, denying warnings (CI `lint` job).
lint:
    cargo fmt --all --check
    cargo clippy --workspace --all-targets -- -D warnings
    cargo clippy -p lifl-types -p lifl-shmem -p lifl-fl -p lifl-core -- -D clippy::redundant_clone

# Rustdoc gate: no broken links / bad doc syntax anywhere; the public
# `session` module additionally denies missing docs.
doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

# Tier-1 release build.
build:
    cargo build --release

# Tier-1 test suite.
test:
    cargo test -q

# The allocation tier in its own named step (a counting global allocator in
# its own process), so allocation regressions fail with a readable name.
alloc:
    cargo test -p lifl-integration --test alloc

# The fault tier in its own named step: node kills at every round phase,
# corruption injection and robust-aggregation divergence envelopes, so
# resilience regressions fail with a readable name.
faults:
    cargo test -p lifl-integration --test faults

# The integration and fault tiers again with the SIMD kernels forced onto
# their scalar reference arm (LIFL_FORCE_SCALAR), so the fallback path keeps
# full end-to-end coverage on every CI run.
test-scalar:
    LIFL_FORCE_SCALAR=1 cargo test -p lifl-integration --test it
    LIFL_FORCE_SCALAR=1 cargo test -p lifl-integration --test faults

# The scale tier at full size: the 1M-client streaming round under the
# live-byte high-water allocator (the default `cargo test` run only covers
# the 10k-client smoke), proving flat memory and KPA fleet growth.
scale:
    LIFL_SCALE_FULL=1 cargo test -p lifl-integration --test scale

# Ensure every criterion bench target still compiles.
bench-check:
    cargo bench --no-run

# Actually run the benchmark suite (slow).
bench:
    cargo bench

# Regenerate the committed aggregation-path baseline (BENCH_aggregation.json).
bench-baseline:
    cargo run --release -p lifl-bench --bin bench_baseline

# CI gate: the baseline runner works in --quick mode and the committed
# baseline parses with the current schema (fails if missing or stale).
bench-baseline-check:
    cargo run --release -p lifl-bench --bin bench_baseline -- --quick --out target/bench_quick.json
    cargo run --release -p lifl-bench --bin bench_baseline -- --check BENCH_aggregation.json

# Regenerate the committed streaming-ingress baseline (BENCH_ingest.json).
bench-ingest:
    cargo run --release -p lifl-bench --bin bench_ingest

# CI gate: the ingest runner works in --quick mode and the committed
# ingress baseline parses with the current schema (fails if missing or stale).
bench-ingest-check:
    cargo run --release -p lifl-bench --bin bench_ingest -- --quick --out target/bench_ingest_quick.json
    cargo run --release -p lifl-bench --bin bench_ingest -- --check BENCH_ingest.json

# CI smoke steps: the quickstart and cluster-federation examples run end to
# end (the latter asserts cluster/session bit-exactness inline).
smoke:
    cargo run --release -p lifl-examples --example quickstart
    cargo run --release -p lifl-examples --example cluster_federation

# Run the multi-node cluster federation demo (sessions composed
# gateway-to-gateway over Update::RemoteBytes, bit-exactness asserted inline).
cluster-demo:
    cargo run --release -p lifl-examples --example cluster_federation

# Run the codec ablation (bytes-on-wire x time-to-accuracy sweep).
fig-codec:
    cargo run --release -p lifl-experiments --bin fig_codec

# Apply formatting in place.
fmt:
    cargo fmt --all
