//! FedAvg aggregation (§2.1).
//!
//! The aggregation function is `w_i = Σ_k w_i^k c_i^k / T_i` with
//! `T_i = Σ_k c_i^k`, where `c_i^k` is the number of data samples at client k.
//! [`CumulativeFedAvg`] maintains the running weighted sum so updates can be
//! folded in one at a time — precisely the property that makes *eager*
//! aggregation possible (Fig. 1, §5.4), and that lets hierarchical aggregation
//! produce the same result as flat aggregation.

use crate::codec::{EncodedUpdate, EncodedView};
use crate::model::DenseModel;
use crate::update::Update;
use lifl_types::{ClientId, LiflError, Result};
use serde::{Deserialize, Serialize};

/// One model update travelling through the aggregation hierarchy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelUpdate {
    /// The producing client, if this is a raw (leaf-level) update.
    pub client: Option<ClientId>,
    /// Model parameters (for a raw update) or the weighted average so far
    /// (for an intermediate update).
    pub model: DenseModel,
    /// Auxiliary information `A_i^k`: the number of samples this update
    /// represents (the sum of sample counts for an intermediate update).
    pub samples: u64,
}

impl ModelUpdate {
    /// A raw update from one client trained on `samples` examples.
    pub fn from_client(client: ClientId, model: DenseModel, samples: u64) -> Self {
        ModelUpdate {
            client: Some(client),
            model,
            samples,
        }
    }

    /// An intermediate update produced by an aggregator.
    pub fn intermediate(model: DenseModel, samples: u64) -> Self {
        ModelUpdate {
            client: None,
            model,
            samples,
        }
    }

    /// Serialized size in bytes.
    pub fn byte_size(&self) -> u64 {
        self.model.byte_size()
    }
}

/// A running, sample-weighted FedAvg accumulator.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CumulativeFedAvg {
    pub(crate) weighted_sum: DenseModel,
    pub(crate) total_samples: u64,
    pub(crate) updates_folded: u64,
}

impl CumulativeFedAvg {
    /// Creates an empty accumulator for models of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        CumulativeFedAvg {
            weighted_sum: DenseModel::zeros(dim),
            total_samples: 0,
            updates_folded: 0,
        }
    }

    /// Folds one update into the accumulator (eager aggregation step).
    ///
    /// # Errors
    /// Returns [`LiflError::DimensionMismatch`] on a dimension mismatch and
    /// [`LiflError::InvalidAggregationGoal`] for an update carrying zero samples.
    pub fn fold(&mut self, update: &ModelUpdate) -> Result<()> {
        if update.samples == 0 {
            return Err(LiflError::InvalidAggregationGoal(0));
        }
        if self.weighted_sum.is_empty() {
            self.weighted_sum = DenseModel::zeros(update.model.dim());
        }
        if self.weighted_sum.dim() != update.model.dim() {
            return Err(LiflError::DimensionMismatch {
                expected: self.weighted_sum.dim(),
                actual: update.model.dim(),
            });
        }
        self.weighted_sum
            .axpy(update.samples as f32, &update.model)?;
        self.total_samples += update.samples;
        self.updates_folded += 1;
        Ok(())
    }

    /// Folds one *encoded* update in a single fused dequantize-and-axpy pass
    /// over the wire payload — no intermediate `DenseModel` is materialised.
    /// [`EncodedView::fold_range_into`] routes each codec through the
    /// runtime-dispatched SIMD kernels in [`crate::kernels`]; `TopK` folds
    /// only its nonzeros.
    ///
    /// # Errors
    /// Same conditions as [`CumulativeFedAvg::fold`].
    pub fn fold_encoded(&mut self, update: &EncodedUpdate, samples: u64) -> Result<()> {
        self.fold_encoded_view(&update.view(), samples)
    }

    /// Zero-copy variant of [`CumulativeFedAvg::fold_encoded`] operating on a
    /// borrowed wire payload (e.g. straight out of the shared-memory store).
    ///
    /// # Errors
    /// Same conditions as [`CumulativeFedAvg::fold`].
    pub fn fold_encoded_view(&mut self, view: &EncodedView<'_>, samples: u64) -> Result<()> {
        if samples == 0 {
            return Err(LiflError::InvalidAggregationGoal(0));
        }
        if self.weighted_sum.is_empty() {
            self.weighted_sum = DenseModel::zeros(view.dim());
        }
        view.fold_into(samples as f32, self.weighted_sum.as_mut_slice())?;
        self.total_samples += samples;
        self.updates_folded += 1;
        Ok(())
    }

    /// Folds one update in whatever representation its [`Update`] envelope
    /// carries — the single polymorphic fold behind the FL drivers and the
    /// `lifl-core` session: dense updates fold exactly like
    /// [`CumulativeFedAvg::fold`], encoded ones fuse dequantize-and-axpy, and
    /// remote wire bytes are parsed (or wrapped) in place with no copy.
    ///
    /// # Errors
    /// Same conditions as [`CumulativeFedAvg::fold`], plus codec parse
    /// failures for malformed remote bytes.
    pub fn fold_update(&mut self, update: &Update) -> Result<()> {
        match update {
            Update::Dense(dense) => self.fold(dense),
            Update::Encoded {
                update, samples, ..
            } => self.fold_encoded(update, *samples),
            Update::RemoteBytes {
                wire,
                weight,
                encoded,
            } => {
                if *encoded {
                    self.fold_encoded_view(&EncodedView::parse(wire)?, *weight)
                } else {
                    self.fold_dense_bytes(wire, *weight)
                }
            }
        }
    }

    /// Folds a headerless dense little-endian `f32` payload (the pre-codec
    /// shared-memory representation) without materialising a `DenseModel`;
    /// bit-exact with decoding the payload and calling
    /// [`CumulativeFedAvg::fold`].
    ///
    /// # Errors
    /// Same conditions as [`CumulativeFedAvg::fold`].
    pub fn fold_dense_bytes(&mut self, payload: &[u8], samples: u64) -> Result<()> {
        self.fold_encoded_view(&EncodedView::identity_over(payload), samples)
    }

    /// Number of updates folded so far.
    pub fn updates_folded(&self) -> u64 {
        self.updates_folded
    }

    /// Total samples represented by the folded updates.
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// Whether at least `goal` updates have been folded (the aggregation goal n, §2.1).
    pub fn goal_reached(&self, goal: u64) -> bool {
        self.updates_folded >= goal
    }

    /// Produces the aggregated model as an intermediate update, leaving the
    /// accumulator empty for reuse.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidAggregationGoal`] if nothing has been folded.
    pub fn finalize(&mut self) -> Result<ModelUpdate> {
        if self.updates_folded == 0 || self.total_samples == 0 {
            return Err(LiflError::InvalidAggregationGoal(self.updates_folded));
        }
        let mut model = std::mem::take(&mut self.weighted_sum);
        model.scale(1.0 / self.total_samples as f32);
        let samples = self.total_samples;
        self.total_samples = 0;
        self.updates_folded = 0;
        Ok(ModelUpdate::intermediate(model, samples))
    }

    /// Allocation-free [`CumulativeFedAvg::finalize`]: writes the aggregated
    /// model into `out` (resizing it only if the dimension changed), zeroes
    /// the accumulator *in place* so the next round reuses its allocation,
    /// and returns the total sample count.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidAggregationGoal`] if nothing has been folded.
    pub fn drain_into(&mut self, out: &mut DenseModel) -> Result<u64> {
        if self.updates_folded == 0 || self.total_samples == 0 {
            return Err(LiflError::InvalidAggregationGoal(self.updates_folded));
        }
        let inv = 1.0 / self.total_samples as f32;
        out.copy_from_slice(self.weighted_sum.as_slice());
        out.scale(inv);
        self.weighted_sum.as_mut_slice().fill(0.0);
        let samples = self.total_samples;
        self.total_samples = 0;
        self.updates_folded = 0;
        Ok(samples)
    }
}

/// Aggregates a batch of updates in one shot (lazy aggregation / reference result).
///
/// # Errors
/// Propagates the errors of [`CumulativeFedAvg::fold`] and
/// [`CumulativeFedAvg::finalize`].
pub fn fedavg(updates: &[ModelUpdate]) -> Result<ModelUpdate> {
    let dim = updates.first().map(|u| u.model.dim()).unwrap_or(0);
    let mut acc = CumulativeFedAvg::new(dim);
    for update in updates {
        acc.fold(update)?;
    }
    acc.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update(client: u64, values: Vec<f32>, samples: u64) -> ModelUpdate {
        ModelUpdate::from_client(ClientId::new(client), DenseModel::from_vec(values), samples)
    }

    #[test]
    fn weighted_average_matches_hand_computation() {
        let updates = vec![update(1, vec![1.0, 0.0], 10), update(2, vec![0.0, 1.0], 30)];
        let agg = fedavg(&updates).unwrap();
        assert!((agg.model.as_slice()[0] - 0.25).abs() < 1e-6);
        assert!((agg.model.as_slice()[1] - 0.75).abs() < 1e-6);
        assert_eq!(agg.samples, 40);
        assert!(agg.client.is_none());
    }

    #[test]
    fn hierarchical_equals_flat() {
        // Aggregate {a,b} and {c,d} at two leaves, then the two intermediates
        // at the top; compare against flat aggregation of all four.
        let a = update(1, vec![1.0, 2.0], 5);
        let b = update(2, vec![3.0, 4.0], 15);
        let c = update(3, vec![5.0, 6.0], 10);
        let d = update(4, vec![7.0, 8.0], 20);
        let leaf1 = fedavg(&[a.clone(), b.clone()]).unwrap();
        let leaf2 = fedavg(&[c.clone(), d.clone()]).unwrap();
        let top = fedavg(&[leaf1, leaf2]).unwrap();
        let flat = fedavg(&[a, b, c, d]).unwrap();
        for (x, y) in top.model.as_slice().iter().zip(flat.model.as_slice()) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
        assert_eq!(top.samples, flat.samples);
    }

    #[test]
    fn eager_folding_matches_batch() {
        let updates: Vec<ModelUpdate> = (1..=6)
            .map(|i| update(i, vec![i as f32, (2 * i) as f32], i * 3))
            .collect();
        let batch = fedavg(&updates).unwrap();
        let mut acc = CumulativeFedAvg::new(2);
        for u in &updates {
            acc.fold(u).unwrap();
        }
        assert!(acc.goal_reached(6));
        assert!(!acc.goal_reached(7));
        let eager = acc.finalize().unwrap();
        for (x, y) in eager.model.as_slice().iter().zip(batch.model.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn finalize_resets_accumulator() {
        let mut acc = CumulativeFedAvg::new(1);
        acc.fold(&update(1, vec![2.0], 4)).unwrap();
        let first = acc.finalize().unwrap();
        assert_eq!(first.samples, 4);
        assert_eq!(acc.updates_folded(), 0);
        assert_eq!(acc.total_samples(), 0);
        assert!(acc.finalize().is_err());
    }

    #[test]
    fn errors_on_bad_input() {
        let mut acc = CumulativeFedAvg::new(2);
        assert!(acc.fold(&update(1, vec![1.0, 2.0], 0)).is_err());
        acc.fold(&update(1, vec![1.0, 2.0], 1)).unwrap();
        assert!(acc.fold(&update(2, vec![1.0], 1)).is_err());
        assert!(fedavg(&[]).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arbitrary_updates() -> impl Strategy<Value = Vec<ModelUpdate>> {
        (2usize..12, 1usize..8).prop_flat_map(|(n, dim)| {
            proptest::collection::vec(
                (proptest::collection::vec(-10.0f32..10.0, dim), 1u64..50),
                n..=n,
            )
            .prop_map(|items| {
                items
                    .into_iter()
                    .enumerate()
                    .map(|(i, (values, samples))| {
                        ModelUpdate::from_client(
                            ClientId::new(i as u64),
                            DenseModel::from_vec(values),
                            samples,
                        )
                    })
                    .collect()
            })
        })
    }

    proptest! {
        #[test]
        fn fedavg_is_within_input_bounds(updates in arbitrary_updates()) {
            let result = fedavg(&updates).unwrap();
            for d in 0..result.model.dim() {
                let min = updates.iter().map(|u| u.model.as_slice()[d]).fold(f32::INFINITY, f32::min);
                let max = updates.iter().map(|u| u.model.as_slice()[d]).fold(f32::NEG_INFINITY, f32::max);
                let v = result.model.as_slice()[d];
                prop_assert!(v >= min - 1e-3 && v <= max + 1e-3, "dim {}: {} not in [{}, {}]", d, v, min, max);
            }
        }

        #[test]
        fn fedavg_is_permutation_invariant(updates in arbitrary_updates()) {
            let forward = fedavg(&updates).unwrap();
            let mut reversed = updates.clone();
            reversed.reverse();
            let backward = fedavg(&reversed).unwrap();
            prop_assert_eq!(forward.samples, backward.samples);
            for (a, b) in forward.model.as_slice().iter().zip(backward.model.as_slice()) {
                prop_assert!((a - b).abs() < 1e-3);
            }
        }

        #[test]
        fn hierarchical_split_matches_flat(updates in arbitrary_updates(), split in 1usize..11) {
            let split = split.min(updates.len() - 1).max(1);
            let flat = fedavg(&updates).unwrap();
            let left = fedavg(&updates[..split]).unwrap();
            let right = fedavg(&updates[split..]).unwrap();
            let top = fedavg(&[left, right]).unwrap();
            prop_assert_eq!(flat.samples, top.samples);
            for (a, b) in flat.model.as_slice().iter().zip(top.model.as_slice()) {
                prop_assert!((a - b).abs() < 1e-2, "{} vs {}", a, b);
            }
        }
    }
}
