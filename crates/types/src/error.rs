//! The common error type for the LIFL reproduction.

use crate::ids::{AggregatorId, ClientId, NodeId, ObjectKey};
use std::fmt;

/// Convenient result alias used across the workspace.
pub type Result<T> = std::result::Result<T, LiflError>;

/// Errors produced by the LIFL platform and its substrates.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LiflError {
    /// A shared-memory object key was not found in the object store.
    ObjectNotFound(ObjectKey),
    /// The shared-memory store does not have room for an allocation of the given size.
    OutOfSharedMemory {
        /// Requested allocation size in bytes.
        requested: u64,
        /// Bytes currently available.
        available: u64,
    },
    /// A route lookup failed for the given aggregator.
    RouteNotFound(AggregatorId),
    /// The aggregator is not registered on the node.
    UnknownAggregator(AggregatorId),
    /// The worker node is not part of the cluster.
    UnknownNode(NodeId),
    /// The client is not part of the population.
    UnknownClient(ClientId),
    /// Placement failed because the cluster has insufficient residual capacity.
    InsufficientCapacity {
        /// Updates that needed to be placed.
        demanded: u64,
        /// Total residual capacity available.
        capacity: u64,
    },
    /// An operation was attempted against a terminated instance.
    InstanceTerminated,
    /// Configuration was invalid.
    InvalidConfig(String),
    /// Model updates had mismatched dimensions during aggregation.
    DimensionMismatch {
        /// Expected vector length.
        expected: usize,
        /// Length actually provided.
        actual: usize,
    },
    /// The aggregation goal was invalid (for example zero).
    InvalidAggregationGoal(u64),
    /// An encoded model update could not be parsed or produced.
    Codec(String),
    /// A simulation invariant was violated.
    Simulation(String),
    /// A worker node died mid-round; the updates it was holding are lost and
    /// must be re-sent before the round can be driven again.
    NodeFailure {
        /// Index of the failed node within the cluster.
        node: u64,
        /// Client updates that were pending on the node when it died.
        lost_updates: u64,
    },
    /// The node hosting the top aggregator died; the whole in-progress round
    /// is lost and the global model must restart from the latest checkpoint.
    AggregatorFailure {
        /// Index of the failed node within the cluster.
        node: u64,
    },
}

impl fmt::Display for LiflError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiflError::ObjectNotFound(key) => write!(f, "shared-memory object {key} not found"),
            LiflError::OutOfSharedMemory {
                requested,
                available,
            } => write!(
                f,
                "out of shared memory: requested {requested} bytes, {available} available"
            ),
            LiflError::RouteNotFound(agg) => write!(f, "no route registered for {agg}"),
            LiflError::UnknownAggregator(agg) => write!(f, "unknown aggregator {agg}"),
            LiflError::UnknownNode(node) => write!(f, "unknown worker node {node}"),
            LiflError::UnknownClient(client) => write!(f, "unknown client {client}"),
            LiflError::InsufficientCapacity { demanded, capacity } => write!(
                f,
                "insufficient cluster capacity: {demanded} updates demanded, {capacity} available"
            ),
            LiflError::InstanceTerminated => write!(f, "operation on a terminated instance"),
            LiflError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            LiflError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "model dimension mismatch: expected {expected}, got {actual}"
                )
            }
            LiflError::InvalidAggregationGoal(goal) => {
                write!(f, "invalid aggregation goal {goal}")
            }
            LiflError::Codec(msg) => write!(f, "codec error: {msg}"),
            LiflError::Simulation(msg) => write!(f, "simulation error: {msg}"),
            LiflError::NodeFailure { node, lost_updates } => write!(
                f,
                "node {node} failed mid-round, {lost_updates} pending updates lost"
            ),
            LiflError::AggregatorFailure { node } => {
                write!(f, "top aggregator host node {node} failed, round lost")
            }
        }
    }
}

impl std::error::Error for LiflError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_period() {
        let err = LiflError::ObjectNotFound(ObjectKey::from_words(1, 2));
        let text = err.to_string();
        assert!(text.starts_with("shared-memory object"));
        assert!(!text.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LiflError>();
    }

    #[test]
    fn capacity_error_reports_numbers() {
        let err = LiflError::InsufficientCapacity {
            demanded: 120,
            capacity: 100,
        };
        assert!(err.to_string().contains("120"));
        assert!(err.to_string().contains("100"));
    }
}
