//! Stateless aggregator failure and recovery from checkpoints (§3, Appendix B):
//! commit a few global versions, checkpoint periodically, kill the aggregator
//! mid-round and show exactly what is recovered and what must be redone.
//!
//! Run with: `cargo run -p lifl-examples --example failure_recovery`

use lifl_core::recovery::RecoveryManager;
use lifl_fl::DenseModel;
use lifl_types::{SimDuration, SimTime};

fn main() {
    // Checkpoint every 2 committed versions; a replacement runtime takes 0.8 s
    // to start (LIFL's lightweight runtime rather than a full container).
    let mut manager =
        RecoveryManager::new(2, SimDuration::from_secs(0.8)).expect("valid configuration");

    for version in 1..=5u64 {
        let model = DenseModel::from_vec(vec![version as f32; 8]);
        let wrote = manager.commit_version(&model, SimTime::from_secs(version as f64 * 30.0));
        println!(
            "committed version {version}{}",
            if wrote {
                "  -> checkpointed to external storage"
            } else {
                ""
            }
        );
    }

    // A new round is in progress: three updates folded, then the aggregator dies.
    manager.record_fold();
    manager.record_fold();
    manager.record_fold();
    println!(
        "\naggregator crashes with {} in-progress updates...",
        manager.in_progress_updates()
    );
    let outcome = manager
        .fail_and_recover(SimTime::from_secs(170.0))
        .expect("recovery");

    println!(
        "recovered from checkpointed version {:?} (model[0] = {:?})",
        outcome.recovered_round.map(|r| r.index()),
        outcome.recovered_model.as_ref().map(|m| m.as_slice()[0])
    );
    println!(
        "lost {} committed-but-uncheckpointed version(s) and {} in-progress update(s)",
        outcome.lost_versions, outcome.lost_in_progress_updates
    );
    println!(
        "replacement runtime ready {:.1}s after the failure (at t = {:.1}s)",
        outcome.restart_delay.as_secs(),
        outcome.ready_at.as_secs()
    );
    println!(
        "checkpoint store holds {} checkpoint(s), {} bytes written in total",
        manager.store().len(),
        manager.store().bytes_written()
    );
}
