//! AVX2 implementations of the hot kernels.
//!
//! Every function here is bit-exact with its counterpart in
//! [`super::scalar`]. That property is engineered, not incidental:
//!
//! * only exactly-rounded IEEE-754 operations are used (multiply, add,
//!   subtract, floor, compare, min/max) — never FMA, which would contract
//!   the separate multiply and add the scalar arm performs;
//! * `_mm256_min_ps`/`_mm256_max_ps` return their **second** operand when
//!   either input is NaN, matching `f32::min`/`f32::max` with a NaN `self`,
//!   so the clamp `max(min(x, hi), lo)` agrees with the scalar
//!   `x.min(hi).max(lo)` for every input including NaN and infinity;
//! * `_mm256_cvtps_epi32` rounds to nearest-even while the scalar arm
//!   truncates with `as i32`, which agree because quantized levels are
//!   exactly integral by construction at the point of conversion;
//! * integer packs (`packs_epi32`/`packs_epi16`) saturate, which is the
//!   identity for levels already clamped into `[-127, 127]`.
//!
//! Each kernel handles the vector-width remainder by delegating the tail to
//! the scalar reference, so odd lengths take the same path in both arms.
//!
//! All functions are `unsafe` because they require AVX2; the dispatcher in
//! the parent module only calls them after `is_x86_feature_detected!`.

use core::arch::x86_64::*;

use super::scalar;

/// Builds the sign-magnitude nibble lookup table in a register: lane `i`
/// holds `scalar::NIBBLE_F32[i]` as an `i8`.
// SAFETY: `unsafe` solely for `target_feature(avx2)`; only reachable from
// kernels that the dispatcher gates behind `is_x86_feature_detected!`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn nibble_table() -> __m128i {
    _mm_setr_epi8(0, 1, 2, 3, 4, 5, 6, 7, 0, -1, -2, -3, -4, -5, -6, -7)
}

/// Expands 8 packed nibble bytes into 16 sign-extended `i8` level values in
/// element order (low nibble first), using an in-register shuffle instead of
/// the scalar 16-entry table lookup.
// SAFETY: `unsafe` solely for `target_feature(avx2)`; pure register
// arithmetic with no memory access, gated by the dispatcher's CPUID check.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn unpack_nibbles(bytes: __m128i) -> __m128i {
    let low_mask = _mm_set1_epi8(0x0F);
    let lo = _mm_and_si128(bytes, low_mask);
    let hi = _mm_and_si128(_mm_srli_epi16::<4>(bytes), low_mask);
    // Interleave to n0, n1, n2, ... n15, then map nibble -> signed level.
    _mm_shuffle_epi8(nibble_table(), _mm_unpacklo_epi8(lo, hi))
}

/// Safety: caller must have verified AVX2 support at runtime.
// SAFETY: `unsafe` solely for `target_feature(avx2)`; the dispatcher in
// `super` calls this only after `is_x86_feature_detected!("avx2")`, and all
// loads/stores stay inside the slice bounds checked by the loop condition.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn fold_dense_le(acc: &mut [f32], body: &[u8], weight: f32) {
    let n = acc.len();
    let w = _mm256_set1_ps(weight);
    let mut i = 0usize;
    while i + 8 <= n {
        let v = _mm256_loadu_ps(body.as_ptr().add(4 * i) as *const f32);
        let a = _mm256_loadu_ps(acc.as_ptr().add(i));
        _mm256_storeu_ps(
            acc.as_mut_ptr().add(i),
            _mm256_add_ps(a, _mm256_mul_ps(w, v)),
        );
        i += 8;
    }
    scalar::fold_dense_le(&mut acc[i..], &body[4 * i..], weight);
}

/// Safety: caller must have verified AVX2 support at runtime.
// SAFETY: `unsafe` solely for `target_feature(avx2)`; the dispatcher in
// `super` calls this only after `is_x86_feature_detected!("avx2")`, and all
// loads/stores stay inside the slice bounds checked by the loop condition.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn decode_dense_le(out: &mut [f32], body: &[u8]) {
    // Little-endian f32 payloads are a straight byte copy on x86.
    std::ptr::copy_nonoverlapping(body.as_ptr(), out.as_mut_ptr() as *mut u8, 4 * out.len());
}

/// Safety: caller must have verified AVX2 support at runtime.
// SAFETY: `unsafe` solely for `target_feature(avx2)`; the dispatcher in
// `super` calls this only after `is_x86_feature_detected!("avx2")`, and all
// loads/stores stay inside the slice bounds checked by the loop condition.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn fold_u8(acc: &mut [f32], levels: &[u8], k: f32) {
    let n = acc.len();
    let kv = _mm256_set1_ps(k);
    let mut i = 0usize;
    while i + 8 <= n {
        let b = _mm_loadl_epi64(levels.as_ptr().add(i) as *const __m128i);
        let v = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b));
        let a = _mm256_loadu_ps(acc.as_ptr().add(i));
        _mm256_storeu_ps(
            acc.as_mut_ptr().add(i),
            _mm256_add_ps(a, _mm256_mul_ps(v, kv)),
        );
        i += 8;
    }
    scalar::fold_u8(&mut acc[i..], &levels[i..], k);
}

/// Safety: caller must have verified AVX2 support at runtime.
// SAFETY: `unsafe` solely for `target_feature(avx2)`; the dispatcher in
// `super` calls this only after `is_x86_feature_detected!("avx2")`, and all
// loads/stores stay inside the slice bounds checked by the loop condition.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn decode_u8(out: &mut [f32], levels: &[u8], scale: f32) {
    let n = out.len();
    let sv = _mm256_set1_ps(scale);
    let mut i = 0usize;
    while i + 8 <= n {
        let b = _mm_loadl_epi64(levels.as_ptr().add(i) as *const __m128i);
        let v = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b));
        _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_mul_ps(v, sv));
        i += 8;
    }
    scalar::decode_u8(&mut out[i..], &levels[i..], scale);
}

/// Safety: caller must have verified AVX2 support at runtime. `acc` element
/// `j` must correspond to nibble `j` of `nibbles` (even alignment; the
/// dispatcher peels an odd start before calling).
// SAFETY: `unsafe` solely for `target_feature(avx2)`; the dispatcher checks
// AVX2 first, and the loop reads `nibbles[i/2..i/2+8]` / writes
// `acc[i..i+16]` only while `i + 16 <= acc.len()`, which the documented
// even-alignment contract keeps inside both slices.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn fold_u4_aligned(acc: &mut [f32], nibbles: &[u8], k: f32) {
    let n = acc.len();
    let kv = _mm256_set1_ps(k);
    let mut i = 0usize;
    while i + 16 <= n {
        let bytes = _mm_loadl_epi64(nibbles.as_ptr().add(i / 2) as *const __m128i);
        let levels = unpack_nibbles(bytes);
        let v0 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(levels));
        let v1 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_srli_si128::<8>(levels)));
        let a0 = _mm256_loadu_ps(acc.as_ptr().add(i));
        let a1 = _mm256_loadu_ps(acc.as_ptr().add(i + 8));
        _mm256_storeu_ps(
            acc.as_mut_ptr().add(i),
            _mm256_add_ps(a0, _mm256_mul_ps(v0, kv)),
        );
        _mm256_storeu_ps(
            acc.as_mut_ptr().add(i + 8),
            _mm256_add_ps(a1, _mm256_mul_ps(v1, kv)),
        );
        i += 16;
    }
    scalar::fold_u4_aligned(&mut acc[i..], &nibbles[i / 2..], k);
}

/// Safety: caller must have verified AVX2 support at runtime.
// SAFETY: `unsafe` solely for `target_feature(avx2)`; the dispatcher in
// `super` calls this only after `is_x86_feature_detected!("avx2")`, and all
// loads/stores stay inside the slice bounds checked by the loop condition.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn decode_u4(out: &mut [f32], nibbles: &[u8], scale: f32) {
    let n = out.len();
    let sv = _mm256_set1_ps(scale);
    let mut i = 0usize;
    while i + 16 <= n {
        let bytes = _mm_loadl_epi64(nibbles.as_ptr().add(i / 2) as *const __m128i);
        let levels = unpack_nibbles(bytes);
        let v0 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(levels));
        let v1 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_srli_si128::<8>(levels)));
        _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_mul_ps(v0, sv));
        _mm256_storeu_ps(out.as_mut_ptr().add(i + 8), _mm256_mul_ps(v1, sv));
        i += 16;
    }
    scalar::decode_u4(&mut out[i..], &nibbles[i / 2..], scale);
}

/// Safety: caller must have verified AVX2 support at runtime.
// SAFETY: `unsafe` solely for `target_feature(avx2)`; the dispatcher in
// `super` calls this only after `is_x86_feature_detected!("avx2")`, and all
// loads/stores stay inside the slice bounds checked by the loop condition.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn axpy(acc: &mut [f32], src: &[f32], w: f32) {
    let n = acc.len();
    let wv = _mm256_set1_ps(w);
    let mut i = 0usize;
    while i + 8 <= n {
        let a = _mm256_loadu_ps(acc.as_ptr().add(i));
        let s = _mm256_loadu_ps(src.as_ptr().add(i));
        _mm256_storeu_ps(
            acc.as_mut_ptr().add(i),
            _mm256_add_ps(a, _mm256_mul_ps(wv, s)),
        );
        i += 8;
    }
    scalar::axpy(&mut acc[i..], &src[i..], w);
}

/// Safety: caller must have verified AVX2 support at runtime, and every
/// source must be at least as long as `acc`.
// SAFETY: `unsafe` solely for `target_feature(avx2)`; the dispatcher checks
// AVX2 first and asserts every source covers `acc`, so the unaligned
// loads/stores at `i..i+8` stay in bounds for all slices.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn axpy4(acc: &mut [f32], srcs: [&[f32]; 4], w: [f32; 4]) {
    let n = acc.len();
    let wv: [__m256; 4] = [
        _mm256_set1_ps(w[0]),
        _mm256_set1_ps(w[1]),
        _mm256_set1_ps(w[2]),
        _mm256_set1_ps(w[3]),
    ];
    let mut i = 0usize;
    while i + 8 <= n {
        // The adds chain in source order so the result is bit-identical to
        // four sequential axpy passes (each lane is independent).
        let mut v = _mm256_loadu_ps(acc.as_ptr().add(i));
        for (src, wk) in srcs.iter().zip(wv) {
            v = _mm256_add_ps(v, _mm256_mul_ps(wk, _mm256_loadu_ps(src.as_ptr().add(i))));
        }
        _mm256_storeu_ps(acc.as_mut_ptr().add(i), v);
        i += 8;
    }
    let tails = [&srcs[0][i..], &srcs[1][i..], &srcs[2][i..], &srcs[3][i..]];
    scalar::axpy4(&mut acc[i..], tails, w);
}

/// Safety: caller must have verified AVX2 support at runtime, and every
/// source must be at least as long as `acc`.
// SAFETY: `unsafe` solely for `target_feature(avx2)`; the dispatcher checks
// AVX2 first and asserts every source covers `acc`, so the unaligned
// loads/stores at `i..i+8` stay in bounds for all slices.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn axpy8(acc: &mut [f32], srcs: [&[f32]; 8], w: [f32; 8]) {
    let n = acc.len();
    let mut wv = [_mm256_setzero_ps(); 8];
    for (slot, wk) in wv.iter_mut().zip(w) {
        *slot = _mm256_set1_ps(wk);
    }
    let mut i = 0usize;
    while i + 8 <= n {
        let mut v = _mm256_loadu_ps(acc.as_ptr().add(i));
        for (src, wk) in srcs.iter().zip(wv) {
            v = _mm256_add_ps(v, _mm256_mul_ps(wk, _mm256_loadu_ps(src.as_ptr().add(i))));
        }
        _mm256_storeu_ps(acc.as_mut_ptr().add(i), v);
        i += 8;
    }
    let tails = [
        &srcs[0][i..],
        &srcs[1][i..],
        &srcs[2][i..],
        &srcs[3][i..],
        &srcs[4][i..],
        &srcs[5][i..],
        &srcs[6][i..],
        &srcs[7][i..],
    ];
    scalar::axpy8(&mut acc[i..], tails, w);
}

/// Safety: caller must have verified AVX2 support at runtime.
// SAFETY: `unsafe` solely for `target_feature(avx2)`; the dispatcher in
// `super` calls this only after `is_x86_feature_detected!("avx2")`, and all
// loads/stores stay inside the slice bounds checked by the loop condition.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn max_abs_finite(params: &[f32]) -> f32 {
    let n = params.len();
    let abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFF_FFFF));
    let inf = _mm256_set1_ps(f32::INFINITY);
    let mut m = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 8 <= n {
        let a = _mm256_and_ps(_mm256_loadu_ps(params.as_ptr().add(i)), abs_mask);
        // NaN compares unordered, so non-finite lanes contribute 0.
        let finite = _mm256_cmp_ps::<_CMP_LT_OQ>(a, inf);
        m = _mm256_max_ps(m, _mm256_and_ps(a, finite));
        i += 8;
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), m);
    let best = lanes.iter().fold(0.0f32, |acc, v| acc.max(*v));
    // max over non-negative finite values is exact and order-independent,
    // so combining lane maxima with the scalar tail matches the reference.
    best.max(scalar::max_abs_finite(&params[i..]))
}

/// Vector counterpart of [`scalar::quantize_one`] for 8 lanes: same operation
/// sequence (multiply, floor, subtract, compare against the 24-bit random
/// fraction, add, min/max clamp, convert), with non-finite lanes zeroed by an
/// integer mask instead of a branch.
// SAFETY: `unsafe` solely for `target_feature(avx2)`; pure register
// arithmetic with no memory access, gated by the dispatcher's CPUID check.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn quantize8(v: __m256, inv: __m256, hi: __m256, lo: __m256, w: __m256i) -> __m256i {
    let abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFF_FFFF));
    let inf = _mm256_set1_ps(f32::INFINITY);
    let finite = _mm256_cmp_ps::<_CMP_LT_OQ>(_mm256_and_ps(v, abs_mask), inf);
    let q = _mm256_mul_ps(v, inv);
    let f = _mm256_floor_ps(q);
    let frac = _mm256_sub_ps(q, f);
    let r = _mm256_mul_ps(
        _mm256_cvtepi32_ps(_mm256_srli_epi32::<8>(w)),
        _mm256_set1_ps(1.0 / 16_777_216.0),
    );
    let up = _mm256_and_ps(_mm256_cmp_ps::<_CMP_LT_OQ>(r, frac), _mm256_set1_ps(1.0));
    // min/max return the second operand on NaN, matching f32::min/f32::max
    // with NaN `self`, so saturated/NaN lanes clamp exactly like the scalar.
    let level = _mm256_max_ps(_mm256_min_ps(_mm256_add_ps(f, up), hi), lo);
    // Levels are exactly integral here, so round-nearest conversion matches
    // the scalar truncating `as i32`.
    _mm256_and_si256(_mm256_cvtps_epi32(level), _mm256_castps_si256(finite))
}

/// Safety: caller must have verified AVX2 support at runtime; `rand` and
/// `out` must be at least as long as `params`.
// SAFETY: `unsafe` solely for `target_feature(avx2)`; the dispatcher checks
// AVX2 first and sizes `rand`/`out` to `params.len()`, so the vector loads
// and the 8-byte stores at `i` stay in bounds while `i + 8 <= n`.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn encode_u8(
    params: &[f32],
    inv: f32,
    levels: f32,
    rand: &[u32],
    out: &mut [u8],
) {
    let n = params.len();
    let invv = _mm256_set1_ps(inv);
    let hi = _mm256_set1_ps(levels);
    let lo = _mm256_set1_ps(-levels);
    let mut i = 0usize;
    while i + 8 <= n {
        let v = _mm256_loadu_ps(params.as_ptr().add(i));
        let w = _mm256_loadu_si256(rand.as_ptr().add(i) as *const __m256i);
        let li = quantize8(v, invv, hi, lo, w);
        // Saturating packs are the identity for levels in [-127, 127], and
        // the low byte of each i32 level is exactly the scalar `as u8`.
        let p16 = _mm_packs_epi32(
            _mm256_castsi256_si128(li),
            _mm256_extracti128_si256::<1>(li),
        );
        let p8 = _mm_packs_epi16(p16, p16);
        _mm_storel_epi64(out.as_mut_ptr().add(i) as *mut __m128i, p8);
        i += 8;
    }
    scalar::encode_u8(&params[i..], inv, levels, &rand[i..], &mut out[i..]);
}

/// Maps 8 signed levels in `[-7, 7]` to sign-magnitude nibbles:
/// `|level| | (sign << 3)`.
// SAFETY: `unsafe` solely for `target_feature(avx2)`; pure register
// arithmetic with no memory access, gated by the dispatcher's CPUID check.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn nibble8(levels: __m256i) -> __m256i {
    _mm256_or_si256(
        _mm256_abs_epi32(levels),
        _mm256_slli_epi32::<3>(_mm256_srli_epi32::<31>(levels)),
    )
}

/// Safety: caller must have verified AVX2 support at runtime; `rand` must be
/// at least as long as `params` and `out` at least `params.len()/2` rounded
/// up.
// SAFETY: `unsafe` solely for `target_feature(avx2)`; the dispatcher checks
// AVX2 first, `rand` covers `params` and `out` covers the packed nibble
// count, so reads at `i..i+16` and the 8-byte store at `i/2` stay in bounds
// while `i + 16 <= n`.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn encode_u4(
    params: &[f32],
    inv: f32,
    levels: f32,
    rand: &[u32],
    out: &mut [u8],
) {
    let n = params.len();
    let invv = _mm256_set1_ps(inv);
    let hi = _mm256_set1_ps(levels);
    let lo = _mm256_set1_ps(-levels);
    // As two i16 words: low word 1, high word 16 — madd then computes
    // n_even + (n_odd << 4) for each output byte.
    let pair_mul = _mm_set1_epi32(0x0010_0001);
    let mut i = 0usize;
    while i + 16 <= n {
        let va = _mm256_loadu_ps(params.as_ptr().add(i));
        let wa = _mm256_loadu_si256(rand.as_ptr().add(i) as *const __m256i);
        let vb = _mm256_loadu_ps(params.as_ptr().add(i + 8));
        let wb = _mm256_loadu_si256(rand.as_ptr().add(i + 8) as *const __m256i);
        let na = nibble8(quantize8(va, invv, hi, lo, wa));
        let nb = nibble8(quantize8(vb, invv, hi, lo, wb));
        let pa = _mm_packs_epi32(
            _mm256_castsi256_si128(na),
            _mm256_extracti128_si256::<1>(na),
        );
        let pb = _mm_packs_epi32(
            _mm256_castsi256_si128(nb),
            _mm256_extracti128_si256::<1>(nb),
        );
        let ba = _mm_madd_epi16(pa, pair_mul);
        let bb = _mm_madd_epi16(pb, pair_mul);
        let t8 = _mm_packus_epi16(_mm_packs_epi32(ba, bb), _mm_setzero_si128());
        _mm_storel_epi64(out.as_mut_ptr().add(i / 2) as *mut __m128i, t8);
        i += 16;
    }
    scalar::encode_u4(&params[i..], inv, levels, &rand[i..], &mut out[i / 2..]);
}
