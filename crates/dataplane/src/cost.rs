//! The consolidated cost model used by the cluster simulator.
//!
//! [`CostModel`] combines the per-component models into the quantities the
//! round drivers need: intra-node and inter-node transfer costs, aggregation
//! and evaluation compute, gateway processing and runtime start-up costs.
//! Calibration targets come from the paper (DESIGN.md §3.2).

use crate::pipeline::{DataPlaneKind, Pipeline, PipelineModels};
use lifl_types::{CodecKind, CpuCycles, ModelKind, SimDuration, SystemKind};
use serde::{Deserialize, Serialize};

/// Effective wire seconds per MiB for inter-node transfers on the 10 GbE testbed
/// (includes TCP pacing and congestion effects; calibrated to the ~4.2 s
/// ResNet-152 cross-node transfer of §6.1).
pub const WIRE_SECS_PER_MIB: f64 = 0.0065;

/// Bytes one update of `model` puts on the wire under `codec`: every transport
/// cost in the simulator is priced off this encoded size rather than the dense
/// parameter count.
pub fn update_wire_bytes(model: ModelKind, codec: CodecKind) -> u64 {
    codec.encoded_bytes(model.update_bytes())
}

/// The cost of moving one model update along some path.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TransferCost {
    /// End-to-end latency of the transfer.
    pub latency: SimDuration,
    /// CPU cycles consumed on the aggregation node(s).
    pub cpu: CpuCycles,
    /// Bytes buffered along the path.
    pub buffered_bytes: u64,
    /// Bytes that crossed a node boundary (0 for intra-node paths).
    pub inter_node_bytes: u64,
}

impl From<&Pipeline> for TransferCost {
    fn from(p: &Pipeline) -> Self {
        TransferCost {
            latency: p.latency(),
            cpu: p.cpu(),
            buffered_bytes: p.buffered_bytes(),
            inter_node_bytes: 0,
        }
    }
}

/// Start-up behaviour of an aggregator runtime on some platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StartupCost {
    /// Delay before a cold instance can begin processing.
    pub cold_start: SimDuration,
    /// CPU time consumed by the start-up itself.
    pub cold_start_cpu: SimDuration,
    /// Delay for re-activating a warm (kept-alive) instance.
    pub warm_start: SimDuration,
}

/// The full cost model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostModel {
    /// Component models used to build pipelines.
    pub models: PipelineModels,
}

impl CostModel {
    /// A cost model calibrated to the paper's testbed (§6.1).
    pub fn paper_calibrated() -> Self {
        CostModel {
            models: PipelineModels::default(),
        }
    }

    /// Cost of one intra-node aggregator-to-aggregator transfer on `plane`.
    pub fn intra_node_transfer(&self, plane: DataPlaneKind, bytes: u64) -> TransferCost {
        TransferCost::from(&plane.intra_node_pipeline(bytes, &self.models))
    }

    /// Cost of one inter-node aggregator-to-aggregator transfer.
    ///
    /// Calibrated to the paper's observation that moving a single ResNet-152
    /// update across nodes takes ~4.2 s on the 10 GbE testbed (§6.1). The
    /// sending gateway's TX path, the wire time and the receiving gateway's RX
    /// path all contribute.
    pub fn inter_node_transfer(&self, bytes: u64) -> TransferCost {
        let mib = bytes as f64 / (1024.0 * 1024.0);
        // Wire + kernel at ~10 Gb/s effective with protocol overheads.
        let wire = SimDuration::from_secs(mib * WIRE_SECS_PER_MIB);
        let tx = self.models.gateway.tx_latency(bytes);
        let rx = self.models.gateway.rx_latency(bytes);
        TransferCost {
            latency: wire + tx + rx,
            cpu: CpuCycles(
                self.models.gateway.tx_cpu(bytes).0 + self.models.gateway.rx_cpu(bytes).0,
            ),
            buffered_bytes: 2 * bytes,
            inter_node_bytes: bytes,
        }
    }

    /// Cost of ingesting one client update at a node (client → gateway → queue),
    /// for the given system. For LIFL this is the gateway RX path plus the
    /// in-place enqueue; for the baselines it is their Fig. 5 pipelines.
    pub fn client_ingest(&self, system: SystemKind, bytes: u64) -> TransferCost {
        use crate::pipeline::QueuingSetup;
        let setup = match system {
            SystemKind::Lifl | SystemKind::SlHierarchical => QueuingSetup::Lifl,
            SystemKind::Serverful | SystemKind::SfMono => QueuingSetup::SfMono,
            SystemKind::SfMicro => QueuingSetup::SfMicro,
            SystemKind::Serverless | SystemKind::SlBasic => QueuingSetup::SlBasic,
        };
        let pipeline = setup.queuing_pipeline(bytes, &self.models);
        let mut cost = TransferCost::from(&pipeline);
        // The update arrives from a remote client, so the wire time applies too.
        let mib = bytes as f64 / (1024.0 * 1024.0);
        cost.latency += SimDuration::from_secs(mib * WIRE_SECS_PER_MIB);
        cost.inter_node_bytes = bytes;
        cost
    }

    /// CPU time of one codec pass (encode *or* decode) over one update of
    /// `model`.
    ///
    /// Uniform quantization is a single linear scan (scale + round per
    /// element); top-k pays an extra selection factor. `Identity` is free —
    /// the payload already is its wire form, preserving the seed's cost model
    /// bit-for-bit.
    pub fn codec_compute(&self, model: ModelKind, codec: CodecKind) -> SimDuration {
        let params = model.parameters() as f64;
        let secs_per_param = match codec {
            CodecKind::Identity => 0.0,
            CodecKind::Uniform8 | CodecKind::Uniform4 => 1.5e-9,
            CodecKind::TopK { .. } => 4.0e-9,
        };
        SimDuration::from_secs(params * secs_per_param)
    }

    /// CPU time of one *fused* decode-fold pass over one update of `model`:
    /// the dequantize is folded into the aggregation scan
    /// (`EncodedView::fold_range_into` in `lifl-fl`), so instead of paying
    /// [`CostModel::codec_compute`] *plus* [`CostModel::aggregation_compute`]
    /// the pass costs a *fraction* of the dense fold — the quantized payload
    /// streams fewer bytes per element than dense `f32`, and `TopK` touches
    /// only its kept coordinates.
    ///
    /// `Identity` returns exactly [`CostModel::aggregation_compute`],
    /// preserving the seed cost model bit-for-bit.
    pub fn fused_fold_compute(&self, model: ModelKind, codec: CodecKind) -> SimDuration {
        let fold = self.aggregation_compute(model);
        match codec {
            CodecKind::Identity => fold,
            // One u8 (or packed nibble) stream + the f32 accumulator instead
            // of two f32 streams: ~12 (10.5) bytes of traffic per element
            // against 12 dense.
            CodecKind::Uniform8 => fold.scaled(0.80),
            CodecKind::Uniform4 => fold.scaled(0.72),
            // Folds only the kept coordinates; the scatter costs ~2x a
            // streaming element, and the whole-payload scan floors the cost.
            CodecKind::TopK { permille } => {
                let kept = f64::from(permille.clamp(1, 1000)) / 1000.0;
                fold.scaled((2.0 * kept).clamp(0.05, 1.0))
            }
        }
    }

    /// Cost of one cluster hop: shipping a node session's exported
    /// intermediate to the node hosting the global top aggregator. When the
    /// exporting node hosts the top itself (`same_node`), the intermediate
    /// crosses the local data plane (`plane`); otherwise it crosses the
    /// network via [`CostModel::inter_node_transfer`]. This is the pricing
    /// rule `lifl_core`'s in-process `Cluster` applies to every
    /// gateway-to-gateway hop, mirroring the simulated platform's top-stage
    /// accounting.
    pub fn hop_transfer(&self, same_node: bool, plane: DataPlaneKind, bytes: u64) -> TransferCost {
        if same_node {
            self.intra_node_transfer(plane, bytes)
        } else {
            self.inter_node_transfer(bytes)
        }
    }

    /// Cost of one intra-node transfer of one `model` update under `codec`.
    pub fn intra_node_transfer_encoded(
        &self,
        plane: DataPlaneKind,
        model: ModelKind,
        codec: CodecKind,
    ) -> TransferCost {
        self.intra_node_transfer(plane, update_wire_bytes(model, codec))
    }

    /// Cost of one inter-node transfer of one `model` update under `codec`.
    pub fn inter_node_transfer_encoded(&self, model: ModelKind, codec: CodecKind) -> TransferCost {
        self.inter_node_transfer(update_wire_bytes(model, codec))
    }

    /// CPU time to aggregate one model update into a running accumulator.
    ///
    /// Calibrated so a ResNet-152 update (~60 M parameters) takes ~0.5 s, which
    /// together with the transfer costs reproduces the per-round times of
    /// Fig. 4 (57–60 s serverful) and Fig. 7(c) (44.9 s LIFL).
    pub fn aggregation_compute(&self, model: ModelKind) -> SimDuration {
        let params = model.parameters() as f64;
        SimDuration::from_secs(params * 8.3e-9)
    }

    /// CPU time to evaluate the global model after a round (the "Eval." task of Fig. 4).
    pub fn evaluation_compute(&self, model: ModelKind) -> SimDuration {
        let params = model.parameters() as f64;
        SimDuration::from_secs(2.0 + params * 25.0e-9)
    }

    /// Start-up costs of an aggregator runtime on each platform.
    pub fn startup(&self, system: SystemKind) -> StartupCost {
        match system {
            // Knative-style function pods: image pull is cached but the pod,
            // sidecar and runtime initialisation dominate.
            SystemKind::Serverless | SystemKind::SlBasic => StartupCost {
                cold_start: SimDuration::from_secs(4.0),
                cold_start_cpu: SimDuration::from_secs(2.0),
                warm_start: SimDuration::from_secs(0.05),
            },
            // LIFL / SL-H runtimes are lightweight processes attached to shm.
            SystemKind::Lifl | SystemKind::SlHierarchical => StartupCost {
                cold_start: SimDuration::from_secs(0.8),
                cold_start_cpu: SimDuration::from_secs(0.4),
                warm_start: SimDuration::from_secs(0.01),
            },
            // Serverful aggregators are always on: no start-up on the critical path.
            SystemKind::Serverful | SystemKind::SfMono | SystemKind::SfMicro => StartupCost {
                cold_start: SimDuration::ZERO,
                cold_start_cpu: SimDuration::ZERO,
                warm_start: SimDuration::ZERO,
            },
        }
    }

    /// Always-on CPU cores consumed per aggregator slot for each system
    /// (sidecars, brokers, gateways and the serverful aggregator itself).
    pub fn idle_cores_per_aggregator(&self, system: SystemKind) -> f64 {
        match system {
            SystemKind::Serverful | SystemKind::SfMono | SystemKind::SfMicro => 1.0,
            SystemKind::Serverless | SystemKind::SlBasic => {
                self.models.sidecar.idle_cores + self.models.broker.idle_cores / 4.0
            }
            SystemKind::Lifl | SystemKind::SlHierarchical => 0.0,
        }
    }

    /// Always-on CPU cores consumed per *node* by stateful data-plane
    /// components (LIFL's gateway "tax", the broker for serverless setups).
    pub fn idle_cores_per_node(&self, system: SystemKind) -> f64 {
        match system {
            SystemKind::Lifl | SystemKind::SlHierarchical => self.models.gateway.idle_cores,
            SystemKind::Serverless | SystemKind::SlBasic | SystemKind::SfMicro => {
                self.models.broker.idle_cores
            }
            SystemKind::Serverful | SystemKind::SfMono => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inter_node_resnet152_close_to_paper() {
        let cm = CostModel::paper_calibrated();
        let cost = cm.inter_node_transfer(ModelKind::ResNet152.update_bytes());
        let lat = cost.latency.as_secs();
        assert!((3.4..5.2).contains(&lat), "inter-node R152 latency {lat}");
        assert_eq!(cost.inter_node_bytes, ModelKind::ResNet152.update_bytes());
    }

    #[test]
    fn intra_node_faster_than_inter_node() {
        let cm = CostModel::paper_calibrated();
        let bytes = ModelKind::ResNet152.update_bytes();
        let intra = cm.intra_node_transfer(DataPlaneKind::LiflSharedMemory, bytes);
        let inter = cm.inter_node_transfer(bytes);
        assert!(intra.latency < inter.latency);
        assert_eq!(intra.inter_node_bytes, 0);
    }

    #[test]
    fn aggregation_compute_scales_with_model() {
        let cm = CostModel::paper_calibrated();
        let small = cm.aggregation_compute(ModelKind::ResNet18);
        let large = cm.aggregation_compute(ModelKind::ResNet152);
        assert!(small < large);
        assert!((large.as_secs() - 0.5).abs() < 0.1, "{}", large.as_secs());
    }

    #[test]
    fn startup_ordering_matches_paper() {
        let cm = CostModel::paper_calibrated();
        let sl = cm.startup(SystemKind::Serverless);
        let lifl = cm.startup(SystemKind::Lifl);
        let sf = cm.startup(SystemKind::Serverful);
        assert!(sl.cold_start > lifl.cold_start);
        assert_eq!(sf.cold_start, SimDuration::ZERO);
        assert!(lifl.warm_start < lifl.cold_start);
    }

    #[test]
    fn serverful_pays_idle_aggregators_lifl_does_not() {
        let cm = CostModel::paper_calibrated();
        assert!(cm.idle_cores_per_aggregator(SystemKind::Serverful) > 0.9);
        assert_eq!(cm.idle_cores_per_aggregator(SystemKind::Lifl), 0.0);
        assert!(cm.idle_cores_per_node(SystemKind::Lifl) > 0.0);
        assert!(
            cm.idle_cores_per_node(SystemKind::Lifl)
                < cm.idle_cores_per_node(SystemKind::Serverless)
        );
    }

    #[test]
    fn encoded_transfers_price_off_encoded_bytes() {
        let cm = CostModel::paper_calibrated();
        let model = ModelKind::ResNet152;
        let identity = cm.inter_node_transfer_encoded(model, CodecKind::Identity);
        let u8c = cm.inter_node_transfer_encoded(model, CodecKind::Uniform8);
        let u4c = cm.inter_node_transfer_encoded(model, CodecKind::Uniform4);
        // Identity is bit-identical to the pre-codec pricing.
        assert_eq!(identity, cm.inter_node_transfer(model.update_bytes()));
        assert!(identity.inter_node_bytes >= 4 * u8c.inter_node_bytes - 64);
        assert!(u8c.inter_node_bytes > u4c.inter_node_bytes);
        assert!(identity.latency > u8c.latency && u8c.latency > u4c.latency);
        let intra_id = cm.intra_node_transfer_encoded(
            DataPlaneKind::LiflSharedMemory,
            model,
            CodecKind::Identity,
        );
        let intra_u8 = cm.intra_node_transfer_encoded(
            DataPlaneKind::LiflSharedMemory,
            model,
            CodecKind::Uniform8,
        );
        assert!(intra_id.latency > intra_u8.latency);
    }

    #[test]
    fn codec_compute_is_cheap_relative_to_aggregation() {
        let cm = CostModel::paper_calibrated();
        let model = ModelKind::ResNet152;
        assert_eq!(
            cm.codec_compute(model, CodecKind::Identity),
            SimDuration::ZERO
        );
        let quant = cm.codec_compute(model, CodecKind::Uniform8);
        let topk = cm.codec_compute(model, CodecKind::TopK { permille: 50 });
        assert!(quant > SimDuration::ZERO);
        assert!(topk > quant);
        // A codec pass must stay well under the aggregation fold itself,
        // otherwise compressing would never pay off.
        assert!(topk < cm.aggregation_compute(model));
    }

    #[test]
    fn fused_fold_discounts_quantized_codecs() {
        let cm = CostModel::paper_calibrated();
        let model = ModelKind::ResNet152;
        let dense_fold = cm.aggregation_compute(model);
        // Identity is bit-identical to the seed fold cost.
        assert_eq!(
            cm.fused_fold_compute(model, CodecKind::Identity),
            dense_fold
        );
        // The fused pass beats decode-then-fold for every lossy codec...
        for codec in [
            CodecKind::Uniform8,
            CodecKind::Uniform4,
            CodecKind::TopK { permille: 50 },
        ] {
            let fused = cm.fused_fold_compute(model, codec);
            let two_step = cm.codec_compute(model, codec) + dense_fold;
            assert!(fused < two_step, "{codec}: {fused:?} !< {two_step:?}");
            // ...and even the dense fold alone (it streams fewer bytes).
            assert!(fused < dense_fold, "{codec}: {fused:?} !< {dense_fold:?}");
        }
        // Stronger codecs fold faster.
        assert!(
            cm.fused_fold_compute(model, CodecKind::Uniform4)
                < cm.fused_fold_compute(model, CodecKind::Uniform8)
        );
        assert!(
            cm.fused_fold_compute(model, CodecKind::TopK { permille: 50 })
                < cm.fused_fold_compute(model, CodecKind::Uniform4)
        );
    }

    #[test]
    fn wire_bytes_shrink_with_stronger_codecs() {
        let sizes: Vec<u64> = CodecKind::ablation_set()
            .iter()
            .map(|c| update_wire_bytes(ModelKind::ResNet18, *c))
            .collect();
        for pair in sizes.windows(2) {
            assert!(pair[0] > pair[1], "{sizes:?}");
        }
        let ratio = sizes[0] as f64 / sizes[1] as f64;
        assert!(ratio >= 3.99, "uniform8 reduction only {ratio}x");
    }

    #[test]
    fn client_ingest_includes_wire_time() {
        let cm = CostModel::paper_calibrated();
        let bytes = ModelKind::ResNet18.update_bytes();
        let lifl = cm.client_ingest(SystemKind::Lifl, bytes);
        let slb = cm.client_ingest(SystemKind::Serverless, bytes);
        assert!(lifl.latency < slb.latency);
        assert_eq!(lifl.inter_node_bytes, bytes);
    }
}
