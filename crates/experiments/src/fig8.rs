//! Figure 8: the benefit of LIFL's orchestration — ACT, cumulative CPU time,
//! aggregators created and nodes used for SL-H and the cumulative addition of
//! ① locality-aware placement, ② hierarchy planning, ③ aggregator reuse and
//! ④ eager aggregation, at 20/60/100 concurrent ResNet-152 updates over five
//! nodes with MC_i = 20.

use crate::report::format_table;
use lifl_core::platform::{LiflPlatform, PlatformProfile, RoundSpec};
use lifl_types::{
    AggregationTiming, ClusterConfig, LiflConfig, ModelKind, PlacementPolicy, SimTime, SystemKind,
};
use serde::Serialize;

/// One cell of Fig. 8: a (configuration, load) pair.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Row {
    /// Configuration label ("SL-H", "+1", "+1+2", ...).
    pub config: String,
    /// Number of concurrently arriving model updates.
    pub updates: usize,
    /// Aggregation completion time in seconds (Fig. 8(a)).
    pub act_seconds: f64,
    /// Cumulative CPU time in seconds (Fig. 8(b)).
    pub cpu_seconds: f64,
    /// Aggregators created (Fig. 8(c)).
    pub aggregators_created: u64,
    /// Nodes used (Fig. 8(d)).
    pub nodes_used: u64,
}

/// The full Fig. 8 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Result {
    /// All rows (5 configurations x 3 load levels).
    pub rows: Vec<Fig8Row>,
}

fn profile_for(config: &LiflConfig, cluster: ClusterConfig) -> PlatformProfile {
    let mut profile = PlatformProfile::lifl(cluster, config);
    // Every ablation step shares LIFL's data plane; the baseline differs only
    // in orchestration, exactly as in the paper (SL-H uses LIFL's data plane).
    if config.placement == PlacementPolicy::WorstFit
        && !config.hierarchy_planning
        && !config.reuse_runtimes
        && config.timing == AggregationTiming::Lazy
    {
        profile.system = SystemKind::SlHierarchical;
    }
    // Fig. 8 is a single-shot microbenchmark: no warm instances from earlier rounds.
    profile.warm_across_rounds = false;
    profile
}

/// Runs the Fig. 8 sweep.
pub fn run() -> Fig8Result {
    let mut rows = Vec::new();
    for (label, config) in LiflConfig::ablation_steps() {
        for updates in [20usize, 60, 100] {
            let mut platform =
                LiflPlatform::with_profile(profile_for(&config, ClusterConfig::default()));
            let spec = RoundSpec::simultaneous(ModelKind::ResNet152, updates, SimTime::ZERO);
            let report = platform.run_round(&spec);
            rows.push(Fig8Row {
                config: label.clone(),
                updates,
                act_seconds: report.metrics.aggregation_completion_time.as_secs(),
                cpu_seconds: report.metrics.cpu_time.as_secs(),
                aggregators_created: report.metrics.aggregators_created,
                nodes_used: report.metrics.nodes_used,
            });
        }
    }
    Fig8Result { rows }
}

/// Formats the sweep as one table.
pub fn format(result: &Fig8Result) -> String {
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                r.updates.to_string(),
                format!("{:.1}", r.act_seconds),
                format!("{:.1}", r.cpu_seconds),
                r.aggregators_created.to_string(),
                r.nodes_used.to_string(),
            ]
        })
        .collect();
    let mut out =
        String::from("Fig. 8: LIFL orchestration ablation (ResNet-152, 5 nodes, MC=20)\n");
    out.push_str(&format_table(
        &[
            "config",
            "updates",
            "ACT (s)",
            "CPU (s)",
            "# agg created",
            "# nodes",
        ],
        &rows,
    ));
    out
}

impl Fig8Result {
    /// Looks up one cell.
    pub fn cell(&self, config: &str, updates: usize) -> Option<&Fig8Row> {
        self.rows
            .iter()
            .find(|r| r.config == config && r.updates == updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_fig8_shape() {
        let result = run();
        assert_eq!(result.rows.len(), 15);
        let slh20 = result.cell("SL-H", 20).unwrap();
        let full20 = result.cell("+1+2+3+4", 20).unwrap();
        let p1_20 = result.cell("+1", 20).unwrap();

        // Fig. 8(d): locality-aware placement packs 20/60/100 updates into 1/3/5 nodes,
        // while SL-H spreads over all 5 nodes regardless.
        assert_eq!(p1_20.nodes_used, 1);
        assert_eq!(result.cell("+1", 60).unwrap().nodes_used, 3);
        assert_eq!(result.cell("+1", 100).unwrap().nodes_used, 5);
        assert_eq!(slh20.nodes_used, 5);

        // Fig. 8(a): placement alone gives a large ACT cut at 20 updates (paper: 2.1x).
        let gain = slh20.act_seconds / p1_20.act_seconds;
        assert!(gain > 1.5, "locality-aware placement gain {gain:.2}x");
        // Each further addition never hurts, and the full stack beats SL-H clearly.
        let full_gain = slh20.act_seconds / full20.act_seconds;
        assert!(full_gain > 2.0, "full orchestration gain {full_gain:.2}x");

        // Fig. 8(b): CPU cost also drops (paper: up to 2x).
        assert!(full20.cpu_seconds < slh20.cpu_seconds);

        // Fig. 8(c): fewer aggregators created thanks to reuse.
        assert!(full20.aggregators_created <= slh20.aggregators_created);

        // At 100 updates all five nodes are saturated, shrinking the orchestration gain.
        let slh100 = result.cell("SL-H", 100).unwrap();
        let full100 = result.cell("+1+2+3+4", 100).unwrap();
        let gain100 = slh100.act_seconds / full100.act_seconds;
        assert!(gain100 < gain, "gain shrinks when capacity is saturated");

        let text = format(&result);
        assert!(text.contains("SL-H"));
    }
}
