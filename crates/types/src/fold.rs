//! Aggregation fold-policy configuration.
//!
//! Every aggregator in the seed folded updates with sample-weighted FedAvg,
//! which a single corrupted or adversarially scaled client update can skew
//! arbitrarily — lossy low-bit codecs only amplify the damage. [`FoldPolicy`]
//! names the robust-statistics alternatives the fold can run instead; the
//! actual fold implementations live in `lifl-fl::robust`, while this enum is
//! the *configuration* vocabulary shared by `LiflConfig`, the session and
//! cluster builders (`lifl-core`) and the fault-injection test tier.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How an aggregator combines the model updates of one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum FoldPolicy {
    /// Sample-weighted federated averaging (the seed behaviour): eager,
    /// constant-memory, bit-exact with the pre-policy fold path.
    #[default]
    FedAvg,
    /// Coordinate-wise trimmed mean: for every coordinate, the
    /// `trim_permille`/1000 largest and smallest values across the round's
    /// updates are discarded and the survivors averaged **unweighted** (an
    /// adversary controls its reported sample count, so robust statistics
    /// must not weight by it). Buffers the round's updates.
    TrimmedMean {
        /// Per-side trim fraction in permille (1..=499); e.g. `100` trims the
        /// top and bottom 10% of values at every coordinate.
        trim_permille: u16,
    },
    /// Coordinate-wise median across the round's updates (unweighted; the
    /// maximally trimmed mean). Buffers the round's updates.
    Median,
}

impl FoldPolicy {
    /// A short stable label for tables and test names.
    pub fn label(self) -> String {
        match self {
            FoldPolicy::FedAvg => "fedavg".to_string(),
            FoldPolicy::TrimmedMean { trim_permille } => format!("trimmed{trim_permille}"),
            FoldPolicy::Median => "median".to_string(),
        }
    }

    /// Whether this policy is the seed's eager sample-weighted FedAvg fold.
    pub fn is_fedavg(self) -> bool {
        matches!(self, FoldPolicy::FedAvg)
    }

    /// Validates the policy's parameters.
    ///
    /// # Errors
    /// Returns an error string when a trimmed mean trims nothing
    /// (`trim_permille == 0`) or trims everything (both sides of 500‰ meet in
    /// the middle, leaving no survivors on even counts).
    pub fn validate(self) -> Result<(), String> {
        if let FoldPolicy::TrimmedMean { trim_permille } = self {
            if trim_permille == 0 || trim_permille >= 500 {
                return Err(format!(
                    "trimmed-mean trim_permille must be in 1..=499 (per side), got {trim_permille}"
                ));
            }
        }
        Ok(())
    }
}

impl fmt::Display for FoldPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_seed_fold() {
        assert_eq!(FoldPolicy::default(), FoldPolicy::FedAvg);
        assert!(FoldPolicy::default().is_fedavg());
        assert!(!FoldPolicy::Median.is_fedavg());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FoldPolicy::FedAvg.to_string(), "fedavg");
        assert_eq!(
            FoldPolicy::TrimmedMean { trim_permille: 100 }.to_string(),
            "trimmed100"
        );
        assert_eq!(FoldPolicy::Median.to_string(), "median");
    }

    #[test]
    fn validation_bounds_the_trim() {
        assert!(FoldPolicy::FedAvg.validate().is_ok());
        assert!(FoldPolicy::Median.validate().is_ok());
        assert!(FoldPolicy::TrimmedMean { trim_permille: 1 }
            .validate()
            .is_ok());
        assert!(FoldPolicy::TrimmedMean { trim_permille: 499 }
            .validate()
            .is_ok());
        assert!(FoldPolicy::TrimmedMean { trim_permille: 0 }
            .validate()
            .is_err());
        assert!(FoldPolicy::TrimmedMean { trim_permille: 500 }
            .validate()
            .is_err());
    }

    #[test]
    fn serde_roundtrip() {
        for policy in [
            FoldPolicy::FedAvg,
            FoldPolicy::TrimmedMean { trim_permille: 250 },
            FoldPolicy::Median,
        ] {
            let json = serde_json::to_string(&policy).unwrap();
            let back: FoldPolicy = serde_json::from_str(&json).unwrap();
            assert_eq!(policy, back);
        }
    }
}
