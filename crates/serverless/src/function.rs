//! Function specifications and instance lifecycle states.

use lifl_types::{SimDuration, SystemKind};
use serde::{Deserialize, Serialize};

/// Static description of a serverless function (the aggregator function).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionSpec {
    /// Human-readable name.
    pub name: String,
    /// The platform the function runs on (drives start-up costs).
    pub system: SystemKind,
    /// CPU cores requested per instance.
    pub cores_per_instance: f64,
    /// Memory requested per instance, bytes.
    pub memory_per_instance: u64,
    /// How long an idle instance is kept warm before termination.
    pub keep_alive: SimDuration,
}

impl FunctionSpec {
    /// The aggregator function spec used by the serverless baseline (§6.1).
    pub fn aggregator(system: SystemKind) -> Self {
        FunctionSpec {
            name: "aggregator".to_string(),
            system,
            cores_per_instance: 2.0,
            memory_per_instance: 2 * 1024 * 1024 * 1024,
            keep_alive: SimDuration::from_secs(60.0),
        }
    }
}

/// Lifecycle state of one function instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstanceState {
    /// Instance is being created (cold start in progress).
    Starting,
    /// Instance is warm and idle.
    Idle,
    /// Instance is processing work.
    Busy,
    /// Instance has been terminated.
    Terminated,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregator_spec_defaults() {
        let spec = FunctionSpec::aggregator(SystemKind::Serverless);
        assert_eq!(spec.name, "aggregator");
        assert!(spec.cores_per_instance > 0.0);
        assert!(spec.keep_alive.as_secs() > 0.0);
    }

    #[test]
    fn states_are_distinct() {
        assert_ne!(InstanceState::Idle, InstanceState::Busy);
        assert_ne!(InstanceState::Starting, InstanceState::Terminated);
    }
}
