//! Regenerates Fig. 7 (data-plane improvement for hierarchical aggregation).
fn main() {
    let result = lifl_experiments::fig7::run();
    println!("{}", lifl_experiments::fig7::format(&result));
    println!("{}", lifl_experiments::report::to_json(&result));
}
