//! The token-level rules R1–R6 (R7 lives in [`crate::sync`] because it reads
//! the justfile and CI workflow rather than Rust sources).

use crate::lexer::{Tok, TokKind};
use crate::source::SourceFile;
use crate::{Finding, Rule};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// The one directory where `unsafe` is sanctioned: the SIMD kernel layer.
pub const KERNELS_DIR: &str = "crates/fl/src/kernels/";

/// Crates whose non-test code must be panic-free (R4): the aggregation hot
/// path from the type layer up through the session/cluster runtime.
pub const HOT_PATH_CRATES: [&str; 5] = [
    "crates/types/src/",
    "crates/shmem/src/",
    "crates/dataplane/src/",
    "crates/fl/src/",
    "crates/core/src/",
];

/// Modules whose bit-exact determinism the `it`/`faults` tiers prove (R5):
/// the fold kernels and everything that routes updates into them. Entries
/// ending in `/` cover a directory.
pub const FOLD_MODULES: [&str; 15] = [
    "crates/types/src/fold.rs",
    "crates/fl/src/aggregate.rs",
    "crates/fl/src/sharded.rs",
    "crates/fl/src/robust.rs",
    "crates/fl/src/update.rs",
    "crates/fl/src/codec.rs",
    "crates/fl/src/kernels/",
    "crates/core/src/session.rs",
    "crates/core/src/cluster.rs",
    "crates/core/src/training.rs",
    "crates/core/src/gateway.rs",
    "crates/core/src/aggregator.rs",
    "crates/core/src/admission.rs",
    "crates/serverless/src/fleet.rs",
    "crates/shmem/src/backlog.rs",
];

fn finding(f: &SourceFile, line: u32, rule: Rule, message: String) -> Finding {
    Finding {
        file: f.rel.clone(),
        line,
        rule,
        message,
    }
}

/// Indices of the code (non-comment) tokens of a file.
fn code_indices(f: &SourceFile) -> Vec<usize> {
    (0..f.toks.len()).filter(|&i| f.toks[i].is_code()).collect()
}

// ---------------------------------------------------------------------------
// R1: unsafe containment.
// ---------------------------------------------------------------------------

/// R1: `unsafe` may only appear under [`KERNELS_DIR`]; every crate root must
/// opt out of unsafe with `#![forbid(unsafe_code)]` or `#![deny(unsafe_code)]`;
/// and the only legal `#[allow(unsafe_code)]` is the scoped one on
/// `crates/fl/src/lib.rs`'s `mod kernels` declaration.
pub fn unsafe_containment(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        let code = code_indices(f);
        if !f.rel.starts_with(KERNELS_DIR) {
            for &i in &code {
                if f.toks[i].is_ident("unsafe") {
                    out.push(finding(
                        f,
                        f.toks[i].line,
                        Rule::UnsafeContainment,
                        format!(
                            "`unsafe` outside {KERNELS_DIR}: move the code into the \
                             kernel layer or justify with `lifl-lint: allow(unsafe) — <why>`"
                        ),
                    ));
                }
            }
        }
        // Scoped allow(unsafe_code) is only legal on fl's kernels module.
        for w in 0..code.len().saturating_sub(3) {
            let [a, b, c, d] = [code[w], code[w + 1], code[w + 2], code[w + 3]];
            if f.toks[a].is_ident("allow")
                && f.toks[b].is_punct("(")
                && f.toks[c].is_ident("unsafe_code")
                && f.toks[d].is_punct(")")
            {
                let gates_kernels = f.rel == "crates/fl/src/lib.rs"
                    && attr_target_is_mod_kernels(&f.toks, &code, w + 4);
                if !gates_kernels {
                    out.push(finding(
                        f,
                        f.toks[a].line,
                        Rule::UnsafeContainment,
                        "`#[allow(unsafe_code)]` may only gate `mod kernels` in \
                         crates/fl/src/lib.rs"
                            .to_string(),
                    ));
                }
            }
        }
        // Crate roots must carry the unsafe_code lint attribute.
        if is_crate_root(&f.rel) && !has_unsafe_code_gate(&f.toks, &code) {
            out.push(finding(
                f,
                1,
                Rule::UnsafeContainment,
                "crate root must carry `#![forbid(unsafe_code)]` (or \
                 `#![deny(unsafe_code)]` when a scoped kernels allow is needed)"
                    .to_string(),
            ));
        }
    }
    out
}

fn is_crate_root(rel: &str) -> bool {
    let Some(rest) = rel.strip_prefix("crates/") else {
        return false;
    };
    let mut parts = rest.split('/');
    matches!(
        (parts.next(), parts.next(), parts.next(), parts.next()),
        (Some(_), Some("src"), Some("lib.rs"), None)
    )
}

/// Looks for `#![forbid(unsafe_code)]` / `#![deny(unsafe_code)]`.
fn has_unsafe_code_gate(toks: &[Tok], code: &[usize]) -> bool {
    for w in 0..code.len().saturating_sub(6) {
        let t = |k: usize| &toks[code[w + k]];
        if t(0).is_punct("#")
            && t(1).is_punct("!")
            && t(2).is_punct("[")
            && (t(3).is_ident("forbid") || t(3).is_ident("deny"))
            && t(4).is_punct("(")
            && t(5).is_ident("unsafe_code")
            && t(6).is_punct(")")
        {
            return true;
        }
    }
    false
}

/// After the `allow ( unsafe_code )` tokens ending at `code[from - 1]`, the
/// attribute close `]` must be followed by `pub mod kernels` / `mod kernels`.
fn attr_target_is_mod_kernels(toks: &[Tok], code: &[usize], from: usize) -> bool {
    let mut k = from;
    if k < code.len() && toks[code[k]].is_punct("]") {
        k += 1;
    }
    if k < code.len() && toks[code[k]].is_ident("pub") {
        k += 1;
    }
    k + 1 < code.len() && toks[code[k]].is_ident("mod") && toks[code[k + 1]].is_ident("kernels")
}

// ---------------------------------------------------------------------------
// R2: SAFETY comments.
// ---------------------------------------------------------------------------

/// R2: every `unsafe fn`, `unsafe {` block, `unsafe impl` and `unsafe trait`
/// must be immediately preceded by a `// SAFETY:` comment stating the
/// precondition the site relies on. Attribute and doc-comment lines between
/// the comment and the `unsafe` token are skipped (`#[target_feature]` sits
/// between them in the kernels); blank lines and code lines are not.
pub fn safety_comments(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        for (i, t) in f.toks.iter().enumerate() {
            if !(t.kind == TokKind::Ident && t.text == "unsafe") {
                continue;
            }
            let construct = f.toks[i + 1..]
                .iter()
                .find(|n| n.is_code())
                .map(|n| match n.text.as_str() {
                    "fn" => "`unsafe fn`",
                    "impl" => "`unsafe impl`",
                    "trait" => "`unsafe trait`",
                    _ => "`unsafe` block",
                })
                .unwrap_or("`unsafe`");
            if !has_safety_comment(f, t.line) {
                out.push(finding(
                    f,
                    t.line,
                    Rule::SafetyComment,
                    format!(
                        "{construct} without an immediately preceding `// SAFETY:` \
                         comment stating the precondition it relies on"
                    ),
                ));
            }
        }
    }
    out
}

/// Scans upward from the line above `line`, skipping doc-comment and
/// attribute lines; accepts when the contiguous run of plain `//` lines found
/// there contains one starting with `SAFETY:`.
fn has_safety_comment(f: &SourceFile, line: u32) -> bool {
    // Same-line block comment form: `/* SAFETY: ... */ unsafe { ... }`.
    if let Some(text) = f.lines.get(line as usize - 1) {
        if let (Some(c), Some(u)) = (text.find("SAFETY:"), text.find("unsafe")) {
            if c < u {
                return true;
            }
        }
    }
    let mut l = line as usize - 1; // index of the line above, 1-based
    while l >= 1 {
        let text = f.lines[l - 1].trim_start();
        if text.starts_with("///") || text.starts_with("//!") {
            l -= 1; // doc comment: skip
        } else if text.starts_with("#[") || text.starts_with("#![") {
            l -= 1; // attribute: skip
        } else if let Some(comment) = text.strip_prefix("//") {
            // Plain comment run: walk it upward looking for the SAFETY tag.
            if comment.trim_start().starts_with("SAFETY:") {
                return true;
            }
            l -= 1;
            while l >= 1 {
                let above = f.lines[l - 1].trim_start();
                match above.strip_prefix("//") {
                    Some(c) if !above.starts_with("///") && !above.starts_with("//!") => {
                        if c.trim_start().starts_with("SAFETY:") {
                            return true;
                        }
                        l -= 1;
                    }
                    _ => return false,
                }
            }
            return false;
        } else {
            return false; // code or blank line: not "immediately preceding"
        }
    }
    false
}

// ---------------------------------------------------------------------------
// R3: kernel-arm parity.
// ---------------------------------------------------------------------------

/// A function signature parsed from a kernels file.
#[derive(Debug)]
struct FnSig {
    name: String,
    line: u32,
    /// Comma-joined parameter *types* (names stripped).
    params: String,
    /// Return-type tokens after `)`, joined (empty for unit).
    ret: String,
    is_pub: bool,
}

/// R3: every public fn in `kernels/scalar.rs` must have a matching-signature
/// counterpart in `kernels/avx2.rs` and a dispatch site (`scalar::name` and
/// `avx2::name` references) in `kernels/mod.rs`, so an arm can never silently
/// drift; conversely, every public fn in `avx2.rs` must have a scalar
/// reference. Scalar-only kernels (sparse scatters that gain nothing from
/// SIMD) opt out per-fn with `lifl-lint: allow(kernel-parity) — <why>`.
pub fn kernel_parity(files: &[SourceFile]) -> Vec<Finding> {
    let scalar = files
        .iter()
        .find(|f| f.rel == format!("{KERNELS_DIR}scalar.rs"));
    let avx2 = files
        .iter()
        .find(|f| f.rel == format!("{KERNELS_DIR}avx2.rs"));
    let dispatch = files
        .iter()
        .find(|f| f.rel == format!("{KERNELS_DIR}mod.rs"));
    let (Some(scalar), Some(avx2), Some(dispatch)) = (scalar, avx2, dispatch) else {
        return Vec::new(); // no kernel layer in this tree: nothing to check
    };
    let scalar_fns = parse_fns(scalar);
    let avx2_fns = parse_fns(avx2);
    let refs = dispatch_refs(dispatch);
    let mut out = Vec::new();
    for s in scalar_fns.iter().filter(|s| s.is_pub) {
        let counterpart = avx2_fns.iter().find(|a| a.name == s.name);
        match counterpart {
            None => out.push(finding(
                scalar,
                s.line,
                Rule::KernelParity,
                format!(
                    "public scalar kernel `{}` has no AVX2 counterpart in \
                     kernels/avx2.rs; add one (bit-exact, scalar tail) or mark \
                     the scalar fn `lifl-lint: allow(kernel-parity) — <why>`",
                    s.name
                ),
            )),
            Some(a) if a.params != s.params || a.ret != s.ret => out.push(finding(
                scalar,
                s.line,
                Rule::KernelParity,
                format!(
                    "kernel `{}` signatures drifted between arms: scalar \
                     `({}) {}` vs avx2 `({}) {}`",
                    s.name, s.params, s.ret, a.params, a.ret
                ),
            )),
            Some(_) => {
                for arm in ["scalar", "avx2"] {
                    if !refs.contains(&(arm.to_string(), s.name.clone())) {
                        out.push(finding(
                            scalar,
                            s.line,
                            Rule::KernelParity,
                            format!(
                                "kernel `{}` has no `{arm}::{}` dispatch site in \
                                 kernels/mod.rs: both arms must be reachable from \
                                 the dispatcher",
                                s.name, s.name
                            ),
                        ));
                    }
                }
            }
        }
    }
    for a in avx2_fns.iter().filter(|a| a.is_pub) {
        if !scalar_fns.iter().any(|s| s.name == a.name) {
            out.push(finding(
                avx2,
                a.line,
                Rule::KernelParity,
                format!(
                    "public AVX2 kernel `{}` has no scalar reference in \
                     kernels/scalar.rs; the scalar arm defines the semantics \
                     and must exist first",
                    a.name
                ),
            ));
        }
    }
    out
}

/// Parses top-level (non-test) `fn` items of a file into signatures.
fn parse_fns(f: &SourceFile) -> Vec<FnSig> {
    let code = code_indices(f);
    let mut out = Vec::new();
    let mut k = 0usize;
    while k < code.len() {
        let idx = code[k];
        if !f.toks[idx].is_ident("fn") || f.is_test(idx) {
            k += 1;
            continue;
        }
        // `fn` in a function-pointer type has no following ident.
        let Some(name_tok) = code.get(k + 1).map(|&i| &f.toks[i]) else {
            break;
        };
        if name_tok.kind != TokKind::Ident {
            k += 1;
            continue;
        }
        let name = name_tok.text.clone();
        let mut m = k + 2;
        // Skip a generics list `<...>` between name and params.
        if m < code.len() && f.toks[code[m]].is_punct("<") {
            let mut depth = 0i64;
            while m < code.len() {
                if f.toks[code[m]].is_punct("<") {
                    depth += 1;
                } else if f.toks[code[m]].is_punct(">") {
                    depth -= 1;
                    if depth == 0 {
                        m += 1;
                        break;
                    }
                }
                m += 1;
            }
        }
        if m >= code.len() || !f.toks[code[m]].is_punct("(") {
            k += 1;
            continue;
        }
        let open = m;
        let mut depth = 0i64;
        let mut close = open;
        for (j, &i) in code.iter().enumerate().skip(open) {
            if f.toks[i].is_punct("(") {
                depth += 1;
            } else if f.toks[i].is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    close = j;
                    break;
                }
            }
        }
        let params = normalize_params(&f.toks, &code[open + 1..close]);
        let mut ret = Vec::new();
        for &i in &code[close + 1..] {
            let t = &f.toks[i];
            if t.is_punct("{") || t.is_punct(";") || t.is_ident("where") {
                break;
            }
            ret.push(t.text.clone());
        }
        out.push(FnSig {
            name,
            line: f.toks[idx].line,
            params,
            ret: ret.join(" "),
            is_pub: fn_is_pub(&f.toks, &code, k),
        });
        k = close + 1;
    }
    out
}

/// Whether the `fn` at `code[at]` has `pub` visibility (any form: `pub`,
/// `pub(super)`, `pub(crate)`, ...), looking back over qualifiers.
fn fn_is_pub(toks: &[Tok], code: &[usize], at: usize) -> bool {
    let mut j = at;
    while j > 0 {
        j -= 1;
        let t = &toks[code[j]];
        match t.text.as_str() {
            "unsafe" | "const" | "async" | "extern" => continue,
            _ if t.kind == TokKind::Str => continue, // extern "C"
            ")" => {
                // Possibly `pub(...)`: walk back to the `(` and check.
                let mut depth = 1i64;
                while j > 0 && depth > 0 {
                    j -= 1;
                    if toks[code[j]].is_punct(")") {
                        depth += 1;
                    } else if toks[code[j]].is_punct("(") {
                        depth -= 1;
                    }
                }
                return j > 0 && toks[code[j - 1]].is_ident("pub");
            }
            "pub" => return true,
            _ => return false,
        }
    }
    false
}

/// Joins the parameter tokens into a canonical comma-separated list of
/// parameter *types*: per top-level-comma segment, everything after the first
/// top-level `:` (so renaming a parameter is not drift, retyping it is).
fn normalize_params(toks: &[Tok], param_code: &[usize]) -> String {
    let mut segments: Vec<Vec<String>> = vec![Vec::new()];
    let mut depth = 0i64;
    for &i in param_code {
        let t = &toks[i];
        match t.text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            "," if depth == 0 => {
                segments.push(Vec::new());
                continue;
            }
            _ => {}
        }
        if let Some(last) = segments.last_mut() {
            last.push(t.text.clone());
        }
    }
    let types: Vec<String> = segments
        .into_iter()
        .filter(|s| !s.is_empty())
        .map(|seg| {
            let mut d = 0i64;
            let mut colon = None;
            for (k, t) in seg.iter().enumerate() {
                match t.as_str() {
                    "(" | "[" | "{" | "<" => d += 1,
                    ")" | "]" | "}" | ">" => d -= 1,
                    ":" if d == 0 => {
                        // `::` is two tokens; only a lone `:` separates a name.
                        let double = seg.get(k + 1).map(String::as_str) == Some(":")
                            || (k > 0 && seg[k - 1] == ":");
                        if !double {
                            colon = Some(k);
                            break;
                        }
                    }
                    _ => {}
                }
            }
            match colon {
                Some(k) => seg[k + 1..].join(" "),
                None => seg.join(" "), // e.g. `&self`
            }
        })
        .collect();
    types.join(", ")
}

/// `(arm, fn)` pairs referenced as `scalar::f` / `avx2::f` in non-test code.
fn dispatch_refs(f: &SourceFile) -> BTreeSet<(String, String)> {
    let code = code_indices(f);
    let mut out = BTreeSet::new();
    for w in 0..code.len().saturating_sub(3) {
        let t = |k: usize| &f.toks[code[w + k]];
        if (t(0).is_ident("scalar") || t(0).is_ident("avx2"))
            && t(1).is_punct(":")
            && t(2).is_punct(":")
            && t(3).kind == TokKind::Ident
            && !f.is_test(code[w])
        {
            out.insert((t(0).text.clone(), t(3).text.clone()));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// R4: panic freedom.
// ---------------------------------------------------------------------------

/// R4: no `.unwrap()`, `.expect(`, `panic!`, `todo!` or `unimplemented!` in
/// non-test code of the hot-path crates. Genuine invariants that cannot be
/// expressed as `Result` justify themselves inline with
/// `lifl-lint: allow(panic) — <why>`.
pub fn panic_freedom(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if !HOT_PATH_CRATES.iter().any(|p| f.rel.starts_with(p)) {
            continue;
        }
        let code = code_indices(f);
        for w in 0..code.len() {
            let idx = code[w];
            if f.is_test(idx) {
                continue;
            }
            let t = &f.toks[idx];
            if t.kind != TokKind::Ident {
                continue;
            }
            let next_is = |text: &str| code.get(w + 1).is_some_and(|&n| f.toks[n].is_punct(text));
            let prev_is_dot = w > 0 && f.toks[code[w - 1]].is_punct(".");
            let what = match t.text.as_str() {
                "unwrap" | "expect" if prev_is_dot && next_is("(") => {
                    format!("`.{}()`", t.text)
                }
                "panic" | "todo" | "unimplemented" if next_is("!") => {
                    format!("`{}!`", t.text)
                }
                _ => continue,
            };
            out.push(finding(
                f,
                t.line,
                Rule::Panic,
                format!(
                    "{what} in a hot-path crate: return a `lifl_types::error` \
                     Result on fallible paths, or justify the invariant with \
                     `lifl-lint: allow(panic) — <why>`"
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// R5: determinism of the fold modules.
// ---------------------------------------------------------------------------

/// R5: the fold/aggregation modules must not use `HashMap`/`HashSet` (their
/// iteration order is seeded per process — `BTreeMap`/`BTreeSet` iterate
/// deterministically), nor read wall clocks (`Instant::now`, `SystemTime`),
/// because the `it`/`faults` tiers prove these modules bit-exact across
/// backends, shard counts and processes.
pub fn determinism(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        let scoped = FOLD_MODULES.iter().any(|m| {
            if let Some(dir) = m.strip_suffix('/') {
                f.rel.starts_with(dir) && f.rel[dir.len()..].starts_with('/')
            } else {
                f.rel == *m
            }
        });
        if !scoped {
            continue;
        }
        let code = code_indices(f);
        for w in 0..code.len() {
            let idx = code[w];
            if f.is_test(idx) {
                continue;
            }
            let t = &f.toks[idx];
            if t.kind != TokKind::Ident {
                continue;
            }
            match t.text.as_str() {
                "HashMap" | "HashSet" => out.push(finding(
                    f,
                    t.line,
                    Rule::Determinism,
                    format!(
                        "`{}` in a deterministic fold module: iteration order is \
                         per-process random; use `BTreeMap`/`BTreeSet`, or justify \
                         keyed-only access with `lifl-lint: allow(determinism) — <why>`",
                        t.text
                    ),
                )),
                "Instant"
                    if code.get(w + 1).is_some_and(|&a| f.toks[a].is_punct(":"))
                        && code.get(w + 2).is_some_and(|&a| f.toks[a].is_punct(":"))
                        && code.get(w + 3).is_some_and(|&a| f.toks[a].is_ident("now")) =>
                {
                    out.push(finding(
                        f,
                        t.line,
                        Rule::Determinism,
                        "`Instant::now` in a deterministic fold module: wall-clock \
                         reads make folds irreproducible; thread simulated time in \
                         instead"
                            .to_string(),
                    ))
                }
                "SystemTime" => out.push(finding(
                    f,
                    t.line,
                    Rule::Determinism,
                    "`SystemTime` in a deterministic fold module: wall-clock reads \
                     make folds irreproducible; thread simulated time in instead"
                        .to_string(),
                )),
                _ => {}
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// R6: the legacy runtime stays deleted.
// ---------------------------------------------------------------------------

/// R6: the legacy runtime deleted in PR 6 (`crates/core/src/runtime.rs`, the
/// `run_hierarchical*` entry points and their `#[allow(deprecated)]` escape
/// hatches) must stay deleted. Unlike the shell guard this replaces, the
/// check runs on code tokens, so prose in comments and string literals can
/// mention the old names freely.
pub fn legacy_runtime(root: &Path, files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    if root.join("crates/core/src/runtime.rs").exists() {
        out.push(Finding {
            file: "crates/core/src/runtime.rs".to_string(),
            line: 1,
            rule: Rule::LegacyRuntime,
            message: "the legacy runtime module is back; it was deleted in PR 6 \
                      (see MIGRATION.md) and must stay gone"
                .to_string(),
        });
    }
    for f in files {
        let code = code_indices(f);
        for w in 0..code.len() {
            let t = &f.toks[code[w]];
            if t.kind != TokKind::Ident {
                continue;
            }
            if t.text.starts_with("run_hierarchical") {
                out.push(finding(
                    f,
                    t.line,
                    Rule::LegacyRuntime,
                    format!(
                        "`{}` references the legacy runtime deleted in PR 6; port \
                         the call site onto Session/Cluster (see MIGRATION.md)",
                        t.text
                    ),
                ));
            } else if t.text == "runtime"
                && code.get(w + 1).is_some_and(|&a| f.toks[a].is_punct(":"))
                && code.get(w + 2).is_some_and(|&a| f.toks[a].is_punct(":"))
            {
                out.push(finding(
                    f,
                    t.line,
                    Rule::LegacyRuntime,
                    "`runtime::` path references the legacy runtime module deleted \
                     in PR 6"
                        .to_string(),
                ));
            } else if t.text == "allow"
                && code.get(w + 1).is_some_and(|&a| f.toks[a].is_punct("("))
                && code
                    .get(w + 2)
                    .is_some_and(|&a| f.toks[a].is_ident("deprecated"))
                && code.get(w + 3).is_some_and(|&a| f.toks[a].is_punct(")"))
            {
                out.push(finding(
                    f,
                    t.line,
                    Rule::LegacyRuntime,
                    "`#[allow(deprecated)]` escape hatches went away with the \
                     legacy runtime in PR 6; port the call site instead"
                        .to_string(),
                ));
            }
        }
    }
    out
}

/// Groups findings per file for summary-style reporting (used by the CLI's
/// `--summary` flag; exposed for tests).
pub fn per_file_counts(findings: &[Finding]) -> BTreeMap<String, usize> {
    let mut map = BTreeMap::new();
    for f in findings {
        *map.entry(f.file.clone()).or_insert(0) += 1;
    }
    map
}
