//! The common interface every evaluated aggregation system exposes to the
//! experiment harness.

use crate::platform::{RoundReport, RoundSpec};
use lifl_types::SystemKind;

/// An aggregation system that can execute FL rounds in the cluster simulator.
///
/// Implemented by the LIFL platform and by every baseline in `lifl-baselines`,
/// so the figure harnesses can drive them uniformly.
pub trait AggregationSystem {
    /// Which system this is (drives labels in tables and plots).
    fn system(&self) -> SystemKind;

    /// Simulates one aggregation round for the given arrivals.
    fn run_round(&mut self, spec: &RoundSpec) -> RoundReport;

    /// Number of aggregator instances currently provisioned (warm or always-on),
    /// sampled after the most recent round (Fig. 10(b)/(e)).
    fn active_aggregators(&self) -> u32;

    /// Label used in printed tables.
    fn label(&self) -> &'static str {
        self.system().label()
    }
}
