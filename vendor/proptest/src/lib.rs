//! Minimal offline stand-in for `proptest`.
//!
//! Supports the property-testing surface this workspace uses: the
//! [`proptest!`], [`prop_assert!`], and [`prop_assert_eq!`] macros, range and
//! tuple strategies, `prop_map`/`prop_flat_map` combinators,
//! [`collection::vec`], [`sample::select`], and [`arbitrary::any`]. Each
//! property runs over [`test_runner::CASES`] random cases drawn from a
//! deterministic generator; unlike the real proptest there is **no
//! shrinking** — a failure reports the raw case.

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Boxes the strategy behind a trait object.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A reference-counted, type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.uniform_int(self.start as i128, self.end as i128 - 1) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.uniform_int(*self.start() as i128, *self.end() as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.uniform_f64(self.start as f64, self.end as f64) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.uniform_f64(*self.start() as f64, *self.end() as f64) as $t
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+)),*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!(
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3)
    );
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max: exact,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(range: std::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            SizeRange {
                min: range.start,
                max: range.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *range.start(),
                max: *range.end(),
            }
        }
    }

    /// Strategy generating `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.uniform_int(self.size.min as i128, self.size.max as i128) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies over explicit value sets.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding clones of elements of a fixed vector.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Selects uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.uniform_int(0, self.options.len() as i128 - 1) as usize;
            self.options[idx].clone()
        }
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and [`any`].

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.uniform_f64(-1.0e6, 1.0e6)
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.uniform_f64(-1.0e6, 1.0e6) as f32
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod test_runner {
    //! The deterministic generator driving property execution.

    /// Number of random cases each property runs.
    pub const CASES: usize = 64;

    /// Deterministic xorshift64* generator for test-case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl Default for TestRng {
        fn default() -> Self {
            TestRng {
                state: 0x5DEE_CE66_D1CE_B00C,
            }
        }
    }

    impl TestRng {
        /// Creates a generator with an explicit seed.
        pub fn with_seed(seed: u64) -> Self {
            TestRng { state: seed | 1 }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform integer in `[lo, hi]` (inclusive).
        pub fn uniform_int(&mut self, lo: i128, hi: i128) -> i128 {
            assert!(lo <= hi, "empty integer range");
            let span = (hi - lo + 1) as u128;
            lo + ((self.next_u64() as u128) % span) as i128
        }

        /// Uniform float in `[lo, hi)`.
        pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
            let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            lo + (hi - lo) * unit
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running [`test_runner::CASES`] random cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::default();
                for __case in 0..$crate::test_runner::CASES {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| -> ::std::result::Result<(), ::std::string::String> {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__message) = __outcome {
                        panic!("property failed on case {}: {}", __case, __message);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case with a
/// message rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if __left != __right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                __left,
                __right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        if __left != __right {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}
