//! Fig. 11 / future work: buffered asynchronous aggregation micro-benchmarks.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lifl_core::async_round::AsyncAggregator;
use lifl_fl::aggregate::ModelUpdate;
use lifl_fl::DenseModel;
use lifl_types::{AggregationTiming, ClientId, SimTime};

fn submit_wave(goal: u64, timing: AggregationTiming, updates: &[ModelUpdate]) -> usize {
    let mut aggregator = AsyncAggregator::new(goal, timing).expect("goal > 0");
    for (k, update) in updates.iter().enumerate() {
        aggregator
            .submit(update.clone(), 0, SimTime::from_secs(k as f64))
            .expect("submit");
    }
    aggregator.versions().len()
}

fn bench(c: &mut Criterion) {
    // A ResNet-18-sized update has ~11.7M parameters; benchmark with a scaled
    // vector so the per-update fold cost is realistic but the bench stays short.
    let dim = 100_000;
    let updates: Vec<ModelUpdate> = (1..=32u64)
        .map(|i| {
            ModelUpdate::from_client(
                ClientId::new(i),
                DenseModel::from_vec(vec![i as f32 * 1e-3; dim]),
                i,
            )
        })
        .collect();
    let mut group = c.benchmark_group("fig11_async");
    group.sample_size(10);
    for timing in [AggregationTiming::Eager, AggregationTiming::Lazy] {
        group.bench_with_input(
            BenchmarkId::new("submit_32_updates_goal_8", format!("{timing:?}")),
            &timing,
            |b, &timing| {
                b.iter(|| {
                    let versions = submit_wave(8, timing, &updates);
                    assert_eq!(versions, 4);
                })
            },
        );
    }
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
