//! A dense parameter vector: the unit of aggregation.

use lifl_types::{LiflError, Result};
use serde::{Deserialize, Serialize};

/// A dense model: a flat `f32` parameter vector (the softmax-regression
/// weight matrix plus bias, stored row-major).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DenseModel {
    params: Vec<f32>,
}

impl DenseModel {
    /// A model with all parameters at zero.
    pub fn zeros(dim: usize) -> Self {
        DenseModel {
            params: vec![0.0; dim],
        }
    }

    /// Wraps an existing parameter vector.
    pub fn from_vec(params: Vec<f32>) -> Self {
        DenseModel { params }
    }

    /// Number of parameters.
    pub fn dim(&self) -> usize {
        self.params.len()
    }

    /// Whether the model has no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Read-only view of the parameters.
    pub fn as_slice(&self) -> &[f32] {
        &self.params
    }

    /// Mutable view of the parameters.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.params
    }

    /// Consumes the model, returning the parameter vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.params
    }

    /// Euclidean norm of the parameters.
    pub fn l2_norm(&self) -> f64 {
        self.params
            .iter()
            .map(|p| (*p as f64) * (*p as f64))
            .sum::<f64>()
            .sqrt()
    }

    /// Adds `scale * other` into this model.
    ///
    /// # Errors
    /// Returns [`LiflError::DimensionMismatch`] if the dimensions differ.
    pub fn axpy(&mut self, scale: f32, other: &DenseModel) -> Result<()> {
        if self.dim() != other.dim() {
            return Err(LiflError::DimensionMismatch {
                expected: self.dim(),
                actual: other.dim(),
            });
        }
        crate::kernels::axpy(&mut self.params, &other.params, scale);
        Ok(())
    }

    /// Overwrites this model with `src`, resizing if required while reusing
    /// the existing allocation when its capacity suffices.
    pub fn copy_from_slice(&mut self, src: &[f32]) {
        self.params.clear();
        self.params.extend_from_slice(src);
    }

    /// Multiplies every parameter by `scale`.
    pub fn scale(&mut self, scale: f32) {
        for p in &mut self.params {
            *p *= scale;
        }
    }

    /// Serialized size in bytes (little-endian `f32`).
    pub fn byte_size(&self) -> u64 {
        (self.params.len() * 4) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_and_scale() {
        let mut a = DenseModel::from_vec(vec![1.0, 2.0]);
        let b = DenseModel::from_vec(vec![10.0, 20.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[6.0, 12.0]);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[12.0, 24.0]);
        assert_eq!(a.byte_size(), 8);
    }

    #[test]
    fn dimension_mismatch_is_error() {
        let mut a = DenseModel::zeros(3);
        let b = DenseModel::zeros(4);
        assert!(matches!(
            a.axpy(1.0, &b),
            Err(LiflError::DimensionMismatch {
                expected: 3,
                actual: 4
            })
        ));
    }

    #[test]
    fn norm_of_zeros_is_zero() {
        assert_eq!(DenseModel::zeros(100).l2_norm(), 0.0);
        assert!(DenseModel::from_vec(vec![3.0, 4.0]).l2_norm() - 5.0 < 1e-9);
    }
}
