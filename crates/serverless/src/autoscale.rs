//! Threshold-based (Knative KPA-style) autoscaling (§2.3): desired replicas =
//! ceil(observed concurrency / per-instance concurrency target), with no
//! knowledge of the aggregation hierarchy.

use serde::{Deserialize, Serialize};

/// A simple concurrency-threshold autoscaler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdAutoscaler {
    /// Target concurrent updates per instance.
    pub target_concurrency: u32,
    /// Maximum instances the platform will create.
    pub max_instances: u32,
    /// Minimum instances kept running.
    pub min_instances: u32,
}

impl Default for ThresholdAutoscaler {
    fn default() -> Self {
        ThresholdAutoscaler {
            target_concurrency: 2,
            max_instances: 64,
            min_instances: 0,
        }
    }
}

impl ThresholdAutoscaler {
    /// Desired instance count for the observed number of in-flight updates.
    pub fn desired_instances(&self, in_flight: u32) -> u32 {
        let desired = (in_flight as f64 / self.target_concurrency.max(1) as f64).ceil() as u32;
        desired.clamp(self.min_instances, self.max_instances)
    }

    /// Scaling decision relative to the current instance count: positive means
    /// scale up by that many instances, negative means scale down.
    pub fn decision(&self, in_flight: u32, current: u32) -> i64 {
        self.desired_instances(in_flight) as i64 - current as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desired_scales_with_load() {
        let a = ThresholdAutoscaler::default();
        assert_eq!(a.desired_instances(0), 0);
        assert_eq!(a.desired_instances(1), 1);
        assert_eq!(a.desired_instances(4), 2);
        assert_eq!(a.desired_instances(9), 5);
    }

    #[test]
    fn clamped_by_min_max() {
        let a = ThresholdAutoscaler {
            target_concurrency: 1,
            max_instances: 3,
            min_instances: 1,
        };
        assert_eq!(a.desired_instances(0), 1);
        assert_eq!(a.desired_instances(100), 3);
    }

    #[test]
    fn decision_sign() {
        let a = ThresholdAutoscaler::default();
        assert!(a.decision(10, 1) > 0);
        assert!(a.decision(0, 3) < 0);
        assert_eq!(a.decision(4, 2), 0);
    }
}
