//! End-to-end data-plane pipelines (Fig. 5, Fig. 7, Fig. 13).
//!
//! A [`Pipeline`] is a sequence of hops, each with latency, CPU and buffered
//! memory. [`DataPlaneKind`] builds the aggregator-to-aggregator pipelines of
//! Fig. 7; [`QueuingSetup`] builds the client-to-aggregator message-queuing
//! pipelines of Fig. 5 / Fig. 13 (Appendix F).

use crate::broker::BrokerModel;
use crate::gateway::GatewayModel;
use crate::grpc::GrpcChannelModel;
use crate::kernel_net::KernelNetModel;
use crate::sharedmem::SharedMemoryModel;
use crate::sidecar::ContainerSidecarModel;
use lifl_types::{CpuCycles, SimDuration, SystemKind};
use serde::{Deserialize, Serialize};

/// One hop of a data-plane pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HopCost {
    /// Component name ("kernel", "sidecar", "broker", "shm", "gateway", "grpc").
    pub component: String,
    /// Latency contributed by this hop.
    pub latency: SimDuration,
    /// CPU cycles contributed by this hop.
    pub cpu: CpuCycles,
    /// Bytes buffered at this hop while the message is in flight.
    pub buffered_bytes: u64,
}

/// An end-to-end pipeline: an ordered list of hops.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Pipeline {
    /// Ordered hops.
    pub hops: Vec<HopCost>,
}

impl Pipeline {
    /// Total end-to-end latency.
    pub fn latency(&self) -> SimDuration {
        self.hops.iter().map(|h| h.latency).sum()
    }

    /// Total CPU cycles.
    pub fn cpu(&self) -> CpuCycles {
        self.hops.iter().map(|h| h.cpu).sum()
    }

    /// Total bytes buffered along the path (the memory cost of Fig. 13(b)).
    pub fn buffered_bytes(&self) -> u64 {
        self.hops.iter().map(|h| h.buffered_bytes).sum()
    }

    /// Bytes buffered along the path excluding hops named `component`.
    ///
    /// Fig. 13(b) reports the *queuing* memory cost and therefore excludes the
    /// kernel receive buffer that every setup pays identically.
    pub fn buffered_bytes_excluding(&self, component: &str) -> u64 {
        self.hops
            .iter()
            .filter(|h| h.component != component)
            .map(|h| h.buffered_bytes)
            .sum()
    }

    /// Latency attributed to hops whose component name matches `component`.
    pub fn latency_of(&self, component: &str) -> SimDuration {
        self.hops
            .iter()
            .filter(|h| h.component == component)
            .map(|h| h.latency)
            .sum()
    }
}

/// The aggregator-to-aggregator data planes compared in Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataPlaneKind {
    /// Serverful: direct gRPC between aggregators.
    ServerfulGrpc,
    /// Serverless: container sidecars on both ends plus a message broker in between.
    ServerlessBrokerSidecar,
    /// LIFL: shared-memory hand-off steered by the SKMSG/sockmap path.
    LiflSharedMemory,
}

impl DataPlaneKind {
    /// The data plane used by each evaluated system.
    pub fn for_system(system: SystemKind) -> DataPlaneKind {
        match system {
            SystemKind::Serverful | SystemKind::SfMono | SystemKind::SfMicro => {
                DataPlaneKind::ServerfulGrpc
            }
            SystemKind::Serverless | SystemKind::SlBasic => DataPlaneKind::ServerlessBrokerSidecar,
            SystemKind::Lifl | SystemKind::SlHierarchical => DataPlaneKind::LiflSharedMemory,
        }
    }

    /// Builds the intra-node aggregator-to-aggregator pipeline for an update
    /// of `bytes` (the Fig. 7 microbenchmark).
    pub fn intra_node_pipeline(self, bytes: u64, models: &PipelineModels) -> Pipeline {
        let mut hops = Vec::new();
        match self {
            DataPlaneKind::ServerfulGrpc => {
                hops.push(HopCost {
                    component: "grpc".to_string(),
                    latency: models.grpc.intra_node_latency(bytes),
                    cpu: models.grpc.intra_node_cpu(bytes),
                    buffered_bytes: models.grpc.buffered_bytes(bytes),
                });
            }
            DataPlaneKind::ServerlessBrokerSidecar => {
                hops.push(HopCost {
                    component: "kernel".to_string(),
                    latency: models.grpc.intra_node_latency(bytes),
                    cpu: models.grpc.intra_node_cpu(bytes),
                    buffered_bytes: models.grpc.buffered_bytes(bytes),
                });
                hops.push(HopCost {
                    component: "sidecar".to_string(),
                    latency: models.sidecar.latency(bytes) + models.sidecar.latency(bytes),
                    cpu: CpuCycles(models.sidecar.cpu(bytes).0 * 2.0),
                    buffered_bytes: 2 * models.sidecar.buffered_bytes(bytes),
                });
                hops.push(HopCost {
                    component: "broker".to_string(),
                    latency: models.broker.latency(bytes),
                    cpu: models.broker.cpu(bytes),
                    buffered_bytes: models.broker.buffered_bytes(bytes),
                });
            }
            DataPlaneKind::LiflSharedMemory => {
                hops.push(HopCost {
                    component: "shm".to_string(),
                    latency: models.shm.latency(bytes),
                    cpu: models.shm.cpu(bytes),
                    buffered_bytes: models.shm.buffered_bytes(bytes),
                });
            }
        }
        Pipeline { hops }
    }
}

/// The client-to-aggregator message-queuing setups of Fig. 5 / Fig. 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueuingSetup {
    /// Monolithic serverful: in-memory queue inside the always-on aggregator.
    SfMono,
    /// Microservice serverful: stateless aggregator behind a message broker.
    SfMicro,
    /// Basic serverless: broker plus a container sidecar in front of the function.
    SlBasic,
    /// LIFL: per-node gateway writing directly into shared memory.
    Lifl,
}

impl QueuingSetup {
    /// All setups in the order the paper's Fig. 13 plots them.
    pub fn all() -> [QueuingSetup; 4] {
        [
            QueuingSetup::SfMono,
            QueuingSetup::Lifl,
            QueuingSetup::SfMicro,
            QueuingSetup::SlBasic,
        ]
    }

    /// Label matching the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            QueuingSetup::SfMono => "SF-mono",
            QueuingSetup::SfMicro => "SF-micro",
            QueuingSetup::SlBasic => "SL-B",
            QueuingSetup::Lifl => "LIFL",
        }
    }

    /// Builds the client-to-aggregator pipeline for one update of `bytes`
    /// arriving from a remote client (Appendix F; client-side costs excluded).
    pub fn queuing_pipeline(self, bytes: u64, models: &PipelineModels) -> Pipeline {
        let mut hops = Vec::new();
        // Every setup first receives the update over the node's kernel stack.
        hops.push(HopCost {
            component: "kernel".to_string(),
            latency: models.kernel.latency(bytes),
            cpu: models.kernel.cpu(bytes),
            buffered_bytes: models.kernel.buffered_bytes(bytes),
        });
        match self {
            QueuingSetup::SfMono => {
                // The monolith deserializes once and queues in its own memory.
                hops.push(HopCost {
                    component: "in-memory-queue".to_string(),
                    latency: SimDuration::from_secs(
                        models.gateway.transform_latency_per_mib * mib(bytes),
                    ),
                    cpu: CpuCycles(models.gateway.transform_cycles_per_mib * mib(bytes)),
                    buffered_bytes: bytes,
                });
            }
            QueuingSetup::SfMicro => {
                hops.push(HopCost {
                    component: "broker".to_string(),
                    latency: models.broker.latency(bytes),
                    cpu: models.broker.cpu(bytes),
                    buffered_bytes: models.broker.buffered_bytes(bytes),
                });
                hops.push(HopCost {
                    component: "aggregator-rx".to_string(),
                    latency: models.kernel.latency(bytes),
                    cpu: models.kernel.cpu(bytes),
                    buffered_bytes: bytes,
                });
            }
            QueuingSetup::SlBasic => {
                hops.push(HopCost {
                    component: "broker".to_string(),
                    latency: models.broker.latency(bytes),
                    cpu: models.broker.cpu(bytes),
                    buffered_bytes: models.broker.buffered_bytes(bytes),
                });
                hops.push(HopCost {
                    component: "sidecar".to_string(),
                    latency: models.sidecar.latency(bytes),
                    cpu: models.sidecar.cpu(bytes),
                    buffered_bytes: models.sidecar.buffered_bytes(bytes),
                });
                hops.push(HopCost {
                    component: "aggregator-rx".to_string(),
                    latency: models.kernel.latency(bytes),
                    cpu: models.kernel.cpu(bytes),
                    buffered_bytes: bytes,
                });
            }
            QueuingSetup::Lifl => {
                // The gateway performs the one-time payload transform and the
                // update lands in shared memory; the aggregator reads in place.
                hops.push(HopCost {
                    component: "gateway".to_string(),
                    latency: SimDuration::from_secs(
                        models.gateway.transform_latency_per_mib * mib(bytes),
                    ),
                    cpu: CpuCycles(models.gateway.transform_cycles_per_mib * mib(bytes)),
                    buffered_bytes: bytes,
                });
                hops.push(HopCost {
                    component: "shm".to_string(),
                    latency: SimDuration::from_secs(models.shm.latency_fixed),
                    cpu: CpuCycles(models.shm.cycles_fixed),
                    buffered_bytes: 0,
                });
            }
        }
        Pipeline { hops }
    }
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// The component models a pipeline is built from.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PipelineModels {
    /// Kernel networking path.
    pub kernel: KernelNetModel,
    /// gRPC channel.
    pub grpc: GrpcChannelModel,
    /// Container sidecar.
    pub sidecar: ContainerSidecarModel,
    /// Message broker.
    pub broker: BrokerModel,
    /// Shared-memory hop.
    pub shm: SharedMemoryModel,
    /// Per-node gateway.
    pub gateway: GatewayModel,
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifl_types::ModelKind;

    fn models() -> PipelineModels {
        PipelineModels::default()
    }

    #[test]
    fn fig7_ordering_lifl_sf_sl() {
        let bytes = ModelKind::ResNet152.update_bytes();
        let lifl = DataPlaneKind::LiflSharedMemory.intra_node_pipeline(bytes, &models());
        let sf = DataPlaneKind::ServerfulGrpc.intra_node_pipeline(bytes, &models());
        let sl = DataPlaneKind::ServerlessBrokerSidecar.intra_node_pipeline(bytes, &models());
        assert!(lifl.latency() < sf.latency());
        assert!(sf.latency() < sl.latency());
        // Paper ratios: SF ~3x LIFL, SL ~5.8x LIFL, SL ~2x SF.
        let r_sf = sf.latency().as_secs() / lifl.latency().as_secs();
        let r_sl = sl.latency().as_secs() / lifl.latency().as_secs();
        assert!((2.0..4.5).contains(&r_sf), "SF/LIFL = {r_sf}");
        assert!((4.5..8.0).contains(&r_sl), "SL/LIFL = {r_sl}");
        assert!(lifl.cpu().0 < sf.cpu().0);
        assert!(sf.cpu().0 < sl.cpu().0);
    }

    #[test]
    fn broker_share_of_sl_path_is_about_20_percent() {
        let bytes = ModelKind::ResNet152.update_bytes();
        let sl = DataPlaneKind::ServerlessBrokerSidecar.intra_node_pipeline(bytes, &models());
        let share = sl.latency_of("broker").as_secs() / sl.latency().as_secs();
        assert!((0.1..0.35).contains(&share), "broker share {share}");
    }

    #[test]
    fn fig13_memory_ordering() {
        let bytes = ModelKind::ResNet34.update_bytes();
        let mono = QueuingSetup::SfMono.queuing_pipeline(bytes, &models());
        let lifl = QueuingSetup::Lifl.queuing_pipeline(bytes, &models());
        let micro = QueuingSetup::SfMicro.queuing_pipeline(bytes, &models());
        let slb = QueuingSetup::SlBasic.queuing_pipeline(bytes, &models());
        // Paper: SL-B consumes ~3x the memory of SF-mono and LIFL; SF-micro in between.
        assert!(slb.buffered_bytes() > micro.buffered_bytes());
        assert!(micro.buffered_bytes() > lifl.buffered_bytes());
        assert!(lifl.buffered_bytes() <= mono.buffered_bytes());
        let ratio = slb.buffered_bytes() as f64 / lifl.buffered_bytes() as f64;
        assert!(
            (1.8..3.2).contains(&ratio),
            "SL-B/LIFL memory ratio {ratio}"
        );
    }

    #[test]
    fn fig13_cpu_and_delay_ordering() {
        let bytes = ModelKind::ResNet152.update_bytes();
        let lifl = QueuingSetup::Lifl.queuing_pipeline(bytes, &models());
        let micro = QueuingSetup::SfMicro.queuing_pipeline(bytes, &models());
        let slb = QueuingSetup::SlBasic.queuing_pipeline(bytes, &models());
        let mono = QueuingSetup::SfMono.queuing_pipeline(bytes, &models());
        assert!(lifl.cpu().0 < slb.cpu().0);
        assert!(lifl.cpu().0 < micro.cpu().0);
        assert!(lifl.latency() < slb.latency());
        assert!(lifl.latency() < micro.latency());
        // LIFL is equivalent to the monolithic serverful design (Appendix F).
        let ratio = lifl.latency().as_secs() / mono.latency().as_secs();
        assert!(
            (0.7..1.3).contains(&ratio),
            "LIFL/SF-mono delay ratio {ratio}"
        );
    }

    #[test]
    fn system_to_dataplane_mapping() {
        assert_eq!(
            DataPlaneKind::for_system(SystemKind::Lifl),
            DataPlaneKind::LiflSharedMemory
        );
        assert_eq!(
            DataPlaneKind::for_system(SystemKind::SlHierarchical),
            DataPlaneKind::LiflSharedMemory
        );
        assert_eq!(
            DataPlaneKind::for_system(SystemKind::Serverful),
            DataPlaneKind::ServerfulGrpc
        );
        assert_eq!(
            DataPlaneKind::for_system(SystemKind::Serverless),
            DataPlaneKind::ServerlessBrokerSidecar
        );
    }

    #[test]
    fn all_setups_have_labels() {
        for setup in QueuingSetup::all() {
            assert!(!setup.label().is_empty());
        }
    }
}
