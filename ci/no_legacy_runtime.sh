#!/bin/sh
# CI guard: the legacy runtime (`run_hierarchical*` shims + runtime.rs,
# deleted in PR 6) must stay deleted. Fails on the module file reappearing
# or on any `run_hierarchical`, `runtime::` or `#[allow(deprecated)]` token
# in Rust sources. A line with a genuine new need can opt out by carrying a
# `no-legacy-runtime: allow` marker in a comment (none should need to).
set -u

cd "$(dirname "$0")/.."

if [ -e crates/core/src/runtime.rs ]; then
    echo "no-legacy-runtime: crates/core/src/runtime.rs is back; the legacy" >&2
    echo "runtime was deleted in PR 6 (see MIGRATION.md) and must stay gone." >&2
    exit 1
fi

hits=$(grep -rnE --include='*.rs' \
    'run_hierarchical|runtime::|allow\(deprecated\)' \
    crates tests examples 2>/dev/null |
    grep -v 'no-legacy-runtime: allow' || true)
if [ -n "$hits" ]; then
    echo "no-legacy-runtime: references to the deleted legacy runtime found:" >&2
    echo "$hits" >&2
    echo "Port the call sites onto Session/Cluster (see MIGRATION.md), or" >&2
    echo "mark a genuinely unrelated line with 'no-legacy-runtime: allow'." >&2
    exit 1
fi

echo "no-legacy-runtime: clean"
