//! The metric server (§3, Fig. 3/6): aggregates the per-node arrival rates
//! `k_{i,t}` and average execution times `E_{i,t}` that the LIFL agents drain
//! from their eBPF metrics maps, and exposes the queue-length estimate
//! `Q_{i,t} = k_{i,t} · E_{i,t}` the autoscaler plans against (§5.1–§5.2).

use lifl_types::{NodeId, SimDuration};
use std::collections::HashMap;

/// One node's reported load sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NodeLoad {
    /// Arrival rate of model updates at the node (updates per second).
    pub arrival_rate: f64,
    /// Average execution time to aggregate one update on the node.
    pub avg_exec_time: SimDuration,
}

impl NodeLoad {
    /// Coarse-grained queue-length estimate `Q_{i,t} = k_{i,t} · E_{i,t}` (§5.1).
    pub fn queue_estimate(&self) -> f64 {
        self.arrival_rate * self.avg_exec_time.as_secs()
    }

    /// Residual service capacity given the node's maximum capacity MC_i.
    pub fn residual_capacity(&self, max_capacity: f64) -> f64 {
        (max_capacity - self.queue_estimate()).max(0.0)
    }
}

/// The cluster-wide metric server.
#[derive(Debug, Clone, Default)]
pub struct MetricServer {
    loads: HashMap<NodeId, NodeLoad>,
}

impl MetricServer {
    /// Creates an empty metric server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reports (replaces) the latest load sample for `node`.
    pub fn report(&mut self, node: NodeId, load: NodeLoad) {
        self.loads.insert(node, load);
    }

    /// The latest load sample for `node`.
    pub fn load(&self, node: NodeId) -> NodeLoad {
        self.loads.get(&node).copied().unwrap_or_default()
    }

    /// Queue estimates for every reporting node, sorted by node id.
    pub fn queue_estimates(&self) -> Vec<(NodeId, f64)> {
        let mut v: Vec<(NodeId, f64)> = self
            .loads
            .iter()
            .map(|(n, l)| (*n, l.queue_estimate()))
            .collect();
        v.sort_by_key(|(n, _)| *n);
        v
    }

    /// Number of nodes that have reported.
    pub fn nodes_reporting(&self) -> usize {
        self.loads.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_estimate_formula() {
        let load = NodeLoad {
            arrival_rate: 2.0,
            avg_exec_time: SimDuration::from_secs(3.0),
        };
        assert_eq!(load.queue_estimate(), 6.0);
        assert_eq!(load.residual_capacity(20.0), 14.0);
        assert_eq!(load.residual_capacity(4.0), 0.0);
    }

    #[test]
    fn report_and_query() {
        let mut server = MetricServer::new();
        server.report(
            NodeId::new(1),
            NodeLoad {
                arrival_rate: 1.0,
                avg_exec_time: SimDuration::from_secs(2.0),
            },
        );
        server.report(
            NodeId::new(0),
            NodeLoad {
                arrival_rate: 5.0,
                avg_exec_time: SimDuration::from_secs(1.0),
            },
        );
        assert_eq!(server.nodes_reporting(), 2);
        assert_eq!(server.load(NodeId::new(1)).queue_estimate(), 2.0);
        assert_eq!(server.load(NodeId::new(9)).queue_estimate(), 0.0);
        let estimates = server.queue_estimates();
        assert_eq!(estimates[0].0, NodeId::new(0));
        assert_eq!(estimates[0].1, 5.0);
    }
}
