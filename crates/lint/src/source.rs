//! A lexed source file plus the per-file facts every rule needs: which
//! tokens sit inside `#[cfg(test)]` items, and which lines carry
//! `lifl-lint: allow(...)` escape-hatch markers.

use crate::lexer::{lex, Tok, TokKind};
use crate::{Finding, Rule};

/// An `// lifl-lint: allow(<rule>) — justification` marker parsed out of a
/// comment. Line markers suppress findings on their own line and on the next
/// line that carries code; `allow-file` markers suppress a rule for the whole
/// file (used for the counting allocator's `GlobalAlloc` impl, which is a
/// sanctioned unsafe site outside the kernels directory).
#[derive(Debug)]
pub struct AllowMarker {
    /// The rule being allowed, if the marker named a known one.
    pub rule: Option<Rule>,
    /// Raw rule name as written, for diagnostics on unknown rules.
    pub raw_rule: String,
    /// Line the marker comment starts on.
    pub line: u32,
    /// Whether this is a file-level `allow-file` marker.
    pub file_level: bool,
    /// Whether a non-empty justification string follows the marker.
    pub justified: bool,
    /// First line after the marker that carries a code token (the line a
    /// line-level marker also applies to).
    pub next_code_line: u32,
}

/// One source file: path, raw lines, token stream, and derived facts.
pub struct SourceFile {
    /// Path relative to the workspace root, with forward slashes.
    pub rel: String,
    /// Raw source lines (for line-shape checks like R2's comment scan).
    pub lines: Vec<String>,
    /// Full token stream, comments included.
    pub toks: Vec<Tok>,
    /// `test_mask[i]` is true when token `i` sits inside a `#[cfg(test)]` or
    /// `#[test]` item (or the file carries an inner `#![cfg(test)]`).
    pub test_mask: Vec<bool>,
    /// All allow markers found in comments.
    pub allows: Vec<AllowMarker>,
}

impl SourceFile {
    /// Lexes `text` and computes the derived facts.
    pub fn new(rel: String, text: &str) -> SourceFile {
        let toks = lex(text);
        let lines = text.lines().map(str::to_string).collect();
        let test_mask = compute_test_mask(&toks);
        let allows = parse_allow_markers(&toks);
        SourceFile {
            rel,
            lines,
            toks,
            test_mask,
            allows,
        }
    }

    /// True when token `i` is inside test-gated code.
    pub fn is_test(&self, i: usize) -> bool {
        self.test_mask.get(i).copied().unwrap_or(false)
    }

    /// True when a finding of `rule` at `line` is suppressed by a marker.
    pub fn allowed(&self, rule: Rule, line: u32) -> bool {
        self.allows.iter().any(|m| {
            m.rule == Some(rule)
                && m.justified
                && (m.file_level || m.line == line || m.next_code_line == line)
        })
    }

    /// Findings about the markers themselves: unknown rule names and missing
    /// justifications. These are never suppressible.
    pub fn marker_findings(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        for m in &self.allows {
            if m.rule.is_none() {
                out.push(Finding {
                    file: self.rel.clone(),
                    line: m.line,
                    rule: Rule::Marker,
                    message: format!(
                        "allow marker names unknown rule `{}` (known: {})",
                        m.raw_rule,
                        Rule::catalog()
                    ),
                });
            } else if !m.justified {
                out.push(Finding {
                    file: self.rel.clone(),
                    line: m.line,
                    rule: Rule::Marker,
                    message: format!(
                        "allow marker for `{}` has no justification; write \
                         `lifl-lint: allow({}) — <why this site is exempt>`",
                        m.raw_rule, m.raw_rule
                    ),
                });
            }
        }
        out
    }
}

/// Marks every token belonging to an item gated on tests: `#[test]`,
/// `#[cfg(test)]` and `#[cfg(any(.., test, ..))]` outer attributes, plus the
/// inner `#![cfg(test)]` form which gates the whole file.
fn compute_test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let code: Vec<usize> = (0..toks.len()).filter(|&i| toks[i].is_code()).collect();
    let mut k = 0usize;
    while k < code.len() {
        if !toks[code[k]].is_punct("#") {
            k += 1;
            continue;
        }
        let mut j = k + 1;
        let inner = j < code.len() && toks[code[j]].is_punct("!");
        if inner {
            j += 1;
        }
        if j >= code.len() || !toks[code[j]].is_punct("[") {
            k += 1;
            continue;
        }
        let Some(close) = matching(toks, &code, j, "[", "]") else {
            break;
        };
        if !attr_is_test(toks, &code[j + 1..close]) {
            k = close + 1;
            continue;
        }
        if inner {
            // `#![cfg(test)]`: the whole file is test code.
            mask.iter_mut().for_each(|m| *m = true);
            return mask;
        }
        // Skip any further outer attributes between this one and the item.
        let mut m = close + 1;
        while m + 1 < code.len() && toks[code[m]].is_punct("#") && toks[code[m + 1]].is_punct("[") {
            match matching(toks, &code, m + 1, "[", "]") {
                Some(c) => m = c + 1,
                None => break,
            }
        }
        let end = item_end(toks, &code, m).unwrap_or(code.len() - 1);
        // Mask the whole token range, comments included.
        for slot in mask[code[k]..=code[end]].iter_mut() {
            *slot = true;
        }
        k = end + 1;
    }
    mask
}

/// Index (into `code`) of the delimiter matching `code[open]`.
fn matching(toks: &[Tok], code: &[usize], open: usize, o: &str, c: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (k, &idx) in code.iter().enumerate().skip(open) {
        if toks[idx].is_punct(o) {
            depth += 1;
        } else if toks[idx].is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// True when the attribute tokens (between `[` and `]`) gate on tests:
/// `test`, `cfg(test)`, or a `cfg(...)` whose predicate mentions the `test`
/// identifier.
fn attr_is_test(toks: &[Tok], attr: &[usize]) -> bool {
    let Some(&first) = attr.first() else {
        return false;
    };
    if toks[first].is_ident("test") {
        return true;
    }
    toks[first].is_ident("cfg") && attr.iter().any(|&i| toks[i].is_ident("test"))
}

/// Index (into `code`) of the last token of the item starting at `code[from]`:
/// the matching `}` of its first top-level `{`, or a top-level `;`.
fn item_end(toks: &[Tok], code: &[usize], from: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut k = from;
    while k < code.len() {
        let t = &toks[code[k]];
        if t.is_punct("{") && depth == 0 {
            return matching(toks, code, k, "{", "}");
        }
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
        } else if t.is_punct(";") && depth == 0 {
            return Some(k);
        }
        k += 1;
    }
    None
}

/// Extracts allow markers from plain (non-doc) comment tokens. Grammar:
/// `lifl-lint: allow(<rule>) <sep> <justification>` or
/// `lifl-lint: allow-file(<rule>) <sep> <justification>`, where `<rule>` is a
/// rule name (`panic`) or code (`R4`) and `<sep>` is optional punctuation.
/// Doc comments are exempt so prose can *describe* the marker syntax (as this
/// very comment does) without being parsed as a marker.
fn parse_allow_markers(toks: &[Tok]) -> Vec<AllowMarker> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_comment() || t.kind == TokKind::DocComment {
            continue;
        }
        let Some(at) = t.text.find("lifl-lint:") else {
            continue;
        };
        let rest = t.text[at + "lifl-lint:".len()..].trim_start();
        let file_level = rest.starts_with("allow-file(");
        let prefix = if file_level { "allow-file(" } else { "allow(" };
        let Some(body) = rest.strip_prefix(prefix) else {
            continue;
        };
        let Some(close) = body.find(')') else {
            continue;
        };
        let raw_rule = body[..close].trim().to_string();
        let tail = body[close + 1..]
            .trim_matches(|c: char| c == '*' || c == '/')
            .trim_start_matches(|c: char| {
                c.is_whitespace() || c == '-' || c == '—' || c == '–' || c == ':'
            });
        let next_code_line = toks[i + 1..]
            .iter()
            .find(|n| n.is_code() && n.line > t.line)
            .map(|n| n.line)
            .unwrap_or(t.line);
        out.push(AllowMarker {
            rule: Rule::from_marker_name(&raw_rule),
            raw_rule,
            line: t.line,
            file_level,
            justified: !tail.trim().is_empty(),
            next_code_line,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new("x.rs".into(), src)
    }

    fn ident_is_test(f: &SourceFile, name: &str) -> bool {
        let idx = f
            .toks
            .iter()
            .position(|t| t.is_ident(name))
            .expect("token present");
        f.is_test(idx)
    }

    #[test]
    fn cfg_test_module_is_masked() {
        let f = file(
            "fn live() { work(); }\n\
             #[cfg(test)]\nmod tests {\n fn t() { dead(); }\n}\n\
             fn live2() { more(); }\n",
        );
        assert!(!ident_is_test(&f, "work"));
        assert!(ident_is_test(&f, "dead"));
        assert!(!ident_is_test(&f, "more"));
    }

    #[test]
    fn test_attr_fn_is_masked() {
        let f = file("#[test]\nfn check() { probe(); }\nfn live() { real(); }\n");
        assert!(ident_is_test(&f, "probe"));
        assert!(!ident_is_test(&f, "real"));
    }

    #[test]
    fn cfg_any_test_is_masked() {
        let f = file("#[cfg(any(test, feature = \"x\"))]\nfn helper() { gated(); }\n");
        assert!(ident_is_test(&f, "gated"));
    }

    #[test]
    fn other_attrs_are_not_test() {
        let f = file("#[derive(Debug)]\nstruct S { a: u32 }\nfn live() { real(); }\n");
        assert!(!ident_is_test(&f, "real"));
        assert!(!ident_is_test(&f, "a"));
    }

    #[test]
    fn stacked_attributes_are_covered() {
        let f = file("#[cfg(test)]\n#[allow(dead_code)]\nfn t() { dead(); }\nfn l() { live(); }\n");
        assert!(ident_is_test(&f, "dead"));
        assert!(!ident_is_test(&f, "live"));
    }

    #[test]
    fn inner_cfg_test_masks_whole_file() {
        let f = file("#![cfg(test)]\nfn anything() { dead(); }\n");
        assert!(ident_is_test(&f, "dead"));
    }

    #[test]
    fn semicolon_items_end_the_span() {
        let f = file("#[cfg(test)]\nuse std::collections::HashMap;\nfn live() { real(); }\n");
        assert!(ident_is_test(&f, "HashMap"));
        assert!(!ident_is_test(&f, "real"));
    }

    #[test]
    fn line_marker_applies_to_next_code_line() {
        let f = file(
            "// lifl-lint: allow(panic) — justified reason\n\
             foo.unwrap();\nbar.unwrap();\n",
        );
        assert!(f.allowed(Rule::Panic, 2));
        assert!(!f.allowed(Rule::Panic, 3));
        assert!(f.marker_findings().is_empty());
    }

    #[test]
    fn marker_without_justification_is_reported() {
        let f = file("// lifl-lint: allow(panic)\nfoo.unwrap();\n");
        assert!(!f.allowed(Rule::Panic, 2));
        let findings = f.marker_findings();
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("no justification"));
    }

    #[test]
    fn marker_with_unknown_rule_is_reported() {
        let f = file("// lifl-lint: allow(bogus) — whatever\n");
        let findings = f.marker_findings();
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("unknown rule"));
    }

    #[test]
    fn file_marker_covers_every_line() {
        let f = file(
            "// lifl-lint: allow-file(unsafe) — sanctioned allocator impl\n\
             fn a() {}\nfn b() {}\n",
        );
        assert!(f.allowed(Rule::UnsafeContainment, 3));
    }

    #[test]
    fn rule_codes_work_as_marker_names() {
        let f = file("// lifl-lint: allow(R4) — reason\nx.unwrap();\n");
        assert!(f.allowed(Rule::Panic, 2));
    }
}
