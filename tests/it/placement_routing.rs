//! Consistency between placement, the hierarchy plan, the TAG and routing.

use lifl_core::hierarchy::HierarchyPlan;
use lifl_core::placement::{NodeCapacity, PlacementEngine};
use lifl_core::tag::{Role, TopologyAbstractionGraph};
use lifl_core::RoutingTable;
use lifl_types::{AggregatorId, AggregatorRole, NodeId, PlacementPolicy};

#[test]
fn placement_feeds_hierarchy_plan_and_routes() {
    // Place 24 updates over 3 nodes of capacity 20 with BestFit.
    let engine = PlacementEngine::new(PlacementPolicy::BestFit);
    let mut caps: Vec<NodeCapacity> = (0..3)
        .map(|i| NodeCapacity::new(NodeId::new(i), 20))
        .collect();
    let outcome = engine.place_batch(24, &mut caps);
    assert_eq!(outcome.assignments.len(), 24);
    assert_eq!(outcome.nodes_used, 2);

    // Build the per-node pending counts and plan the hierarchy.
    let mut pending: Vec<(NodeId, u32)> = Vec::new();
    for cap in &caps {
        pending.push((cap.node, cap.assigned));
    }
    let plan = HierarchyPlan::plan(&pending, 2);
    assert_eq!(plan.total_updates(), 24);
    let top = plan.top_node.unwrap();

    // Build a TAG from the plan and check routing tables on every node.
    let mut tag = TopologyAbstractionGraph::new();
    let mut next_id = 0u64;
    let mut middles = Vec::new();
    for node_plan in &plan.nodes {
        let mut leaf_ids = Vec::new();
        for _ in 0..node_plan.leaves() {
            let id = AggregatorId::new(next_id);
            next_id += 1;
            tag.add_role(Role {
                aggregator: id,
                role: AggregatorRole::Leaf,
                node: node_plan.node,
                group: format!("node-{}", node_plan.node.index()),
            });
            leaf_ids.push(id);
        }
        let mid = AggregatorId::new(next_id);
        next_id += 1;
        tag.add_role(Role {
            aggregator: mid,
            role: AggregatorRole::Middle,
            node: node_plan.node,
            group: format!("node-{}", node_plan.node.index()),
        });
        for leaf in leaf_ids {
            assert!(tag.connect(leaf, mid).is_some());
        }
        middles.push((node_plan.node, mid));
    }
    let top_agg = AggregatorId::new(next_id);
    tag.add_role(Role {
        aggregator: top_agg,
        role: AggregatorRole::Top,
        node: top,
        group: format!("node-{}", top.index()),
    });
    for (_, mid) in &middles {
        assert!(tag.connect(*mid, top_agg).is_some());
    }

    // Every middle can resolve its next hop to the top from its own node.
    for (node, mid) in &middles {
        let mut table = RoutingTable::new(*node);
        table.apply_tag(&tag);
        let hop = table.next_hop(*mid, top_agg).expect("route to top");
        if *node == top {
            assert!(matches!(hop, lifl_core::routing::NextHop::Local(_)));
        } else {
            assert!(matches!(hop, lifl_core::routing::NextHop::Remote { .. }));
        }
    }
    // Intra-node channels never cross the gateway.
    assert_eq!(
        tag.inter_node_channels(),
        middles.iter().filter(|(n, _)| *n != top).count()
    );
}
