pub(super) fn axpy(acc: &mut [f32], src: &[f32], w: f32) {
    for (a, b) in acc.iter_mut().zip(src) {
        *a += w * b;
    }
}

// lifl-lint: allow(kernel-parity) — index-driven scatter, scalar-only by
// design; both dispatch arms run this routine.
pub(super) fn scatter(acc: &mut [f32], idx: &[usize]) {
    for &i in idx {
        acc[i] = 0.0;
    }
}
