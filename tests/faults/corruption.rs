//! Corrupted client updates at 10–30% of the fleet: adversarially scaled
//! models and random byte flips. Robust fold policies keep the global
//! aggregate inside the honest per-coordinate envelope; plain FedAvg is
//! dragged orders of magnitude outside it by the same fleet.

use crate::util::{envelope, updates};
use lifl_core::cluster::ClusterBuilder;
use lifl_core::session::Update;
use lifl_fl::aggregate::ModelUpdate;
use lifl_fl::DenseModel;
use lifl_simcore::SimRng;
use lifl_types::{FoldPolicy, Topology};

const DIM: usize = 32;

/// Two nodes each folding a flat batch of 10: 20 clients per round, routed
/// round-robin so corruption lands evenly on both nodes.
fn topology() -> Topology {
    Topology::new(vec![10, 2]).expect("topology")
}

fn drive(policy: FoldPolicy, batch: &[ModelUpdate]) -> ModelUpdate {
    let mut cluster = ClusterBuilder::new()
        .topology(topology())
        .fold_policy(policy)
        .build()
        .expect("cluster");
    cluster
        .ingest_all(batch.iter().cloned().map(Update::Dense))
        .unwrap();
    cluster.drive().unwrap().update
}

/// Replaces the updates at `corrupt` indices with adversarially scaled
/// copies: every coordinate multiplied far outside the honest range.
fn scale_attack(batch: &mut [ModelUpdate], corrupt: &[usize], scale: f32) {
    for &i in corrupt {
        let scaled: Vec<f32> = batch[i]
            .model
            .as_slice()
            .iter()
            .map(|v| v * scale)
            .collect();
        batch[i].model = DenseModel::from_vec(scaled);
    }
}

fn assert_in_envelope(model: &DenseModel, lo: &[f32], hi: &[f32], context: &str) {
    for (d, value) in model.as_slice().iter().enumerate() {
        assert!(
            value.is_finite() && *value >= lo[d] - 1e-3 && *value <= hi[d] + 1e-3,
            "{context}: coordinate {d} = {value} escaped the honest \
             envelope [{}, {}]",
            lo[d],
            hi[d]
        );
    }
}

/// Acceptance: at 20% and 30% adversarially scaled clients, the trimmed-mean
/// cluster stays inside the honest envelope while FedAvg over the identical
/// fleet diverges by orders of magnitude.
#[test]
fn trimmed_mean_bounds_divergence_where_fedavg_explodes() {
    let honest = updates(topology().total_updates(), DIM);
    let (lo, hi) = envelope(&honest);
    // 20% then 30% of the fleet, split evenly across both nodes by the
    // round-robin routing (evens on node 0, odds on node 1).
    for corrupt in [vec![2, 7, 12, 17], vec![1, 2, 7, 12, 17, 18]] {
        let mut batch = honest.clone();
        scale_attack(&mut batch, &corrupt, 1e4);
        let fedavg = drive(FoldPolicy::FedAvg, &batch);
        let worst = fedavg
            .model
            .as_slice()
            .iter()
            .fold(0.0f32, |acc, v| acc.max(v.abs()));
        assert!(
            worst > 100.0,
            "{} corrupt: FedAvg must diverge for the attack to be a real \
             control, got max |coordinate| = {worst}",
            corrupt.len()
        );
        // A per-side trim of 300‰ drops the 3 most extreme values per
        // coordinate at each 10-wide leaf fold — enough to absorb up to 3
        // corrupt clients per node.
        let robust = drive(FoldPolicy::TrimmedMean { trim_permille: 300 }, &batch);
        assert_in_envelope(
            &robust.model,
            &lo,
            &hi,
            &format!("trimmed mean, {} corrupt", corrupt.len()),
        );
        assert_eq!(robust.samples, fedavg.samples, "weights are not dropped");
    }
}

/// Acceptance: random byte flips (which produce huge values, denormals, NaN
/// and infinity) in 20% of the fleet leave the coordinate-wise median finite
/// and inside the honest envelope.
#[test]
fn median_survives_random_byte_flips() {
    let honest = updates(topology().total_updates(), DIM);
    let (lo, hi) = envelope(&honest);
    let mut rng = SimRng::from_seed(0xBADB17);
    let mut batch = honest.clone();
    for &i in &[2usize, 7, 12, 17] {
        let flipped: Vec<f32> = batch[i]
            .model
            .as_slice()
            .iter()
            .map(|v| f32::from_bits(v.to_bits() ^ (1u32 << rng.index(32))))
            .collect();
        batch[i].model = DenseModel::from_vec(flipped);
    }
    let median = drive(FoldPolicy::Median, &batch);
    assert_in_envelope(&median.model, &lo, &hi, "median under byte flips");
    // The identical flipped fleet poisons FedAvg: at least one coordinate is
    // no longer inside the honest envelope (bit flips in sign/exponent bits
    // move values by orders of magnitude).
    let fedavg = drive(FoldPolicy::FedAvg, &batch);
    let escaped = fedavg
        .model
        .as_slice()
        .iter()
        .enumerate()
        .filter(|(d, v)| !v.is_finite() || **v < lo[*d] - 1e-3 || **v > hi[*d] + 1e-3)
        .count();
    assert!(
        escaped > 0,
        "the byte flips must perturb FedAvg for the median test to bite"
    );
}
