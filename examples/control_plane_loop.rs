//! Walks the LIFL control-plane loop of Fig. 6: agents drain eBPF sidecar
//! metrics, report load to the metric server, and the coordinator re-plans the
//! per-node aggregation hierarchy from EWMA-smoothed queue estimates.
//!
//! Run with: `cargo run -p lifl-examples --example control_plane_loop`

use lifl_core::agent::LiflAgent;
use lifl_core::coordinator::LiflCoordinator;
use lifl_types::{AggregatorId, ClusterConfig, LiflConfig, NodeId, SimDuration, SimTime};

fn main() {
    let cluster = ClusterConfig::default();
    let mut coordinator = LiflCoordinator::new(cluster.clone(), LiflConfig::default());
    let mut agents: Vec<LiflAgent> = (0..cluster.aggregation_nodes as u64)
        .map(|i| LiflAgent::new(NodeId::new(i)))
        .collect();

    // Simulate three reporting periods with shifting load.
    for period in 0..3u64 {
        let now = SimTime::from_secs(120.0 * (period + 1) as f64);
        for (idx, agent) in agents.iter_mut().enumerate() {
            // Load concentrates on lower-numbered nodes and grows over time.
            let arrivals = (3 * (period + 1)).saturating_sub(idx as u64);
            for a in 0..arrivals {
                agent.record_arrival();
                agent.metrics().record_aggregation(
                    AggregatorId::new(a),
                    SimDuration::from_secs(0.5),
                    now,
                );
            }
            let load = agent.report_load(now);
            coordinator.metric_server_mut().report(agent.node(), load);
        }
        if coordinator.replan_due(now) {
            let plan = coordinator.replan(now);
            println!(
                "t={:>5.0}s  plan: {} aggregators over {} nodes, top on {:?}",
                now.as_secs(),
                plan.total_aggregators(),
                plan.nodes.len(),
                plan.top_node
            );
            for node_plan in &plan.nodes {
                println!(
                    "    {}: {} pending -> {} leaves{}",
                    node_plan.node,
                    node_plan.pending_updates,
                    node_plan.leaves(),
                    if node_plan.middle() { " + middle" } else { "" }
                );
            }
        }
    }
    println!("re-plans executed: {}", coordinator.replans());
}
