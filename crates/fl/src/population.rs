//! Client populations: the 2,800-client FedScale-like population with a fixed
//! number of simultaneously active clients per round (§6.2).

use crate::client::{Client, ClientAvailability};
use lifl_simcore::SimRng;
use lifl_types::ClientId;

/// Configuration of a client population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopulationConfig {
    /// Total clients in the population (paper: 2,800).
    pub total_clients: usize,
    /// Simultaneously active clients per round (paper: 120 for ResNet-18, 15 for ResNet-152).
    pub active_per_round: usize,
    /// Availability behaviour of every client.
    pub availability: ClientAvailability,
    /// Mean local samples per client.
    pub mean_samples: u64,
    /// Heterogeneity of compute speed: speeds are drawn from
    /// `[1 - spread, 1 + spread]`.
    pub speed_spread: f64,
}

impl PopulationConfig {
    /// The ResNet-18 mobile-device setup of §6.2.
    pub fn resnet18_paper() -> Self {
        PopulationConfig {
            total_clients: 2800,
            active_per_round: 120,
            availability: ClientAvailability::Hibernating { max_secs: 60.0 },
            mean_samples: 120,
            speed_spread: 0.6,
        }
    }

    /// The ResNet-152 server-client setup of §6.2.
    pub fn resnet152_paper() -> Self {
        PopulationConfig {
            total_clients: 2800,
            active_per_round: 15,
            availability: ClientAvailability::AlwaysOn,
            mean_samples: 120,
            speed_spread: 0.2,
        }
    }
}

/// A population of FL clients and the round-level selection logic the
/// coordinator/selector applies (§2.2).
#[derive(Debug, Clone)]
pub struct Population {
    clients: Vec<Client>,
    active_per_round: usize,
}

impl Population {
    /// Builds a population according to `config`.
    pub fn generate(config: PopulationConfig, rng: &mut SimRng) -> Self {
        let clients = (0..config.total_clients)
            .map(|i| {
                let speed = 1.0 + rng.uniform(-config.speed_spread, config.speed_spread);
                let samples = ((config.mean_samples as f64) * (0.3 + rng.exponential(0.7)))
                    .round()
                    .max(4.0) as u64;
                Client {
                    id: ClientId::new(i as u64),
                    compute_speed: speed.max(0.05),
                    local_samples: samples,
                    availability: config.availability,
                }
            })
            .collect();
        Population {
            clients,
            active_per_round: config.active_per_round.max(1),
        }
    }

    /// Number of clients in the population.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Number of clients selected each round (the aggregation goal n).
    pub fn active_per_round(&self) -> usize {
        self.active_per_round
    }

    /// All clients.
    pub fn clients(&self) -> &[Client] {
        &self.clients
    }

    /// Selects the clients participating in one round, uniformly at random
    /// without replacement (the selector's diversity role, §2.2).
    pub fn select_round(&self, rng: &mut SimRng) -> Vec<Client> {
        let mut indices: Vec<usize> = (0..self.clients.len()).collect();
        rng.shuffle(&mut indices);
        indices
            .into_iter()
            .take(self.active_per_round.min(self.clients.len()))
            .map(|i| self.clients[i].clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_setups_have_expected_sizes() {
        let mut rng = SimRng::from_seed(1);
        let p18 = Population::generate(PopulationConfig::resnet18_paper(), &mut rng);
        assert_eq!(p18.len(), 2800);
        assert_eq!(p18.active_per_round(), 120);
        let p152 = Population::generate(PopulationConfig::resnet152_paper(), &mut rng);
        assert_eq!(p152.active_per_round(), 15);
        assert!(!p152.is_empty());
    }

    #[test]
    fn selection_is_without_replacement() {
        let mut rng = SimRng::from_seed(2);
        let pop = Population::generate(
            PopulationConfig {
                total_clients: 50,
                active_per_round: 20,
                availability: ClientAvailability::AlwaysOn,
                mean_samples: 10,
                speed_spread: 0.1,
            },
            &mut rng,
        );
        let selected = pop.select_round(&mut rng);
        assert_eq!(selected.len(), 20);
        let mut ids: Vec<u64> = selected.iter().map(|c| c.id.index()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 20);
    }

    #[test]
    fn selection_capped_by_population() {
        let mut rng = SimRng::from_seed(3);
        let pop = Population::generate(
            PopulationConfig {
                total_clients: 5,
                active_per_round: 20,
                availability: ClientAvailability::AlwaysOn,
                mean_samples: 10,
                speed_spread: 0.1,
            },
            &mut rng,
        );
        assert_eq!(pop.select_round(&mut rng).len(), 5);
    }

    #[test]
    fn clients_are_heterogeneous() {
        let mut rng = SimRng::from_seed(4);
        let pop = Population::generate(PopulationConfig::resnet18_paper(), &mut rng);
        let speeds: Vec<f64> = pop
            .clients()
            .iter()
            .take(100)
            .map(|c| c.compute_speed)
            .collect();
        let min = speeds.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = speeds.iter().cloned().fold(0.0, f64::max);
        assert!(max - min > 0.2, "speeds should vary: {min}..{max}");
    }
}
