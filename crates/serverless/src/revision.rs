//! Revision and pod lifecycle reconciliation.
//!
//! The serverless baseline creates aggregators as pods of a *revision* whose
//! replica count follows the autoscaler's desired value. Pods do not appear
//! instantaneously: they pass through `Pending → Starting → Ready` (the cold
//! start) and are torn down through `Terminating`. The reconciler here turns
//! a desired replica count into pod state transitions with the appropriate
//! delays, so the experiments can report "number of active aggregators over
//! time" (Fig. 10(b)/(e)) for the baseline systems from first principles.

use lifl_dataplane::cost::StartupCost;
use lifl_types::{InstanceId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Lifecycle phase of one pod.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PodPhase {
    /// Scheduled but the container has not started yet.
    Pending,
    /// Container started; runtime and libraries loading (cold start).
    Starting,
    /// Serving traffic.
    Ready,
    /// Being torn down.
    Terminating,
}

/// One pod of the revision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pod {
    /// The pod's identity.
    pub id: InstanceId,
    /// Current phase.
    pub phase: PodPhase,
    /// When the pod entered its current phase.
    pub phase_since: SimTime,
    /// When the pod becomes ready (meaningful while starting).
    pub ready_at: SimTime,
}

/// Counters describing the revision's scaling activity.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RevisionStats {
    /// Pods created over the revision's lifetime.
    pub pods_created: u64,
    /// Pods terminated over the revision's lifetime.
    pub pods_terminated: u64,
    /// Total CPU time spent on cold starts.
    pub startup_cpu: SimDuration,
}

/// A revision: a set of pods reconciled toward a desired replica count.
#[derive(Debug, Clone)]
pub struct Revision {
    name: String,
    startup: StartupCost,
    termination_grace: SimDuration,
    pods: BTreeMap<InstanceId, Pod>,
    next_id: u64,
    stats: RevisionStats,
}

impl Revision {
    /// Creates an empty revision.
    pub fn new(name: impl Into<String>, startup: StartupCost) -> Self {
        Revision {
            name: name.into(),
            startup,
            termination_grace: SimDuration::from_secs(2.0),
            pods: BTreeMap::new(),
            next_id: 0,
            stats: RevisionStats::default(),
        }
    }

    /// The revision's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Scaling counters.
    pub fn stats(&self) -> RevisionStats {
        self.stats
    }

    /// All pods, in creation order.
    pub fn pods(&self) -> impl Iterator<Item = &Pod> {
        self.pods.values()
    }

    /// Number of pods in the given phase at `now` (after applying transitions).
    pub fn count_in_phase(&mut self, now: SimTime, phase: PodPhase) -> usize {
        self.advance(now);
        self.pods.values().filter(|p| p.phase == phase).count()
    }

    /// Number of ready pods at `now`.
    pub fn ready_pods(&mut self, now: SimTime) -> u32 {
        self.count_in_phase(now, PodPhase::Ready) as u32
    }

    /// Applies time-based phase transitions up to `now`:
    /// `Pending → Starting` immediately, `Starting → Ready` once the cold
    /// start completes, and `Terminating` pods disappear after the grace
    /// period.
    pub fn advance(&mut self, now: SimTime) {
        let grace = self.termination_grace;
        let mut terminated = 0;
        self.pods.retain(|_, pod| {
            if pod.phase == PodPhase::Terminating && now.duration_since(pod.phase_since) >= grace {
                terminated += 1;
                false
            } else {
                true
            }
        });
        self.stats.pods_terminated += terminated;
        for pod in self.pods.values_mut() {
            match pod.phase {
                PodPhase::Pending => {
                    pod.phase = PodPhase::Starting;
                    pod.phase_since = now;
                }
                PodPhase::Starting if now.as_secs() >= pod.ready_at.as_secs() => {
                    pod.phase = PodPhase::Ready;
                    pod.phase_since = pod.ready_at;
                }
                _ => {}
            }
        }
    }

    /// Reconciles the revision toward `desired` replicas at `now`, creating
    /// pending pods or terminating ready ones as needed. Returns the number of
    /// pods created (positive) or marked for termination (negative).
    pub fn reconcile(&mut self, now: SimTime, desired: u32) -> i64 {
        self.advance(now);
        let live: Vec<InstanceId> = self
            .pods
            .iter()
            .filter(|(_, p)| p.phase != PodPhase::Terminating)
            .map(|(id, _)| *id)
            .collect();
        let current = live.len() as u32;
        if desired > current {
            let to_create = desired - current;
            for _ in 0..to_create {
                let id = InstanceId::new(self.next_id);
                self.next_id += 1;
                self.pods.insert(
                    id,
                    Pod {
                        id,
                        phase: PodPhase::Starting,
                        phase_since: now,
                        ready_at: now + self.startup.cold_start,
                    },
                );
                self.stats.pods_created += 1;
                self.stats.startup_cpu += self.startup.cold_start_cpu;
            }
            to_create as i64
        } else if desired < current {
            let to_remove = (current - desired) as usize;
            // Prefer terminating the newest pods (they are least likely to be warm).
            for id in live.iter().rev().take(to_remove) {
                if let Some(pod) = self.pods.get_mut(id) {
                    pod.phase = PodPhase::Terminating;
                    pod.phase_since = now;
                }
            }
            -(to_remove as i64)
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifl_dataplane::CostModel;
    use lifl_types::SystemKind;

    fn revision() -> Revision {
        Revision::new(
            "aggregator-00001",
            CostModel::paper_calibrated().startup(SystemKind::Serverless),
        )
    }

    #[test]
    fn scale_up_creates_starting_pods_that_become_ready() {
        let mut rev = revision();
        let created = rev.reconcile(SimTime::ZERO, 3);
        assert_eq!(created, 3);
        assert_eq!(rev.count_in_phase(SimTime::ZERO, PodPhase::Starting), 3);
        assert_eq!(rev.ready_pods(SimTime::ZERO), 0);
        // After the cold start completes, the pods are ready.
        let ready = rev.ready_pods(SimTime::from_secs(30.0));
        assert_eq!(ready, 3);
        assert_eq!(rev.stats().pods_created, 3);
        assert!(rev.stats().startup_cpu.as_secs() > 0.0);
    }

    #[test]
    fn scale_down_terminates_and_removes_after_grace() {
        let mut rev = revision();
        rev.reconcile(SimTime::ZERO, 4);
        rev.advance(SimTime::from_secs(30.0));
        let delta = rev.reconcile(SimTime::from_secs(30.0), 1);
        assert_eq!(delta, -3);
        assert_eq!(
            rev.count_in_phase(SimTime::from_secs(30.0), PodPhase::Terminating),
            3
        );
        // After the grace period, terminated pods disappear entirely.
        rev.advance(SimTime::from_secs(40.0));
        assert_eq!(rev.pods().count(), 1);
        assert_eq!(rev.stats().pods_terminated, 3);
    }

    #[test]
    fn reconcile_is_idempotent_at_the_desired_count() {
        let mut rev = revision();
        rev.reconcile(SimTime::ZERO, 2);
        assert_eq!(rev.reconcile(SimTime::from_secs(1.0), 2), 0);
        assert_eq!(rev.stats().pods_created, 2);
    }

    #[test]
    fn scale_to_zero_then_back_up_pays_cold_start_again() {
        let mut rev = revision();
        rev.reconcile(SimTime::ZERO, 2);
        rev.advance(SimTime::from_secs(30.0));
        rev.reconcile(SimTime::from_secs(30.0), 0);
        rev.advance(SimTime::from_secs(60.0));
        assert_eq!(rev.pods().count(), 0);
        rev.reconcile(SimTime::from_secs(100.0), 2);
        assert_eq!(
            rev.ready_pods(SimTime::from_secs(100.0)),
            0,
            "fresh pods start cold"
        );
        assert_eq!(rev.stats().pods_created, 4);
        assert!(rev.ready_pods(SimTime::from_secs(130.0)) == 2);
    }

    #[test]
    fn pod_ordering_is_stable_and_named() {
        let mut rev = revision();
        rev.reconcile(SimTime::ZERO, 3);
        let ids: Vec<u64> = rev.pods().map(|p| p.id.index()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(rev.name(), "aggregator-00001");
    }
}
