//! Fixture tests: every rule has at least one failing and one passing
//! fixture under `tests/fixtures/`, each a miniature workspace root.

use lifl_lint::{run, Rule};
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Runs `rules` over the named fixture and returns the rendered findings.
fn lint(name: &str, rules: &[Rule]) -> Vec<String> {
    let report = run(&fixture(name), rules).expect("fixture scans");
    report.findings.iter().map(|f| f.to_string()).collect()
}

#[test]
fn r1_fail_flags_unsafe_and_missing_gate() {
    let found = lint("r1_fail", &[Rule::UnsafeContainment]);
    assert_eq!(found.len(), 2, "{found:#?}");
    assert!(found.iter().any(|f| f.contains("R1-unsafe")
        && f.contains("crates/demo/src/lib.rs:4")
        && f.contains("outside crates/fl/src/kernels/")));
    assert!(found
        .iter()
        .any(|f| f.contains("crate root must carry `#![forbid(unsafe_code)]`")));
}

#[test]
fn r1_pass_is_clean() {
    assert_eq!(
        lint("r1_pass", &[Rule::UnsafeContainment]),
        Vec::<String>::new()
    );
}

#[test]
fn r2_fail_flags_uncommented_unsafe_fn_and_block() {
    let found = lint("r2_fail", &[Rule::SafetyComment]);
    assert_eq!(found.len(), 2, "{found:#?}");
    assert!(found[0].contains("`unsafe fn` without an immediately preceding"));
    assert!(found[1].contains("`unsafe` block without an immediately preceding"));
}

#[test]
fn r2_pass_accepts_comment_runs_and_attributes_between() {
    assert_eq!(
        lint("r2_pass", &[Rule::SafetyComment]),
        Vec::<String>::new()
    );
}

#[test]
fn r3_fail_flags_orphan_drift_missing_dispatch_and_reverse_orphan() {
    let found = lint("r3_fail", &[Rule::KernelParity]);
    // `undispatched` counts twice: neither the scalar:: nor the avx2::
    // reference exists in mod.rs.
    assert_eq!(found.len(), 5, "{found:#?}");
    assert!(found
        .iter()
        .any(|f| f.contains("`orphan` has no AVX2 counterpart")));
    assert!(found
        .iter()
        .any(|f| f.contains("`drifted` signatures drifted between arms")));
    assert!(found.iter().any(|f| f
        .contains("`undispatched` has no `scalar::undispatched` dispatch site")
        || f.contains("`undispatched` has no `avx2::undispatched` dispatch site")));
    assert!(found
        .iter()
        .any(|f| f.contains("AVX2 kernel `extra` has no scalar reference")));
}

#[test]
fn r3_pass_accepts_parity_and_allowed_scalar_only_kernels() {
    assert_eq!(lint("r3_pass", &[Rule::KernelParity]), Vec::<String>::new());
}

#[test]
fn r4_fail_flags_live_panics_and_unjustified_marker_but_not_tests() {
    let found = lint("r4_fail", &[Rule::Panic]);
    // unwrap + expect + todo! + the unjustified marker's own diagnostic +
    // the unwrap the unjustified marker fails to suppress; the #[cfg(test)]
    // unwrap is never a finding.
    assert_eq!(found.len(), 5, "{found:#?}");
    assert!(found
        .iter()
        .any(|f| f.contains("`.unwrap()`") && f.contains(":2:")));
    assert!(found
        .iter()
        .any(|f| f.contains("`.expect()`") && f.contains(":6:")));
    assert!(found.iter().any(|f| f.contains("`todo!`")));
    assert!(found
        .iter()
        .any(|f| f.contains("allow-marker") && f.contains("no justification")));
    assert!(
        !found.iter().any(|f| f.contains(":23:")),
        "test code flagged"
    );
}

#[test]
fn r4_pass_accepts_results_justified_allows_and_test_code() {
    assert_eq!(lint("r4_pass", &[Rule::Panic]), Vec::<String>::new());
}

#[test]
fn r5_fail_flags_hash_collections_and_clocks() {
    let found = lint("r5_fail", &[Rule::Determinism]);
    // HashMap x2 (use + signature), HashSet x2, Instant::now, SystemTime x2
    // (use + call) — the `use std::time::Instant` line alone is not a
    // finding, only `Instant::now`.
    assert!(found.len() >= 5, "{found:#?}");
    assert!(found.iter().any(|f| f.contains("`HashMap`")));
    assert!(found.iter().any(|f| f.contains("`HashSet`")));
    assert!(found.iter().any(|f| f.contains("`Instant::now`")));
    assert!(found.iter().any(|f| f.contains("`SystemTime`")));
}

#[test]
fn r5_pass_accepts_btree_and_test_hash() {
    assert_eq!(lint("r5_pass", &[Rule::Determinism]), Vec::<String>::new());
}

#[test]
fn r6_fail_flags_file_path_call_and_deprecated_allow() {
    let found = lint("r6_fail", &[Rule::LegacyRuntime]);
    assert!(found.len() >= 4, "{found:#?}");
    assert!(found
        .iter()
        .any(|f| f.contains("crates/core/src/runtime.rs:1") && f.contains("is back")));
    assert!(found.iter().any(|f| f.contains("`run_hierarchical`")));
    assert!(found.iter().any(|f| f.contains("`runtime::` path")));
    assert!(found.iter().any(|f| f.contains("`#[allow(deprecated)]`")));
}

#[test]
fn r6_pass_allows_prose_and_string_mentions() {
    assert_eq!(
        lint("r6_pass", &[Rule::LegacyRuntime]),
        Vec::<String>::new()
    );
}

#[test]
fn r7_fail_flags_drift_in_both_directions() {
    let found = lint("r7_fail", &[Rule::CiSync]);
    assert_eq!(found.len(), 2, "{found:#?}");
    assert!(found.iter().any(|f| {
        f.contains(".github/workflows/ci.yml")
            && f.contains("cargo doc --no-deps")
            && f.contains("no recipe reachable")
    }));
    assert!(found.iter().any(|f| {
        f.contains("justfile") && f.contains("only-local") && f.contains("no ci.yml step")
    }));
}

#[test]
fn r7_pass_counts_agreed_commands() {
    let report = run(&fixture("r7_pass"), &[Rule::CiSync]).expect("fixture scans");
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
    assert_eq!(report.ci_sync_commands, Some(3));
}

#[test]
fn rule_selection_runs_only_selected_rules() {
    // r1_fail also has no SAFETY comment on its unsafe block; selecting only
    // R2 must not surface the R1 findings.
    let found = lint("r1_fail", &[Rule::SafetyComment]);
    assert!(
        found.iter().all(|f| f.contains("R2-safety-comment")),
        "{found:#?}"
    );
}
