pub(super) fn axpy(acc: &mut [f32], src: &[f32], w: f32) {
    for (a, b) in acc.iter_mut().zip(src) {
        *a += w * b;
    }
}

pub(super) fn orphan(acc: &mut [f32]) {
    acc.fill(0.0);
}

pub(super) fn drifted(acc: &mut [f32], w: f32) {
    for a in acc.iter_mut() {
        *a *= w;
    }
}

pub(super) fn undispatched(acc: &mut [f32]) {
    acc.reverse();
}
